#!/usr/bin/env python
"""Watch Extended Disha Sequential rescue a message-dependent deadlock.

This demo *manufactures* the textbook situation of Section 2.2 at one
node of a small torus: the input queue is full of requests whose
servicing needs output-queue space, the output queue is full, and the
injection channel is busy — nothing can move, and under a scheme with
shared resources nothing ever would.  It then steps the simulator
cycle-by-cycle and narrates the PR recovery: detection timeout, token
capture at the NI, memory-controller rescue service, the subordinate
message's trip over the deadlock-buffer lane into the destination DMB,
and token release.

Run:  python examples/deadlock_recovery_demo.py
"""

from repro import Engine, SimConfig
from repro.core.progressive import ProgressiveController
from repro.core.token import Token
from repro.protocol.message import Message
from repro.protocol.transactions import PAT721


def wedge_endpoint(engine: Engine, home: int):
    """Fill node ``home``'s queues into the detection condition."""
    scheme = engine.scheme
    ni = engine.interfaces[home]
    nodes = engine.topology.num_nodes

    # Arrived requests that each need a subordinate m2 sent onward.
    roots = []
    q = ni.in_bank.queue(0)
    i = 0
    while q.free_slots > 0:
        requester = (home + 1 + i) % nodes
        third = (home + 5 + i) % nodes
        while third in (home, requester):
            third = (third + 1) % nodes
        txn = PAT721.build_transaction(requester, home, third, 0, length=3)
        txn.root.vc_class = 0
        q.push(txn.root)
        roots.append(txn.root)
        i += 1

    # A long packet hogs the injection channel so the output queue
    # cannot drain, and the output queue itself is full.
    blocker = Message(engine.protocol.types[1], src=home,
                      dst=(home + 1) % nodes, size=3000)
    blocker.vc_class = 0
    engine.fabric.start_injection(
        engine.fabric.injection_channel(home, 0), blocker, 0
    )
    out_q = ni.out_bank.queue(0)
    while out_q.free_slots > 0:
        filler = Message(engine.protocol.types[1], src=home,
                         dst=(home + 2) % nodes)
        filler.vc_class = 0
        out_q.push(filler)
    return roots


def main() -> None:
    engine = Engine(SimConfig(dims=(4, 4), scheme="PR", pattern="PAT721",
                              load=0.0, detection_threshold=25))
    home = 5
    roots = wedge_endpoint(engine, home)
    head = roots[0]
    ctl: ProgressiveController = engine.scheme.controller
    print(f"Wedged node {home}: input queue full "
          f"({len(engine.interfaces[home].in_bank.queue(0))} requests), "
          f"output queue full, injection channel busy.")
    print(f"Head of queue: {head} (subordinate m2 -> node "
          f"{head.continuation[0].dst})\n")

    seen = set()

    def note(key, text):
        if key not in seen:
            seen.add(key)
            print(f"cycle {engine.now:5d}: {text}")

    for _ in range(1200):
        engine.step()
        if ctl.token.state == Token.HELD and "capture" not in seen:
            note("capture", f"token CAPTURED at {ctl.token.holder} "
                            f"after the {engine.config.detection_threshold}-"
                            f"cycle detection timeout")
        if ctl.phase == ProgressiveController.SERVICE:
            note("service", "memory controller preempted: servicing the "
                            "rescued head of the input queue")
        if ctl.phase == ProgressiveController.LANE:
            note("lane", f"subordinate message in the DMB, travelling the "
                         f"deadlock-buffer lane to node {ctl.lane.msg.dst}")
        if head.consumed_cycle > 0:
            note("consumed", f"rescued head consumed "
                             f"(cycle {head.consumed_cycle})")
        if "capture" in seen and ctl.token.state == Token.CIRCULATING:
            note("release", "token RELEASED for re-circulation — "
                            "deadlock resolved")
        if "release" in seen:
            break

    assert ctl.rescues >= 1, "expected at least one rescue"
    print(f"\nRescues performed: {ctl.rescues} "
          f"(NI captures: {ctl.ni_captures}, router captures: "
          f"{ctl.router_captures})")
    txn = head.transaction
    print(f"Rescued transaction used {txn.messages_used} messages for a "
          f"{txn.chain_length}-type chain — progressive recovery adds none.")


if __name__ == "__main__":
    main()
