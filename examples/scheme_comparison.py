#!/usr/bin/env python
"""Compare SA / DR / PR across a load sweep (a miniature Figure 8/10).

Sweeps applied load for each valid scheme on a chosen pattern and VC
budget, printing Burton-Normal-Form curves (throughput vs latency) and
the saturation summary.  This is the experiment at the heart of the
paper: with few virtual channels the avoidance-based schemes starve on
partitioned resources and PR's full sharing wins; with many channels the
endpoint queue organisation takes over.

Run:  python examples/scheme_comparison.py [PAT721] [4]
"""

import sys

from repro import SimConfig, run_sweep
from repro.experiments.figures import valid_schemes
from repro.protocol.transactions import PATTERNS


def main() -> None:
    pattern = sys.argv[1] if len(sys.argv) > 1 else "PAT721"
    num_vcs = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    if pattern not in PATTERNS:
        raise SystemExit(f"unknown pattern {pattern}; choose from {sorted(PATTERNS)}")

    loads = [0.003, 0.006, 0.009, 0.012, 0.015]
    print(f"Pattern {pattern}, {num_vcs} VCs/link, 8x8 torus")
    print(f"Valid schemes here: {valid_schemes(pattern, num_vcs)}\n")

    for scheme in valid_schemes(pattern, num_vcs):
        cfg = SimConfig(scheme=scheme, pattern=pattern, num_vcs=num_vcs, seed=1)
        sweep = run_sweep(cfg, loads, warmup=2000, measure=5000)
        print(f"--- {scheme} ---")
        print(f"{'load':>8s} {'thr (fpc)':>10s} {'latency':>9s} {'deadlocks':>10s}")
        for p in sweep.points:
            print(
                f"{p.load:8.4f} {p.throughput_fpc:10.4f} "
                f"{p.mean_latency:8.1f}c {p.deadlocks:10d}"
            )
        print(f"saturation throughput: {sweep.saturation_throughput():.4f}\n")


if __name__ == "__main__":
    main()
