#!/usr/bin/env python
"""Measure the endpoint message-coupling effect behind Figures 10/11.

With abundant virtual channels the network stops being the bottleneck
and the *organisation of the NI message queues* decides performance:
heterogeneous message types sharing a queue block behind each other
(head-of-line coupling). This example runs PR at 16 VCs on PAT271 with
shared vs per-type ("QA") queues, and reports:

* delivered throughput and latency,
* the coupling index: the fraction of queued messages waiting behind a
  head of a *different* type (0 = decoupled),
* the per-type latency breakdown showing which types pay for coupling.

Run:  python examples/endpoint_coupling.py [load]
"""

import sys

from repro import Engine, SimConfig
from repro.sim.analysis import format_breakdown, run_with_monitor


def measure(queue_mode: str, load: float):
    cfg = SimConfig(
        scheme="PR", pattern="PAT271", num_vcs=16,
        queue_mode=queue_mode, load=load, seed=1,
    )
    engine = Engine(cfg)
    engine.run(1500)  # warm-up
    engine.stats.begin_window(engine.now)
    monitor = run_with_monitor(engine, 5000, interval=50)
    window = engine.stats.end_window(engine.now)
    return engine, window, monitor


def main() -> None:
    load = float(sys.argv[1]) if len(sys.argv) > 1 else 0.016
    print(f"PR, PAT271, 16 VCs, applied load {load} (near saturation)\n")

    for mode, label in (("shared", "shared queues (PR default)"),
                        ("per-type", "per-type queues (QA, Figure 11)")):
        engine, window, monitor = measure(mode, load)
        nodes = engine.topology.num_nodes
        print(f"--- {label} ---")
        print(f"throughput     : {window.throughput_fpc(nodes):.4f} flits/node/cycle")
        print(f"mean latency   : {window.mean_latency():.1f} cycles")
        print(f"coupling index : {monitor.coupling_index():.2f}")
        print(format_breakdown(engine.stats))
        print()

    print("Shared queues mix m1..m4 in one FIFO: short requests queue "
          "behind 20-flit replies and unrelated types (coupling index "
          "well above zero), which is exactly why DR/PR trail SA in "
          "Figure 10 and recover with QA separation in Figure 11.")


if __name__ == "__main__":
    main()
