#!/usr/bin/env python
"""Trace-driven CC-NUMA characterization (the Section 4.2 study).

Generates a synthetic Splash-2-like trace for a chosen application,
replays it through the full-map MSI directory protocol on the paper's
4x4-torus trace environment, and reports:

* the Table 1 response-type mix (Direct Reply / Invalidation /
  Forwarding),
* the Figure 6 load-rate distribution, and
* the number of message-dependent deadlocks observed (paper: zero),
  under both the endpoint timeout detector and exact CWG knot checks.

Run:  python examples/coherence_traces.py [fft|lu|radix|water] [duration]
"""

import sys

from repro.experiments.fig6_load_rates import simulate_app
from repro.traffic.splash import APP_MODELS


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "radix"
    duration = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000
    if app not in APP_MODELS:
        raise SystemExit(f"unknown app {app}; choose from {sorted(APP_MODELS)}")

    print(f"Generating {app} trace ({duration} cycles, 16 CPUs) and "
          f"replaying through MSI directory on a 4x4 torus...")
    engine, samples = simulate_app(app, duration, cwg_interval=50)
    coherence = engine.traffic.coherence

    dist = coherence.response_distribution()
    print(f"\nRequests: {coherence.requests}  "
          f"(local cache hits: {coherence.local_hits})")
    print("Response types (Table 1):")
    target = APP_MODELS[app].response_mix
    for (cls, frac), want in zip(dist.items(), target):
        print(f"  {cls:14s} {frac*100:5.1f}%   (paper: {want*100:.1f}%)")

    cap = engine.topology.uniform_capacity()
    rel = samples / cap
    print("\nLoad-rate distribution (Figure 6):")
    print(f"  mean load          : {rel.mean()*100:5.1f}% of capacity")
    print(f"  peak load          : {rel.max()*100:5.1f}% of capacity")
    print(f"  time under 5%      : {(rel < 0.05).mean()*100:5.1f}%")

    total = engine.stats.total
    print("\nDeadlocks (paper: zero for all applications):")
    print(f"  timeout episodes   : {total.deadlocks + total.deadlocks_unresolved}")
    print(f"  exact CWG knots    : {engine.cwg_knots_seen}")
    print(f"  messages delivered : {total.messages_delivered}")


if __name__ == "__main__":
    main()
