#!/usr/bin/env python
"""Quickstart: simulate one network and read its performance.

Builds the paper's default platform (8x8 wormhole torus, 4 VCs, Table 2
parameters) under the proposed progressive-recovery scheme (PR, Extended
Disha Sequential), applies a moderate synthetic load of PAT721
transactions, and prints throughput, latency and deadlock statistics.

Run:  python examples/quickstart.py [load]
"""

import sys

from repro import Engine, SimConfig


def main() -> None:
    load = float(sys.argv[1]) if len(sys.argv) > 1 else 0.008

    config = SimConfig(
        scheme="PR",          # SA | DR | PR | NONE
        pattern="PAT721",     # Table 3 transaction pattern
        num_vcs=4,            # virtual channels per link
        load=load,            # requests/node/cycle
        seed=1,
    )
    engine = Engine(config)
    print(f"Topology: {engine.topology}")
    print(f"Scheme:   {engine.scheme.describe()}")

    window = engine.run_measured(warmup=2000, measure=8000)

    nodes = engine.topology.num_nodes
    print(f"\nApplied load        : {load:.4f} requests/node/cycle")
    print(f"Delivered throughput: {window.throughput_fpc(nodes):.4f} flits/node/cycle")
    print(f"Mean message latency: {window.mean_latency():.1f} cycles")
    print(f"Max message latency : {window.latency_max} cycles")
    print(f"Messages delivered  : {window.messages_delivered}")
    print(f"Transactions done   : {window.transactions_completed}")
    print(f"Deadlocks recovered : {window.deadlocks}")
    print(f"Normalized deadlocks: {window.normalized_deadlocks():.2e}")

    if config.scheme == "PR":
        ctl = engine.scheme.controller
        print(f"Token captures      : {ctl.rescues} "
              f"(NI: {ctl.ni_captures}, router: {ctl.router_captures})")


if __name__ == "__main__":
    main()
