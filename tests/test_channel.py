"""Unit tests for virtual channels, injection channels, ejection ports."""

import pytest

from repro.network.channel import EjectionPort, InjectionChannel, VirtualChannel
from repro.network.topology import Torus
from repro.protocol.chains import GENERIC_MSI
from repro.protocol.message import Message
from repro.util.errors import SimulationError

M1 = GENERIC_MSI.type_named("m1")
LINK = Torus((4,)).links[0]


class TestVirtualChannel:
    def test_capacity_enforced(self):
        vc = VirtualChannel(LINK, 0, capacity=2)
        vc.accept_flit(0, now=1)
        vc.accept_flit(1, now=1)
        assert not vc.has_space()
        with pytest.raises(SimulationError):
            vc.accept_flit(2, now=1)

    def test_one_cycle_minimum_per_hop(self):
        vc = VirtualChannel(LINK, 0, capacity=2)
        vc.accept_flit(0, now=5)
        assert vc.ready_flit(now=5) is None  # arrived this cycle
        assert vc.ready_flit(now=6) == 0

    def test_fifo_order(self):
        vc = VirtualChannel(LINK, 0, capacity=2)
        vc.accept_flit(3, now=1)
        vc.accept_flit(4, now=2)
        assert vc.pop_flit() == 3
        assert vc.pop_flit() == 4

    def test_release_requires_empty(self):
        vc = VirtualChannel(LINK, 0, capacity=2)
        vc.owner = Message(M1, 0, 1)
        vc.accept_flit(0, now=1)
        with pytest.raises(SimulationError):
            vc.release()
        vc.pop_flit()
        vc.release()
        assert vc.owner is None and vc.next_sink is None


class TestInjectionChannel:
    def test_streams_packet_flits_in_order(self):
        chan = InjectionChannel(node=0, router=0, vc_class=0)
        msg = Message(M1, 0, 1)  # 4 flits
        chan.load(msg)
        assert not chan.idle
        flits = []
        while (f := chan.ready_flit(now=1)) is not None:
            flits.append(chan.pop_flit())
        assert flits == [0, 1, 2, 3]
        assert msg.flits_sent == 4

    def test_double_load_rejected(self):
        chan = InjectionChannel(0, 0, 0)
        chan.load(Message(M1, 0, 1))
        with pytest.raises(SimulationError):
            chan.load(Message(M1, 0, 1))

    def test_release_frees_channel(self):
        chan = InjectionChannel(0, 0, 0)
        chan.load(Message(M1, 0, 1))
        chan.release()
        assert chan.idle


class TestEjectionPort:
    def _port_with_sender(self, msg):
        delivered = []
        port = EjectionPort(node=1, deliver=lambda m, now: delivered.append((m, now)))
        chan = InjectionChannel(0, 0, 0)  # acts as a generic sender
        chan.load(msg)
        chan.next_sink = port
        port.senders.append(chan)
        return port, chan, delivered

    def test_one_flit_per_cycle_then_delivery(self):
        msg = Message(M1, 0, 1)
        port, chan, delivered = self._port_with_sender(msg)
        for now in range(1, 1 + msg.size):
            port.step(now)
        assert delivered and delivered[0][0] is msg
        assert msg.flits_ejected == msg.size
        assert port.senders == []
        assert chan.idle

    def test_round_robin_among_senders(self):
        a, b = Message(M1, 0, 1), Message(M1, 2, 1)
        port, _, delivered = self._port_with_sender(a)
        chan_b = InjectionChannel(2, 0, 0)
        chan_b.load(b)
        chan_b.next_sink = port
        port.senders.append(chan_b)
        for now in range(1, 20):
            port.step(now)
            if len(delivered) == 2:
                break
        assert {m.uid for m, _ in delivered} == {a.uid, b.uid}
        # Interleaving: neither message finished 4 flits ahead.
        assert abs(delivered[0][1] - delivered[1][1]) <= 2

    def test_idle_port_noop(self):
        port = EjectionPort(0, deliver=lambda m, n: None)
        port.step(1)  # must not raise
        assert port.flits_drained == 0
