"""Engine-level end-to-end tests: all schemes, conservation, stats."""

import pytest

from repro import SimConfig
from repro.sim.engine import Engine
from repro.util.errors import ConfigurationError
from tests.helpers import build_engine


class TestConstruction:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            Engine(SimConfig(pattern="PATX"))

    def test_custom_traffic_requires_metadata(self):
        class Dummy:
            def attach(self, e): ...

        with pytest.raises(ConfigurationError):
            Engine(SimConfig(), traffic=Dummy())

    def test_interfaces_one_per_node(self):
        e = build_engine(scheme="PR", dims=(2, 4), bristling=2)
        assert len(e.interfaces) == 16


@pytest.mark.parametrize(
    "scheme,pattern,vcs",
    [
        ("PR", "PAT721", 4),
        ("DR", "PAT721", 4),
        ("SA", "PAT100", 4),
        ("SA", "PAT721", 8),
        ("NONE", "PAT271", 4),
        ("PR", "PAT280", 4),
        ("DR", "PAT280", 4),
    ],
)
class TestEndToEnd:
    def test_low_load_delivers_and_drains(self, scheme, pattern, vcs):
        e = build_engine(scheme=scheme, pattern=pattern, num_vcs=vcs,
                         load=0.003, seed=7)
        w = e.run_measured(warmup=500, measure=1500)
        assert w.messages_delivered > 50
        assert w.mean_latency() > 0
        # Conservation: stopping traffic drains everything.
        assert e.quiesce(max_cycles=50_000)
        total = e.stats.total
        assert total.messages_consumed == total.messages_delivered
        # Every generated transaction completed.
        live = [t for t in e.traffic.transactions if not t.completed]
        assert live == []


class TestDeterminism:
    def test_same_seed_same_results(self):
        runs = []
        for _ in range(2):
            e = build_engine(scheme="PR", load=0.005, seed=13)
            w = e.run_measured(500, 1000)
            runs.append(
                (w.messages_delivered, w.latency_sum, e.fabric.flits_forwarded)
            )
        assert runs[0] == runs[1]

    def test_different_seed_differs(self):
        a = build_engine(scheme="PR", load=0.005, seed=13)
        b = build_engine(scheme="PR", load=0.005, seed=14)
        wa = a.run_measured(500, 1000)
        wb = b.run_measured(500, 1000)
        assert (wa.messages_delivered, wa.latency_sum) != (
            wb.messages_delivered,
            wb.latency_sum,
        )


class TestStatsWindows:
    def test_window_separate_from_total(self):
        e = build_engine(scheme="PR", load=0.004, seed=3)
        e.run(800)
        before = e.stats.total.messages_delivered
        w = e.run_measured(0, 800)
        assert w.messages_delivered <= e.stats.total.messages_delivered
        assert e.stats.total.messages_delivered > before

    def test_throughput_and_normalized_deadlocks(self):
        e = build_engine(scheme="PR", load=0.004, seed=3)
        w = e.run_measured(500, 1000)
        thr = w.throughput_fpc(e.topology.num_nodes)
        assert 0 < thr < 1.5
        assert w.normalized_deadlocks() == 0.0  # low load: none

    def test_load_sampling(self):
        e = build_engine(scheme="PR", load=0.004, seed=3)
        e.stats.enable_load_sampling(100)
        e.run(1000)
        assert len(e.stats.load_samples) == 10
        assert all(s >= 0 for s in e.stats.load_samples)


class TestBristling:
    def test_bristled_network_runs(self):
        e = build_engine(scheme="PR", dims=(2, 2), bristling=4, load=0.004,
                         seed=3)
        w = e.run_measured(500, 1000)
        assert w.messages_delivered > 10
        assert e.topology.num_nodes == 16
        assert e.quiesce(max_cycles=50_000)

    def test_sibling_nodes_share_router(self):
        e = build_engine(scheme="PR", dims=(2, 2), bristling=4, load=0.0)
        assert e.interfaces[0].router == e.interfaces[3].router


class TestCwgInterval:
    def test_periodic_cwg_check_runs(self):
        e = build_engine(scheme="PR", load=0.003, seed=3, cwg_interval=50)
        e.run(500)
        assert e.cwg_knots_seen == 0
