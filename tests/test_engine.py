"""Engine-level end-to-end tests: all schemes, conservation, stats."""

import pytest

from repro import SimConfig
from repro.sim.engine import Engine
from repro.util.errors import ConfigurationError
from tests.helpers import build_engine


class TestConstruction:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            Engine(SimConfig(pattern="PATX"))

    def test_custom_traffic_requires_metadata(self):
        class Dummy:
            def attach(self, e): ...

        with pytest.raises(ConfigurationError):
            Engine(SimConfig(), traffic=Dummy())

    def test_interfaces_one_per_node(self):
        e = build_engine(scheme="PR", dims=(2, 4), bristling=2)
        assert len(e.interfaces) == 16


@pytest.mark.parametrize(
    "scheme,pattern,vcs",
    [
        ("PR", "PAT721", 4),
        ("DR", "PAT721", 4),
        ("SA", "PAT100", 4),
        ("SA", "PAT721", 8),
        ("NONE", "PAT271", 4),
        ("PR", "PAT280", 4),
        ("DR", "PAT280", 4),
    ],
)
class TestEndToEnd:
    def test_low_load_delivers_and_drains(self, scheme, pattern, vcs):
        e = build_engine(scheme=scheme, pattern=pattern, num_vcs=vcs,
                         load=0.003, seed=7)
        w = e.run_measured(warmup=500, measure=1500)
        assert w.messages_delivered > 50
        assert w.mean_latency() > 0
        # Conservation: stopping traffic drains everything.
        assert e.quiesce(max_cycles=50_000)
        total = e.stats.total
        assert total.messages_consumed == total.messages_delivered
        # Every generated transaction completed.
        live = [t for t in e.traffic.transactions if not t.completed]
        assert live == []


class TestDeterminism:
    def test_same_seed_same_results(self):
        runs = []
        for _ in range(2):
            e = build_engine(scheme="PR", load=0.005, seed=13)
            w = e.run_measured(500, 1000)
            runs.append(
                (w.messages_delivered, w.latency_sum, e.fabric.flits_forwarded)
            )
        assert runs[0] == runs[1]

    def test_different_seed_differs(self):
        a = build_engine(scheme="PR", load=0.005, seed=13)
        b = build_engine(scheme="PR", load=0.005, seed=14)
        wa = a.run_measured(500, 1000)
        wb = b.run_measured(500, 1000)
        assert (wa.messages_delivered, wa.latency_sum) != (
            wb.messages_delivered,
            wb.latency_sum,
        )


class TestStatsWindows:
    def test_window_separate_from_total(self):
        e = build_engine(scheme="PR", load=0.004, seed=3)
        e.run(800)
        before = e.stats.total.messages_delivered
        w = e.run_measured(0, 800)
        assert w.messages_delivered <= e.stats.total.messages_delivered
        assert e.stats.total.messages_delivered > before

    def test_throughput_and_normalized_deadlocks(self):
        e = build_engine(scheme="PR", load=0.004, seed=3)
        w = e.run_measured(500, 1000)
        thr = w.throughput_fpc(e.topology.num_nodes)
        assert 0 < thr < 1.5
        assert w.normalized_deadlocks() == 0.0  # low load: none

    def test_load_sampling(self):
        e = build_engine(scheme="PR", load=0.004, seed=3)
        e.stats.enable_load_sampling(100)
        e.run(1000)
        assert len(e.stats.load_samples) == 10
        assert all(s >= 0 for s in e.stats.load_samples)


class TestBristling:
    def test_bristled_network_runs(self):
        e = build_engine(scheme="PR", dims=(2, 2), bristling=4, load=0.004,
                         seed=3)
        w = e.run_measured(500, 1000)
        assert w.messages_delivered > 10
        assert e.topology.num_nodes == 16
        assert e.quiesce(max_cycles=50_000)

    def test_sibling_nodes_share_router(self):
        e = build_engine(scheme="PR", dims=(2, 2), bristling=4, load=0.0)
        assert e.interfaces[0].router == e.interfaces[3].router


class TestCwgInterval:
    def test_periodic_cwg_check_runs(self):
        e = build_engine(scheme="PR", load=0.003, seed=3, cwg_interval=50)
        e.run(500)
        assert e.cwg_knots_seen == 0


class _ScriptedTraffic:
    """Trace-style source: replays (cycle, requester, home) triples.

    Deliberately exposes no ``load`` attribute — quiesce/_empty must not
    assume the synthetic-traffic interface (regression: AttributeError
    when quiescing a trace-driven engine).
    """

    def __init__(self, pattern, events):
        self.pattern = pattern
        self.events = sorted(events)
        self.engine = None
        self.transactions = []

    def attach(self, engine):
        self.engine = engine

    @property
    def exhausted(self):
        return not self.events

    def step(self, now):
        while self.events and self.events[0][0] <= now:
            _, requester, home = self.events.pop(0)
            txn = self.pattern.build_transaction(
                requester=requester, home=home, third=requester,
                created_cycle=now, length=2,
            )
            self.transactions.append(txn)
            self.engine.interfaces[requester].enqueue_root(txn.root)


class TestTraceQuiesce:
    def _engine(self, events):
        from repro.protocol.transactions import PAT100
        from repro.traffic.synthetic import pattern_couplings

        traffic = _ScriptedTraffic(PAT100, events)
        return Engine(
            SimConfig(dims=(4, 4), scheme="PR", seed=3),
            traffic=traffic,
            protocol=PAT100.protocol,
            types_used=PAT100.types_used,
            couplings=pattern_couplings(PAT100),
        )

    def test_quiesce_without_load_attribute(self):
        # quiesce()/_empty() must tolerate traffic sources that have no
        # ``load`` knob instead of raising AttributeError.
        e = self._engine([(1, 0, 5), (3, 2, 9), (10, 7, 1)])
        e.run(20)
        assert e.quiesce(max_cycles=20_000)
        assert e.traffic.exhausted
        total = e.stats.total
        assert total.messages_delivered > 0
        assert total.messages_consumed == total.messages_delivered
        assert all(t.completed for t in e.traffic.transactions)

    def test_empty_is_false_while_messages_in_flight(self):
        e = self._engine([(1, 0, 5)])
        e.run(2)  # root admitted, flits in the network
        assert not e._empty()
