"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "PR" and args.num_vcs == 4

    def test_dims_parsing(self):
        args = build_parser().parse_args(["run", "--dims", "4x4x2"])
        from repro.cli import _config

        cfg = _config(args, 0.001)
        assert cfg.dims == (4, 4, 2)

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "XYZ"])


class TestCommands:
    def test_run_command(self, capsys):
        rc = main(["run", "--dims", "4x4", "--load", "0.004",
                   "--warmup", "200", "--measure", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "per-type breakdown" in out

    def test_sweep_command_with_json(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        rc = main([
            "sweep", "--dims", "4x4", "--loads", "0.002,0.004",
            "--warmup", "200", "--measure", "400", "--json", str(path),
            "--no-early-stop", "--cache-dir", str(tmp_path / "cache"),
        ])
        assert rc == 0
        data = json.loads(path.read_text())
        assert len(data["points"]) == 2
        assert data["points"][0]["load"] == 0.002

    def test_trace_command(self, tmp_path, capsys):
        path = tmp_path / "lu.trace"
        rc = main(["trace", "lu", str(path), "--duration", "3000"])
        assert rc == 0
        from repro.traffic.trace import read_trace

        assert len(read_trace(path)) > 0

    def test_experiments_command(self, capsys):
        rc = main(["experiments", "smoke", "table3"])
        assert rc == 0
        assert "Table 3" in capsys.readouterr().out
