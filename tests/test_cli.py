"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "PR" and args.num_vcs == 4

    def test_dims_parsing(self):
        args = build_parser().parse_args(["run", "--dims", "4x4x2"])
        from repro.cli import _config

        cfg = _config(args, 0.001)
        assert cfg.dims == (4, 4, 2)

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "XYZ"])

    def test_fault_flags_build_specs(self):
        args = build_parser().parse_args([
            "run", "--fault", "consumer-stall:target=5,start=600,duration=100",
            "--fault", "token-loss:start=900",
            "--invariants-every", "250", "--watchdog", "8000",
        ])
        from repro.cli import _config

        cfg = _config(args, 0.001)
        assert [f.kind for f in cfg.faults] == ["consumer-stall", "token-loss"]
        assert cfg.invariants_every == 250 and cfg.watchdog_timeout == 8000

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--fault", "nonsense-kind"])


class TestCommands:
    def test_run_command(self, capsys):
        rc = main(["run", "--dims", "4x4", "--load", "0.004",
                   "--warmup", "200", "--measure", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "per-type breakdown" in out

    def test_sweep_command_with_json(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        rc = main([
            "sweep", "--dims", "4x4", "--loads", "0.002,0.004",
            "--warmup", "200", "--measure", "400", "--json", str(path),
            "--no-early-stop", "--cache-dir", str(tmp_path / "cache"),
        ])
        assert rc == 0
        data = json.loads(path.read_text())
        assert len(data["points"]) == 2
        assert data["points"][0]["load"] == 0.002

    def test_faulted_run_reports_activations(self, capsys):
        rc = main([
            "run", "--scheme", "PR", "--pattern", "PAT271", "--vcs", "4",
            "--dims", "4x4", "--load", "0.012", "--warmup", "1000",
            "--measure", "3000", "--invariants-every", "250",
            "--watchdog", "8000",
            "--fault", "consumer-stall:target=5,start=600,duration=2000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "consumer-stall@5" in out and "activated 1x" in out

    def test_wedged_run_exits_3_with_dump(self, capsys):
        # Stall every consumer permanently: the watchdog must convert the
        # hang into a diagnosed failure instead of spinning to --measure.
        argv = ["run", "--scheme", "DR", "--pattern", "PAT271", "--vcs", "4",
                "--dims", "4x4", "--load", "0.012", "--warmup", "500",
                "--measure", "8000", "--watchdog", "800"]
        for node in range(16):
            argv += ["--fault", f"consumer-stall:target={node},start=200"]
        rc = main(argv)
        assert rc == 3
        err = capsys.readouterr().err
        assert "FAILED" in err and "liveness watchdog" in err
        assert "controller=stalled" in err

    def test_run_json_to_stdout(self, capsys):
        rc = main([
            "run", "--scheme", "PR", "--pattern", "PAT271", "--vcs", "4",
            "--dims", "4x4", "--load", "0.012", "--warmup", "600",
            "--measure", "2000", "--json", "-",
            "--fault", "consumer-stall:target=5,start=600,duration=1200",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        payload = json.loads(out[:out.index("\n}") + 2])
        assert payload["scheme"] == "PR" and payload["dims"] == [4, 4]
        assert payload["window"]["messages_delivered"] > 0
        assert "throughput_fpc" in payload["window"]
        assert payload["by_type"]  # per-type breakdown is present
        assert payload["faults"] == {
            "consumer-stall@5[start=600,dur=1200]": 1
        }
        assert payload["first_deadlock_cycle"] > 0
        assert payload["episodes"][0]["detection_cycle"] == (
            payload["first_deadlock_cycle"]
        )

    def test_run_json_on_vector_backend(self, tmp_path, capsys):
        """--json must work on the vector backend (episodes excepted).

        The tracer is only *implied* by --json for episode stitching;
        the vector backend refuses tracers, so the JSON carries every
        reference field except `episodes` (empty).  Explicit --trace
        stays a loud UnsupportedFeatureError (covered in the backend
        equivalence suite).
        """
        base = [
            "run", "--scheme", "PR", "--pattern", "PAT271", "--vcs", "4",
            "--dims", "4x4", "--load", "0.012", "--warmup", "600",
            "--measure", "2000",
        ]
        ref, vec = tmp_path / "ref.json", tmp_path / "vec.json"
        assert main(base + ["--json", str(ref)]) == 0
        assert main(base + ["--json", str(vec), "--backend", "vector"]) == 0
        a = json.loads(ref.read_text())
        b = json.loads(vec.read_text())
        assert b.pop("episodes") == []
        a.pop("episodes")
        assert a == b

    def test_run_trace_and_timeseries_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.json"
        series = tmp_path / "run.csv"
        rc = main([
            "run", "--dims", "4x4", "--load", "0.004", "--warmup", "200",
            "--measure", "600", "--trace", str(trace), "--trace-level",
            "flit", "--sample-every", "50", "--timeseries", str(series),
        ])
        assert rc == 0
        from repro.experiments.telemetry import validate_perfetto

        validate_perfetto(json.loads(trace.read_text()))
        header = series.read_text().splitlines()[0]
        assert header.startswith("cycle,busy_links,")
        out = capsys.readouterr().out
        assert f"wrote {trace}" in out and f"wrote {series}" in out

    def test_trace_command(self, tmp_path, capsys):
        path = tmp_path / "lu.trace"
        rc = main(["trace", "lu", str(path), "--duration", "3000"])
        assert rc == 0
        from repro.traffic.trace import read_trace

        assert len(read_trace(path)) > 0

    def test_experiments_command(self, capsys):
        rc = main(["experiments", "smoke", "table3"])
        assert rc == 0
        assert "Table 3" in capsys.readouterr().out


class TestCdgCheck:
    def test_list_names_every_builtin_pair(self, capsys):
        from repro.analysis import builtin_pairs

        assert main(["cdg-check", "--list"]) == 0
        out = capsys.readouterr().out
        for pair in builtin_pairs():
            assert pair.name in out

    def test_registry_gate_green_with_json_artifact(self, tmp_path, capsys):
        path = tmp_path / "cdg_report.json"
        rc = main(["cdg-check", "--json", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 gate failure(s)" in out
        payload = json.loads(path.read_text("utf-8"))
        from repro.analysis import builtin_pairs

        assert {r["name"] for r in payload} == {
            p.name for p in builtin_pairs()
        }
        refuted = next(r for r in payload if r["verdict"] == "REFUTED")
        assert refuted["cycle"] and refuted["annotation"]

    def test_single_pair_by_name(self, capsys):
        assert main(["cdg-check", "ring8-dor"]) == 0
        out = capsys.readouterr().out
        assert "verdict CERTIFIED" in out and "witness" in out

    def test_unknown_pair_rejected(self, capsys):
        assert main(["cdg-check", "nope"]) == 2
        assert "unknown pair" in capsys.readouterr().err

    def test_adhoc_refuted_pair_exits_nonzero(self, capsys):
        rc = main(["cdg-check", "--routing", "tfar", "--topology", "torus",
                   "--dims", "4", "--vcs", "2"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "verdict REFUTED" in out and "dependency cycle" in out

    def test_adhoc_certified_mesh(self, capsys):
        rc = main(["cdg-check", "--routing", "duato", "--topology", "mesh2d",
                   "--dims", "3x3", "--vcs", "4"])
        assert rc == 0
        assert "verdict CERTIFIED" in capsys.readouterr().out

    def test_run_accepts_topology_flags(self, capsys):
        rc = main(["run", "--topology", "fullmesh", "--dims", "2x4",
                   "--load", "0.004", "--warmup", "200", "--measure", "500"])
        assert rc == 0
        assert "FullMesh" in capsys.readouterr().out
