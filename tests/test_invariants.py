"""The invariant layer: conservation, ledgers, watchdog, quiesce dumps.

Each test corrupts (or wedges) a live engine in one specific way and
asserts that the corresponding check catches exactly that corruption —
the checks exist so that a regression in detection/recovery fails loudly
instead of shifting a throughput curve.
"""

import pytest

from repro.config import SimConfig
from repro.faults import FaultSpec
from repro.protocol.message import Message
from repro.sim.engine import Engine
from repro.sim.invariants import (
    InvariantChecker,
    QuiesceResult,
    capture_dump,
    conservation_delta,
    format_dump,
    live_message_uids,
)
from repro.util.errors import InvariantViolation, LivenessError


def busy_engine(**kwargs) -> Engine:
    defaults = dict(dims=(4, 4), scheme="PR", pattern="PAT271", num_vcs=4,
                    load=0.012, seed=7)
    defaults.update(kwargs)
    e = Engine(SimConfig(**defaults))
    e.run(800)
    return e


def checker(engine, **kwargs) -> InvariantChecker:
    return InvariantChecker(engine, **kwargs)


def some_populated_queue(engine):
    for ni in engine.interfaces:
        for bank in (ni.in_bank, ni.out_bank):
            for q in bank:
                if q.entries:
                    return q
    raise AssertionError("no populated queue at this load")  # pragma: no cover


class TestConservation:
    @pytest.mark.parametrize("scheme,pattern,vcs,load", [
        ("SA", "PAT721", 8, 0.012),
        ("DR", "PAT271", 4, 0.018),
        ("PR", "PAT271", 4, 0.018),  # heavy: rescues exercise DMB + lane
    ])
    def test_healthy_runs_balance_mid_flight(self, scheme, pattern, vcs, load):
        e = busy_engine(scheme=scheme, pattern=pattern, num_vcs=vcs, load=load)
        e.run(3200)  # mid-run, traffic still in the network
        assert conservation_delta(e) == 0
        assert len(live_message_uids(e)) > 0

    def test_killed_message_is_lost(self):
        e = busy_engine()
        chk = checker(e)
        some_populated_queue(e).entries.popleft()  # silently kill one
        with pytest.raises(InvariantViolation, match="1 message\\(s\\) lost"):
            chk.check_now(e.now)

    def test_conjured_message_is_duplicated(self):
        e = busy_engine()
        chk = checker(e)
        q = some_populated_queue(e)
        ghost = Message(q.entries[0].mtype, src=0, dst=1)  # no on_created
        q.entries.append(ghost)
        with pytest.raises(InvariantViolation, match="duplicated"):
            chk.check_now(e.now)

    def test_baseline_absorbs_hand_stuffed_state(self):
        # Tests (and scenarios) push messages directly into queues; a
        # checker attached afterwards must still balance.
        e = busy_engine()
        q = some_populated_queue(e)
        q.entries.append(Message(q.entries[0].mtype, src=0, dst=1))
        chk = checker(e)  # baseline snapshots the ghost
        chk.check_now(e.now)  # no raise


class TestLedgers:
    def test_occupancy_ledger_divergence(self):
        e = busy_engine()
        chk = checker(e)
        e.fabric._occ[0] += 1
        with pytest.raises(InvariantViolation, match="occupancy ledger"):
            chk.check_now(e.now)

    def test_negative_slot_accounting(self):
        e = busy_engine()
        chk = checker(e)
        e.interfaces[3].in_bank.queue(0).held = -1
        with pytest.raises(InvariantViolation, match="negative slot"):
            chk.check_now(e.now)

    def test_oversubscribed_queue(self):
        e = busy_engine()
        chk = checker(e)
        q = e.interfaces[3].in_bank.queue(0)
        q.reserved = q.capacity + 1
        with pytest.raises(InvariantViolation, match="oversubscribed"):
            chk.check_now(e.now)

    def test_held_token_without_holder(self):
        e = busy_engine()
        chk = checker(e)
        token = e.scheme.controller.token
        token.state = token.HELD
        token.holder = None
        with pytest.raises(InvariantViolation, match="no holder"):
            chk.check_now(e.now)

    def test_violation_carries_a_dump(self):
        e = busy_engine()
        chk = checker(e)
        e.fabric._occ[0] += 1
        with pytest.raises(InvariantViolation) as excinfo:
            chk.check_now(e.now)
        dump = excinfo.value.dump
        assert dump["cycle"] == e.now and dump["scheme"] == "PR"
        assert dump["reason"].startswith("invariant:")


class TestWatchdog:
    def _wedge(self, e):
        """Freeze every resource so nothing can ever move again."""
        e.fabric.stalled_links.update(link.lid for link in e.topology.links)
        e.fabric.stalled_ejects.update(range(e.topology.num_nodes))
        for ni in e.interfaces:
            ni.controller.stalled = True
        e.traffic.load = 0.0

    def test_total_wedge_raises_liveness_error(self):
        e = busy_engine(watchdog_timeout=500)
        self._wedge(e)
        with pytest.raises(LivenessError) as excinfo:
            e.run(5000)
        dump = excinfo.value.dump
        assert "liveness watchdog" in dump["reason"]
        assert dump["interfaces"]  # names the resources holding messages
        assert any(info["controller"]["stalled"]
                   for info in dump["interfaces"].values())
        # Wedged, not corrupted: every message is still accounted for.
        assert dump["conservation"]["delta"] == 0
        assert dump["conservation"]["live"] > 0

    def test_idle_system_never_trips(self):
        e = Engine(SimConfig(dims=(4, 4), scheme="PR", pattern="PAT271",
                             num_vcs=4, load=0.0, seed=7,
                             watchdog_timeout=100))
        e.run(2000)  # empty throughout: idle is not death

    def test_drained_system_never_trips(self):
        e = busy_engine(watchdog_timeout=400)
        e.traffic.load = 0.0
        assert e.quiesce(100_000)
        e.run(2000)  # drained and idle afterwards

    def test_token_circulation_alone_is_not_progress(self):
        # PR's token keeps hopping stops even when the network is dead;
        # the watchdog must see through that, or a wedged PR run spins
        # forever looking "alive".
        e = busy_engine(watchdog_timeout=500)
        self._wedge(e)
        laps_before = e.scheme.controller.token.laps
        with pytest.raises(LivenessError):
            e.run(5000)
        assert e.scheme.controller.token.laps > laps_before


class TestQuiesce:
    def test_truthy_on_clean_drain(self):
        e = busy_engine()
        e.traffic.load = 0.0
        result = e.quiesce(100_000)
        assert result and result.ok
        assert result.dump is None
        assert repr(result) == "QuiesceResult(ok=True)"

    def test_failure_names_the_holding_resources(self):
        e = busy_engine(faults=(
            FaultSpec("consumer-stall", target=5, start=0),))  # permanent
        e.traffic.load = 0.0
        result = e.quiesce(3000)
        assert not result
        assert result.dump["reason"].startswith("quiesce failed")
        assert 5 in result.dump["interfaces"]
        assert result.dump["interfaces"][5]["controller"]["stalled"]
        rendered = repr(result)
        assert "NI 5" in rendered and "stalled" in rendered


class TestDumps:
    def test_dump_is_json_able_and_renders(self):
        import json

        e = busy_engine(faults=(
            FaultSpec("consumer-stall", target=5, start=0, duration=4000),))
        e.run(1200)
        dump = capture_dump(e, reason="probe")
        json.dumps(dump)  # plain data only: pickles across worker pools
        text = format_dump(dump)
        assert "probe" in text and "conservation:" in text
        assert "active fault: consumer-stall@5" in text
        assert "token:" in text  # PR section present

    def test_format_dump_renders_pr_token_state(self):
        e = busy_engine()
        token = e.scheme.controller.token
        dump = capture_dump(e, reason="probe")
        assert dump["token"]["state"] == token.state
        assert dump["token"]["pos"] == token.pos
        assert dump["token"]["captures"] == token.captures
        text = format_dump(dump)
        assert f"token: {token.state} at" in text
        assert f"captures={token.captures}" in text
        assert f"regen={token.regenerations}" in text

    def test_untraced_dump_has_no_episodes(self):
        e = busy_engine()
        dump = capture_dump(e, reason="probe")
        assert "episodes" not in dump
        assert "recovery episodes" not in format_dump(dump)

    def test_traced_dump_carries_episode_timeline(self):
        from repro.telemetry import Tracer

        e = busy_engine(load=0.018)  # heavy: PR rescues fire
        e.attach_tracer(Tracer())
        e.run(2400)
        dump = capture_dump(e, reason="probe")
        assert dump["episodes"], "heavy PAT271 run must have recovered"
        text = format_dump(dump)
        assert f"recovery episodes: {len(dump['episodes'])}" in text
        last = dump["episodes"][-1]
        assert f"ep {last['index']}: form={last['formation_cycle']}" in text
        import json

        json.dumps(dump)  # episodes keep the dump JSON-able

    def test_checker_interval_wiring(self):
        e = busy_engine(invariants_every=250)
        assert e.invariants is not None
        e.run(1000)
        assert e.invariants.checks_run >= 4

    def test_no_config_means_no_checker(self):
        e = Engine(SimConfig(dims=(4, 4), load=0.004))
        assert e.invariants is None and e.faults is None
