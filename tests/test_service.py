"""Campaign service tests: scenarios, SSE, jobs, HTTP API, shutdown.

The slow-client/backpressure and framing tests run at the broker level
(deterministic, no sockets); the API round-trip tests run a real
``CampaignServer`` on an ephemeral port with the blocking client in a
thread, exactly as the CLI uses it.
"""

import asyncio
import json
import threading

import pytest

from repro.experiments.common import Scale
from repro.farm.plan import CampaignSpec
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import CampaignServer
from repro.service.jobs import JobManager, job_id_for
from repro.service.scenarios import (
    SCENARIOS,
    build_campaign,
    describe_scenarios,
    get_scenario,
    scenario_names,
)
from repro.service.sse import EventBroker, format_sse, parse_sse
from repro.sim.parallel import run_points
from repro.sim.sweep import run_point
from repro.util.errors import ConfigurationError

#: tiny windows keep every service test interactive-fast while still
#: simulating real traffic (deliveries > 0 at these loads).
TINY = Scale("tiny", warmup=100, measure=200, sweep_points=2,
             trace_duration=1000)


def tiny_campaign(load: float = 0.008, seed: int = 3,
                  points: int = 2) -> CampaignSpec:
    from repro.config import SimConfig

    configs = tuple(
        SimConfig(dims=(4, 4), scheme="PR", pattern="PAT271", num_vcs=4,
                  load=load + 0.002 * i, seed=seed)
        for i in range(points)
    )
    return CampaignSpec(configs=configs, warmup=TINY.warmup,
                        measure=TINY.measure, name="tiny")


class TestScenarioRegistry:
    def test_every_name_resolves(self):
        for name in scenario_names():
            scenario = get_scenario(name)
            assert scenario.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scenario("no-such-scenario")

    def test_expected_categories_present(self):
        categories = {s.category for s in SCENARIOS.values()}
        assert {"synthetic", "splash", "adversarial", "faults",
                "cdg"} <= categories

    def test_every_scenario_builds_nonempty_campaign(self):
        for name in scenario_names():
            spec = build_campaign(name, TINY)
            assert len(spec.configs) > 0, name
            assert spec.warmup == TINY.warmup
            assert spec.name == f"{name}@tiny"

    @pytest.mark.parametrize("name", scenario_names())
    def test_first_point_of_each_scenario_runs(self, name):
        spec = build_campaign(name, TINY)
        result = run_point(spec.configs[0], spec.warmup, spec.measure)
        assert result.cycles == TINY.measure

    def test_describe_is_json_roundtrippable(self):
        listing = describe_scenarios()
        assert json.loads(json.dumps(listing)) == listing
        assert {entry["name"] for entry in listing} == set(scenario_names())

    def test_campaign_spec_roundtrips_through_json(self):
        for name in scenario_names():
            spec = build_campaign(name, TINY)
            clone = CampaignSpec.from_dict(
                json.loads(json.dumps(spec.to_dict()))
            )
            assert clone.point_keys() == spec.point_keys()

    def test_seed_and_window_overrides(self):
        spec = build_campaign("baseline-pr", TINY, seed=99, warmup=50,
                              measure=75)
        assert all(c.seed == 99 for c in spec.configs)
        assert (spec.warmup, spec.measure) == (50, 75)

    def test_same_inputs_same_job_id(self):
        a = build_campaign("baseline-pr", TINY, seed=7)
        b = build_campaign("baseline-pr", TINY, seed=7)
        c = build_campaign("baseline-pr", TINY, seed=8)
        assert job_id_for(a) == job_id_for(b)
        assert job_id_for(a) != job_id_for(c)


class TestSseFraming:
    def test_roundtrip_single_event(self):
        wire = format_sse("progress", {"done": 3}, event_id=7)
        [(event, data, event_id)] = parse_sse(wire.decode().splitlines())
        assert event == "progress"
        assert json.loads(data) == {"done": 3}
        assert event_id == 7

    def test_multiline_data_split_and_rejoined(self):
        wire = format_sse("log", "line one\nline two")
        assert wire.count(b"data:") == 2
        [(_, data, _)] = parse_sse(wire.decode().splitlines())
        assert data == "line one\nline two"

    def test_comments_ignored_and_frames_delimited(self):
        stream = (
            b": keepalive\n\n" + format_sse("a", "1", 1)
            + format_sse("b", "2", 2)
        )
        events = list(parse_sse(stream.decode().splitlines()))
        assert [(e, d) for e, d, _ in events] == [("a", "1"), ("b", "2")]

    def test_parses_byte_lines(self):
        wire = format_sse("x", {"k": "v"})
        events = list(parse_sse(wire.splitlines()))
        assert events[0][0] == "x"


class TestBrokerBackpressure:
    def test_fanout_and_replay(self):
        broker = EventBroker()
        broker.publish("t", "early", {"n": 1})
        sub = broker.subscribe("t")

        async def drain_one():
            return await sub.get()

        _, event, data = asyncio.run(drain_one())
        assert (event, data) == ("early", {"n": 1})

    def test_slow_client_sees_gap_marker_not_stall(self):
        """A lagging subscriber loses oldest events and is told so."""
        broker = EventBroker(queue_size=4)
        sub = broker.subscribe("t")
        for n in range(10):  # 6 events overflow the bound of 4
            broker.publish("t", "tick", {"n": n})

        async def drain():
            seen = []
            while True:
                try:
                    seen.append(await asyncio.wait_for(sub.get(), 0.2))
                except (StopAsyncIteration, asyncio.TimeoutError):
                    return seen

        seen = asyncio.run(drain())
        events = [e for _, e, _ in seen]
        assert events[0] == "dropped"
        assert seen[0][2] == {"dropped": 6, "total": 6}
        # The bounded tail survived: the newest 4 ticks, in order.
        assert [d["n"] for _, e, d in seen if e == "tick"] == [6, 7, 8, 9]

    def test_fast_subscriber_unaffected_by_slow_one(self):
        broker = EventBroker(queue_size=2)
        slow = broker.subscribe("t")
        fast = broker.subscribe("t", queue_size=100)
        for n in range(50):
            broker.publish("t", "tick", {"n": n})

        async def drain(sub):
            out = []
            while True:
                try:
                    out.append(await asyncio.wait_for(sub.get(), 0.1))
                except (StopAsyncIteration, asyncio.TimeoutError):
                    return out

        fast_seen = asyncio.run(drain(fast))
        assert len([1 for _, e, _ in fast_seen if e == "tick"]) == 50
        assert slow.dropped == 48

    def test_close_topic_ends_streams(self):
        broker = EventBroker()
        sub = broker.subscribe("t")
        broker.publish("t", "only", {})
        broker.close_topic("t")

        async def drain_all():
            return [item async for item in sub]

        items = asyncio.run(drain_all())
        assert [e for _, e, _ in items] == ["only"]


class TestJobManager:
    def run_manager(self, tmp_path, coro_fn, **kwargs):
        async def body():
            manager = JobManager(
                cache_dir=tmp_path / "cache", jobs_dir=tmp_path / "jobs",
                sample_every=50, poll_interval=0.005, **kwargs,
            )
            await manager.start()
            try:
                return await coro_fn(manager)
            finally:
                await manager.shutdown()

        return asyncio.run(body())

    async def _wait_done(self, manager, job, timeout=120.0):
        deadline = asyncio.get_event_loop().time() + timeout
        while job.state not in ("done", "failed", "cancelled"):
            assert asyncio.get_event_loop().time() < deadline
            await asyncio.sleep(0.02)
        return job

    def test_execution_bit_identical_to_run_points(self, tmp_path):
        spec = tiny_campaign()

        async def body(manager):
            job, created = manager.submit(spec)
            assert created and job.state in ("queued", "running")
            await self._wait_done(manager, job)
            assert job.state == "done"
            return job.results

        service_results = self.run_manager(tmp_path, body)
        direct = run_points(list(spec.configs), spec.warmup, spec.measure)
        assert service_results == direct

    def test_resubmission_is_idempotent(self, tmp_path):
        spec = tiny_campaign()

        async def body(manager):
            job1, created1 = manager.submit(spec)
            job2, created2 = manager.submit(spec)
            assert job1.id == job2.id and job1 is job2
            assert created1 and not created2
            await self._wait_done(manager, job1)
            # Resubmitting after completion also reuses the record.
            job3, created3 = manager.submit(spec)
            assert job3 is job1 and not created3

        self.run_manager(tmp_path, body)

    def test_warm_cache_completes_without_executing(self, tmp_path):
        spec = tiny_campaign()

        async def body(manager):
            job, _ = manager.submit(spec)
            await self._wait_done(manager, job)
            # Same campaign under a fresh id: drop the record so the
            # submission takes the dedup path, not the idempotency path.
            del manager.jobs[job.id]
            again, created = manager.submit(spec)
            assert created
            assert again.state == "done"  # instantly, from the cache
            assert again.cached_points == list(range(len(spec.configs)))
            assert again.computed == 0
            assert again.to_dict()["cached"] == len(spec.configs)
            return job.results, again.results

        first, second = self.run_manager(tmp_path, body)
        assert first == second

    def test_priority_orders_queued_jobs(self, tmp_path):
        low = tiny_campaign(seed=5)
        high = tiny_campaign(seed=6)

        async def body(manager):
            # Stall dispatch until both are queued: submit while the
            # loop is busy with a first job.
            first, _ = manager.submit(tiny_campaign(seed=7), priority=9)
            j_low, _ = manager.submit(low, priority=1)
            j_high, _ = manager.submit(high, priority=8)
            await self._wait_done(manager, j_low)
            await self._wait_done(manager, j_high)
            assert j_high.finished <= j_low.finished

        self.run_manager(tmp_path, body)

    def test_progress_and_samples_streamed(self, tmp_path):
        spec = tiny_campaign(points=1)

        async def body(manager):
            job, _ = manager.submit(spec)
            sub = manager.broker.subscribe(job.id)
            await self._wait_done(manager, job)
            return [(e, d) async for _, e, d in sub]

        events = self.run_manager(tmp_path, body)
        kinds = [e for e, _ in events]
        assert "status" in kinds and "done" in kinds
        progress = [d for e, d in events if e == "progress"]
        assert progress and progress[-1]["done"] == 1
        samples = [d for e, d in events if e == "sample"]
        assert samples, "traced execution must stream time series"
        assert all("cycle" in s and "live_messages" in s for s in samples)

    def test_perfetto_trace_written_and_valid(self, tmp_path):
        spec = tiny_campaign(points=2)

        async def body(manager):
            job, _ = manager.submit(spec)
            await self._wait_done(manager, job)
            return job

        job = self.run_manager(tmp_path, body)
        assert job.trace_path is not None
        trace = json.loads(
            (tmp_path / "jobs" / f"job-{job.id}.trace.json").read_text()
        )
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert trace["otherData"]["points"] == 2
        pids = {e["pid"] // 1000 for e in trace["traceEvents"]}
        assert pids == {1, 2}  # one pid block per executed point

    def test_failed_point_fails_job_with_error(self, tmp_path):
        from repro.config import SimConfig

        bad = CampaignSpec(
            configs=(SimConfig(dims=(4, 4), scheme="PR", pattern="PAT271",
                               num_vcs=4, load=0.004, watchdog_timeout=1),),
            warmup=100, measure=200, name="doomed",
        )

        async def body(manager):
            job, _ = manager.submit(bad)
            await self._wait_done(manager, job)
            return job

        job = self.run_manager(tmp_path, body)
        assert job.state == "failed"
        assert job.error

    def test_shutdown_persists_queue_and_restart_resumes(self, tmp_path):
        first = tiny_campaign(seed=11)
        second = tiny_campaign(seed=12)

        async def body1():
            manager = JobManager(cache_dir=tmp_path / "cache",
                                 jobs_dir=tmp_path / "jobs",
                                 poll_interval=0.005)
            await manager.start()
            running, _ = manager.submit(first, priority=5)
            queued, _ = manager.submit(second, priority=1,
                                       scenario="tiny-named")
            while running.state == "queued":  # let dispatch pick it up
                await asyncio.sleep(0.01)
            await manager.shutdown(drain=True)
            # Drain finished the in-flight job; the queued one was
            # cancelled in memory but persisted for the next start.
            assert running.state == "done"
            assert queued.state == "cancelled"
            return running.id, queued.id

        ids = asyncio.run(body1())
        queue = json.loads((tmp_path / "jobs" / "queue.json").read_text())
        entries = queue["queued"]
        assert [e["scenario"] for e in entries] == ["tiny-named"]
        assert entries[0]["priority"] == 1

        async def body2():
            manager = JobManager(cache_dir=tmp_path / "cache",
                                 jobs_dir=tmp_path / "jobs",
                                 poll_interval=0.005)
            await manager.start()
            job = manager.jobs[ids[1]]
            await self._wait_done(manager, job)
            await manager.shutdown()
            return manager

        manager2 = asyncio.run(body2())
        # Restart rehydrated the finished record AND resumed the queue.
        assert manager2.jobs[ids[0]].state == "done"
        assert manager2.jobs[ids[1]].state == "done"
        assert manager2.jobs[ids[1]].scenario == "tiny-named"


class ServerFixture:
    """A real CampaignServer on an ephemeral port, driven from a thread."""

    def __init__(self, tmp_path):
        self.tmp_path = tmp_path

    def run(self, client_fn, **manager_kwargs):
        out, errs = {}, []

        async def main():
            manager = JobManager(
                cache_dir=self.tmp_path / "cache",
                jobs_dir=self.tmp_path / "jobs",
                sample_every=50, poll_interval=0.005, **manager_kwargs,
            )
            server = CampaignServer(manager, port=0)
            await server.start()

            def body():
                try:
                    client = ServiceClient(port=server.port, timeout=120)
                    out["result"] = client_fn(client)
                except BaseException as exc:  # surfaced after join
                    errs.append(exc)
                finally:
                    try:
                        ServiceClient(port=server.port).shutdown()
                    except Exception:
                        pass

            thread = threading.Thread(target=body)
            thread.start()
            try:
                await asyncio.wait_for(server.serve_forever(), timeout=180)
            finally:
                thread.join(timeout=30)

        asyncio.run(main())
        if errs:
            raise errs[0]
        return out["result"]


class TestHttpApi:
    def test_json_api_roundtrip(self, tmp_path):
        """submit -> watch stream -> results -> trace, over real HTTP."""
        spec = tiny_campaign(points=2)

        def body(client):
            health = client.health()
            assert health["ok"] is True
            names = {s["name"] for s in client.scenarios()}
            assert names == set(scenario_names())

            reply = client.submit(spec=spec.to_dict(), priority=4)
            assert reply["created"] is True
            jid = reply["job"]["id"]
            assert jid == job_id_for(spec)

            events = list(client.stream_events(jid))
            kinds = [e for e, _, _ in events]
            assert "progress" in kinds and "done" in kinds
            assert any(e == "sample" for e in kinds)

            job = client.job(jid, results=True)
            assert job["state"] == "done"
            assert len(job["results"]) == 2
            assert all(r is not None for r in job["results"])

            trace = client.trace(jid)
            assert trace["otherData"]["points"] == 2

            again = client.submit(spec=spec.to_dict())
            assert again["created"] is False
            assert [j["id"] for j in client.jobs()] == [jid]
            return job["results"]

        results = ServerFixture(tmp_path).run(body)
        direct = run_points(list(spec.configs), spec.warmup, spec.measure)
        assert [r["load"] for r in results] == [d.load for d in direct]
        assert [r["throughput_fpc"] for r in results] == [
            d.throughput_fpc for d in direct
        ]

    def test_scenario_submission_by_name(self, tmp_path):
        def body(client):
            reply = client.submit("cdg-torus4x4-tfar", scale="smoke",
                                  warmup=100, measure=200, priority=1)
            jid = reply["job"]["id"]
            final = client.wait(jid)
            assert final["state"] == "done"
            assert final["scenario"] == "cdg-torus4x4-tfar"
            return final

        final = ServerFixture(tmp_path).run(body)
        assert final["total"] == 1

    def test_errors_are_json_with_status(self, tmp_path):
        def body(client):
            with pytest.raises(ServiceError) as nojob:
                client.job("feedfacecafe")
            with pytest.raises(ServiceError) as noscen:
                client.submit("not-a-scenario")
            with pytest.raises(ServiceError) as nothing:
                client._request("GET", "/api/nowhere")
            return nojob.value.status, noscen.value.status, \
                nothing.value.status

        s1, s2, s3 = ServerFixture(tmp_path).run(body)
        assert (s1, s2, s3) == (404, 400, 404)

    def test_trace_404_before_any_execution(self, tmp_path):
        spec = tiny_campaign(points=1)

        def body(client):
            reply = client.submit(spec=spec.to_dict())
            jid = reply["job"]["id"]
            client.wait(jid)
            # Resubmit through a cold manager path is covered in the
            # manager tests; here: unknown job id trace is a 404.
            with pytest.raises(ServiceError) as err:
                client.trace("0123456789ab")
            return err.value.status

        assert ServerFixture(tmp_path).run(body) == 404
