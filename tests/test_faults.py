"""Fault injection: spec parsing, injector mechanics, recovery proofs.

The recovery classes make hard promises — SA avoids, DR deflects at the
cost of one BRP per recovered transaction, PR recovers without ever
killing a message — and these tests prove each promise *under injected
faults*, not just under natural congestion.
"""

import pytest

from repro.config import SimConfig
from repro.core.token import Token
from repro.faults import EVENT_KINDS, FAULT_KINDS, FaultSpec, parse_fault
from repro.sim.engine import Engine
from repro.sim.invariants import capture_dump, conservation_delta
from repro.util.errors import ConfigurationError, InvariantViolation

SEED = 11
#: mid-fabric consumer stall used by most scenarios: long enough that
#: queues back up into the network, short enough that the run drains.
STALL = FaultSpec("consumer-stall", target=5, start=600, duration=2000)


def faulted_engine(scheme="PR", faults=(STALL,), **kwargs):
    defaults = dict(
        dims=(4, 4), scheme=scheme, pattern="PAT271", num_vcs=4,
        load=0.012, seed=SEED, faults=tuple(faults), watchdog_timeout=8000,
    )
    defaults.update(kwargs)
    return Engine(SimConfig(**defaults))


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("gamma-ray")

    def test_stateful_kind_needs_target(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("link-stall")

    def test_event_kinds_need_no_target(self):
        for kind in EVENT_KINDS:
            assert FaultSpec(kind, start=100).target == -1

    def test_negative_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("link-stall", target=0, start=-1)
        with pytest.raises(ConfigurationError):
            FaultSpec("link-stall", target=0, duration=-1)

    def test_probability_range(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("link-stall", target=0, probability=1.5)
        with pytest.raises(ConfigurationError):
            # probabilistic episodes must end, or the first one is forever
            FaultSpec("link-stall", target=0, probability=0.1)
        FaultSpec("link-stall", target=0, probability=0.1, duration=40)

    def test_describe(self):
        assert STALL.describe() == "consumer-stall@5[start=600,dur=2000]"
        assert FaultSpec("token-loss", start=9).describe() == (
            "token-loss[start=9,event]"
        )
        spec = FaultSpec("link-stall", target=3, probability=0.001, duration=40)
        assert spec.describe() == "link-stall@3[p=0.001,dur=40]"

    def test_parse_round_trip(self):
        spec = parse_fault("consumer-stall:target=5,start=600,duration=2000")
        assert spec == STALL
        assert parse_fault("token-loss") == FaultSpec("token-loss")
        assert parse_fault("link-stall:target=3,p=0.001,duration=40") == (
            FaultSpec("link-stall", target=3, probability=0.001, duration=40)
        )
        # "prob" is accepted as an alias too
        assert parse_fault("link-stall:target=1,prob=0.5,duration=2") == (
            FaultSpec("link-stall", target=1, probability=0.5, duration=2)
        )

    @pytest.mark.parametrize("text", [
        "consumer-stall:target",          # no '='
        "consumer-stall:target=x",        # bad int
        "link-stall:p=zero,duration=1,target=0",  # bad float
        "link-stall:colour=red,target=0",  # unknown key
        "warp-core-breach",               # unknown kind
    ])
    def test_parse_rejects(self, text):
        with pytest.raises(ConfigurationError):
            parse_fault(text)

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            spec = (FaultSpec(kind) if kind in EVENT_KINDS
                    else FaultSpec(kind, target=0))
            assert kind in spec.describe()


class TestInjectorMechanics:
    def test_out_of_range_target_rejected_at_build(self):
        for kind, target in (("link-stall", 10_000), ("router-freeze", 99),
                             ("consumer-stall", 16), ("eject-stall", 16)):
            with pytest.raises(ConfigurationError):
                faulted_engine(faults=(FaultSpec(kind, target=target),))

    def test_token_faults_require_pr(self):
        with pytest.raises(ConfigurationError):
            faulted_engine(scheme="DR", faults=(FaultSpec("token-loss"),))

    def test_stall_applies_and_revokes_on_schedule(self):
        spec = FaultSpec("link-stall", target=3, start=50, duration=100)
        e = faulted_engine(load=0.0, faults=(spec,), watchdog_timeout=0)
        e.run(49)
        assert 3 not in e.fabric.stalled_links
        e.run(1)  # cycle 50: applied
        assert 3 in e.fabric.stalled_links
        assert e.faults.active_descriptions() == [spec.describe()]
        e.run(100)  # cycle 150: revoked
        assert 3 not in e.fabric.stalled_links
        assert e.faults.active_descriptions() == []
        assert e.faults.activation_counts() == {spec.describe(): 1}

    def test_router_freeze_stalls_outgoing_links(self):
        e = faulted_engine(
            load=0.0, watchdog_timeout=0,
            faults=(FaultSpec("router-freeze", target=5, start=10,
                              duration=20),),
        )
        out_links = {link.lid for link in e.topology.links if link.src == 5}
        assert out_links
        e.run(11)
        assert 5 in e.fabric.stalled_routers
        assert out_links <= e.fabric.stalled_links
        e.run(30)
        assert not e.fabric.stalled_routers and not e.fabric.stalled_links

    def test_consumer_stall_flag(self):
        e = faulted_engine(load=0.0, watchdog_timeout=0, faults=(
            FaultSpec("consumer-stall", target=5, start=10, duration=20),))
        e.run(11)
        assert e.interfaces[5].controller.stalled
        e.run(30)
        assert not e.interfaces[5].controller.stalled

    def test_probabilistic_schedule_is_deterministic(self):
        spec = FaultSpec("eject-stall", target=5, probability=0.01,
                         duration=25, start=100)
        runs = []
        for _ in range(2):
            e = faulted_engine(load=0.0, watchdog_timeout=0, faults=(spec,))
            e.run(3000)
            runs.append(e.faults.activation_counts())
        assert runs[0] == runs[1]
        assert runs[0][spec.describe()] > 1  # re-activates between episodes


class TestDeterminism:
    """Same config, two runs: identical dumps, identical counters."""

    def _one_run(self):
        e = faulted_engine()
        e.run(4000)
        ctl = e.scheme.controller
        return capture_dump(e, reason="determinism probe"), {
            "delivered": e.stats.total.messages_delivered,
            "created": e.stats.messages_created,
            "rescues": ctl.rescues,
            "token_laps": ctl.token.laps,
            "first_deadlock": e.stats.first_deadlock_cycle,
        }

    def test_faulted_runs_are_reproducible(self):
        dump_a, counters_a = self._one_run()
        dump_b, counters_b = self._one_run()
        assert counters_a == counters_b
        assert dump_a == dump_b  # uid-free by construction
        assert counters_a["rescues"] > 0  # the fault actually bit


class TestSchemeRecovery:
    """The headline guarantees, each proven under an injected fault."""

    def test_sa_never_deadlocks_under_consumer_stall(self):
        e = faulted_engine(scheme="SA", pattern="PAT721", num_vcs=8,
                           cwg_interval=50, invariants_every=250)
        e.run(4000)
        assert e.quiesce(100_000)
        assert e.cwg_knots_seen == 0          # avoidance truly held
        assert e.scheme.deadlocks_detected == 0
        assert conservation_delta(e) == 0
        assert e.invariants.checks_run > 0    # the claim was audited

    def test_dr_deflects_with_one_brp_per_recovery(self):
        # max_outstanding below the reply-queue capacity, as on the
        # Origin2000: admission preallocation cannot starve service-time
        # reservations, so the detector's in+out-full condition is
        # reachable and deflection unsticks it.
        e = faulted_engine(scheme="DR", max_outstanding=12,
                           invariants_every=250)
        e.run(4000)
        ctl = e.scheme.controller
        assert ctl.deflections > 0
        assert e.stats.first_deadlock_cycle >= STALL.start
        assert e.quiesce(100_000)
        assert conservation_delta(e) == 0
        # Exactly one extra message (the BRP) per recovered transaction.
        txns = e.traffic.transactions
        assert sum(t.deflections for t in txns) == ctl.deflections
        for txn in txns:
            assert txn.messages_used == txn.chain_length + txn.deflections

    def test_pr_recovers_without_killing_messages(self):
        e = faulted_engine(invariants_every=250)
        e.run(4000)
        ctl = e.scheme.controller
        assert ctl.rescues > 0
        assert e.quiesce(100_000)
        assert conservation_delta(e) == 0     # the no-kill guarantee
        for txn in e.traffic.transactions:
            assert txn.messages_used == txn.chain_length  # no extras either

    def test_pr_regenerates_a_lost_token(self):
        e = faulted_engine(faults=(FaultSpec("token-loss", start=600),))
        e.run(4000)
        ctl = e.scheme.controller
        assert ctl.token_regenerations >= 1
        assert not ctl.token.lost              # back in circulation
        assert ctl.token.state in (Token.CIRCULATING, Token.HELD)
        assert e.quiesce(100_000)
        assert conservation_delta(e) == 0

    def test_token_duplication_trips_the_invariant(self):
        e = faulted_engine(faults=(FaultSpec("token-dup", start=600),),
                           invariants_every=50)
        with pytest.raises(InvariantViolation) as excinfo:
            e.run(1000)
        assert "uniqueness" in str(excinfo.value)
        assert excinfo.value.dump["token"]["duplicates"] == 1
