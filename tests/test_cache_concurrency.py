"""The result cache as a coordination substrate.

The farm leans on two properties of ``ResultCache``: concurrent puts of
the same key settle on one complete entry (last write wins, no torn
reads), and a corrupt or truncated entry reads as a miss and is repaired
by the next put.  These tests hammer both from multiple threads — the
same interleavings a speculative twin or a resumed manager produces.
"""

import json
import threading
from dataclasses import replace

from repro.config import SimConfig
from repro.sim.parallel import ResultCache, point_key
from repro.sim.sweep import run_point

WARMUP = 100
MEASURE = 200


def _fixture(tmp_path):
    config = SimConfig(dims=(4, 4), load=0.004)
    cache = ResultCache(tmp_path / "cache")
    key = point_key(config, WARMUP, MEASURE)
    result = run_point(config, WARMUP, MEASURE)
    return config, cache, key, result


class TestConcurrentPuts:
    def test_racing_identical_puts_converge(self, tmp_path):
        """The farm's first-completion-wins rule: twins write identical
        content, so whichever rename lands last changes nothing."""
        config, cache, key, result = _fixture(tmp_path)
        errors = []

        def writer():
            try:
                for _ in range(50):
                    cache.put(key, config, WARMUP, MEASURE, result)
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.get(key) == result

    def test_no_torn_reads_under_divergent_puts(self, tmp_path):
        """Readers racing two writers of *different* payloads must see
        one of the two complete entries, never an interleaving."""
        config, cache, key, result = _fixture(tmp_path)
        other = replace(result, messages_delivered=result.messages_delivered + 1)
        cache.put(key, config, WARMUP, MEASURE, result)
        stop = threading.Event()
        bad = []

        def writer(payload):
            while not stop.is_set():
                cache.put(key, config, WARMUP, MEASURE, payload)

        def reader():
            while not stop.is_set():
                seen = cache.get(key)
                if seen not in (result, other):
                    bad.append(seen)

        threads = [
            threading.Thread(target=writer, args=(result,)),
            threading.Thread(target=writer, args=(other,)),
            threading.Thread(target=reader),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        timer = threading.Timer(1.0, stop.set)
        timer.start()
        for t in threads:
            t.join()
        timer.cancel()
        assert bad == [], f"torn or invalid reads: {bad[:3]}"
        assert cache.get(key) in (result, other)

    def test_no_stray_temp_files_after_racing_puts(self, tmp_path):
        config, cache, key, result = _fixture(tmp_path)
        threads = [
            threading.Thread(
                target=lambda: [cache.put(key, config, WARMUP, MEASURE,
                                          result) for _ in range(20)]
            )
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        leftovers = list(cache.root.glob("*.tmp")) + list(
            cache.root.glob(".*.tmp")
        )
        assert leftovers == []


class TestCorruptEntries:
    def test_truncated_entry_is_a_miss(self, tmp_path):
        config, cache, key, result = _fixture(tmp_path)
        cache.put(key, config, WARMUP, MEASURE, result)
        blob = cache.path_for(key).read_text("utf-8")
        cache.path_for(key).write_text(blob[: len(blob) // 2], "utf-8")
        assert cache.get(key) is None

    def test_garbage_entry_is_a_miss(self, tmp_path):
        config, cache, key, result = _fixture(tmp_path)
        cache.put(key, config, WARMUP, MEASURE, result)
        cache.path_for(key).write_text('{"result": "not a dict"}', "utf-8")
        assert cache.get(key) is None

    def test_next_put_repairs_a_corrupt_entry(self, tmp_path):
        config, cache, key, result = _fixture(tmp_path)
        cache.put(key, config, WARMUP, MEASURE, result)
        cache.path_for(key).write_text("{torn", "utf-8")
        assert cache.get(key) is None
        cache.put(key, config, WARMUP, MEASURE, result)
        assert cache.get(key) == result
        payload = json.loads(cache.path_for(key).read_text("utf-8"))
        assert payload["key"] == key
