"""Tests for the full-map directory MSI coherence engine."""

import pytest

from repro.protocol.coherence import (
    DIRECT,
    FORWARDING,
    INVALIDATION,
    DirectoryMSI,
)
from repro.protocol.message import count_messages


@pytest.fixture
def d():
    return DirectoryMSI(num_nodes=8)


BLOCK = 3  # home = 3


class TestClassification:
    def test_cold_read_is_direct(self, d):
        r = d.access(0, "R", BLOCK, 0)
        assert r.response_class == DIRECT
        assert r.transaction.chain_length == 2

    def test_read_hit_is_local(self, d):
        d.access(0, "R", BLOCK, 0)
        assert d.access(0, "R", BLOCK, 1) is None
        assert d.local_hits == 1

    def test_write_hit_after_write(self, d):
        d.access(0, "W", BLOCK, 0)
        assert d.access(0, "W", BLOCK, 1) is None

    def test_read_of_remote_modified_is_forwarding(self, d):
        d.access(0, "W", BLOCK, 0)
        r = d.access(1, "R", BLOCK, 1)
        assert r.response_class == FORWARDING
        assert r.transaction.chain_length == 4

    def test_write_to_shared_is_invalidation(self, d):
        d.access(0, "R", BLOCK, 0)
        d.access(1, "R", BLOCK, 1)
        r = d.access(2, "W", BLOCK, 2)
        assert r.response_class == INVALIDATION

    def test_write_to_remote_modified_is_forwarding(self, d):
        d.access(0, "W", BLOCK, 0)
        r = d.access(1, "W", BLOCK, 1)
        assert r.response_class == FORWARDING

    def test_upgrade_sole_sharer_is_direct(self, d):
        d.access(0, "R", BLOCK, 0)
        r = d.access(0, "W", BLOCK, 1)
        assert r.response_class == DIRECT

    def test_home_owned_modified_read_is_direct(self, d):
        d.access(3, "W", BLOCK, 0)  # home dirties its own block: local
        assert d.requests == 0
        r = d.access(1, "R", BLOCK, 1)
        assert r.response_class == DIRECT


class TestTransactionStructure:
    def test_direct_reply_messages(self, d):
        r = d.access(0, "R", BLOCK, 0)
        root = r.roots[0]
        assert root.mtype.name == "RQ" and root.dst == 3
        assert 1 + count_messages(root.continuation) == 2
        assert r.transaction.outstanding == 2

    def test_forwarding_chain_via_home(self, d):
        d.access(0, "W", BLOCK, 0)
        r = d.access(1, "R", BLOCK, 1)
        root = r.roots[0]
        (frq,) = root.continuation
        (frp,) = frq.continuation
        (rp,) = frp.continuation
        assert frq.mtype.name == "FRQ" and frq.dst == 0  # the owner
        assert frp.mtype.name == "FRP" and frp.dst == 3  # back to home
        assert rp.mtype.name == "RP" and rp.dst == 1  # to the requester
        assert r.transaction.outstanding == 4

    def test_multi_sharer_invalidation_counts(self, d):
        for cpu in (0, 1, 2):
            d.access(cpu, "R", BLOCK, cpu)
        r = d.access(4, "W", BLOCK, 10)
        assert r.response_class == INVALIDATION
        # RQ + 3 FRQ + 3 FRP + RP = 8 messages.
        assert r.transaction.outstanding == 8
        branches = r.roots[0].continuation
        assert len(branches) == 3
        # Exactly one acknowledgement branch carries the final reply.
        with_reply = [b for b in branches if b.continuation[0].continuation]
        assert len(with_reply) == 1

    def test_sharer_state_after_invalidation(self, d):
        d.access(0, "R", BLOCK, 0)
        d.access(1, "R", BLOCK, 1)
        d.access(2, "W", BLOCK, 2)
        e = d.entry(BLOCK)
        assert e.state == "M" and e.owner == 2
        assert (0, BLOCK) not in d.caches
        assert (1, BLOCK) not in d.caches

    def test_home_requester_invalidation_has_no_rq(self, d):
        d.access(0, "R", BLOCK, 0)
        r = d.access(3, "W", BLOCK, 1)  # home writes: FRQs from home
        assert r.response_class == INVALIDATION
        assert all(m.mtype.name == "FRQ" for m in r.roots)
        assert r.transaction.outstanding == 2  # FRQ + FRP

    def test_home_requester_forwarding(self, d):
        d.access(0, "W", BLOCK, 0)
        r = d.access(3, "R", BLOCK, 1)
        assert r.response_class == FORWARDING
        root = r.roots[0]
        assert root.src == 3 and root.dst == 0
        assert r.transaction.outstanding == 2


class TestDistribution:
    def test_response_distribution_sums_to_one(self, d):
        d.access(0, "R", BLOCK, 0)
        d.access(1, "W", BLOCK, 1)
        dist = d.response_distribution()
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_empty_distribution(self, d):
        assert set(d.response_distribution().values()) == {0.0}
