"""The CI pipeline definition must stay valid and cover the right steps."""

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO = Path(__file__).resolve().parent.parent
WORKFLOW = REPO / ".github" / "workflows" / "ci.yml"
REQUIREMENTS = REPO / "requirements-ci.txt"


@pytest.fixture(scope="module")
def workflow():
    return yaml.safe_load(WORKFLOW.read_text("utf-8"))


def setup_python_steps(job):
    return [s for s in job["steps"] if "setup-python" in (s.get("uses") or "")]


class TestWorkflow:
    def test_parses_and_has_jobs(self, workflow):
        assert workflow["name"] == "CI"
        # YAML 1.1 reads the `on:` trigger key as boolean True.
        triggers = workflow.get("on", workflow.get(True))
        assert "pull_request" in triggers and "push" in triggers
        assert set(workflow["jobs"]) == {
            "lint", "typecheck", "test", "smoke-benchmark",
            "engine-benchmark", "engine-speedup", "fault-smoke",
            "backend-equivalence", "detection-smoke", "farm-smoke",
            "topology-smoke", "cdg-certify", "service-smoke",
        }

    def test_concurrency_cancels_superseded_runs(self, workflow):
        conc = workflow["concurrency"]
        assert conc["cancel-in-progress"] is True
        # Group must be per-ref so unrelated branches don't cancel each
        # other, only newer pushes to the same ref.
        assert "github.ref" in conc["group"]

    def test_every_job_caches_pip_on_the_pinned_requirements(self, workflow):
        for name, job in workflow["jobs"].items():
            steps = setup_python_steps(job)
            assert steps, f"{name}: no setup-python step"
            for step in steps:
                with_ = step["with"]
                assert with_.get("cache") == "pip", f"{name}: pip cache off"
                assert with_.get("cache-dependency-path") == "requirements-ci.txt", name
            runs = " ".join(s.get("run") or "" for s in job["steps"])
            assert "pip install -r requirements-ci.txt" in runs, name

    def test_requirements_file_is_fully_pinned(self):
        lines = [
            line.strip() for line in REQUIREMENTS.read_text("utf-8").splitlines()
            if line.strip() and not line.strip().startswith("#")
        ]
        assert lines, "requirements-ci.txt is empty"
        for line in lines:
            assert "==" in line, f"unpinned CI dependency: {line}"

    def test_python_matrix(self, workflow):
        matrix = workflow["jobs"]["test"]["strategy"]["matrix"]
        assert matrix["python-version"] == ["3.10", "3.11", "3.12"]

    def test_lint_runs_ruff(self, workflow):
        steps = workflow["jobs"]["lint"]["steps"]
        assert any("ruff check" in (s.get("run") or "") for s in steps)

    def test_typecheck_runs_mypy_on_package(self, workflow):
        steps = workflow["jobs"]["typecheck"]["steps"]
        runs = " ".join(s.get("run") or "" for s in steps)
        assert "mypy src/repro" in runs

    def test_test_job_runs_pytest_with_src_on_path(self, workflow):
        steps = workflow["jobs"]["test"]["steps"]
        run_step = next(
            s for s in steps if "python -m pytest" in (s.get("run") or "")
        )
        assert run_step["env"]["PYTHONPATH"] == "src"

    def test_smoke_job_exercises_runner_and_parallel_sweep(self, workflow):
        steps = workflow["jobs"]["smoke-benchmark"]["steps"]
        runs = " ".join(s.get("run") or "" for s in steps)
        assert "repro.experiments.runner smoke table1" in runs
        assert "--workers 4" in runs

    def test_fault_smoke_runs_campaign_and_faulted_cli(self, workflow):
        steps = workflow["jobs"]["fault-smoke"]["steps"]
        runs = " ".join(s.get("run") or "" for s in steps)
        assert "repro.experiments.runner smoke faults" in runs
        assert "--fault consumer-stall:" in runs
        assert "--watchdog" in runs and "--invariants-every" in runs

    def test_detection_smoke_runs_lab_and_cmh_cli(self, workflow):
        steps = workflow["jobs"]["detection-smoke"]["steps"]
        runs = " ".join(s.get("run") or "" for s in steps)
        # The lab's run() raises on any broken guarantee, so the
        # runner's exit code is the gate.
        assert "repro.experiments.runner smoke detection_lab" in runs
        # And one end-to-end CMH run through the CLI, with the CWG
        # ground-truth checker armed alongside the probes.
        assert "--detector cmh" in runs
        assert "--cwg-interval" in runs
        for step in steps:
            if step.get("run") and "repro" in step["run"]:
                assert step["env"]["PYTHONPATH"] == "src"

    def test_farm_smoke_runs_chaos_suite_and_cli_campaign(self, workflow):
        steps = workflow["jobs"]["farm-smoke"]["steps"]
        runs = " ".join(s.get("run") or "" for s in steps)
        # the robustness suite carries the bit-identical and quarantine
        # assertions; the CLI leg proves the operator path end to end
        assert "tests/test_farm.py" in runs
        assert "tests/test_cache_concurrency.py" in runs
        assert "farm plan" in runs and "farm run" in runs
        assert "--chaos crash:" in runs and "--chaos hang:" in runs
        assert "--hang-timeout" in runs
        assert "farm resume" in runs
        for step in steps:
            if step.get("run") and "repro" in step["run"]:
                assert step["env"]["PYTHONPATH"] == "src"

    def test_topology_smoke_runs_campaign_and_file_topology_cli(self, workflow):
        steps = workflow["jobs"]["topology-smoke"]["steps"]
        runs = " ".join(s.get("run") or "" for s in steps)
        # The campaign's run() raises on any broken guarantee (drain,
        # conservation, SA knot-freedom), so the runner exit code gates.
        assert "repro.experiments.runner smoke topologies" in runs
        # And one end-to-end run on a JSON-loaded irregular graph.
        assert "--topology file" in runs
        assert "--topology-file" in runs
        assert "--watchdog" in runs and "--invariants-every" in runs
        for step in steps:
            if step.get("run") and "repro" in step["run"]:
                assert step["env"]["PYTHONPATH"] == "src"

    def test_cdg_certify_gates_on_registry_and_uploads_witnesses(self, workflow):
        job = workflow["jobs"]["cdg-certify"]
        runs = " ".join(s.get("run") or "" for s in job["steps"])
        # No pair arguments: the whole built-in registry is audited, and
        # cdg-check exits 1 on a mismatch or un-annotated REFUTED pair.
        assert "repro.cli cdg-check" in runs
        assert "--json cdg_report.json" in runs
        upload = next(
            s for s in job["steps"] if "upload-artifact" in (s.get("uses") or "")
        )
        # Witness orderings / refutation cycles must survive a red run.
        assert upload["if"] == "always()"
        assert upload["with"]["path"] == "cdg_report.json"
        for step in job["steps"]:
            if step.get("run") and "repro" in step["run"]:
                assert step["env"]["PYTHONPATH"] == "src"

    def test_service_smoke_runs_suite_and_http_flow(self, workflow):
        job = workflow["jobs"]["service-smoke"]
        runs = " ".join(s.get("run") or "" for s in job["steps"])
        # The deterministic suite (framing, backpressure, job manager).
        assert "tests/test_service.py" in runs
        # And the operator path: a real serve process, a scenario
        # submitted over HTTP, SSE progress + samples asserted, the
        # Perfetto artifact shape-checked, and a clean drain (server
        # exit code 0).
        assert '"serve"' in runs
        assert "client.submit(" in runs
        assert "stream_events" in runs
        assert '"sample" in kinds' in runs and '"done" in kinds' in runs
        assert "client.trace(" in runs
        assert "client.shutdown()" in runs
        assert "srv.wait" in runs
        upload = next(
            s for s in job["steps"] if "upload-artifact" in (s.get("uses") or "")
        )
        assert upload["if"] == "always()"
        assert upload["with"]["path"] == "service_trace.json"
        for step in job["steps"]:
            if step.get("run") and "repro" in step["run"]:
                assert step["env"]["PYTHONPATH"] == "src"

    def test_backend_equivalence_runs_default_and_campaign_grid(self, workflow):
        steps = workflow["jobs"]["backend-equivalence"]["steps"]
        runs = [s.get("run") or "" for s in steps if s.get("run")]
        eq_runs = [r for r in runs if "tests/test_backend_equivalence.py" in r]
        # Both passes: the default ladder/property suite AND the full
        # seeded smoke campaign grid (pytest -m campaign, which is
        # deselected from the default suite by pyproject addopts).
        assert any("-m campaign" in r for r in eq_runs)
        assert any("-m campaign" not in r for r in eq_runs)
        for step in steps:
            if step.get("run") and "pytest" in step["run"]:
                assert step["env"]["PYTHONPATH"] == "src"

    def test_engine_benchmark_is_a_backend_matrix(self, workflow):
        job = workflow["jobs"]["engine-benchmark"]
        matrix = job["strategy"]["matrix"]
        assert matrix["backend"] == ["reference", "vector"]
        runs = " ".join(s.get("run") or "" for s in job["steps"])
        assert "benchmarks/report.py --smoke" in runs
        assert "--backend ${{ matrix.backend }}" in runs
        assert "--check BENCH_engine.json" in runs
        upload = next(
            s for s in job["steps"] if "upload-artifact" in (s.get("uses") or "")
        )
        assert upload["if"] == "always()"
        # Per-leg artifact names so the matrix legs don't collide.
        assert "${{ matrix.backend }}" in upload["with"]["name"]

    def test_engine_benchmark_has_trace_overhead_guard(self, workflow):
        steps = workflow["jobs"]["engine-benchmark"]["steps"]
        guard = next(
            s for s in steps
            if "--traced" in (s.get("run") or "")
        )
        # Disabled hooks must be free: 2% bound against the report the
        # previous step wrote on the same runner.
        assert "--tolerance 0.02" in guard["run"]
        assert "--check BENCH_engine.ci.json" in guard["run"]
        # Tracing is reference-only (the vector backend refuses a
        # tracer), so the guard must not run on the vector matrix leg.
        assert guard["if"] == "matrix.backend == 'reference'"

    def test_speedup_job_gates_the_vector_floor(self, workflow):
        job = workflow["jobs"]["engine-speedup"]
        runs = " ".join(s.get("run") or "" for s in job["steps"])
        assert "--backend both" in runs
        assert "--min-speedup" in runs
        upload = next(
            s for s in job["steps"] if "upload-artifact" in (s.get("uses") or "")
        )
        assert upload["if"] == "always()"
        assert "speedup" in upload["with"]["name"]

    def test_speedup_floor_has_margin_under_the_measured_baseline(self, workflow):
        """The CI floor must sit below the checked-in measured minimum.

        Otherwise ordinary runner noise fails the gate, and the gate gets
        deleted instead of trusted.  A floor above the baseline minimum
        would also mean the checked-in numbers no longer back the claim.
        """
        import json
        import re

        runs = " ".join(
            s.get("run") or ""
            for s in workflow["jobs"]["engine-speedup"]["steps"]
        )
        floor = float(re.search(r"--min-speedup\s+([\d.]+)", runs).group(1))
        baseline = json.loads((REPO / "BENCH_engine.json").read_text("utf-8"))
        measured_min = min(baseline["vector_speedup"].values())
        assert 1.0 < floor < measured_min

    def test_checked_in_baseline_covers_both_backends(self):
        import json

        baseline = json.loads((REPO / "BENCH_engine.json").read_text("utf-8"))
        results = baseline["cycles_per_second"]
        # Every tracked scenario must carry a vector twin so the
        # engine-benchmark vector leg has a baseline to gate against.
        plain = {name for name in results if "@" not in name and "+" not in name}
        for name in plain:
            assert f"{name}@vector" in results, name
        assert set(baseline["vector_speedup"]) == plain

    def test_gitignore_covers_generated_dirs(self):
        gitignore = (WORKFLOW.parents[2] / ".gitignore").read_text("utf-8")
        for entry in ("*.egg-info/", "__pycache__/", ".pytest_cache/",
                      ".hypothesis/", ".benchmarks/", ".repro_cache/",
                      "results/", "BENCH_engine.ci.json",
                      "BENCH_engine.speedup.json"):
            assert entry in gitignore
