"""The CI pipeline definition must stay valid and cover the right steps."""

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = Path(__file__).resolve().parent.parent / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def workflow():
    return yaml.safe_load(WORKFLOW.read_text("utf-8"))


class TestWorkflow:
    def test_parses_and_has_jobs(self, workflow):
        assert workflow["name"] == "CI"
        # YAML 1.1 reads the `on:` trigger key as boolean True.
        triggers = workflow.get("on", workflow.get(True))
        assert "pull_request" in triggers and "push" in triggers
        assert set(workflow["jobs"]) == {
            "lint", "typecheck", "test", "smoke-benchmark",
            "engine-benchmark", "fault-smoke",
        }

    def test_python_matrix(self, workflow):
        matrix = workflow["jobs"]["test"]["strategy"]["matrix"]
        assert matrix["python-version"] == ["3.10", "3.11", "3.12"]

    def test_lint_runs_ruff(self, workflow):
        steps = workflow["jobs"]["lint"]["steps"]
        assert any("ruff check" in (s.get("run") or "") for s in steps)

    def test_typecheck_runs_mypy_on_package(self, workflow):
        steps = workflow["jobs"]["typecheck"]["steps"]
        runs = " ".join(s.get("run") or "" for s in steps)
        assert "pip install mypy" in runs
        assert "mypy src/repro" in runs

    def test_test_job_runs_pytest_with_src_on_path(self, workflow):
        steps = workflow["jobs"]["test"]["steps"]
        run_step = next(
            s for s in steps if "python -m pytest" in (s.get("run") or "")
        )
        assert run_step["env"]["PYTHONPATH"] == "src"

    def test_smoke_job_exercises_runner_and_parallel_sweep(self, workflow):
        steps = workflow["jobs"]["smoke-benchmark"]["steps"]
        runs = " ".join(s.get("run") or "" for s in steps)
        assert "repro.experiments.runner smoke table1" in runs
        assert "--workers 4" in runs

    def test_fault_smoke_runs_campaign_and_faulted_cli(self, workflow):
        steps = workflow["jobs"]["fault-smoke"]["steps"]
        runs = " ".join(s.get("run") or "" for s in steps)
        assert "repro.experiments.runner smoke faults" in runs
        assert "--fault consumer-stall:" in runs
        assert "--watchdog" in runs and "--invariants-every" in runs

    def test_engine_benchmark_checks_baseline_and_uploads_artifact(self, workflow):
        steps = workflow["jobs"]["engine-benchmark"]["steps"]
        runs = " ".join(s.get("run") or "" for s in steps)
        assert "benchmarks/report.py --smoke" in runs
        assert "--check BENCH_engine.json" in runs
        upload = next(
            s for s in steps if "upload-artifact" in (s.get("uses") or "")
        )
        assert upload["if"] == "always()"
        assert upload["with"]["name"] == "BENCH_engine"

    def test_engine_benchmark_has_trace_overhead_guard(self, workflow):
        steps = workflow["jobs"]["engine-benchmark"]["steps"]
        guard = next(
            s for s in steps
            if "--traced" in (s.get("run") or "")
        )
        # Disabled hooks must be free: 2% bound against the report the
        # previous step wrote on the same runner.
        assert "--tolerance 0.02" in guard["run"]
        assert "--check BENCH_engine.ci.json" in guard["run"]

    def test_gitignore_covers_generated_dirs(self):
        gitignore = (WORKFLOW.parents[2] / ".gitignore").read_text("utf-8")
        for entry in ("*.egg-info/", "__pycache__/", ".pytest_cache/",
                      ".hypothesis/", ".benchmarks/", ".repro_cache/",
                      "results/", "BENCH_engine.ci.json"):
            assert entry in gitignore
