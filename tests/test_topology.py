"""Unit tests for the topology substrate (grids, meshes, irregular)."""

import json

import networkx as nx
import pytest

from repro.network.topology import (
    TOPOLOGY_KINDS,
    FullMesh,
    IrregularGraph,
    Mesh2D,
    Torus,
    build_topology,
    fat_tree,
    irregular_example,
    load_topology,
    ring,
)
from repro.util.errors import ConfigurationError


class TestConstruction:
    def test_router_and_node_counts(self):
        t = Torus((8, 8))
        assert t.num_routers == 64
        assert t.num_nodes == 64

    def test_bristling_multiplies_nodes(self):
        t = Torus((2, 4), bristling=2)
        assert t.num_routers == 8
        assert t.num_nodes == 16

    def test_link_count_2d(self):
        t = Torus((4, 4))
        # 2 dims x 2 directions x 16 routers unidirectional links.
        assert len(t.links) == 4 * 16

    def test_link_count_ring(self):
        t = ring(6)
        assert len(t.links) == 12  # 6 routers x 2 directions

    def test_degenerate_dimension_has_no_links(self):
        t = Torus((1,))
        assert len(t.links) == 0

    def test_k2_has_parallel_links(self):
        t = Torus((2,))
        # Both +1 and -1 links exist between the two routers.
        assert len(t.links) == 4
        assert {(k.src, k.dst) for k in t.links} == {(0, 1), (1, 0)}

    @pytest.mark.parametrize("bad", [(), (0,), (4, -1)])
    def test_invalid_dims_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            Torus(bad)

    def test_invalid_bristling_rejected(self):
        with pytest.raises(ConfigurationError):
            Torus((4,), bristling=0)


class TestCoordinates:
    def test_roundtrip_all_routers(self):
        t = Torus((3, 4, 5))
        for r in range(t.num_routers):
            assert t.router_id(t.coords(r)) == r

    def test_coords_row_major(self):
        t = Torus((2, 3))
        assert t.coords(0) == (0, 0)
        assert t.coords(1) == (0, 1)
        assert t.coords(3) == (1, 0)

    def test_router_of_node_with_bristling(self):
        t = Torus((2, 2), bristling=4)
        assert t.router_of_node(0) == 0
        assert t.router_of_node(3) == 0
        assert t.router_of_node(4) == 1
        assert list(t.nodes_of_router(1)) == [4, 5, 6, 7]


class TestLinks:
    def test_out_links_indexed_by_dim_dir(self):
        t = Torus((4, 4))
        link = t.out_link(0, 0, +1)
        assert link.src == 0
        assert t.coords(link.dst) == (1, 0)

    def test_in_links_match_out_links(self):
        t = Torus((4, 4))
        for r in range(t.num_routers):
            for link in t.out_links(r):
                assert link in t.in_links(link.dst)

    def test_dateline_marking(self):
        t = ring(4)
        crossing = [k for k in t.links if k.crosses_dateline]
        # One crossing link per direction per ring.
        assert len(crossing) == 2
        plus = next(k for k in crossing if k.direction == +1)
        assert t.coords(plus.src) == (3,) and t.coords(plus.dst) == (0,)


class TestRouting:
    def test_productive_directions_minimal(self):
        t = Torus((8, 8))
        dirs = t.productive_directions(0, t.router_id((3, 6)))
        assert (0, +1, 3) in dirs
        assert (1, -1, 2) in dirs  # 6 is closer backwards on a ring of 8
        assert len(dirs) == 2

    def test_productive_directions_tie_gives_both(self):
        t = ring(4)
        dirs = t.productive_directions(0, 2)
        assert len(dirs) == 2
        assert {d for _, d, _ in dirs} == {+1, -1}

    def test_min_hops_symmetric(self):
        t = Torus((5, 3))
        for a in range(t.num_routers):
            for b in range(t.num_routers):
                assert t.min_hops(a, b) == t.min_hops(b, a)

    def test_dor_path_is_minimal(self):
        t = Torus((4, 4))
        for a in range(t.num_routers):
            for b in range(t.num_routers):
                path = t.dor_path(a, b)
                assert len(path) == t.min_hops(a, b)
                cur = a
                for link in path:
                    assert link.src == cur
                    cur = link.dst
                assert cur == b

    def test_dor_path_orders_dimensions(self):
        t = Torus((4, 4))
        path = t.dor_path(0, t.router_id((2, 2)))
        dims = [hop.dim for hop in path]
        assert dims == sorted(dims)


class TestAnalysis:
    def test_networkx_export(self):
        t = Torus((3, 3))
        g = t.to_networkx()
        assert g.number_of_nodes() == 9
        assert g.number_of_edges() == len(t.links)
        assert nx.is_strongly_connected(nx.DiGraph(g))

    def test_uniform_capacity_8x8(self):
        # 8x8 torus: bisection-limited to 1.0 flit/node/cycle.
        assert Torus((8, 8)).uniform_capacity() == pytest.approx(1.0)

    def test_uniform_capacity_capped_by_injection(self):
        assert Torus((2, 2)).uniform_capacity() == 1.0

    def test_capacity_of_single_router(self):
        assert Torus((1,)).uniform_capacity() == 1.0


def _assert_valid_path(topology, src, dst):
    path = topology.route_path(src, dst)
    assert len(path) == topology.min_hops(src, dst)
    cur = src
    for link in path:
        assert link.src == cur
        cur = link.dst
    assert cur == dst
    return path


class TestMesh2D:
    def test_link_count_no_wrap(self):
        t = Mesh2D((4, 4))
        # 2 x (rows x (cols-1)) undirected internal edges per axis,
        # each as two unidirectional links; no wrap links.
        assert len(t.links) == 2 * 2 * 4 * 3

    def test_no_dateline_anywhere(self):
        assert not any(k.crosses_dateline for k in Mesh2D((4, 4)).links)

    def test_requires_two_dimensions(self):
        with pytest.raises(ConfigurationError):
            Mesh2D((4,))
        with pytest.raises(ConfigurationError):
            Mesh2D((2, 2, 2))

    def test_min_hops_is_manhattan(self):
        t = Mesh2D((4, 5))
        for a in range(t.num_routers):
            for b in range(t.num_routers):
                (ai, aj), (bi, bj) = t.coords(a), t.coords(b)
                assert t.min_hops(a, b) == abs(ai - bi) + abs(aj - bj)

    def test_edge_routers_have_no_outward_links(self):
        t = Mesh2D((3, 3))
        corner = t.router_id((0, 0))
        dirs = {(k.dim, k.direction) for k in t.out_links(corner)}
        assert dirs == {(0, +1), (1, +1)}

    def test_dor_path_minimal_and_dimension_ordered(self):
        t = Mesh2D((4, 4))
        for a in range(t.num_routers):
            for b in range(t.num_routers):
                path = _assert_valid_path(t, a, b)
                dims = [hop.dim for hop in path]
                assert dims == sorted(dims)

    def test_productive_directions_signed(self):
        t = Mesh2D((4, 4))
        dirs = t.productive_directions(t.router_id((3, 0)),
                                       t.router_id((0, 2)))
        assert (0, -1, 3) in dirs and (1, +1, 2) in dirs
        assert len(dirs) == 2


class TestFullMesh:
    def test_every_ordered_pair_has_one_link(self):
        t = FullMesh(8)
        assert len(t.links) == 8 * 7
        assert {(k.src, k.dst) for k in t.links} == {
            (a, b) for a in range(8) for b in range(8) if a != b
        }

    def test_min_hops_is_one_off_diagonal(self):
        t = FullMesh(5)
        for a in range(5):
            for b in range(5):
                assert t.min_hops(a, b) == (0 if a == b else 1)

    def test_route_path_is_the_direct_link(self):
        t = FullMesh(6)
        for a in range(6):
            for b in range(6):
                if a == b:
                    continue
                (link,) = _assert_valid_path(t, a, b)
                assert link is t.direct_link(a, b)

    def test_degenerate_single_router_has_no_links(self):
        # Consistent with Torus((1,)): valid but linkless.
        assert len(FullMesh(1).links) == 0

    def test_rejects_nonpositive_router_count(self):
        with pytest.raises(ConfigurationError):
            FullMesh(0)


class TestIrregularGraph:
    def test_builtin_example_shape(self):
        t = irregular_example()
        assert t.num_routers == 9
        # 12 undirected edges, each expanded to two directed links.
        assert len(t.links) == 24
        assert not any(k.crosses_dateline for k in t.links)

    def test_route_path_valid_everywhere(self):
        t = irregular_example()
        for a in range(t.num_routers):
            for b in range(t.num_routers):
                path = t.route_path(a, b) if a != b else []
                cur = a
                for link in path:
                    assert link.src == cur
                    cur = link.dst
                assert cur == b

    def test_tree_paths_go_up_then_down(self):
        t = irregular_example()
        for a in range(t.num_routers):
            for b in range(t.num_routers):
                if a == b:
                    continue
                depths = [t._depth[a]]
                depths += [t._depth[k.dst] for k in t.route_path(a, b)]
                turn = depths.index(min(depths))
                # Monotone descent to the LCA, then monotone ascent.
                assert depths[: turn + 1] == sorted(depths[: turn + 1],
                                                    reverse=True)
                assert depths[turn:] == sorted(depths[turn:])

    def test_disconnected_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            IrregularGraph(4, [(0, 1), (2, 3)])

    def test_min_hops_symmetric(self):
        t = irregular_example()
        for a in range(t.num_routers):
            for b in range(t.num_routers):
                assert t.min_hops(a, b) == t.min_hops(b, a)

    def test_bristling_multiplies_nodes(self):
        t = irregular_example(bristling=2)
        assert t.num_nodes == 18
        assert t.router_of_node(3) == 1


class TestLoadAndBuild:
    def test_load_topology_roundtrip(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text(json.dumps({
            "name": "tri", "routers": 3, "bristling": 2,
            "links": [[0, 1], [1, 2], [2, 0]],
        }), "utf-8")
        t = load_topology(path)
        assert isinstance(t, IrregularGraph)
        assert t.num_routers == 3
        assert t.num_nodes == 6
        assert len(t.links) == 6

    def test_load_topology_bristling_override(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text(json.dumps({
            "routers": 2, "bristling": 4, "links": [[0, 1]],
        }), "utf-8")
        assert load_topology(path, bristling=1).num_nodes == 2

    def test_load_topology_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]", "utf-8")
        with pytest.raises(ConfigurationError):
            load_topology(path)
        with pytest.raises(ConfigurationError):
            load_topology(tmp_path / "missing.json")

    def test_build_topology_dispatch(self, tmp_path):
        assert isinstance(build_topology("torus", dims=(4, 4)), Torus)
        assert isinstance(build_topology("mesh2d", dims=(4, 4)), Mesh2D)
        fm = build_topology("fullmesh", dims=(2, 4))
        assert isinstance(fm, FullMesh) and fm.num_routers == 8
        assert isinstance(build_topology("irregular"), IrregularGraph)
        path = tmp_path / "g.json"
        path.write_text(json.dumps({
            "routers": 2, "links": [[0, 1]],
        }), "utf-8")
        assert isinstance(build_topology("file", file=str(path)),
                          IrregularGraph)

    def test_build_topology_rejects_unknown_and_missing_file(self):
        with pytest.raises(ConfigurationError):
            build_topology("hypercube")
        with pytest.raises(ConfigurationError):
            build_topology("file")

    def test_kinds_constant_covers_dispatch(self):
        assert set(TOPOLOGY_KINDS) == {
            "torus", "mesh2d", "fullmesh", "irregular", "fat_tree", "file"
        }


class TestFatTree:
    def test_router_count(self):
        # Level sizes 1, 2, 8 for dims (2, 4): 11 routers, the last
        # level's 8 are the leaves carrying the compute nodes.
        t = fat_tree((2, 4))
        assert t.num_routers == 1 + 2 + 8

    def test_is_irregular_graph(self):
        assert isinstance(fat_tree((2, 2)), IrregularGraph)

    def test_trunk_fatness_tapers_toward_leaves(self):
        t = fat_tree((2, 2), max_fatness=4)
        pairs = [(min(k.src, k.dst), max(k.src, k.dst)) for k in t.links]
        # Root (0) to its two children: fatness min(4, 2) = 2 parallel
        # undirected trunks = 4 unidirectional links per child pair.
        assert pairs.count((0, 1)) == 4
        # Leaf trunks are single links (2 unidirectional).
        assert pairs.count((1, 3)) == 2

    def test_max_fatness_caps_trunks(self):
        thin = fat_tree((4, 4), max_fatness=1)
        pairs = [(min(k.src, k.dst), max(k.src, k.dst)) for k in thin.links]
        assert max(pairs.count(p) for p in set(pairs)) == 2

    def test_connected_and_certifiable(self):
        t = fat_tree((2, 4))
        g = nx.Graph((k.src, k.dst) for k in t.links)
        assert nx.is_connected(g)
        assert g.number_of_nodes() == t.num_routers

    def test_bristling_multiplies_nodes(self):
        t = fat_tree((2, 2), bristling=2)
        assert t.num_nodes == 2 * t.num_routers

    def test_build_topology_dispatch(self):
        t = build_topology("fat_tree", dims=(2, 2))
        assert isinstance(t, IrregularGraph)
        assert t.num_routers == 7

    @pytest.mark.parametrize("bad", [(), (0, 2), (2, -1)])
    def test_invalid_dims_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            fat_tree(bad)

    def test_invalid_fatness_rejected(self):
        with pytest.raises(ConfigurationError):
            fat_tree((2, 2), max_fatness=0)

    def test_routes_deliver_under_pr(self):
        from repro.config import SimConfig
        from repro.sim.engine import Engine

        engine = Engine(SimConfig(
            topology="fat_tree", dims=(2, 2), scheme="PR",
            pattern="PAT271", num_vcs=4, load=0.01, seed=3,
        ))
        window = engine.run_measured(300, 600)
        assert window.messages_delivered > 0
