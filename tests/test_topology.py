"""Unit tests for k-ary n-cube topologies."""

import networkx as nx
import pytest

from repro.network.topology import Torus, ring
from repro.util.errors import ConfigurationError


class TestConstruction:
    def test_router_and_node_counts(self):
        t = Torus((8, 8))
        assert t.num_routers == 64
        assert t.num_nodes == 64

    def test_bristling_multiplies_nodes(self):
        t = Torus((2, 4), bristling=2)
        assert t.num_routers == 8
        assert t.num_nodes == 16

    def test_link_count_2d(self):
        t = Torus((4, 4))
        # 2 dims x 2 directions x 16 routers unidirectional links.
        assert len(t.links) == 4 * 16

    def test_link_count_ring(self):
        t = ring(6)
        assert len(t.links) == 12  # 6 routers x 2 directions

    def test_degenerate_dimension_has_no_links(self):
        t = Torus((1,))
        assert len(t.links) == 0

    def test_k2_has_parallel_links(self):
        t = Torus((2,))
        # Both +1 and -1 links exist between the two routers.
        assert len(t.links) == 4
        assert {(k.src, k.dst) for k in t.links} == {(0, 1), (1, 0)}

    @pytest.mark.parametrize("bad", [(), (0,), (4, -1)])
    def test_invalid_dims_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            Torus(bad)

    def test_invalid_bristling_rejected(self):
        with pytest.raises(ConfigurationError):
            Torus((4,), bristling=0)


class TestCoordinates:
    def test_roundtrip_all_routers(self):
        t = Torus((3, 4, 5))
        for r in range(t.num_routers):
            assert t.router_id(t.coords(r)) == r

    def test_coords_row_major(self):
        t = Torus((2, 3))
        assert t.coords(0) == (0, 0)
        assert t.coords(1) == (0, 1)
        assert t.coords(3) == (1, 0)

    def test_router_of_node_with_bristling(self):
        t = Torus((2, 2), bristling=4)
        assert t.router_of_node(0) == 0
        assert t.router_of_node(3) == 0
        assert t.router_of_node(4) == 1
        assert list(t.nodes_of_router(1)) == [4, 5, 6, 7]


class TestLinks:
    def test_out_links_indexed_by_dim_dir(self):
        t = Torus((4, 4))
        link = t.out_link(0, 0, +1)
        assert link.src == 0
        assert t.coords(link.dst) == (1, 0)

    def test_in_links_match_out_links(self):
        t = Torus((4, 4))
        for r in range(t.num_routers):
            for link in t.out_links(r):
                assert link in t.in_links(link.dst)

    def test_dateline_marking(self):
        t = ring(4)
        crossing = [k for k in t.links if k.crosses_dateline]
        # One crossing link per direction per ring.
        assert len(crossing) == 2
        plus = next(k for k in crossing if k.direction == +1)
        assert t.coords(plus.src) == (3,) and t.coords(plus.dst) == (0,)


class TestRouting:
    def test_productive_directions_minimal(self):
        t = Torus((8, 8))
        dirs = t.productive_directions(0, t.router_id((3, 6)))
        assert (0, +1, 3) in dirs
        assert (1, -1, 2) in dirs  # 6 is closer backwards on a ring of 8
        assert len(dirs) == 2

    def test_productive_directions_tie_gives_both(self):
        t = ring(4)
        dirs = t.productive_directions(0, 2)
        assert len(dirs) == 2
        assert {d for _, d, _ in dirs} == {+1, -1}

    def test_min_hops_symmetric(self):
        t = Torus((5, 3))
        for a in range(t.num_routers):
            for b in range(t.num_routers):
                assert t.min_hops(a, b) == t.min_hops(b, a)

    def test_dor_path_is_minimal(self):
        t = Torus((4, 4))
        for a in range(t.num_routers):
            for b in range(t.num_routers):
                path = t.dor_path(a, b)
                assert len(path) == t.min_hops(a, b)
                cur = a
                for link in path:
                    assert link.src == cur
                    cur = link.dst
                assert cur == b

    def test_dor_path_orders_dimensions(self):
        t = Torus((4, 4))
        path = t.dor_path(0, t.router_id((2, 2)))
        dims = [hop.dim for hop in path]
        assert dims == sorted(dims)


class TestAnalysis:
    def test_networkx_export(self):
        t = Torus((3, 3))
        g = t.to_networkx()
        assert g.number_of_nodes() == 9
        assert g.number_of_edges() == len(t.links)
        assert nx.is_strongly_connected(nx.DiGraph(g))

    def test_uniform_capacity_8x8(self):
        # 8x8 torus: bisection-limited to 1.0 flit/node/cycle.
        assert Torus((8, 8)).uniform_capacity() == pytest.approx(1.0)

    def test_uniform_capacity_capped_by_injection(self):
        assert Torus((2, 2)).uniform_capacity() == 1.0

    def test_capacity_of_single_router(self):
        assert Torus((1,)).uniform_capacity() == 1.0
