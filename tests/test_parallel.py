"""Tests for repro.sim.parallel: equivalence, caching, crash handling."""

import functools
import io
import json
import os
import pickle
import tempfile
import time
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.config import ExecutionConfig, SimConfig
from repro.sim import parallel
from repro.sim.parallel import (
    PointResolution,
    ResultCache,
    point_key,
    resolve_points,
    run_points,
)
from repro.sim.sweep import run_point, run_sweep
from repro.util.errors import LivenessError, PointTimeoutError, SweepExecutionError
from repro.util.progress import ProgressReporter, format_eta

WARMUP = 100
MEASURE = 200
LOADS = (0.002, 0.004, 0.006)


def tiny_config(load: float = 0.004, **kwargs) -> SimConfig:
    return SimConfig(dims=(4, 4), load=load, **kwargs)


def tiny_configs(loads=LOADS) -> list[SimConfig]:
    return [tiny_config(load) for load in loads]


# --- module-level point functions so they pickle into worker processes ---

def _boom(config, warmup, measure):
    raise RuntimeError("engine must not execute")


def _counting_point(counter_dir, config, warmup, measure):
    """Real run_point, recording one file per invocation."""
    fd, _ = tempfile.mkstemp(prefix=f"load{config.load}-", dir=counter_dir)
    os.close(fd)
    return run_point(config, warmup, measure)


def _hung_point(config, warmup, measure):
    """A wedged engine from the pool's point of view: never returns."""
    time.sleep(600)


def _slow_once_point(marker_dir, config, warmup, measure):
    """Hangs on the first attempt per load, runs normally on the retry."""
    marker = os.path.join(marker_dir, f"slow-{config.load}")
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("1")
        time.sleep(600)
    return run_point(config, warmup, measure)


def _wedged_point(config, warmup, measure):
    """Raises the engine watchdog's error, dump attached."""
    raise LivenessError(
        "no forward progress", {"cycle": 4242, "reason": "test wedge",
                                "cwg_knots": [["vc1", "vc2"]]},
    )


def _flaky_point(marker_dir, config, warmup, measure):
    """Crashes on the first attempt per load, succeeds on the retry."""
    marker = os.path.join(marker_dir, f"ran-{config.load}")
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("1")
        raise RuntimeError(f"injected crash at load {config.load}")
    return run_point(config, warmup, measure)


def counting_fn(tmp_path, name="counter"):
    counter_dir = tmp_path / name
    counter_dir.mkdir(exist_ok=True)
    return functools.partial(_counting_point, str(counter_dir)), counter_dir


class TestSerialParallelEquivalence:
    def test_run_points_bit_identical(self):
        configs = tiny_configs()
        serial = run_points(configs, WARMUP, MEASURE, workers=1)
        fanned = run_points(configs, WARMUP, MEASURE, workers=4)
        assert serial == fanned

    def test_results_follow_input_order(self):
        scrambled = tiny_configs((0.006, 0.002, 0.004))
        results = run_points(scrambled, WARMUP, MEASURE, workers=3)
        assert [r.load for r in results] == [0.006, 0.002, 0.004]

    def test_run_sweep_matches_serial(self):
        config = tiny_config()
        serial = run_sweep(config, LOADS, warmup=WARMUP, measure=MEASURE)
        fanned = run_sweep(
            config, LOADS, warmup=WARMUP, measure=MEASURE,
            execution=ExecutionConfig(workers=4, use_cache=False),
        )
        assert serial.points == fanned.points
        assert serial.label == fanned.label


class TestResultCache:
    def test_second_invocation_runs_zero_engines(self, tmp_path):
        configs = tiny_configs()
        cache = ResultCache(tmp_path / "cache")
        first = run_points(configs, WARMUP, MEASURE, workers=4, cache=cache)
        # _boom would crash any executed point: everything must come from disk.
        again = run_points(configs, WARMUP, MEASURE, workers=4, cache=cache,
                           point_fn=_boom)
        assert again == first
        assert cache.hits == len(configs)

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        configs = tiny_configs()
        cache = ResultCache(tmp_path / "cache")
        serial = run_points(configs, WARMUP, MEASURE, workers=1, cache=cache)
        fanned = run_points(configs, WARMUP, MEASURE, workers=3, cache=cache,
                            point_fn=_boom)
        assert serial == fanned

    def test_key_depends_on_window_and_config(self):
        base = point_key(tiny_config(), WARMUP, MEASURE)
        assert point_key(tiny_config(), WARMUP + 1, MEASURE) != base
        assert point_key(tiny_config(), WARMUP, MEASURE + 1) != base
        assert point_key(tiny_config(seed=2), WARMUP, MEASURE) != base
        assert point_key(tiny_config(), WARMUP, MEASURE) == base

    def test_key_covers_full_detector_configuration(self):
        """Collision regression: two runs differing only in detection
        mechanism or thresholds must never alias one cache entry."""
        base = point_key(tiny_config(), WARMUP, MEASURE)
        variants = (
            dict(detector="cmh"),
            dict(detector="timeout"),
            dict(detection_threshold=26),
            dict(occupancy_threshold=0.9),
            dict(timeout_threshold=201),
            dict(cmh_block_threshold=5),
            dict(cmh_probe_interval=65),
        )
        keys = [point_key(tiny_config(**v), WARMUP, MEASURE) for v in variants]
        assert base not in keys
        assert len(set(keys)) == len(keys), "detector variants collided"
        # Same detector configuration -> same key (cache still hits).
        assert point_key(tiny_config(detector="cmh"), WARMUP, MEASURE) == keys[0]

    def test_changed_window_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_points(tiny_configs(), WARMUP, MEASURE, cache=cache)
        with pytest.raises(SweepExecutionError):
            run_points(tiny_configs(), WARMUP, MEASURE + 50, cache=cache,
                       point_fn=_boom, retries=0)

    def test_code_version_invalidates(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        counting, counter_dir = counting_fn(tmp_path)
        run_points(tiny_configs(), WARMUP, MEASURE, cache=cache,
                   point_fn=counting)
        assert len(list(counter_dir.iterdir())) == len(LOADS)
        monkeypatch.setattr(parallel, "code_version", lambda: "different")
        run_points(tiny_configs(), WARMUP, MEASURE, cache=cache,
                   point_fn=counting)
        assert len(list(counter_dir.iterdir())) == 2 * len(LOADS)

    def test_corrupt_entry_is_a_miss_and_repaired(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        [result] = run_points([tiny_config()], WARMUP, MEASURE, cache=cache)
        key = point_key(tiny_config(), WARMUP, MEASURE)
        cache.path_for(key).write_text("{not json", "utf-8")
        [again] = run_points([tiny_config()], WARMUP, MEASURE, cache=cache)
        assert again == result
        payload = json.loads(cache.path_for(key).read_text("utf-8"))
        assert payload["result"]["load"] == tiny_config().load

    def test_interrupted_run_resumes(self, tmp_path):
        """Failed batch keeps its completed points; the rerun finishes them."""
        cache = ResultCache(tmp_path / "cache")
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        flaky = functools.partial(_flaky_point, str(marker_dir))
        with pytest.raises(SweepExecutionError):
            run_points(tiny_configs(), WARMUP, MEASURE, cache=cache,
                       point_fn=flaky, retries=0)
        assert cache.hits == 0
        counting, counter_dir = counting_fn(tmp_path)
        resumed = run_points(tiny_configs(), WARMUP, MEASURE, cache=cache,
                             point_fn=counting)
        # Every point either came from cache or ran exactly once now.
        executed = len(list(counter_dir.iterdir()))
        assert cache.hits + executed == len(LOADS)
        assert resumed == run_points(tiny_configs(), WARMUP, MEASURE)


class TestResolvePoints:
    """The shared pre-schedule dedup helper (pool, farm and service)."""

    def test_cold_cache_everything_missing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        res = resolve_points(tiny_configs(), WARMUP, MEASURE, cache)
        assert isinstance(res, PointResolution)
        assert res.total == len(LOADS)
        assert res.cached == 0
        assert res.missing == list(range(len(LOADS)))
        assert res.results == [None] * len(LOADS)

    def test_warm_cache_fills_results_in_order(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        computed = run_points(tiny_configs(), WARMUP, MEASURE, cache=cache)
        res = resolve_points(tiny_configs(), WARMUP, MEASURE, cache)
        assert res.missing == []
        assert res.cached == res.total == len(LOADS)
        assert res.results == computed

    def test_partial_hit_reports_missing_indices(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_points([tiny_config(LOADS[1])], WARMUP, MEASURE, cache=cache)
        res = resolve_points(tiny_configs(), WARMUP, MEASURE, cache)
        assert res.missing == [0, 2]
        assert res.results[1] is not None
        assert res.cached == 1

    def test_none_cache_means_all_missing(self):
        res = resolve_points(tiny_configs(), WARMUP, MEASURE, None)
        assert res.missing == list(range(len(LOADS)))
        assert res.keys == [
            point_key(c, WARMUP, MEASURE) for c in tiny_configs()
        ]

    def test_caller_supplied_keys_are_used_verbatim(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_points(tiny_configs(), WARMUP, MEASURE, cache=cache)
        bogus = ["nope"] * len(LOADS)
        res = resolve_points(tiny_configs(), WARMUP, MEASURE, cache,
                             keys=bogus)
        assert res.missing == list(range(len(LOADS)))
        assert res.keys == bogus

    def test_key_count_mismatch_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ValueError):
            resolve_points(tiny_configs(), WARMUP, MEASURE, cache,
                           keys=["just-one"])

    def test_run_points_dedup_agrees_with_resolution(self, tmp_path):
        """run_points executes exactly the points resolve_points says."""
        cache = ResultCache(tmp_path / "cache")
        run_points([tiny_config(LOADS[0])], WARMUP, MEASURE, cache=cache)
        res = resolve_points(tiny_configs(), WARMUP, MEASURE, cache)
        counting, counter_dir = counting_fn(tmp_path)
        run_points(tiny_configs(), WARMUP, MEASURE, cache=cache,
                   point_fn=counting)
        assert len(list(counter_dir.iterdir())) == len(res.missing)


class TestCrashHandling:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_crashed_point_is_retried_once(self, tmp_path, workers):
        marker_dir = tmp_path / f"markers{workers}"
        marker_dir.mkdir()
        flaky = functools.partial(_flaky_point, str(marker_dir))
        results = run_points(tiny_configs(), WARMUP, MEASURE, workers=workers,
                             point_fn=flaky, retries=1)
        assert results == run_points(tiny_configs(), WARMUP, MEASURE)
        # one crash marker per load: each point failed once, then succeeded
        assert len(list(marker_dir.iterdir())) == len(LOADS)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_persistent_crash_reports_config(self, workers):
        with pytest.raises(SweepExecutionError) as excinfo:
            run_points(tiny_configs(), WARMUP, MEASURE, workers=workers,
                       point_fn=_boom, retries=1)
        message = str(excinfo.value)
        assert "load=0.004" in message and "scheme=PR" in message
        assert len(excinfo.value.failures) == len(LOADS)


class TestPointTimeout:
    def test_hung_point_times_out_and_is_reported(self):
        with pytest.raises(SweepExecutionError) as excinfo:
            run_points([tiny_config()], WARMUP, MEASURE, workers=1,
                       point_fn=_hung_point, retries=0, timeout=1.0)
        (config, exc) = excinfo.value.failures[0]
        assert isinstance(exc, PointTimeoutError)
        assert exc.timeout == 1.0
        assert config.load == tiny_config().load
        assert "wall-clock timeout" in str(excinfo.value)

    def test_timed_out_point_is_retried(self, tmp_path):
        # First attempt hangs and is killed; the retry completes and the
        # batch succeeds — a transient wedge must not fail a campaign.
        marker_dir = tmp_path / "slow"
        marker_dir.mkdir()
        slow_once = functools.partial(_slow_once_point, str(marker_dir))
        results = run_points([tiny_config()], WARMUP, MEASURE, workers=1,
                             point_fn=slow_once, retries=1, timeout=2.0)
        assert results == run_points([tiny_config()], WARMUP, MEASURE)
        assert len(list(marker_dir.iterdir())) == 1  # hung exactly once

    def test_healthy_points_survive_a_hung_sibling(self):
        # One wedged point in the wave must not take down the others.
        with pytest.raises(SweepExecutionError) as excinfo:
            run_points(tiny_configs(), WARMUP, MEASURE, workers=3,
                       point_fn=_picky_point, retries=0, timeout=5.0)
        failures = excinfo.value.failures
        assert list(failures) == [1]  # only the hung load
        assert isinstance(failures[1][1], PointTimeoutError)

    def test_liveness_dump_survives_the_worker_pool(self):
        # The diagnosing exception pickles back intact, dump and all.
        with pytest.raises(SweepExecutionError) as excinfo:
            run_points([tiny_config()], WARMUP, MEASURE, workers=2,
                       point_fn=_wedged_point, retries=0)
        exc = excinfo.value.failures[0][1]
        assert isinstance(exc, LivenessError)
        assert exc.dump["cycle"] == 4242
        assert "dump: cycle=4242" in str(excinfo.value)

    def test_point_timeout_error_pickles(self):
        exc = PointTimeoutError(2.5, tiny_config())
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.timeout == 2.5
        assert clone.config == tiny_config()

    def test_point_timeout_validation(self):
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExecutionConfig(point_timeout=0)
        assert ExecutionConfig(point_timeout=1.5).point_timeout == 1.5


class _DyingPool:
    """A pool whose futures all resolve as BrokenProcessPool and whose
    context exit re-raises it — the partial-progress pool death: some
    futures were charged through ``as_completed`` before the executor
    itself gave up."""

    def __init__(self, max_workers=None):
        pass

    def __enter__(self):
        return self

    def submit(self, fn, *args):
        future = Future()
        future.set_exception(BrokenProcessPool("worker died"))
        return future

    def __exit__(self, *exc_info):
        raise BrokenProcessPool("pool torn down")


class TestBrokenPoolAccounting:
    def test_pool_death_charges_each_point_once(self, monkeypatch):
        """Double-charge regression: a BrokenProcessPool escaping after
        some futures already resolved through as_completed must not
        charge those points a second attempt — with retries=1 the next
        round is still theirs."""
        real_pool = parallel.ProcessPoolExecutor
        pools = []

        def factory(max_workers=None):
            pools.append(max_workers)
            if len(pools) == 1:
                return _DyingPool(max_workers)
            return real_pool(max_workers=max_workers)

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", factory)
        monkeypatch.setattr(parallel, "_sleep", lambda seconds: None)
        results = run_points(tiny_configs(), WARMUP, MEASURE, workers=3,
                             retries=1)
        # the retry round ran on a real pool and succeeded
        assert len(pools) == 2
        assert results == run_points(tiny_configs(), WARMUP, MEASURE)

    def test_pool_death_past_the_budget_reports_failures(self, monkeypatch):
        monkeypatch.setattr(parallel, "ProcessPoolExecutor", _DyingPool)
        monkeypatch.setattr(parallel, "_sleep", lambda seconds: None)
        with pytest.raises(SweepExecutionError) as excinfo:
            run_points(tiny_configs(), WARMUP, MEASURE, workers=3, retries=1)
        assert len(excinfo.value.failures) == len(LOADS)
        assert isinstance(excinfo.value.failures[0][1], BrokenProcessPool)


class TestRetryBackoff:
    def _delays(self, monkeypatch):
        delays = []
        monkeypatch.setattr(parallel, "_sleep", delays.append)
        return delays

    def test_serial_retry_waits_out_the_policy(self, monkeypatch, tmp_path):
        delays = self._delays(monkeypatch)
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        flaky = functools.partial(_flaky_point, str(marker_dir))
        run_points(tiny_configs(), WARMUP, MEASURE, workers=1,
                   point_fn=flaky, retries=1)
        expected = [parallel.DEFAULT_BACKOFF.delay(1, key=f"point{idx}")
                    for idx in range(len(LOADS))]
        assert delays == expected

    def test_parallel_retry_round_backs_off_once(self, monkeypatch, tmp_path):
        delays = self._delays(monkeypatch)
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        flaky = functools.partial(_flaky_point, str(marker_dir))
        run_points(tiny_configs(), WARMUP, MEASURE, workers=3,
                   point_fn=flaky, retries=1)
        assert delays == [parallel.DEFAULT_BACKOFF.delay(1, key="round")]

    def test_timed_waves_back_off_between_retries(self, monkeypatch, tmp_path):
        delays = self._delays(monkeypatch)
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        flaky = functools.partial(_flaky_point, str(marker_dir))
        run_points(tiny_configs(), WARMUP, MEASURE, workers=3,
                   point_fn=flaky, retries=1, timeout=60.0)
        assert delays == [parallel.DEFAULT_BACKOFF.delay(1, key="wave")]

    def test_custom_policy_is_honoured(self, monkeypatch, tmp_path):
        from repro.util.backoff import BackoffPolicy

        delays = self._delays(monkeypatch)
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        flaky = functools.partial(_flaky_point, str(marker_dir))
        quiet = BackoffPolicy(base=0.25, factor=2.0, cap=1.0, jitter=0.0)
        run_points(tiny_configs(), WARMUP, MEASURE, workers=1,
                   point_fn=flaky, retries=1, backoff=quiet)
        assert delays == [0.25] * len(LOADS)

    def test_successful_run_never_sleeps(self, monkeypatch):
        delays = self._delays(monkeypatch)
        run_points(tiny_configs(), WARMUP, MEASURE, workers=1)
        assert delays == []


def _picky_point(config, warmup, measure):
    """Hangs on the middle load only; the rest run normally."""
    if config.load == LOADS[1]:
        time.sleep(600)
    return run_point(config, warmup, measure)


class TestExecutionConfig:
    def test_validation(self):
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExecutionConfig(workers=0)
        with pytest.raises(ConfigurationError):
            ExecutionConfig(retries=-1)

    def test_default_execution_round_trip(self):
        previous = parallel.get_default_execution()
        override = ExecutionConfig(workers=2, use_cache=False)
        assert parallel.set_default_execution(override) is previous
        try:
            assert parallel.get_default_execution() is override
        finally:
            parallel.set_default_execution(previous)


class FakeClock:
    """Deterministic monotonic clock for throttle tests."""

    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestProgressReporter:
    def test_non_tty_lines(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=3, label="PR/x", stream=stream)
        reporter.update(elapsed=1.0)
        reporter.update(cached=True)
        reporter.finish()
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("PR/x [1/3]")
        assert "1 cached" in lines[1]

    def test_non_tty_updates_throttled(self):
        # A burst of quick updates must not flood a log file: at most one
        # line per min_interval, with the final state always emitted.
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(total=100, stream=stream, clock=clock,
                                    min_interval=2.0)
        for _ in range(50):
            reporter.update()
            clock.advance(0.01)  # 100 updates/sec
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1  # only the first update rendered
        assert lines[0].startswith("[1/100]")
        reporter.finish()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[-1].startswith("[50/100]")

    def test_non_tty_emits_after_interval_elapses(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(total=4, stream=stream, clock=clock,
                                    min_interval=2.0)
        reporter.update()
        clock.advance(0.5)
        reporter.update()  # throttled
        clock.advance(2.0)
        reporter.update()  # interval elapsed: rendered
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[1/4]")
        assert lines[1].startswith("[3/4]")
        reporter.finish()  # nothing suppressed since the last line
        assert len(stream.getvalue().splitlines()) == 2

    def test_finish_without_pending_state_adds_nothing(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(total=1, stream=stream, clock=clock)
        reporter.update()
        reporter.finish()
        assert len(stream.getvalue().splitlines()) == 1

    def test_disabled_is_silent(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=2, stream=stream, enabled=False)
        reporter.update()
        reporter.finish()
        assert stream.getvalue() == ""

    def test_format_eta(self):
        assert format_eta(75) == "1:15"
        assert format_eta(3725) == "1:02:05"
