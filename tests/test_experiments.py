"""Tests for the experiment harness (tiny custom scale for speed)."""

import pytest

from repro.experiments import (
    SCALES,
    Scale,
    table1_responses,
    table3_distributions,
)
from repro.experiments.common import (
    MAX_LOAD_BY_VCS,
    get_scale,
    load_grid,
    sweep_scheme,
)
from repro.experiments.figures import valid_schemes

TINY = Scale("tiny", warmup=300, measure=600, sweep_points=2,
             trace_duration=6000)


class TestScales:
    def test_registry(self):
        assert set(SCALES) == {"smoke", "paper"}
        assert SCALES["paper"].measure == 30_000  # the paper's window

    def test_get_scale_passthrough(self):
        assert get_scale(TINY) is TINY
        assert get_scale("smoke") is SCALES["smoke"]

    def test_load_grid(self):
        grid = load_grid(TINY, 0.01)
        assert grid == [0.005, 0.01]
        assert all(x <= MAX_LOAD_BY_VCS[4] for x in load_grid(TINY, 0.016))


class TestValidSchemes:
    def test_pat100_at_4vcs(self):
        assert valid_schemes("PAT100", 4) == ["SA", "PR"]

    def test_pat721_at_4vcs(self):
        assert valid_schemes("PAT721", 4) == ["DR", "PR"]

    def test_pat721_at_8vcs(self):
        assert valid_schemes("PAT721", 8) == ["SA", "DR", "PR"]

    def test_pat280_at_4vcs(self):
        # Three types used: SA needs 6 VCs, DR and PR are fine.
        assert valid_schemes("PAT280", 4) == ["DR", "PR"]

    def test_pat280_at_8vcs(self):
        assert valid_schemes("PAT280", 8) == ["SA", "DR", "PR"]


class TestSweepScheme:
    def test_label_and_points(self):
        sweep = sweep_scheme("PR", "PAT721", 4, TINY, seed=3)
        assert sweep.label == "PR/PAT721/4vc"
        assert 1 <= len(sweep.points) <= 2
        assert all(p.scheme == "PR" for p in sweep.points)

    def test_qa_label(self):
        sweep = sweep_scheme("PR", "PAT721", 4, TINY, seed=3,
                             queue_mode="per-type")
        assert sweep.label.startswith("PR-QA/")


class TestCharacterizationExperiments:
    def test_table1_runs_at_tiny_scale(self):
        rows = table1_responses.run(TINY)
        assert set(rows) == {"fft", "lu", "radix", "water"}
        for dist in rows.values():
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_table3_structure(self):
        rows = table3_distributions.run("smoke")
        assert set(rows) == {"PAT100", "PAT721", "PAT451", "PAT271", "PAT280"}
        for row in rows.values():
            assert len(row["closed_form"]) == 4
            assert len(row["monte_carlo"]) == 4

    def test_runner_rejects_unknown_experiment(self):
        from repro.experiments import runner

        with pytest.raises(SystemExit):
            runner.main(["bogus"])


class TestRunnerCli:
    def test_unknown_experiment_exits_nonzero(self):
        from repro.experiments import runner

        with pytest.raises(SystemExit) as excinfo:
            runner.main(["bogus"])
        assert excinfo.value.code not in (0, None)

    def test_failed_experiment_returns_nonzero(self, monkeypatch, capsys):
        from repro.experiments import runner

        class Broken:
            @staticmethod
            def main(scale):
                raise RuntimeError("regeneration broke")

        monkeypatch.setitem(runner.EXPERIMENTS, "table1", Broken)
        assert runner.main(["table1"]) == 1
        assert "table1" in capsys.readouterr().err

    def test_successful_run_returns_zero(self, monkeypatch, capsys):
        from repro.experiments import runner

        class Fine:
            @staticmethod
            def main(scale):
                print(f"ran at {scale}")

        monkeypatch.setitem(runner.EXPERIMENTS, "table1", Fine)
        assert runner.main(["paper", "table1"]) == 0
        assert "ran at paper" in capsys.readouterr().out

    def test_parse_args_execution_flags(self):
        from repro.experiments import runner

        scale, names, execution = runner.parse_args(
            ["paper", "fig8", "--workers", "4", "--no-cache",
             "--cache-dir=/tmp/alt"]
        )
        assert scale == "paper" and names == ["fig8"]
        assert execution.workers == 4
        assert execution.use_cache is False
        assert execution.cache_dir == "/tmp/alt"

    def test_parse_args_defaults(self):
        from repro.experiments import runner

        scale, names, execution = runner.parse_args([])
        assert scale == "smoke"
        assert names == list(runner.EXPERIMENTS)
        assert execution.workers == 1 and execution.use_cache is True

    def test_parse_args_rejects_bad_workers(self):
        from repro.experiments import runner

        with pytest.raises(SystemExit):
            runner.parse_args(["--workers", "zero"])
