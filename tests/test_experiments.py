"""Tests for the experiment harness (tiny custom scale for speed)."""

import pytest

from repro.experiments import SCALES, Scale
from repro.experiments.common import (
    MAX_LOAD_BY_VCS,
    get_scale,
    load_grid,
    sweep_scheme,
)
from repro.experiments.figures import valid_schemes
from repro.experiments import table1_responses, table3_distributions

TINY = Scale("tiny", warmup=300, measure=600, sweep_points=2,
             trace_duration=6000)


class TestScales:
    def test_registry(self):
        assert set(SCALES) == {"smoke", "paper"}
        assert SCALES["paper"].measure == 30_000  # the paper's window

    def test_get_scale_passthrough(self):
        assert get_scale(TINY) is TINY
        assert get_scale("smoke") is SCALES["smoke"]

    def test_load_grid(self):
        grid = load_grid(TINY, 0.01)
        assert grid == [0.005, 0.01]
        assert all(l <= MAX_LOAD_BY_VCS[4] for l in load_grid(TINY, 0.016))


class TestValidSchemes:
    def test_pat100_at_4vcs(self):
        assert valid_schemes("PAT100", 4) == ["SA", "PR"]

    def test_pat721_at_4vcs(self):
        assert valid_schemes("PAT721", 4) == ["DR", "PR"]

    def test_pat721_at_8vcs(self):
        assert valid_schemes("PAT721", 8) == ["SA", "DR", "PR"]

    def test_pat280_at_4vcs(self):
        # Three types used: SA needs 6 VCs, DR and PR are fine.
        assert valid_schemes("PAT280", 4) == ["DR", "PR"]

    def test_pat280_at_8vcs(self):
        assert valid_schemes("PAT280", 8) == ["SA", "DR", "PR"]


class TestSweepScheme:
    def test_label_and_points(self):
        sweep = sweep_scheme("PR", "PAT721", 4, TINY, seed=3)
        assert sweep.label == "PR/PAT721/4vc"
        assert 1 <= len(sweep.points) <= 2
        assert all(p.scheme == "PR" for p in sweep.points)

    def test_qa_label(self):
        sweep = sweep_scheme("PR", "PAT721", 4, TINY, seed=3,
                             queue_mode="per-type")
        assert sweep.label.startswith("PR-QA/")


class TestCharacterizationExperiments:
    def test_table1_runs_at_tiny_scale(self):
        rows = table1_responses.run(TINY)
        assert set(rows) == {"fft", "lu", "radix", "water"}
        for dist in rows.values():
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_table3_structure(self):
        rows = table3_distributions.run("smoke")
        assert set(rows) == {"PAT100", "PAT721", "PAT451", "PAT271", "PAT280"}
        for row in rows.values():
            assert len(row["closed_form"]) == 4
            assert len(row["monte_carlo"]) == 4

    def test_runner_rejects_unknown_experiment(self):
        from repro.experiments import runner

        with pytest.raises(SystemExit):
            runner.main(["bogus"])
