"""Tests for the scheme factory, classifications and validity rules."""

import pytest

from repro import SimConfig
from repro.core.schemes import build_scheme, walk_specs
from repro.network.topology import Torus
from repro.protocol.chains import GENERIC_MSI, GENERIC_ORIGIN
from repro.protocol.message import MessageSpec, NetClass
from repro.protocol.transactions import PAT100, PAT271, PAT280, PAT721
from repro.traffic.synthetic import pattern_couplings
from repro.util.errors import ConfigurationError

TOPO = Torus((4, 4))


def make(scheme, pattern, **kwargs):
    cfg = SimConfig(scheme=scheme, pattern=pattern.name, **kwargs)
    return build_scheme(
        cfg, TOPO, pattern.protocol, pattern.types_used, pattern_couplings(pattern)
    )


class TestFactory:
    def test_unknown_scheme_rejected(self):
        cfg = SimConfig()
        object.__setattr__(cfg, "scheme", "BOGUS")
        with pytest.raises(ConfigurationError):
            build_scheme(cfg, TOPO, GENERIC_MSI, ("m1", "m4"), set())

    def test_all_schemes_constructible(self):
        for name, pattern, vcs in [
            ("SA", PAT100, 4),
            ("DR", PAT721, 4),
            ("PR", PAT721, 4),
            ("NONE", PAT721, 4),
        ]:
            s = make(name, pattern, num_vcs=vcs)
            assert s.name == name
            info = s.describe()
            assert info["scheme"] == name


class TestStrictAvoidance:
    def test_needs_two_escape_vcs_per_type(self):
        # Paper: SA infeasible at 4 VCs for chains longer than two.
        with pytest.raises(ConfigurationError):
            make("SA", PAT721, num_vcs=4)
        make("SA", PAT721, num_vcs=8)  # feasible

    def test_pat100_sa_at_4vcs_is_valid(self):
        s = make("SA", PAT100, num_vcs=4)
        assert s.vc_map.num_classes == 2

    def test_queue_and_vc_class_per_type(self):
        s = make("SA", PAT721, num_vcs=8)
        names = ["m1", "m2", "m3", "m4"]
        for i, n in enumerate(names):
            t = GENERIC_MSI.type_named(n)
            assert s.queue_class_of(t) == i
            assert s.vc_class_of(t) == i
        assert s.num_queue_classes == 4

    def test_no_reservations(self):
        s = make("SA", PAT721, num_vcs=8)
        assert not s.wants_reservation(GENERIC_MSI.type_named("m4"))

    def test_adaptive_iff_extra_channels(self):
        assert not make("SA", PAT721, num_vcs=8).routing.adaptive
        assert make("SA", PAT721, num_vcs=16).routing.adaptive

    def test_rejects_shared_queue_mode(self):
        with pytest.raises(ConfigurationError):
            make("SA", PAT721, num_vcs=8, queue_mode="shared")


class TestDeflectiveRecovery:
    def test_invalid_for_two_type_patterns(self):
        with pytest.raises(ConfigurationError):
            make("DR", PAT100, num_vcs=4)

    def test_two_logical_networks(self):
        s = make("DR", PAT721, num_vcs=4)
        assert s.vc_map.num_classes == 2
        assert s.num_queue_classes == 2

    def test_net_classification(self):
        s = make("DR", PAT721, num_vcs=4)
        assert s.vc_class_of(GENERIC_MSI.type_named("m1")) == 0
        assert s.vc_class_of(GENERIC_MSI.type_named("m2")) == 0
        assert s.vc_class_of(GENERIC_MSI.type_named("m3")) == 1
        assert s.vc_class_of(GENERIC_MSI.type_named("m4")) == 1
        assert s.vc_class_of(GENERIC_MSI.backoff) == 1

    def test_reply_types_reserved(self):
        s = make("DR", PAT721, num_vcs=4)
        assert s.wants_reservation(GENERIC_MSI.type_named("m4"))
        assert s.wants_reservation(GENERIC_MSI.backoff)
        assert not s.wants_reservation(GENERIC_MSI.type_named("m1"))

    def test_qa_mode_uses_per_type_queues(self):
        s = make("DR", PAT271, num_vcs=16, queue_mode="per-type")
        assert s.num_queue_classes == 4
        # BRP shares the terminating reply's queue under QA.
        assert s.queue_class_of(GENERIC_MSI.backoff) == 3

    def test_origin_mapping(self):
        s = make("DR", PAT280, num_vcs=4)
        assert s.vc_class_of(GENERIC_ORIGIN.type_named("FRQ")) == 0
        assert s.vc_class_of(GENERIC_ORIGIN.type_named("TRP")) == 1

    def test_request_couplings(self):
        s = make("DR", PAT721, num_vcs=4)
        reqs = s.request_couplings()
        assert ("m1", "m2") in reqs
        assert all(
            GENERIC_MSI.type_named(child).net_class == NetClass.REQUEST
            for _, child in reqs
        )


class TestProgressiveRecovery:
    def test_single_shared_network(self):
        s = make("PR", PAT721, num_vcs=4)
        assert s.vc_map.num_classes == 1
        assert s.vc_map.escape == (None,)
        assert s.num_queue_classes == 1
        assert s.vc_map.availability(0) == 4

    def test_qa_mode(self):
        s = make("PR", PAT271, num_vcs=16, queue_mode="per-type")
        assert s.num_queue_classes == 4
        assert s.vc_class_of(GENERIC_MSI.type_named("m3")) == 0

    def test_no_reservations(self):
        s = make("PR", PAT721, num_vcs=4)
        assert not s.wants_reservation(GENERIC_MSI.type_named("m4"))


class TestMakeReservations:
    class FakeBank:
        def __init__(self, frees):
            from repro.endpoint.queues import MessageQueue

            self.queues = [MessageQueue(cap) for cap in frees]

        def queue(self, cls):
            return self.queues[cls]

    def test_all_or_nothing_rollback(self):
        s = make("DR", PAT721, num_vcs=4)
        m3 = GENERIC_MSI.type_named("m3")
        m4 = GENERIC_MSI.type_named("m4")
        bank = self.FakeBank([4, 1])  # reply queue has one slot
        cont = (
            MessageSpec(m3, 5, (MessageSpec(m4, 5),)),
        )
        # Two reply-class reservations needed at node 5, one slot free.
        assert not s.make_reservations(5, bank, cont)
        assert bank.queue(1).reserved == 0  # rolled back

    def test_reserves_only_for_own_node(self):
        s = make("DR", PAT721, num_vcs=4)
        m4 = GENERIC_MSI.type_named("m4")
        bank = self.FakeBank([4, 4])
        cont = (MessageSpec(m4, 9),)
        assert s.make_reservations(5, bank, cont)
        assert bank.queue(1).reserved == 0  # dst 9 != node 5


class TestWalkSpecs:
    def test_walks_all_depths(self):
        m2 = GENERIC_MSI.type_named("m2")
        m4 = GENERIC_MSI.type_named("m4")
        tree = (MessageSpec(m2, 1, (MessageSpec(m4, 2),)), MessageSpec(m4, 3))
        names = [s.mtype.name for s in walk_specs(tree)]
        assert names == ["m2", "m4", "m4"]
