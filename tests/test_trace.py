"""Tests for trace records, serialization and trace-driven traffic."""

import pytest

from repro import SimConfig
from repro.protocol.chains import MSI_COHERENCE
from repro.protocol.coherence import DirectoryMSI
from repro.sim.engine import Engine
from repro.traffic.trace import (
    TraceRecord,
    TraceTraffic,
    read_trace,
    trace_couplings,
    write_trace,
)
from repro.util.errors import ConfigurationError

MSI_TYPES = ("RQ", "FRQ", "FRP", "RP")


class TestRecords:
    def test_op_validated(self):
        with pytest.raises(ConfigurationError):
            TraceRecord(0, 0, "X", 1)

    def test_roundtrip(self, tmp_path):
        recs = [TraceRecord(5, 1, "R", 42), TraceRecord(9, 0, "W", 7)]
        path = tmp_path / "t.trace"
        write_trace(path, recs)
        assert read_trace(path) == recs

    def test_read_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# header\n\n1 0 R 3\n")
        assert read_trace(path) == [TraceRecord(1, 0, "R", 3)]


def build_engine(records, **cfg):
    coherence = DirectoryMSI(16)
    traffic = TraceTraffic(records, coherence)
    defaults = dict(dims=(4, 4), scheme="NONE", num_vcs=4, load=0.0)
    defaults.update(cfg)
    engine = Engine(
        SimConfig(**defaults),
        traffic=traffic,
        protocol=MSI_COHERENCE,
        types_used=MSI_TYPES,
        couplings=trace_couplings(),
    )
    return engine, traffic, coherence


class TestTraceTraffic:
    def test_replay_injects_transactions(self):
        recs = [TraceRecord(1, 0, "R", 3), TraceRecord(2, 1, "R", 3)]
        engine, traffic, coh = build_engine(recs)
        engine.run(300)
        assert traffic.generated == 2
        assert traffic.exhausted
        assert engine.stats.total.transactions_completed == 2

    def test_local_hits_generate_no_traffic(self):
        recs = [TraceRecord(1, 0, "R", 3), TraceRecord(2, 0, "R", 3)]
        engine, traffic, coh = build_engine(recs)
        engine.run(300)
        assert traffic.generated == 1
        assert coh.local_hits == 1

    def test_respects_record_timing(self):
        recs = [TraceRecord(100, 0, "R", 3)]
        engine, traffic, _ = build_engine(recs)
        engine.run(50)
        assert traffic.generated == 0
        engine.run(100)
        assert traffic.generated == 1

    def test_node_count_mismatch_rejected(self):
        coherence = DirectoryMSI(4)  # != 16 nodes
        traffic = TraceTraffic([], coherence)
        with pytest.raises(ConfigurationError):
            Engine(
                SimConfig(dims=(4, 4), scheme="NONE", load=0.0),
                traffic=traffic,
                protocol=MSI_COHERENCE,
                types_used=MSI_TYPES,
                couplings=trace_couplings(),
            )

    def test_forwarding_transaction_completes_end_to_end(self):
        recs = [TraceRecord(1, 0, "W", 3), TraceRecord(2, 1, "R", 3)]
        engine, traffic, coh = build_engine(recs)
        engine.run(1000)
        assert engine.stats.total.transactions_completed == 2
        assert engine.quiesce()

    def test_couplings_cover_protocol(self):
        c = trace_couplings()
        assert ("RQ", "FRQ") in c and ("FRQ", "FRP") in c
