"""Tests for SimConfig validation."""

import pytest

from repro.config import SimConfig
from repro.util.errors import ConfigurationError


class TestDefaults:
    def test_table2_defaults(self):
        cfg = SimConfig()
        assert cfg.dims == (8, 8)
        assert cfg.num_vcs == 4
        assert cfg.flit_buffer_depth == 2
        assert cfg.queue_capacity == 16
        assert cfg.service_time == 40
        assert cfg.bristling == 1
        assert cfg.detection_threshold == 25

    def test_with_returns_modified_copy(self):
        cfg = SimConfig()
        other = cfg.with_(load=0.01, scheme="DR")
        assert other.load == 0.01 and other.scheme == "DR"
        assert cfg.load != 0.01  # original untouched
        assert cfg is not other


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scheme": "XX"},
            {"queue_mode": "weird"},
            {"num_vcs": 0},
            {"flit_buffer_depth": 0},
            {"queue_capacity": 0},
            {"load": -0.1},
            {"load": 1.5},
            {"max_outstanding": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimConfig(**kwargs)

    def test_frozen(self):
        cfg = SimConfig()
        with pytest.raises(Exception):
            cfg.load = 0.5
