"""Tests for per-type breakdowns and the coupling monitor."""

from repro.sim.analysis import (
    format_breakdown,
    run_with_monitor,
    type_breakdown,
)
from tests.helpers import build_engine


class TestTypeBreakdown:
    def test_types_present_and_consistent(self):
        e = build_engine(scheme="PR", load=0.005, seed=3)
        e.run(2000)
        rows = type_breakdown(e.stats)
        assert "m1" in rows and "m4" in rows
        total = sum(r["delivered"] for r in rows.values())
        assert total == e.stats.total.messages_delivered
        for r in rows.values():
            assert r["mean_latency"] >= r["mean_network_time"] > 0
            assert r["mean_queue_wait"] >= 0

    def test_replies_longer_than_requests(self):
        # 20-flit replies take longer in the network than 4-flit requests.
        e = build_engine(scheme="PR", load=0.005, seed=3)
        e.run(3000)
        rows = type_breakdown(e.stats)
        assert rows["m4"]["mean_network_time"] > rows["m1"]["mean_network_time"]

    def test_format_breakdown_renders(self):
        e = build_engine(scheme="PR", load=0.005, seed=3)
        e.run(1000)
        text = format_breakdown(e.stats)
        assert "m1" in text and "latency" in text


class TestOccupancyMonitor:
    def test_sampling_counts(self):
        e = build_engine(scheme="PR", load=0.008, seed=3)
        mon = run_with_monitor(e, 1000, interval=100)
        assert mon.samples == 10
        assert sum(mon.occupancy_by_type.values()) >= 0

    def test_coupling_zero_when_empty(self):
        e = build_engine(scheme="PR", load=0.0)
        mon = run_with_monitor(e, 200, interval=50)
        assert mon.coupling_index() == 0.0

    def test_shared_queues_couple_more_than_per_type(self):
        # The Figure 10/11 mechanism, measured directly: shared queues
        # mix heterogeneous types; per-type (QA) queues cannot.
        shared = build_engine(scheme="PR", pattern="PAT271", num_vcs=16,
                              load=0.016, seed=3)
        mon_shared = run_with_monitor(shared, 2500, interval=50)
        qa = build_engine(scheme="PR", pattern="PAT271", num_vcs=16,
                          load=0.016, seed=3, queue_mode="per-type")
        mon_qa = run_with_monitor(qa, 2500, interval=50)
        assert mon_qa.coupling_index() == 0.0
        assert mon_shared.coupling_index() > 0.2
