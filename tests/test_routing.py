"""Tests for VC maps and routing functions, incl. escape acyclicity."""

import networkx as nx
import pytest

from repro.network.routing import (
    dimension_order_routing,
    duato_routing,
    duato_vc_map,
    partitioned_vc_map,
    tfar_vc_map,
)
from repro.network.topology import Torus, ring
from repro.protocol.chains import GENERIC_MSI
from repro.protocol.message import Message
from repro.util.errors import ConfigurationError

M1 = GENERIC_MSI.type_named("m1")


class TestVcMapPartitioning:
    def test_sa_16vc_4types_split_availability(self):
        # Paper: "three of the sixteen virtual channels are available for
        # routing of each message type for SA" (Figure 10 discussion).
        m = partitioned_vc_map(16, 4, shared_extras=False)
        assert all(m.availability(c) == 3 for c in range(4))

    def test_sa_16vc_4types_shared_availability(self):
        # "...or nine [21]".
        m = partitioned_vc_map(16, 4, shared_extras=True)
        assert all(m.availability(c) == 9 for c in range(4))

    def test_dr_16vc_availability(self):
        # "...seven (or 13 [21]) are available for DR".
        assert all(partitioned_vc_map(16, 2).availability(c) == 7 for c in (0, 1))
        m = partitioned_vc_map(16, 2, shared_extras=True)
        assert all(m.availability(c) == 13 for c in (0, 1))

    def test_sa_8vc_pat100_availability(self):
        # "three of the eight virtual channels ... for PAT100" (Fig 9).
        assert partitioned_vc_map(8, 2).availability(0) == 3

    def test_minimum_channels_enforced(self):
        # SA with chain length 4 needs E_m = 8 channels.
        with pytest.raises(ConfigurationError):
            partitioned_vc_map(4, 4)

    def test_exact_minimum_is_escape_only(self):
        m = partitioned_vc_map(8, 4)
        assert all(m.adaptive[c] == () for c in range(4))
        assert all(m.availability(c) == 1 for c in range(4))

    def test_partitions_disjoint_when_split(self):
        m = partitioned_vc_map(12, 3)
        seen = set()
        for cls in range(3):
            vcs = set(m.escape[cls]) | set(m.adaptive[cls])
            assert not (vcs & seen)
            seen |= vcs
        assert seen == set(range(12))

    def test_shared_extras_shared_by_all(self):
        m = partitioned_vc_map(10, 2, shared_extras=True)
        assert m.adaptive[0] == m.adaptive[1] == tuple(range(4, 10))

    def test_tfar_all_adaptive(self):
        m = tfar_vc_map(4)
        assert m.escape == (None,)
        assert m.adaptive[0] == (0, 1, 2, 3)
        assert m.availability(0) == 4

    def test_classes_of_vc(self):
        m = partitioned_vc_map(8, 2, shared_extras=True)
        assert m.classes_of_vc(0) == [0]
        assert m.classes_of_vc(5) == [0, 1]  # shared extra


def _escape_cdg(topology: Torus) -> nx.DiGraph:
    """Channel dependency graph of the escape (DOR + dateline) function.

    Nodes are (link id, escape class); edges connect consecutive escape
    hops of every (src, dst) dimension-order path.  Acyclicity of this
    graph is the Dally-Seitz condition for routing deadlock freedom.
    """
    g = nx.DiGraph()
    for src in range(topology.num_routers):
        for dst in range(topology.num_routers):
            if src == dst:
                continue
            crossed = 0
            prev = None
            for link in topology.dor_path(src, dst):
                cls = 1 if (link.crosses_dateline or (crossed >> link.dim) & 1) else 0
                if link.crosses_dateline:
                    crossed |= 1 << link.dim
                node = (link.lid, cls)
                g.add_node(node)
                if prev is not None:
                    g.add_edge(prev, node)
                prev = node
    return g


class TestEscapeAcyclicity:
    @pytest.mark.parametrize("dims", [(4,), (5,), (8,), (4, 4), (3, 5), (2, 2, 2)])
    def test_dor_dateline_escape_is_acyclic(self, dims):
        g = _escape_cdg(Torus(dims))
        assert nx.is_directed_acyclic_graph(g)


class _FakeFabricVcs:
    """Minimal link_vcs binding for routing-function unit tests."""

    def __init__(self, topology, num_vcs, depth=2):
        from repro.network.channel import VirtualChannel

        self.link_vcs = [
            [VirtualChannel(link, i, depth) for i in range(num_vcs)]
            for link in topology.links
        ]


class TestRoutingFunctions:
    def _setup(self, dims=(4, 4), num_vcs=4, kind="duato"):
        topo = Torus(dims)
        if kind == "duato":
            rf = duato_routing(topo, duato_vc_map(num_vcs))
        elif kind == "dor":
            rf = dimension_order_routing(topo, partitioned_vc_map(num_vcs, num_vcs // 2))
        else:
            from repro.network.routing import true_fully_adaptive_routing

            rf = true_fully_adaptive_routing(topo, tfar_vc_map(num_vcs))
        fake = _FakeFabricVcs(topo, num_vcs)
        rf.bind(fake.link_vcs)
        return topo, rf

    def test_dor_single_candidate(self):
        topo = Torus((4, 4))
        rf = dimension_order_routing(topo, partitioned_vc_map(4, 2))
        rf.bind(_FakeFabricVcs(topo, 4).link_vcs)
        msg = Message(M1, 0, 5)
        msg.vc_class = 0
        cands = rf.candidates(0, topo.router_id((2, 1)), msg)
        assert len(cands) == 1
        assert cands[0].link.dim == 0  # lowest dimension first

    def test_dor_requires_escape(self):
        topo = Torus((4, 4))
        with pytest.raises(ConfigurationError):
            dimension_order_routing(topo, tfar_vc_map(4))

    def test_duato_offers_adaptive_then_escape(self):
        topo, rf = self._setup()
        msg = Message(M1, 0, 0)
        msg.vc_class = 0
        dst = topo.router_id((1, 1))
        cands = rf.candidates(0, dst, msg)
        # 2 productive links x 2 adaptive VCs + 1 escape.
        assert len(cands) == 5
        esc = cands[-1]
        assert esc.index in (0, 1)

    def test_adaptive_candidates_exclude_owned(self):
        topo, rf = self._setup()
        msg = Message(M1, 0, 0)
        msg.vc_class = 0
        dst = topo.router_id((2, 2))
        for vc in rf.adaptive_candidates(0, dst, msg):
            vc.owner = msg  # occupy all
        assert rf.adaptive_candidates(0, dst, msg) == []

    def test_escape_class_flips_after_dateline(self):
        topo = ring(4)
        rf = dimension_order_routing(topo, partitioned_vc_map(2, 1))
        rf.bind(_FakeFabricVcs(topo, 2).link_vcs)
        msg = Message(M1, 0, 0)
        msg.vc_class = 0
        # Router 3 -> 0 crosses the dateline: class 1.
        vc = rf.escape_candidate(3, 0, msg)
        assert vc.index == 1
        # Plain hop 1 -> 2: class 0.
        vc = rf.escape_candidate(1, 2, msg)
        assert vc.index == 0
        # After a previous crossing the class stays 1.
        msg.crossed_mask = 1
        vc = rf.escape_candidate(1, 2, msg)
        assert vc.index == 1

    def test_tfar_has_no_escape(self):
        topo, rf = self._setup(kind="tfar")
        msg = Message(M1, 0, 0)
        msg.vc_class = 0
        assert rf.escape_candidate(0, 5, msg) is None
        cands = rf.candidates(0, topo.router_id((1, 1)), msg)
        assert all(vc.owner is None for vc in cands)

    def test_candidates_sorted_by_occupancy(self):
        topo, rf = self._setup()
        msg = Message(M1, 0, 0)
        msg.vc_class = 0
        dst = topo.router_id((2, 2))
        cands = rf.adaptive_candidates(0, dst, msg)
        cands[0].fifo.append((0, 0))  # make the first one fuller
        re_sorted = rf.adaptive_candidates(0, dst, msg)
        assert len(re_sorted[0].fifo) <= len(re_sorted[-1].fifo)


class TestTableRouting:
    """Table-driven routing on non-grid topologies (TableRouting)."""

    def _bound(self, topology, routing, num_vcs):
        routing.bind(_FakeFabricVcs(topology, num_vcs).link_vcs)
        return routing

    def test_factories_dispatch_on_topology(self):
        from repro.network.routing import (
            RoutingFunction,
            TableRouting,
            full_mesh_routing,
            true_fully_adaptive_routing,
        )
        from repro.network.topology import FullMesh, irregular_example

        assert isinstance(
            duato_routing(Torus((4, 4)), duato_vc_map(4)), RoutingFunction
        )
        fm = FullMesh(4)
        assert isinstance(
            true_fully_adaptive_routing(fm, tfar_vc_map(2)), TableRouting
        )
        cano = full_mesh_routing(fm)
        assert isinstance(cano, TableRouting)
        assert cano.name == "cano-direct"
        # Adaptivity over an up*/down* escape is refuted by cdg-check
        # (irregular9-adaptive-tree), so the factory disables it.
        updown = duato_routing(irregular_example(), partitioned_vc_map(4, 1))
        assert isinstance(updown, TableRouting)
        assert updown.adaptive is False

    def test_dor_requires_escape_off_grid(self):
        from repro.network.topology import irregular_example

        with pytest.raises(ConfigurationError):
            dimension_order_routing(irregular_example(), tfar_vc_map(4))

    def test_fullmesh_candidates_are_the_direct_link(self):
        from repro.network.routing import full_mesh_routing
        from repro.network.topology import FullMesh

        topo = FullMesh(4)
        rt = self._bound(topo, full_mesh_routing(topo), 1)
        msg = Message(M1, 0, 0)
        msg.vc_class = 0
        cands = rt.candidates(0, 3, msg)
        # VC-free direct routing: one adaptive VC on the direct link.
        assert [vc.link for vc in cands] == [topo.direct_link(0, 3)]

    def test_updown_escape_follows_the_tree(self):
        from repro.network.topology import irregular_example

        topo = irregular_example()
        rt = self._bound(
            topo, duato_routing(topo, partitioned_vc_map(4, 1)), 4
        )
        msg = Message(M1, 0, 0)
        msg.vc_class = 0
        for src in range(topo.num_routers):
            for dst in range(topo.num_routers):
                if src == dst:
                    continue
                esc = rt.escape_candidate(src, dst, msg)
                assert esc.link == topo.route_path(src, dst)[0]
                # No datelines off the grid: always class-0 of the pair.
                assert esc.index == rt.vc_map.escape[0][0]
                # Escape-only routing: the escape is the whole menu.
                assert rt.candidates(src, dst, msg) == [esc]

    def test_adaptive_table_offers_minimal_links_then_escape(self):
        from repro.network.routing import TableRouting
        from repro.network.topology import irregular_example

        topo = irregular_example()
        rt = self._bound(
            topo,
            TableRouting(topo, partitioned_vc_map(4, 1), adaptive=True),
            4,
        )
        msg = Message(M1, 0, 0)
        msg.vc_class = 0
        src, dst = 0, 5
        cands = rt.candidates(src, dst, msg)
        want = topo.min_hops(src, dst) - 1
        for vc in cands[:-1]:
            assert topo.min_hops(vc.link.dst, dst) == want
        assert cands[-1] is rt.escape_candidate(src, dst, msg)

    def test_escape_appended_even_when_occupied(self):
        from repro.network.topology import irregular_example

        topo = irregular_example()
        rt = self._bound(
            topo, duato_routing(topo, partitioned_vc_map(4, 1)), 4
        )
        msg = Message(M1, 0, 0)
        msg.vc_class = 0
        esc = rt.escape_candidate(2, 7, msg)
        esc.owner = Message(M1, 1, 2)
        assert rt.candidates(2, 7, msg) == [esc]

    def test_static_candidate_ids_match_dynamic_menu(self):
        from repro.network.routing import TableRouting
        from repro.network.topology import irregular_example

        topo = irregular_example()
        num_vcs = 4
        rt = self._bound(
            topo,
            TableRouting(topo, partitioned_vc_map(num_vcs, 1), adaptive=True),
            num_vcs,
        )
        msg = Message(M1, 0, 0)
        msg.vc_class = 0
        maxcand = rt.max_static_candidates()
        for src in range(topo.num_routers):
            for dst in range(topo.num_routers):
                if src == dst:
                    continue
                adaptive, esc = rt.static_candidate_ids(src, dst, 0, 0)
                assert len(adaptive) <= maxcand
                cands = rt.candidates(src, dst, msg)
                ids = [vc.link.lid * num_vcs + vc.index for vc in cands]
                assert sorted(ids[:-1]) == sorted(adaptive)
                assert ids[-1] == esc
