"""Tests for the circulating token."""

import pytest

from repro.core.token import Stop, Token, default_ring
from repro.network.topology import Torus
from repro.util.errors import SimulationError


class TestRing:
    def test_default_ring_visits_routers_and_nis(self):
        topo = Torus((2, 2), bristling=2)
        stops = default_ring(topo)
        routers = [s for s in stops if s.kind == "router"]
        nis = [s for s in stops if s.kind == "ni"]
        assert len(routers) == 4
        assert len(nis) == 8  # "the circulating token must also visit all NIs"
        # NIs follow their router.
        assert stops[0] == Stop("router", 0)
        assert stops[1] == Stop("ni", 0)
        assert stops[2] == Stop("ni", 1)

    def test_empty_ring_rejected(self):
        with pytest.raises(SimulationError):
            Token([])


class TestTokenStateMachine:
    def setup_method(self):
        self.token = Token(default_ring(Torus((2, 2))))

    def test_advances_one_stop_per_cycle(self):
        first = self.token.at
        nxt = self.token.advance()
        assert nxt != first or len(self.token.stops) == 1

    def test_laps_counted(self):
        n = len(self.token.stops)
        for _ in range(n):
            self.token.advance()
        assert self.token.laps == 1

    def test_capture_release_cycle(self):
        stop = self.token.advance()
        self.token.capture(stop)
        assert self.token.state == Token.HELD
        assert self.token.holder == stop
        assert self.token.captures == 1
        self.token.release(at_stop=stop)
        assert self.token.state == Token.CIRCULATING
        assert self.token.holder is None

    def test_release_positions_token(self):
        target = self.token.stops[3]
        self.token.capture(self.token.at)
        self.token.release(at_stop=target)
        assert self.token.at == target

    def test_single_holder_invariant(self):
        stop = self.token.at
        self.token.capture(stop)
        with pytest.raises(SimulationError):
            self.token.capture(stop)

    def test_cannot_advance_held_token(self):
        self.token.capture(self.token.at)
        with pytest.raises(SimulationError):
            self.token.advance()

    def test_cannot_release_free_token(self):
        with pytest.raises(SimulationError):
            self.token.release()
