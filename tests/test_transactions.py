"""Tests for transaction patterns (Table 3)."""

import pytest

from repro.protocol.chains import GENERIC_MSI
from repro.protocol.message import count_messages
from repro.protocol.transactions import (
    PAT100,
    PAT271,
    PAT280,
    PAT451,
    PAT721,
    PATTERNS,
    TransactionPattern,
)
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng


class TestTable3ClosedForm:
    """The paper's Table 3 message-type distribution columns."""

    @pytest.mark.parametrize(
        "pattern,expected",
        [
            (PAT100, {"m1": 0.500, "m2": 0.0, "m3": 0.0, "m4": 0.500}),
            (PAT451, {"m1": 0.371, "m2": 0.221, "m3": 0.037, "m4": 0.371}),
            (PAT271, {"m1": 0.345, "m2": 0.276, "m3": 0.034, "m4": 0.345}),
        ],
    )
    def test_matches_paper_rows(self, pattern, expected):
        # Paper rows are rounded to one decimal place (abs tol 0.002).
        dist = pattern.type_distribution()
        for name, want in expected.items():
            assert dist[name] == pytest.approx(want, abs=2e-3)

    def test_pat280_matches_paper_row(self):
        dist = PAT280.type_distribution()
        assert dist["ORQ"] == pytest.approx(0.357, abs=2e-3)
        assert dist["FRQ"] == pytest.approx(0.286, abs=2e-3)
        assert dist["TRP"] == pytest.approx(0.357, abs=2e-3)

    def test_pat721_documents_paper_erratum(self):
        # The paper's PAT721 row (47.7/12.4/4.2/47.7) sums to 112%; the
        # chain-length mix implies 41.7/12.5/4.2/41.7 which sums to 100%.
        dist = PAT721.type_distribution()
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist["m1"] == pytest.approx(1 / 2.4, abs=5e-4)
        assert dist["m2"] == pytest.approx(0.3 / 2.4, abs=5e-4)
        assert dist["m3"] == pytest.approx(0.1 / 2.4, abs=5e-4)

    def test_distributions_always_sum_to_one(self):
        for pattern in PATTERNS.values():
            assert sum(pattern.type_distribution().values()) == pytest.approx(1.0)

    def test_mean_chain_lengths(self):
        assert PAT100.mean_chain_length() == pytest.approx(2.0)
        assert PAT721.mean_chain_length() == pytest.approx(2.4)
        assert PAT271.mean_chain_length() == pytest.approx(2.9)
        assert PAT280.mean_chain_length() == pytest.approx(2.8)


class TestPatternMetadata:
    def test_types_used(self):
        assert PAT100.types_used == ("m1", "m4")
        assert PAT721.types_used == ("m1", "m2", "m3", "m4")
        assert PAT280.types_used == ("ORQ", "FRQ", "TRP")

    def test_dr_validity(self):
        # "for PAT100, DR is not valid" (Section 4.3.2).
        assert not PAT100.dr_valid
        assert PAT721.dr_valid and PAT280.dr_valid

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            TransactionPattern("bad", GENERIC_MSI, ((2, 0.5), (3, 0.2)))

    def test_unsupported_length_rejected(self):
        with pytest.raises(ConfigurationError):
            TransactionPattern("bad", GENERIC_MSI, ((7, 1.0),))


class TestBuildTransaction:
    def test_length2_structure(self):
        txn = PAT100.build_transaction(0, 5, 9, created_cycle=3, length=2)
        root = txn.root
        assert root.mtype.name == "m1" and root.src == 0 and root.dst == 5
        (reply,) = root.continuation
        assert reply.mtype.name == "m4" and reply.dst == 0
        assert reply.continuation == ()
        assert txn.outstanding == 2 and txn.messages_used == 2

    def test_length3_goes_through_third_party(self):
        txn = PAT721.build_transaction(0, 5, 9, 0, length=3)
        (fwd,) = txn.root.continuation
        assert fwd.mtype.name == "m2" and fwd.dst == 9
        (reply,) = fwd.continuation
        assert reply.mtype.name == "m4" and reply.dst == 0

    def test_length4_returns_via_home(self):
        txn = PAT721.build_transaction(0, 5, 9, 0, length=4)
        (fwd,) = txn.root.continuation
        (back,) = fwd.continuation
        (reply,) = back.continuation
        assert fwd.dst == 9 and back.dst == 5 and reply.dst == 0
        assert [s.mtype.name for s in (fwd, back, reply)] == ["m2", "m3", "m4"]
        assert 1 + count_messages(txn.root.continuation) == 4

    def test_pat280_uses_origin_names(self):
        txn = PAT280.build_transaction(1, 2, 3, 0, length=3)
        assert txn.root.mtype.name == "ORQ"
        (frq,) = txn.root.continuation
        assert frq.mtype.name == "FRQ"

    def test_sampling_respects_probabilities(self):
        rng = make_rng(11, "test")
        lengths = [PAT271.sample_chain_length(rng) for _ in range(4000)]
        frac3 = lengths.count(3) / len(lengths)
        assert frac3 == pytest.approx(0.7, abs=0.04)

    def test_needs_length_or_rng(self):
        with pytest.raises(ConfigurationError):
            PAT100.build_transaction(0, 1, 2, 0)

    def test_chain_respects_total_order(self):
        for length in (2, 3, 4):
            names = PAT721.chain_type_names(length)
            GENERIC_MSI.validate_chain(names)
