"""Tests for the flit-movement engine using a bare fabric harness."""

from repro.network.fabric import Fabric
from repro.network.routing import duato_routing, duato_vc_map
from repro.network.topology import Torus
from repro.protocol.chains import GENERIC_MSI
from repro.protocol.message import Message

M1 = GENERIC_MSI.type_named("m1")
M4 = GENERIC_MSI.type_named("m4")


class Harness:
    """A fabric with trivially-accepting endpoints for direct testing."""

    def __init__(self, dims=(4, 4), num_vcs=4, depth=2, accept=True):
        self.topology = Torus(dims)
        routing = duato_routing(self.topology, duato_vc_map(num_vcs))
        self.fabric = Fabric(self.topology, num_vcs, depth, routing)
        self.delivered = []
        self.accept = [accept] * self.topology.num_nodes
        for node in range(self.topology.num_nodes):
            self.fabric.set_endpoint_hooks(
                node,
                (lambda n: (lambda msg: self.accept[n]))(node),
                lambda msg, now: self.delivered.append((msg, now)),
            )
        self.now = 0

    def inject(self, msg):
        msg.vc_class = 0
        chan = self.fabric.injection_channel(msg.src, 0)
        self.fabric.start_injection(chan, msg, self.now)

    def run(self, cycles):
        for _ in range(cycles):
            self.now += 1
            self.fabric.step(self.now)


class TestSinglePacket:
    def test_delivery_and_flit_conservation(self):
        h = Harness()
        msg = Message(M1, src=0, dst=h.topology.router_id((2, 1)))
        h.inject(msg)
        h.run(60)
        assert [m for m, _ in h.delivered] == [msg]
        assert msg.flits_sent == msg.size
        assert msg.flits_ejected == msg.size
        assert msg.hops == h.topology.min_hops(0, msg.dst)

    def test_latency_scales_with_distance_and_size(self):
        h1 = Harness()
        near = Message(M1, src=0, dst=1)
        h1.inject(near)
        h1.run(60)
        t_near = h1.delivered[0][1]

        h2 = Harness()
        far = Message(M4, src=0, dst=h2.topology.router_id((2, 2)))
        h2.inject(far)
        h2.run(80)
        t_far = h2.delivered[0][1]
        assert t_far > t_near

    def test_pipeline_latency_lower_bound(self):
        # A packet needs at least hops + size cycles.
        h = Harness()
        dst = h.topology.router_id((2, 1))
        msg = Message(M4, src=0, dst=dst)
        h.inject(msg)
        h.run(200)
        hops = h.topology.min_hops(0, dst)
        assert h.delivered[0][1] >= hops + msg.size

    def test_local_delivery_same_router(self):
        # With bristling, messages between co-located nodes bypass links.
        topo_dims = (2, 2)
        h = Harness(dims=topo_dims)
        h.fabric.topology = Torus(topo_dims, bristling=1)
        msg = Message(M1, src=0, dst=0)
        h.inject(msg)
        h.run(30)
        assert len(h.delivered) == 1
        assert msg.hops == 0

    def test_wormhole_spans_multiple_channels(self):
        # A 20-flit packet over 2-flit buffers must stretch across VCs.
        h = Harness(dims=(8, 8), depth=2)
        msg = Message(M4, src=0, dst=h.topology.router_id((4, 0)))
        h.inject(msg)
        h.run(6)
        occupied = [
            vc for vcs in h.fabric.link_vcs for vc in vcs if vc.owner is msg
        ]
        assert len(occupied) >= 2


class TestBlockingAndBackpressure:
    def test_rejected_delivery_blocks_in_network(self):
        h = Harness(accept=False)
        msg = Message(M1, src=0, dst=5)
        h.inject(msg)
        h.run(50)
        assert not h.delivered
        # The header is stuck waiting at its destination router.
        frontiers = h.fabric.frontier_senders()
        assert any(s.owner is msg for s in frontiers)
        assert msg.blocked_since >= 0

    def test_blocked_frontiers_reported_after_threshold(self):
        h = Harness(accept=False)
        msg = Message(M1, src=0, dst=5)
        h.inject(msg)
        h.run(50)
        assert h.fabric.blocked_frontiers(h.now, threshold=10)
        assert not h.fabric.blocked_frontiers(h.now, threshold=10_000)

    def test_acceptance_resumes_delivery(self):
        h = Harness(accept=False)
        msg = Message(M1, src=0, dst=5)
        h.inject(msg)
        h.run(40)
        h.accept[5] = True
        h.run(40)
        assert [m for m, _ in h.delivered] == [msg]


class TestLinkDiscipline:
    def test_one_flit_per_link_per_cycle(self):
        h = Harness(dims=(4,), num_vcs=4)
        # Two packets from node 0 and node 3 both crossing link 1->2.
        a = Message(M4, src=1, dst=2)
        b = Message(M4, src=1, dst=2)
        h.inject(a)
        chan = h.fabric.injection_channel(1, 1)
        b.vc_class = 0
        h.fabric.start_injection(chan, b, h.now)
        before = h.fabric.flits_forwarded
        h.run(1)
        moved = h.fabric.flits_forwarded - before
        # At most one flit per NI per cycle limits node 1's injection.
        assert moved <= 1

    def test_many_packets_all_delivered(self):
        h = Harness(dims=(4, 4))
        msgs = []
        for src in range(16):
            m = Message(M1, src=src, dst=(src + 5) % 16)
            msgs.append(m)
            h.inject(m)
        h.run(400)
        assert len(h.delivered) == 16
        assert h.fabric.occupancy() == 0
        assert not h.fabric.pending

    def test_dateline_crossing_sets_mask(self):
        h = Harness(dims=(4,))
        msg = Message(M1, src=3, dst=0)  # +1 direction crosses dateline
        h.inject(msg)
        h.run(40)
        assert msg.crossed_mask & 1


class TestLinkRoundRobinAfterTailDeparture:
    """Regression test: the RR pointer must track the sender removal.

    When a tail flit departs, the winning sender is removed from the
    link's sender list, shifting every later sender down one slot.  The
    old pointer update ``(start + i + 1) % len(senders)`` was computed
    against the *new* length, so the sender immediately after the
    departed one lost its turn — under contention it could be skipped
    every round (starvation).
    """

    @staticmethod
    def _vc_sender(fabric, link_idx, vc_idx, msg, flits):
        """Hand-load a VC with flits of ``msg``, ready to depart."""
        vc = fabric.link_vcs[link_idx][vc_idx]
        vc.owner = msg
        for f in flits:
            vc.fifo.append((f, 0))
            vc.ledger[0] += 1
        return vc

    def test_next_sender_wins_after_tail_frees_link(self):
        h = Harness(dims=(4, 4), num_vcs=4, depth=4)
        f = h.fabric
        lid = 0  # the contended link; senders sit on an upstream link
        upstream = 1
        msg_a = Message(M4, src=0, dst=5)
        msg_b = Message(M4, src=1, dst=5)
        msg_c = Message(M4, src=2, dst=5)
        assert msg_a.size >= 4  # flits 1, 2 below must be body flits
        tail = msg_a.size - 1
        # A holds only its tail; B and C each hold two body flits.
        s_a = self._vc_sender(f, upstream, 0, msg_a, [tail])
        s_b = self._vc_sender(f, upstream, 1, msg_b, [1, 2])
        s_c = self._vc_sender(f, upstream, 2, msg_c, [1, 2])
        sinks = {}
        for name, sender, msg in [("A", s_a, msg_a), ("B", s_b, msg_b),
                                  ("C", s_c, msg_c)]:
            sink = f.link_vcs[lid][ord(name) - ord("A")]
            sink.owner = msg
            sender.next_sink = sink
            sinks[name] = sink
        f.link_senders[lid] = [
            (s_a, sinks["A"], False),
            (s_b, sinks["B"], False),
            (s_c, sinks["C"], False),
        ]
        f._busy_links.setdefault(lid)
        f._link_rr[lid] = 0

        winners = []
        for now in range(1, 6):
            before = {k: len(v.fifo) for k, v in sinks.items()}
            f._phase_links(now)
            for k, v in sinks.items():
                if len(v.fifo) > before[k]:
                    winners.append(k)
        # Cycle 1: A sends its tail and leaves the link.  Cycle 2 must go
        # to B — the buggy pointer update skipped straight to C, and with
        # sustained contention B would starve ([A, C, B, C, B] order).
        assert winners[0] == "A"
        assert winners[1] == "B", "sender after a departed tail was skipped"
        assert winners == ["A", "B", "C", "B", "C"]
