"""Tests for the static deadlock-freedom certifier (repro.analysis.cdg).

Three layers:

* structural — verdicts of the built-in registry, cycle/witness
  well-formedness, determinism;
* cross-validation — a statically CERTIFIED pair must never deadlock in
  simulation (property-tested over seeds, with the omniscient CWG
  ground-truth checker armed), and the shipped REFUTED examples must
  reproduce a deadlock the endpoint detector confirms;
* gate semantics — ``gate_failures`` flags exactly the mismatches and
  un-annotated refutations the ``cdg-certify`` CI job fails on.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    builtin_pairs,
    check,
    check_all,
    check_pair,
    gate_failures,
)
from repro.analysis.cdg import CERTIFIED, REFUTED
from repro.config import SimConfig
from repro.network.routing import (
    dimension_order_routing,
    partitioned_vc_map,
    tfar_vc_map,
    true_fully_adaptive_routing,
)
from repro.network.topology import Mesh2D, ring
from repro.sim.engine import Engine


class TestRegistry:
    def test_every_builtin_pair_matches_its_expectation(self):
        for report in check_all():
            assert report.verdict == report.expected, report.name

    def test_refuted_pairs_are_annotated(self):
        for pair in builtin_pairs():
            if pair.expected == REFUTED:
                assert pair.annotation, pair.name

    def test_gate_is_green_on_the_shipped_registry(self):
        assert gate_failures(check_all()) == []

    def test_names_unique(self):
        names = [pair.name for pair in builtin_pairs()]
        assert len(names) == len(set(names))

    def test_registry_covers_every_topology_kind(self):
        kinds = {check_pair(p).topology.split("(")[0]
                 for p in builtin_pairs()}
        assert kinds == {"Torus", "Mesh2D", "FullMesh", "IrregularGraph"}


class TestReports:
    def test_refuted_cycle_is_a_real_cycle(self):
        t = ring(8)
        report = check(t, true_fully_adaptive_routing(t, tfar_vc_map(2)))
        assert report.verdict == REFUTED
        cycle = report.cycle
        assert len(cycle) >= 2
        for (_, head), (tail, _) in zip(cycle, cycle[1:] + cycle[:1]):
            assert head == tail
        num_channels = len(t.links) * 2
        assert all(0 <= a < num_channels and 0 <= b < num_channels
                   for a, b in cycle)
        assert len(report.cycle_lines) == len(cycle)

    def test_certified_witness_is_a_duplicate_free_channel_list(self):
        t = ring(8)
        report = check(t, dimension_order_routing(t, partitioned_vc_map(2, 1)))
        assert report.verdict == CERTIFIED
        assert len(set(report.witness)) == len(report.witness)
        num_channels = len(t.links) * 2
        assert all(0 <= c < num_channels for c in report.witness)

    def test_full_cdg_condition_used_without_escape(self):
        t = ring(4)
        report = check(t, true_fully_adaptive_routing(t, tfar_vc_map(2)))
        assert report.condition == "full-cdg"
        assert report.num_escape_channels == 0

    def test_escape_condition_used_with_escape(self):
        t = Mesh2D((3, 3))
        report = check(t, dimension_order_routing(t, partitioned_vc_map(2, 1)))
        assert report.condition == "escape-extended"
        assert report.num_escape_channels > 0

    def test_check_is_deterministic(self):
        t = ring(6)
        routing = true_fully_adaptive_routing(t, tfar_vc_map(2))
        a = check(t, routing)
        b = check(t, routing)
        assert a.to_dict() == b.to_dict()

    def test_format_and_to_dict_roundtrip_core_fields(self):
        report = check_pair(builtin_pairs()[0])
        text = report.format()
        assert report.name in text and report.verdict in text
        payload = report.to_dict()
        assert payload["verdict"] == report.verdict
        assert payload["expected"] == report.expected


class TestGateSemantics:
    def test_mismatch_is_flagged(self):
        report = check_pair(builtin_pairs()[0])
        report = replace(report, expected=REFUTED)
        assert any("expected REFUTED" in p for p in gate_failures([report]))

    def test_unannotated_refutation_is_flagged(self):
        refuted = next(
            check_pair(p) for p in builtin_pairs() if p.expected == REFUTED
        )
        stripped = replace(refuted, annotation=None)
        assert any("un-annotated" in p for p in gate_failures([stripped]))
        assert gate_failures([refuted]) == []


#: SA realizes certified escape routing on each substrate; saturation
#: loads with the CWG ground-truth checker armed every 50 cycles.
_CERTIFIED_CONFIGS = {
    "torus": SimConfig(topology="torus", dims=(4, 4), scheme="SA",
                       pattern="PAT721", num_vcs=8, cwg_interval=50,
                       load=0.02),
    "mesh2d": SimConfig(topology="mesh2d", dims=(4, 4), scheme="SA",
                        pattern="PAT721", num_vcs=8, cwg_interval=50,
                        load=0.02),
    "irregular": SimConfig(topology="irregular", scheme="SA",
                           pattern="PAT721", num_vcs=8, cwg_interval=50,
                           load=0.02),
}


@settings(max_examples=6, deadline=None)
@given(kind=st.sampled_from(sorted(_CERTIFIED_CONFIGS)),
       seed=st.integers(1, 1_000))
def test_certified_pairs_never_deadlock_under_saturation(kind, seed):
    """CERTIFIED statically => no deadlock dynamically (any seed)."""
    engine = Engine(_CERTIFIED_CONFIGS[kind].with_(seed=seed))
    window = engine.run_measured(400, 1600)
    assert window.deadlocks + window.deadlocks_unresolved == 0
    assert engine.cwg_knots_seen == 0


def test_refuted_torus_example_deadlocks_and_detector_confirms():
    """REFUTED statically => the endpoint detector finds it dynamically."""
    engine = Engine(SimConfig(topology="torus", dims=(4, 4), scheme="PR",
                              pattern="PAT271", num_vcs=4, load=0.02,
                              seed=3))
    window = engine.run_measured(500, 2500)
    assert window.deadlocks + window.deadlocks_unresolved > 0


def test_refuted_irregular_example_deadlocks_and_detector_confirms():
    engine = Engine(SimConfig(topology="irregular", scheme="PR",
                              pattern="PAT271", num_vcs=4, load=0.02,
                              seed=3))
    window = engine.run_measured(500, 2500)
    assert window.deadlocks + window.deadlocks_unresolved > 0
