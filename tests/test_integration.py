"""Cross-module integration tests: schemes under stress, paper shapes.

These run the full simulator near and past saturation and assert the
qualitative results the paper reports.  They use short windows, so the
assertions are deliberately coarse (orderings and large margins, not
absolute values).
"""

from repro import SimConfig
from repro.core.token import Token
from repro.sim.sweep import run_point
from tests.helpers import build_engine


class TestStressBehaviour:
    def test_pr_recovers_under_heavy_load(self):
        e = build_engine(scheme="PR", pattern="PAT271", num_vcs=4,
                         load=0.018, seed=3)
        w = e.run_measured(1500, 2500)
        ctl = e.scheme.controller
        assert w.messages_delivered > 1000
        assert ctl.rescues > 0  # deadlocks formed and were recovered
        # Single-token invariant held throughout (guarded by Token);
        # the token is healthy at the end.
        assert ctl.token.state in (Token.CIRCULATING, Token.HELD)

    def test_dr_deflects_under_heavy_load(self):
        e = build_engine(scheme="DR", pattern="PAT271", num_vcs=4,
                         load=0.022, seed=4)
        w = e.run_measured(1500, 2500)
        assert w.messages_delivered > 500
        assert e.scheme.controller.deflections > 0

    def test_sa_never_detects_deadlock(self):
        e = build_engine(scheme="SA", pattern="PAT721", num_vcs=8,
                         load=0.02, seed=3)
        w = e.run_measured(1500, 2500)
        assert w.messages_delivered > 1000
        assert e.scheme.deadlocks_detected == 0
        assert w.deadlocks + w.deadlocks_unresolved == 0

    def test_pr_rescued_messages_are_not_extra(self):
        e = build_engine(scheme="PR", pattern="PAT271", num_vcs=4,
                         load=0.018, seed=3)
        e.run(4000)
        for txn in e.traffic.transactions:
            assert txn.messages_used == txn.chain_length

    def test_dr_deflections_add_messages(self):
        e = build_engine(scheme="DR", pattern="PAT271", num_vcs=4,
                         load=0.022, seed=4)
        e.run(4000)
        deflected = [t for t in e.traffic.transactions if t.deflections]
        assert deflected
        for txn in deflected:
            assert txn.messages_used == txn.chain_length + txn.deflections


class TestPaperShapes:
    """Coarse reproductions of the headline comparisons."""

    def _saturation(self, scheme, pattern, vcs, queue_mode="auto", seed=3):
        best = 0.0
        for load in (0.008, 0.012, 0.016):
            cfg = SimConfig(scheme=scheme, pattern=pattern, num_vcs=vcs,
                            load=load, queue_mode=queue_mode, seed=seed)
            p = run_point(cfg, warmup=1200, measure=2200)
            best = max(best, p.throughput_fpc)
        return best

    def test_fig8_pr_beats_dr_with_4vcs(self):
        pr = self._saturation("PR", "PAT721", 4)
        dr = self._saturation("DR", "PAT721", 4)
        assert pr > 1.2 * dr

    def test_fig8_pr_beats_sa_on_pat100(self):
        pr = self._saturation("PR", "PAT100", 4)
        sa = self._saturation("SA", "PAT100", 4)
        assert pr > 1.2 * sa

    def test_fig11_qa_recovers_shared_queue_penalty(self):
        shared = self._saturation("PR", "PAT271", 16)
        qa = self._saturation("PR", "PAT271", 16, queue_mode="per-type")
        assert qa > shared

    def test_fig10_sa_beats_shared_queue_pr_at_16vcs(self):
        sa = self._saturation("SA", "PAT271", 16)
        pr = self._saturation("PR", "PAT271", 16)
        assert sa > pr


class TestLowLoadEquivalence:
    def test_schemes_agree_when_uncongested(self):
        # "Up to ~20% throughput the performance gap remains under 15%"
        # (Section 4.3.2): at light load all schemes deliver the same
        # traffic with similar latency.
        results = {}
        for scheme in ("DR", "PR"):
            cfg = SimConfig(scheme=scheme, pattern="PAT721", num_vcs=4,
                            load=0.004, seed=6)
            results[scheme] = run_point(cfg, warmup=800, measure=1600)
        thr = [r.throughput_fpc for r in results.values()]
        lat = [r.mean_latency for r in results.values()]
        assert max(thr) - min(thr) < 0.1 * max(thr)
        assert max(lat) - min(lat) < 0.15 * max(lat)
