"""Tests for channel wait-for graph construction and knot detection."""

import networkx as nx

from repro.core.cwg import build_wait_for_graph, detect_deadlock, find_knots
from repro.protocol.transactions import PAT721
from tests.helpers import build_engine, stall_endpoint


class TestFindKnots:
    def test_empty_graph(self):
        assert find_knots(nx.DiGraph()) == []

    def test_plain_cycle_is_knot(self):
        g = nx.DiGraph([(1, 2), (2, 3), (3, 1)])
        assert find_knots(g) == [{1, 2, 3}]

    def test_cycle_with_escape_is_not_knot(self):
        g = nx.DiGraph([(1, 2), (2, 3), (3, 1), (2, 4)])
        assert find_knots(g) == []

    def test_self_loop_is_knot(self):
        g = nx.DiGraph([(1, 1)])
        assert find_knots(g) == [{1}]

    def test_chain_is_not_knot(self):
        g = nx.DiGraph([(1, 2), (2, 3)])
        assert find_knots(g) == []

    def test_two_disjoint_knots(self):
        g = nx.DiGraph([(1, 2), (2, 1), (3, 4), (4, 3)])
        knots = find_knots(g)
        assert {frozenset(k) for k in knots} == {frozenset({1, 2}), frozenset({3, 4})}

    def test_knot_definition_every_reachable_vertex_inside(self):
        g = nx.DiGraph([(1, 2), (2, 3), (3, 1), (0, 1), (5, 3)])
        (knot,) = find_knots(g)
        for v in knot:
            assert set(nx.descendants(g, v)) | {v} <= knot | {v}


class TestEngineGraph:
    def test_idle_engine_has_no_knots(self):
        e = build_engine(scheme="PR")
        assert detect_deadlock(e) == []

    def test_light_traffic_has_no_knots(self):
        e = build_engine(scheme="PR", load=0.002)
        e.run(400)
        assert detect_deadlock(e) == []

    def test_stalled_endpoint_produces_wait_edges(self):
        e = build_engine(scheme="PR")
        nodes = e.topology.num_nodes

        def factory(i):
            req = (5 + 1 + i) % nodes
            third = (5 + 6 + i) % nodes
            while third in (5, req):
                third = (third + 1) % nodes
            return PAT721.build_transaction(req, 5, third, 0, length=3)

        stall_endpoint(e, 5, factory)
        g = build_wait_for_graph(e)
        assert g.has_edge(("inq", 5, 0), ("outq", 5, 0))
        assert g.has_edge(("outq", 5, 0), ("inj", 5, 0))

    def test_sa_stays_knot_free_under_load(self):
        # Strict avoidance: the CWG must never contain a knot.
        e = build_engine(scheme="SA", pattern="PAT100", load=0.01, num_vcs=4)
        for _ in range(6):
            e.run(250)
            assert detect_deadlock(e) == []

    def test_mc_service_suppresses_queue_edge(self):
        e = build_engine(scheme="PR")
        nodes = e.topology.num_nodes

        def factory(i):
            req = (6 + i) % nodes
            third = (11 + i) % nodes
            while third in (5, req):
                third = (third + 1) % nodes
            return PAT721.build_transaction(req, 5, third, 0, length=3)

        stall_endpoint(e, 5, factory)
        mc = e.interfaces[5].controller
        mc.current = object()
        mc.current_in_cls = 0
        g = build_wait_for_graph(e)
        mc.current = None
        mc.current_in_cls = None
        assert not g.has_edge(("inq", 5, 0), ("outq", 5, 0))
