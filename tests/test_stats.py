"""SimStats: measurement windows, per-type rows, deadlock bookkeeping."""

import pytest

from repro.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.stats import WindowCounters


def engine(**kwargs) -> Engine:
    defaults = dict(dims=(4, 4), scheme="PR", pattern="PAT271", num_vcs=4,
                    load=0.008, seed=9)
    defaults.update(kwargs)
    return Engine(SimConfig(**defaults))


class TestWindowCounters:
    def test_empty_window_is_safe(self):
        w = WindowCounters()
        assert w.cycles == 1  # never divides by zero
        assert w.mean_latency() == 0.0
        assert w.throughput_fpc(16) == 0.0
        assert w.normalized_deadlocks() == 0.0

    def test_derived_metrics(self):
        w = WindowCounters(start_cycle=100, end_cycle=600,
                           messages_delivered=10, flits_delivered=40,
                           latency_sum=250.0, deadlocks=1,
                           deadlocks_unresolved=1)
        assert w.cycles == 500
        assert w.mean_latency() == 25.0
        assert w.throughput_fpc(16) == 40 / (16 * 500)
        assert w.normalized_deadlocks() == 2 / 10


class TestWindowing:
    def test_window_counts_only_while_open(self):
        e = engine()
        e.run(500)
        before = e.stats.total.messages_delivered
        assert e.stats.window is None and not e.stats.measuring

        e.stats.begin_window(e.now)
        assert e.stats.measuring
        e.run(1500)
        window = e.stats.end_window(e.now)
        assert not e.stats.measuring

        in_window = window.messages_delivered
        assert in_window > 0
        # The run total keeps counting; the window stops.
        e.run(800)
        assert window.messages_delivered == in_window
        assert e.stats.total.messages_delivered > before + in_window
        assert window.start_cycle == 500 and window.end_cycle == 2000

    def test_window_is_a_subset_of_totals(self):
        e = engine()
        e.run(300)
        e.stats.begin_window(e.now)
        e.run(1200)
        window = e.stats.end_window(e.now)
        total = e.stats.total
        assert window.messages_delivered <= total.messages_delivered
        assert window.flits_delivered <= total.flits_delivered
        assert window.latency_sum <= total.latency_sum
        assert window.latency_max <= total.latency_max

    def test_run_measured_convenience(self):
        e = engine()
        window = e.run_measured(400, 1000)
        assert window.start_cycle == 400
        assert window.end_cycle == 1400
        assert window.messages_delivered > 0


class TestByType:
    def test_only_delivered_types_appear(self):
        e = engine(pattern="PAT271")
        e.run(1500)
        by_type = e.stats.by_type
        assert by_type, "traffic must have delivered something"
        for name, row in by_type.items():
            assert row["delivered"] > 0
            assert row["flits"] >= row["delivered"]  # >= 1 flit/message
            assert row["latency_sum"] >= row["network_sum"] >= 0
        undelivered = set(
            t.name for t in e.protocol.all_types
        ) - set(by_type)
        for name in undelivered:
            assert e.stats._type_rows[name]["delivered"] == 0

    def test_latency_decomposes_into_wait_plus_network(self):
        e = engine()
        e.run(2000)
        for row in e.stats.by_type.values():
            assert row["latency_sum"] == pytest.approx(
                row["queue_wait_sum"] + row["network_sum"]
            )

    def test_type_totals_match_run_totals(self):
        e = engine()
        e.run(2000)
        rows = e.stats.by_type.values()
        assert sum(r["delivered"] for r in rows) == (
            e.stats.total.messages_delivered
        )
        assert sum(r["flits"] for r in rows) == e.stats.total.flits_delivered


class TestDeadlockBookkeeping:
    def test_no_deadlock_means_unset_first_cycle(self):
        e = engine(load=0.002)
        e.run(1000)
        assert e.stats.first_deadlock_cycle == -1

    def test_first_deadlock_cycle_latches(self):
        e = engine()
        e.stats.on_deadlock(321, resolved=True)
        e.stats.on_deadlock(654, resolved=True)
        assert e.stats.first_deadlock_cycle == 321
        assert e.stats.total.deadlocks == 2

    def test_unresolved_deadlocks_counted_separately(self):
        e = engine()
        e.stats.on_deadlock(100, resolved=False)
        assert e.stats.total.deadlocks == 0
        assert e.stats.total.deadlocks_unresolved == 1
        assert e.stats.first_deadlock_cycle == 100


class TestLoadSampling:
    def test_samples_track_injected_flits(self):
        e = engine(load=0.008)
        e.stats.enable_load_sampling(200)
        e.run(2000)
        samples = e.stats.load_samples
        assert len(samples) == 10
        assert all(s >= 0.0 for s in samples)
        # Traffic flows: the mean injected flit rate is positive and
        # bounded by the per-node injection bandwidth.
        mean = sum(samples) / len(samples)
        assert 0.0 < mean <= 1.0

    def test_disabled_by_default(self):
        e = engine()
        e.run(1000)
        assert e.stats.load_samples == []
