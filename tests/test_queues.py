"""Tests for NI message queues and reservation accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.endpoint.queues import MessageQueue, QueueBank
from repro.protocol.chains import GENERIC_MSI
from repro.protocol.message import Message

M1 = GENERIC_MSI.type_named("m1")
M4 = GENERIC_MSI.type_named("m4")


def msg(reserved=False):
    m = Message(M1, 0, 1)
    m.has_reservation = reserved
    return m


class TestBasicOps:
    def test_claim_commit_pop(self):
        q = MessageQueue(2)
        m = msg()
        assert q.try_claim_slot(m)
        assert q.held == 1 and len(q) == 0
        q.commit(m)
        assert q.held == 0 and len(q) == 1
        assert q.peek() is m
        assert q.pop() is m
        assert q.peek() is None

    def test_claim_fails_when_full(self):
        q = MessageQueue(1)
        assert q.try_claim_slot(msg())
        assert not q.try_claim_slot(msg())

    def test_push_and_free_slots(self):
        q = MessageQueue(3)
        q.push(msg())
        assert q.free_slots == 2
        assert not q.admission_full
        q.push(msg())
        q.push(msg())
        assert q.admission_full

    def test_version_advances_on_push_and_pop(self):
        q = MessageQueue(2)
        v0 = q.version
        q.push(msg())
        assert q.version > v0
        v1 = q.version
        q.pop()
        assert q.version > v1

    def test_hold_release(self):
        q = MessageQueue(1)
        assert q.hold_slot()
        assert not q.hold_slot()
        q.release_held()
        assert q.hold_slot()

    def test_push_held_converts(self):
        q = MessageQueue(1)
        q.hold_slot()
        q.push_held(msg())
        assert len(q) == 1 and q.held == 0


class TestReservations:
    def test_reserved_arrival_uses_pool(self):
        q = MessageQueue(1)
        assert q.try_reserve_reply()
        # Pool exhausts admission for unreserved messages...
        assert not q.try_claim_slot(msg())
        # ...but the reserved arrival gets in.
        assert q.try_claim_slot(msg(reserved=True))
        assert q.reserved == 0 and q.held == 1

    def test_reserve_fails_when_no_space(self):
        q = MessageQueue(1)
        q.push(msg())
        assert not q.try_reserve_reply()

    def test_release_reservation(self):
        q = MessageQueue(1)
        q.try_reserve_reply()
        q.release_reservation()
        assert q.try_claim_slot(msg())

    def test_reserved_message_falls_back_to_free_slot(self):
        q = MessageQueue(2)
        # No reservation pool, but free space: still admitted.
        assert q.try_claim_slot(msg(reserved=True))


class TestQueueBank:
    def test_bank_classes_independent(self):
        bank = QueueBank(3, 2)
        bank.queue(0).push(msg())
        assert bank.queue(1).free_slots == 2
        assert bank.total_occupancy() == 1
        assert bank.num_classes == 3

    def test_total_version(self):
        bank = QueueBank(2, 2)
        v0 = bank.total_version()
        bank.queue(1).push(msg())
        assert bank.total_version() == v0 + 1


@settings(max_examples=200, deadline=None)
@given(
    capacity=st.integers(1, 8),
    ops=st.lists(st.sampled_from(["claim", "claim_r", "commit", "reserve", "pop"]),
                 max_size=60),
)
def test_accounting_invariants(capacity, ops):
    """Random op sequences never violate slot accounting.

    Invariants: occupied + held + reserved <= capacity at all times; a
    reserved arrival always succeeds while the pool is non-empty.
    """
    q = MessageQueue(capacity)
    claimed = []
    for op in ops:
        if op == "claim":
            q.try_claim_slot(msg()) and claimed.append(msg())
        elif op == "claim_r":
            had_pool = q.reserved > 0
            ok = q.try_claim_slot(msg(reserved=True))
            if had_pool:
                assert ok, "reserved arrival must always sink"
            if ok:
                claimed.append(msg(reserved=True))
        elif op == "commit":
            if q.held > 0:
                q.commit(claimed.pop() if claimed else msg())
        elif op == "reserve":
            q.try_reserve_reply()
        elif op == "pop":
            if len(q):
                q.pop()
        assert len(q.entries) + q.held + q.reserved <= q.capacity
        assert q.held >= 0 and q.reserved >= 0
