"""Tests for RNG determinism and error types."""

from repro.util import ConfigurationError, SimulationError, make_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42, "traffic")
        b = make_rng(42, "traffic")
        assert a.integers(0, 1 << 30, 10).tolist() == b.integers(
            0, 1 << 30, 10
        ).tolist()

    def test_different_salts_differ(self):
        a = make_rng(42, "traffic")
        b = make_rng(42, "arbiter")
        assert a.integers(0, 1 << 30, 10).tolist() != b.integers(
            0, 1 << 30, 10
        ).tolist()

    def test_different_seeds_differ(self):
        a = make_rng(1, "x")
        b = make_rng(2, "x")
        assert a.integers(0, 1 << 30, 10).tolist() != b.integers(
            0, 1 << 30, 10
        ).tolist()

    def test_salt_hash_is_stable_across_processes(self):
        # CRC32-based mixing: the first draw for a known (seed, salt) pair
        # must never change, or saved experiment seeds become unreproducible.
        rng = make_rng(1, "traffic")
        first = int(rng.integers(0, 1 << 30))
        rng2 = make_rng(1, "traffic")
        assert int(rng2.integers(0, 1 << 30)) == first


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(SimulationError, RuntimeError)
