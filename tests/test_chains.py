"""Tests for protocol definitions."""

import pytest

from repro.protocol.chains import (
    GENERIC_MSI,
    GENERIC_ORIGIN,
    MSI_COHERENCE,
    PROTOCOLS,
)
from repro.protocol.message import NetClass
from repro.util.errors import ConfigurationError


class TestGenericMsi:
    def test_four_types_in_order(self):
        names = [t.name for t in GENERIC_MSI.types]
        assert names == ["m1", "m2", "m3", "m4"]
        assert [t.index for t in GENERIC_MSI.types] == [0, 1, 2, 3]

    def test_max_chain_length(self):
        assert GENERIC_MSI.max_chain_length == 4

    def test_subordinate_pairs_total_order(self):
        pairs = GENERIC_MSI.subordinate_pairs()
        assert ("m1", "m4") in pairs
        assert ("m4", "m1") not in pairs
        assert len(pairs) == 6  # C(4,2)

    def test_validate_chain_accepts_ordered(self):
        GENERIC_MSI.validate_chain(["m1", "m2", "m4"])

    def test_validate_chain_rejects_disordered(self):
        with pytest.raises(ConfigurationError):
            GENERIC_MSI.validate_chain(["m2", "m1"])

    def test_backoff_in_all_types_not_chain(self):
        assert GENERIC_MSI.backoff in GENERIC_MSI.all_types
        assert GENERIC_MSI.backoff not in GENERIC_MSI.types


class TestOriginMapping:
    def test_origin_types(self):
        names = [t.name for t in GENERIC_ORIGIN.types]
        assert names == ["ORQ", "FRQ", "TRP"]

    def test_backoff_is_brp_reply(self):
        brp = GENERIC_ORIGIN.backoff
        assert brp.name == "BRP"
        assert brp.net_class == NetClass.REPLY
        assert brp.index == 1  # the paper's m2 position (Figure 2)

    def test_frq_is_request_class(self):
        assert GENERIC_ORIGIN.type_named("FRQ").net_class == NetClass.REQUEST


class TestMsiCoherence:
    def test_s1_mapping(self):
        # "The S-1 (and MSI) protocol has m1 = RQ, m2 = FRQ, m3 = FRP,
        # and m4 = RP" (Section 4.3.1).
        names = [t.name for t in MSI_COHERENCE.types]
        assert names == ["RQ", "FRQ", "FRP", "RP"]

    def test_reply_lengths(self):
        assert MSI_COHERENCE.type_named("FRP").flits == 20
        assert MSI_COHERENCE.type_named("FRQ").flits == 4


class TestRegistry:
    def test_registry_contents(self):
        assert set(PROTOCOLS) == {"generic-msi", "generic-origin", "msi"}

    def test_type_named_raises_for_unknown(self):
        with pytest.raises(KeyError):
            GENERIC_MSI.type_named("nope")
