"""Tests for repro.farm: planning, health, chaos, the manager, transports.

The campaign under test is tiny (4x4 torus, 100+200 cycles) so every
test's farm run finishes in well under a second per point; the
robustness machinery — retries, quarantine, hang abandonment,
speculation, resume — is exercised with injected faults and compared
bit-for-bit against serial ``run_points``.
"""

import json
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.config import ExecutionConfig, SimConfig
from repro.farm import (
    CampaignSpec,
    farm_run_points,
    farm_width,
    ChaosWorker,
    ExternalWorker,
    FarmManager,
    FarmPolicy,
    FarmWorker,
    HostHealth,
    LocalPoolWorker,
    SSHHostWorker,
    ShardJob,
    ShardOutcome,
    ShardTransportError,
    parse_hosts,
    parse_worker_fault,
    plan_shards,
    resolve_cached,
)
from repro.farm.chaos import InjectedWorkerCrash, WorkerFaultSpec
from repro.farm.health import HEALTHY, PROBATION, QUARANTINED, SUSPECT
from repro.farm.remote import execute_job, serve_job_dir
from repro.sim.parallel import ResultCache, point_key, run_points
from repro.telemetry import Tracer
from repro.telemetry.export import PID_FARM, to_perfetto
from repro.util.backoff import BackoffPolicy
from repro.util.errors import ConfigurationError, SweepExecutionError

WARMUP = 100
MEASURE = 200
LOADS = (0.002, 0.004, 0.006, 0.008, 0.01)

#: a policy tuned so failure-path tests never wait on real backoff.
FAST = dict(
    backoff=BackoffPolicy(base=0.01, factor=2.0, cap=0.05),
    probation=0.05,
)


def tiny_configs(loads=LOADS):
    return tuple(SimConfig(dims=(4, 4), load=load) for load in loads)


def tiny_spec(loads=LOADS, shard_size=2, **kwargs):
    return CampaignSpec(configs=tiny_configs(loads), warmup=WARMUP,
                        measure=MEASURE, shard_size=shard_size, **kwargs)


def serial_results(loads=LOADS):
    return run_points(list(tiny_configs(loads)), WARMUP, MEASURE)


class CountingWorker(FarmWorker):
    """Wraps a worker, counting the points actually dispatched to it."""

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self.points_run = 0

    def run_shard(self, job):
        self.points_run += len(job.shard.points)
        return self.inner.run_shard(job)


class TestPlanning:
    def test_plan_shards_contiguous_chunks(self):
        shards = plan_shards([3, 5, 7, 9, 11], 2)
        assert [s.points for s in shards] == [(3, 5), (7, 9), (11,)]
        assert [s.index for s in shards] == [0, 1, 2]

    def test_plan_shards_validates_size(self):
        with pytest.raises(ConfigurationError):
            plan_shards([1, 2], 0)

    def test_campaign_spec_round_trip(self, tmp_path):
        spec = tiny_spec(name="trip")
        spec.save(tmp_path / "camp")
        loaded = CampaignSpec.load(tmp_path / "camp")
        assert loaded == spec
        assert loaded.point_keys() == spec.point_keys()

    def test_campaign_spec_load_missing_dir(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CampaignSpec.load(tmp_path / "nope")

    def test_campaign_spec_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(configs=(), warmup=WARMUP, measure=MEASURE)
        with pytest.raises(ConfigurationError):
            tiny_spec(shard_size=0)

    def test_resolve_cached_partitions_points(self, tmp_path):
        spec = tiny_spec()
        cache = ResultCache(tmp_path / "cache")
        done = run_points(list(spec.configs[:2]), WARMUP, MEASURE,
                          cache=cache)
        progress = resolve_cached(spec, cache)
        assert progress.total == len(LOADS)
        assert progress.cached == 2
        assert progress.missing == [2, 3, 4]
        assert progress.results[:2] == done
        assert progress.results[2:] == [None, None, None]


class TestHostHealth:
    def test_escalation_healthy_suspect_quarantined(self):
        h = HostHealth("w", suspect_after=1, quarantine_after=2,
                       probation_ms=100)
        assert h.state == HEALTHY and h.can_dispatch(0)
        assert h.record_failure(0, "boom") == SUSPECT
        assert h.can_dispatch(0)  # suspect hosts still take work
        assert h.record_failure(0, "boom") == QUARANTINED
        assert not h.can_dispatch(50)
        assert h.can_dispatch(100)  # probation delay elapsed

    def test_probe_success_restores_fully(self):
        h = HostHealth("w", quarantine_after=1, probation_ms=100)
        h.record_failure(0)
        h.begin_probation(100)
        assert h.state == PROBATION
        assert not h.can_dispatch(100)  # the probe is already in flight
        assert h.record_success(150) == HEALTHY
        assert h.consecutive_failures == 0

    def test_failed_probe_doubles_the_delay_capped(self):
        h = HostHealth("w", quarantine_after=1, probation_ms=100,
                       probation_cap_ms=300)
        h.record_failure(0)
        h.begin_probation(100)
        h.record_failure(100)
        assert h.state == QUARANTINED
        assert h.quarantined_until == 300  # 100 + doubled delay
        h.begin_probation(300)
        h.record_failure(300)
        assert h.quarantined_until == 600  # capped at 300ms, not 400
        # recovery resets the delay to its initial value
        h.begin_probation(600)
        h.record_success(600)
        h.record_failure(700)
        assert h.quarantined_until == 700 + 100

    def test_rank_prefers_healthy(self):
        healthy, suspect = HostHealth("a"), HostHealth("b")
        suspect.record_failure(0)
        assert healthy.rank() < suspect.rank()


class TestWorkerFaults:
    def test_parse_round_trip(self):
        spec = parse_worker_fault("crash:host=w0,at=1,count=2")
        assert spec == WorkerFaultSpec(kind="crash", host="w0", at=1, count=2)
        assert parse_worker_fault("hang:duration=0.5").duration == 0.5
        assert parse_worker_fault("garbage") == WorkerFaultSpec(kind="garbage")

    def test_parse_rejects_nonsense(self):
        for text in ("meltdown", "crash:at", "crash:at=x", "crash:when=3"):
            with pytest.raises(ConfigurationError):
                parse_worker_fault(text)

    def test_applies_window(self):
        spec = WorkerFaultSpec(kind="crash", host="w0", at=1, count=2)
        assert not spec.applies("w0", 0)
        assert spec.applies("w0", 1) and spec.applies("w0", 2)
        assert not spec.applies("w0", 3)
        assert not spec.applies("w1", 1)
        assert WorkerFaultSpec(kind="crash").applies("anyone", 0)

    def test_chaos_worker_crashes_on_schedule(self):
        inner = LocalPoolWorker("w0")
        chaos = ChaosWorker(inner, [parse_worker_fault("crash:at=0")])
        spec = tiny_spec(loads=(0.004,), shard_size=1)
        job = ShardJob(shard=plan_shards([0], 1)[0],
                       configs=spec.configs, warmup=WARMUP, measure=MEASURE)
        with pytest.raises(InjectedWorkerCrash):
            chaos.run_shard(job)
        # second dispatch is past the fault window and runs the real thing
        outcome = chaos.run_shard(job)
        assert outcome.ok and list(outcome.results) == [0]
        assert chaos.activations == ["crash[any,at=0]"]


class TestWireProtocol:
    def test_execute_job_round_trips_results(self):
        spec = tiny_spec(loads=(0.004, 0.006), shard_size=2)
        job = ShardJob(shard=plan_shards([0, 1], 2)[0],
                       configs=spec.configs, warmup=WARMUP, measure=MEASURE)
        # through JSON, as the ssh pipe and the job dir both do
        payload = json.loads(json.dumps(execute_job(job.to_wire())))
        outcome = ShardOutcome.from_wire(payload)
        assert outcome.ok
        assert list(outcome.results) == [0, 1]
        assert outcome.results[0] == serial_results((0.004, 0.006))[0]

    def test_execute_job_folds_errors_into_the_document(self):
        answer = execute_job({"warmup": 100})  # no points/measure
        assert answer["ok"] is False and answer["error"]

    def test_from_wire_rejects_malformed_documents(self):
        for payload in ({}, {"ok": True}, {"ok": True, "results": {"x": 3}}):
            with pytest.raises(ShardTransportError):
                ShardOutcome.from_wire(payload)
        refusal = ShardOutcome.from_wire({"ok": False, "error": "died"})
        assert not refusal.ok and refusal.error == "died"


class TestFarmManager:
    def test_farm_matches_serial_run(self, tmp_path):
        spec = tiny_spec()
        cache = ResultCache(tmp_path / "cache")
        manager = FarmManager(
            [LocalPoolWorker(f"w{i}") for i in range(3)], cache=cache,
        )
        assert manager.run(spec) == serial_results()
        report = manager.report()
        assert report["computed"] == len(LOADS)
        assert report["cached"] == 0 and report["failed"] == []
        # every point landed in the cache under its own key
        assert all(cache.get(k) is not None for k in spec.point_keys())

    def test_chaos_campaign_is_bit_identical(self, tmp_path):
        """Crash + garbage workers: results never diverge from serial,
        the dead host is quarantined, and it all shows in the trace.

        w0 crashes instantly on every dispatch, so while w1 grinds a
        real shard every pending shard can only go to w0 — it reaches
        its second consecutive failure (quarantine) deterministically.
        """
        spec = tiny_spec()
        tracer = Tracer()
        cache = ResultCache(tmp_path / "cache")
        workers = [
            ChaosWorker(LocalPoolWorker("w0"),
                        [parse_worker_fault("crash:host=w0,count=99")]),
            ChaosWorker(LocalPoolWorker("w1"),
                        [parse_worker_fault("garbage:host=w1,at=0")]),
        ]
        manager = FarmManager(
            workers, cache=cache, tracer=tracer,
            policy=FarmPolicy(retries=6, **FAST),
        )
        assert manager.run(spec) == serial_results()
        attribution = manager.attribution()
        assert attribution["w0"]["state"] == QUARANTINED
        assert attribution["w0"]["shards_ok"] == 0
        # the corrupted outcome was rejected before it reached the cache
        assert "invalid results" in attribution["w1"]["last_error"]
        assert attribution["w1"]["shards_ok"] == 3  # every real shard
        kinds = {kind for _, kind, _ in tracer.events}
        assert {"farm_dispatch", "farm_shard_failed", "farm_backoff",
                "farm_suspect", "farm_quarantine", "farm_shard_done",
                "farm_merge"} <= kinds

    def test_hung_dispatch_is_abandoned_and_redispatched(self, tmp_path):
        spec = tiny_spec(loads=(0.004, 0.006), shard_size=2)
        workers = [
            ChaosWorker(LocalPoolWorker("w0"),
                        [parse_worker_fault("hang:host=w0,at=0,duration=5")]),
            LocalPoolWorker("w1"),
        ]
        manager = FarmManager(
            workers, cache=ResultCache(tmp_path / "cache"),
            policy=FarmPolicy(retries=2, hang_timeout=0.2, **FAST),
        )
        start = time.monotonic()
        assert manager.run(spec) == serial_results((0.004, 0.006))
        assert time.monotonic() - start < 5.0  # did not wait out the hang
        assert "hang:" in manager.attribution()["w0"]["last_error"]

    def test_straggler_is_speculatively_redispatched(self, tmp_path):
        # w1 sits on its shard for 2s with no hang_timeout armed; once
        # the queue drains, the manager must clone the shard onto the
        # idle fast host and take the first answer.
        spec = tiny_spec(loads=LOADS, shard_size=2)
        tracer = Tracer()
        workers = [
            LocalPoolWorker("w0"),
            ChaosWorker(LocalPoolWorker("w1"),
                        [parse_worker_fault("hang:host=w1,at=0,duration=2")]),
        ]
        manager = FarmManager(
            workers, cache=ResultCache(tmp_path / "cache"), tracer=tracer,
            policy=FarmPolicy(retries=2, straggler_factor=2.0,
                              straggler_min=0.05, **FAST),
        )
        start = time.monotonic()
        assert manager.run(spec) == serial_results()
        assert time.monotonic() - start < 2.0
        redispatches = [p for _, kind, p in tracer.events
                        if kind == "farm_redispatch"]
        assert redispatches and redispatches[0]["straggler"] == "w1"

    def test_resume_skips_cached_points(self, tmp_path):
        spec = tiny_spec()
        cache = ResultCache(tmp_path / "cache")
        # a "killed" campaign left 3 of 5 points behind
        run_points(list(spec.configs[:3]), WARMUP, MEASURE, cache=cache)
        counting = CountingWorker(LocalPoolWorker("w0"))
        manager = FarmManager([counting], cache=cache)
        assert manager.run(spec) == serial_results()
        assert counting.points_run == 2  # only the missing points ran
        report = manager.report()
        assert report["cached"] == 3 and report["computed"] == 2
        # a second run is pure cache
        counting.points_run = 0
        assert FarmManager([counting], cache=cache).run(spec) \
            == serial_results()
        assert counting.points_run == 0

    def test_exhausted_retries_report_per_host_attribution(self, tmp_path):
        spec = tiny_spec(loads=(0.004,), shard_size=1)
        workers = [
            ChaosWorker(LocalPoolWorker(f"w{i}"),
                        [parse_worker_fault("crash:count=99")])
            for i in range(2)
        ]
        manager = FarmManager(
            workers, cache=ResultCache(tmp_path / "cache"),
            policy=FarmPolicy(retries=2, **FAST),
        )
        with pytest.raises(SweepExecutionError) as excinfo:
            manager.run(spec)
        message = str(excinfo.value)
        assert "per-host attribution" in message
        assert "w0" in message and "w1" in message
        assert excinfo.value.attribution["w0"]["shards_failed"] >= 1
        assert list(excinfo.value.failures) == [0]
        # the failure is sticky in the report too
        assert manager.report()["failed"] == [0]

    def test_campaign_completes_on_survivors(self, tmp_path):
        # one permanently dead host, one healthy: graceful degradation
        spec = tiny_spec()
        workers = [
            ChaosWorker(LocalPoolWorker("dead"),
                        [parse_worker_fault("crash:host=dead,at=0,count=99")]),
            LocalPoolWorker("alive"),
        ]
        manager = FarmManager(
            workers, cache=ResultCache(tmp_path / "cache"),
            policy=FarmPolicy(retries=4, **FAST),
        )
        assert manager.run(spec) == serial_results()
        attribution = manager.attribution()
        assert attribution["alive"]["shards_ok"] == 3
        assert attribution["dead"]["shards_ok"] == 0

    def test_manager_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FarmManager([], cache=None)
        with pytest.raises(ConfigurationError):
            FarmManager([LocalPoolWorker("same"), LocalPoolWorker("same")],
                        cache=None)
        with pytest.raises(ConfigurationError):
            FarmPolicy(retries=-1)
        with pytest.raises(ConfigurationError):
            FarmPolicy(hang_timeout=0.0)
        with pytest.raises(ConfigurationError):
            FarmPolicy(straggler_factor=1.0)

    def test_farm_trace_exports_to_perfetto(self, tmp_path):
        spec = tiny_spec()
        tracer = Tracer()
        workers = [
            ChaosWorker(LocalPoolWorker("w0"),
                        [parse_worker_fault("crash:host=w0,at=0,count=3")]),
            LocalPoolWorker("w1"),
        ]
        manager = FarmManager(
            workers, cache=ResultCache(tmp_path / "cache"), tracer=tracer,
            policy=FarmPolicy(retries=4, **FAST),
        )
        manager.run(spec)
        events = to_perfetto(tracer)["traceEvents"]
        farm = [e for e in events if e["pid"] == PID_FARM]
        # the farm process and each host got a named track
        names = {e["args"]["name"] for e in farm if e["ph"] == "M"}
        assert {"farm", "campaign", "w0", "w1"} <= names
        # dispatch->completion pairs render as duration spans per host
        spans = [e for e in farm if e["ph"] == "X"]
        assert spans and all(e["name"].startswith("shard ") for e in spans)
        # the quarantine decision is visible as an instant
        assert any(e["ph"] == "i" and e["name"] == "farm_quarantine"
                   for e in farm)


def _pipe_command():
    """Run ``repro.farm.remote`` in-process-equivalent via a subprocess
    whose import path is pinned to this checkout — the ssh transport
    minus the ssh."""
    src = str(Path(repro.__file__).resolve().parents[1])
    return [
        sys.executable, "-c",
        f"import sys; sys.path.insert(0, {src!r});"
        " from repro.farm.remote import main; raise SystemExit(main([]))",
    ]


class TestTransports:
    def test_ssh_worker_full_wire_round_trip(self, tmp_path):
        spec = tiny_spec(loads=(0.004, 0.006), shard_size=2)
        worker = SSHHostWorker("pipe", command=_pipe_command(),
                               job_timeout=120)
        manager = FarmManager(
            [worker], cache=ResultCache(tmp_path / "cache"),
        )
        assert manager.run(spec) == serial_results((0.004, 0.006))

    def test_ssh_worker_dead_pipe_is_a_transport_error(self):
        worker = SSHHostWorker(
            "dead", command=[sys.executable, "-c", "import sys; sys.exit(3)"],
        )
        job = ShardJob(shard=plan_shards([0], 1)[0],
                       configs=tiny_configs((0.004,)),
                       warmup=WARMUP, measure=MEASURE)
        with pytest.raises(ShardTransportError, match="exit 3"):
            worker.run_shard(job)

    def test_ssh_worker_garbage_stdout_is_a_transport_error(self):
        worker = SSHHostWorker(
            "noise", command=[sys.executable, "-c", "print('not json')"],
        )
        job = ShardJob(shard=plan_shards([0], 1)[0],
                       configs=tiny_configs((0.004,)),
                       warmup=WARMUP, measure=MEASURE)
        with pytest.raises(ShardTransportError, match="unreadable"):
            worker.run_shard(job)

    def test_external_worker_through_job_dir(self, tmp_path):
        root = tmp_path / "ext"
        agent = threading.Thread(
            target=serve_job_dir, args=(root,),
            kwargs=dict(idle_timeout=30, poll_interval=0.01), daemon=True,
        )
        agent.start()
        try:
            spec = tiny_spec(loads=(0.004, 0.006), shard_size=1)
            worker = ExternalWorker("ext0", root, job_timeout=60,
                                    poll_interval=0.01)
            manager = FarmManager(
                [worker], cache=ResultCache(tmp_path / "cache"),
            )
            assert manager.run(spec) == serial_results((0.004, 0.006))
        finally:
            (root / "stop").write_text("", "utf-8")
            agent.join(timeout=10)
        assert not agent.is_alive()


class TestParseHosts:
    def test_parses_every_kind(self):
        workers = parse_hosts("local,local:4,ssh:nodeA,ext:/tmp/jobs")
        assert [type(w).__name__ for w in workers] == [
            "LocalPoolWorker", "LocalPoolWorker", "SSHHostWorker",
            "ExternalWorker",
        ]
        assert workers[1].workers == 4
        assert workers[2].host == "nodeA"
        assert str(workers[3].root) == "/tmp/jobs"
        # names are unique, so one machine can appear twice
        assert len({w.name for w in workers}) == 4

    def test_rejects_nonsense(self):
        for text in ("", "warp:9", "local:0", "local:x", "ssh:", "ext:"):
            with pytest.raises(ConfigurationError):
                parse_hosts(text)


class TestFarmExecutor:
    """The farm behind the run_points contract (sweeps, experiments)."""

    def test_farm_width_counts_local_slots(self):
        workers = parse_hosts("local:3,local,ssh:nodeA,ext:/tmp/jobs")
        assert farm_width(workers) == 3 + 1 + 1 + 1

    def test_ordered_and_bit_identical_to_run_points(self):
        loads = LOADS[:3]
        got = farm_run_points(
            tiny_configs(loads), WARMUP, MEASURE,
            parse_hosts("local,local"),
        )
        assert got == serial_results(loads)

    def test_run_sweep_routes_through_farm(self, tmp_path):
        from repro.sim.sweep import run_sweep

        execution = ExecutionConfig(
            farm_hosts="local:2,local",
            cache_dir=str(tmp_path / "cache"),
        )
        config = SimConfig(dims=(4, 4))
        loads = list(LOADS[:3])
        farmed = run_sweep(config, loads, WARMUP, MEASURE,
                           execution=execution)
        serial = run_sweep(config, loads, WARMUP, MEASURE,
                           execution=ExecutionConfig(use_cache=False))
        assert farmed.points == serial.points
        # the farm populated the shared per-point cache
        cache = ResultCache(execution.cache_dir)
        for load in loads:
            key = point_key(config.with_(load=load), WARMUP, MEASURE)
            assert cache.get(key) is not None

    def test_runner_accepts_hosts_flag(self):
        from repro.experiments import runner

        _, _, execution = runner.parse_args(["--hosts", "local:2,local"])
        assert execution.farm_hosts == "local:2,local"
        with pytest.raises(SystemExit, match="--hosts"):
            runner.parse_args(["--hosts"])
        with pytest.raises(SystemExit, match="bad --hosts"):
            runner.parse_args(["--hosts", "warp:9"])

    def test_execution_config_rejects_blank_hosts(self):
        with pytest.raises(ConfigurationError):
            ExecutionConfig(farm_hosts="  ")


class TestFarmCLI:
    def test_plan_run_status_cycle(self, tmp_path, capsys):
        from repro.cli import main

        camp = str(tmp_path / "camp")
        cache = str(tmp_path / "cache")
        assert main(["farm", "plan", camp, "--dims", "4x4",
                     "--loads", "0.004,0.006", "--warmup", str(WARMUP),
                     "--measure", str(MEASURE), "--shard-size", "1"]) == 0
        assert main(["farm", "run", camp, "--hosts", "local,local",
                     "--cache-dir", cache,
                     "--trace", str(tmp_path / "trace.json")]) == 0
        out = capsys.readouterr().out
        assert "2 computed" in out
        trace = json.loads((tmp_path / "trace.json").read_text("utf-8"))
        assert any(e.get("pid") == PID_FARM for e in trace["traceEvents"])
        state = json.loads((Path(camp) / "state.json").read_text("utf-8"))
        assert state["computed"] == 2 and state["failed"] == []
        assert main(["farm", "status", camp, "--cache-dir", cache]) == 0
        assert "2/2 points cached" in capsys.readouterr().out
        # resume finds everything in cache
        assert main(["farm", "resume", camp, "--hosts", "local",
                     "--cache-dir", cache]) == 0
        assert "0 computed" in capsys.readouterr().out
