"""Tests for recovery-policy and token-ring configuration options."""

import pytest

from repro import SimConfig
from repro.core.token import Stop, build_ring, default_ring, routers_first_ring
from repro.network.topology import Torus
from repro.protocol.transactions import PAT721
from repro.util.errors import ConfigurationError
from tests.helpers import build_engine, stall_endpoint


def stall_home(engine, home):
    nodes = engine.topology.num_nodes

    def factory(i):
        req = (home + 1 + i) % nodes
        if req == home:
            req = (req + 1) % nodes
        third = (home + 5 + i) % nodes
        while third in (home, req):
            third = (third + 1) % nodes
        return PAT721.build_transaction(req, home, third, engine.now, length=3)

    return stall_endpoint(engine, home, factory)


class TestDrainPolicy:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SimConfig(recovery_policy="everything")

    def test_drain_deflects_more_than_minimum(self):
        results = {}
        for policy in ("minimum", "drain"):
            e = build_engine(scheme="DR", recovery_policy=policy)
            stall_home(e, home=5)
            while e.scheme.controller.deflections == 0 and e.now < 100:
                e.step()
            e.step()  # give drain its extra same-event deflections
            results[policy] = e.scheme.controller.deflections
        assert results["minimum"] == 1
        assert results["drain"] > results["minimum"]

    def test_drain_transactions_still_complete(self):
        e = build_engine(scheme="DR", recovery_policy="drain")
        roots = stall_home(e, home=5)
        e.run(3000)
        deflected = [r for r in roots if r.deflected]
        assert deflected
        for r in deflected:
            assert r.transaction.completed


class TestTokenRings:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SimConfig(token_ring="zigzag")

    def test_ring_builders_cover_all_stops(self):
        topo = Torus((2, 2), bristling=2)
        for order in ("interleaved", "routers-first"):
            stops = build_ring(topo, order)
            routers = {s.ident for s in stops if s.kind == "router"}
            nis = {s.ident for s in stops if s.kind == "ni"}
            assert routers == set(range(4))
            assert nis == set(range(8))

    def test_orders_differ(self):
        topo = Torus((2, 2))
        assert default_ring(topo) != routers_first_ring(topo)
        assert routers_first_ring(topo)[:4] == [Stop("router", r) for r in range(4)]

    def test_pr_recovers_with_either_ring(self):
        for order in ("interleaved", "routers-first"):
            e = build_engine(scheme="PR", token_ring=order)
            stall_home(e, home=5)
            e.run(500)
            assert e.scheme.controller.rescues >= 1, order
