"""Tests for message types, specs and transactions."""

from repro.protocol.chains import GENERIC_MSI
from repro.protocol.message import (
    Message,
    MessageSpec,
    NetClass,
    count_messages,
)

M1 = GENERIC_MSI.type_named("m1")
M2 = GENERIC_MSI.type_named("m2")
M4 = GENERIC_MSI.type_named("m4")


class TestMessageType:
    def test_flit_lengths_follow_table2(self):
        assert M1.flits == 4
        assert M4.flits == 20

    def test_net_classes(self):
        assert M1.net_class == NetClass.REQUEST
        assert M4.net_class == NetClass.REPLY

    def test_backoff_flag(self):
        assert GENERIC_MSI.backoff.is_backoff
        assert not M1.is_backoff


class TestMessageSpec:
    def test_chain_length_linear(self):
        leaf = MessageSpec(M4, 0)
        mid = MessageSpec(M2, 1, (leaf,))
        assert leaf.chain_length() == 1
        assert mid.chain_length() == 2

    def test_chain_length_branching_takes_max(self):
        deep = MessageSpec(M2, 1, (MessageSpec(M4, 0),))
        shallow = MessageSpec(M4, 0)
        root = MessageSpec(M1, 2, (deep, shallow))
        assert root.chain_length() == 3

    def test_count_messages(self):
        leaf = MessageSpec(M4, 0)
        root = MessageSpec(M1, 2, (MessageSpec(M2, 1, (leaf,)), MessageSpec(M4, 3)))
        assert count_messages(root) == 4
        assert count_messages(root.continuation) == 3


class TestMessage:
    def test_size_defaults_to_type_flits(self):
        msg = Message(M4, src=0, dst=1)
        assert msg.size == 20

    def test_size_override(self):
        msg = Message(M4, src=0, dst=1, size=7)
        assert msg.size == 7

    def test_terminating_iff_no_continuation(self):
        assert Message(M4, 0, 1).is_terminating
        m = Message(M1, 0, 1, continuation=(MessageSpec(M4, 0),))
        assert not m.is_terminating
        assert m.chain_length() == 2

    def test_uids_unique(self):
        a, b = Message(M1, 0, 1), Message(M1, 0, 1)
        assert a.uid != b.uid

    def test_initial_network_state(self):
        m = Message(M1, 0, 1)
        assert m.flits_sent == 0 and m.flits_ejected == 0
        assert m.injected_cycle == -1 and m.delivered_cycle == -1
        assert m.crossed_mask == 0
        assert not m.has_reservation
