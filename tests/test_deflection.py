"""Tests for DR's Origin2000-style backoff deflection."""

from repro.protocol.transactions import PAT280, PAT721
from tests.helpers import build_engine, stall_endpoint


def stall_home(engine, home, length=3, pattern=PAT721):
    nodes = engine.topology.num_nodes

    def factory(i):
        req = (home + 1 + i) % nodes
        if req == home:
            req = (req + 1) % nodes
        third = (home + 5 + i) % nodes
        while third in (home, req):
            third = (third + 1) % nodes
        return pattern.build_transaction(req, home, third, engine.now, length=length)

    return stall_endpoint(engine, home, factory)


class TestDeflection:
    def test_deflects_after_detection(self):
        e = build_engine(scheme="DR")
        roots = stall_home(e, home=5)
        e.run(40)
        ctl = e.scheme.controller
        assert ctl.deflections >= 1
        head = roots[0]
        assert head.deflected
        assert head.transaction.deflections == 1
        # The deflected chain still uses one extra message.
        assert head.transaction.messages_used == 4  # 3-chain + BRP

    def test_brp_sent_to_requester_on_reply_network(self):
        e = build_engine(scheme="DR")
        roots = stall_home(e, home=5)
        ctl = e.scheme.controller
        while ctl.deflections == 0 and e.now < 100:
            e.step()
        assert ctl.deflections == 1
        # Immediately after deflection the BRP sits in the reply-class
        # output queue of the home node, addressed to the requester.
        ni = e.interfaces[5]
        brp = next(m for m in ni.out_bank.queue(1).entries if m.mtype.name == "BRP")
        assert brp.dst == roots[0].src
        assert brp.vc_class == 1  # reply network
        assert brp.has_reservation  # sinks via the requester's MSHR slot

    def test_minimum_recovery_one_message_per_event(self):
        e = build_engine(scheme="DR")
        stall_home(e, home=5)
        e.run(30)
        first = e.scheme.controller.deflections
        assert first <= 1

    def test_deflected_transaction_completes(self):
        e = build_engine(scheme="DR")
        roots = stall_home(e, home=5)
        e.run(2000)
        txn = roots[0].transaction
        assert txn.completed
        # ORQ < BRP < FRQ(m2) < TRP(m4): chain extended by recovery.
        assert txn.deflections == 1

    def test_works_for_origin_pattern(self):
        e = build_engine(scheme="DR", pattern="PAT280")
        roots = stall_home(e, home=5, pattern=PAT280, length=3)
        e.run(2000)
        assert e.scheme.controller.deflections >= 1
        assert roots[0].transaction.completed

    def test_counts_reported_as_deadlocks(self):
        e = build_engine(scheme="DR")
        stall_home(e, home=5)
        e.run(60)
        assert e.scheme.deadlocks_detected >= 1
        assert e.stats.total.deadlocks >= 1

    def test_no_deflection_without_stall(self):
        e = build_engine(scheme="DR", load=0.002)
        e.run(800)
        assert e.scheme.controller.deflections == 0


class TestReplyNetworkSafety:
    def test_reply_queue_never_oversubscribed(self):
        e = build_engine(scheme="DR", load=0.012, seed=4)
        for _ in range(2500):
            e.step()
            for ni in e.interfaces:
                q = ni.in_bank.queue(1)
                assert len(q.entries) + q.held + q.reserved <= q.capacity

    def test_deflection_preserves_home_reservation_l4(self):
        # Deflecting an m1 that leads an L4 chain must keep the home's
        # m3 (FRP) slot reserved so the reply network stays safe.
        e = build_engine(scheme="DR")
        roots = stall_home(e, home=5, length=4)
        e.run(60)
        home = e.interfaces[5]
        assert roots[0].deflected
        assert home.in_bank.queue(1).reserved >= 1
