"""Tests for the synthetic Splash-2-like trace generators."""

import pytest

from repro.protocol.coherence import (
    DIRECT,
    FORWARDING,
    INVALIDATION,
    DirectoryMSI,
)
from repro.traffic.splash import (
    APP_MODELS,
    SplashTraceGenerator,
    generate_app_trace,
)


def replay_distribution(records, num_cpus=16):
    d = DirectoryMSI(num_cpus)
    for r in records:
        d.access(r.cpu, r.op, r.block, r.cycle)
    return d.response_distribution(), d


class TestTable1Targets:
    """Measured response mixes must stay near the paper's Table 1."""

    @pytest.mark.parametrize("app", list(APP_MODELS))
    def test_response_mix_within_tolerance(self, app):
        records = generate_app_trace(app, 16, 30_000, seed=2)
        dist, _ = replay_distribution(records)
        target = dict(
            zip((DIRECT, INVALIDATION, FORWARDING), APP_MODELS[app].response_mix)
        )
        for cls, want in target.items():
            # Within 5 percentage points of Table 1.
            assert dist[cls] == pytest.approx(want, abs=0.05), (app, cls)

    def test_water_is_sharing_dominated(self):
        records = generate_app_trace("water", 16, 30_000, seed=2)
        dist, _ = replay_distribution(records)
        assert dist[INVALIDATION] + dist[FORWARDING] > 0.7
        assert dist[INVALIDATION] > dist[FORWARDING] > dist[DIRECT]

    def test_fft_is_direct_dominated(self):
        records = generate_app_trace("fft", 16, 30_000, seed=2)
        dist, _ = replay_distribution(records)
        assert dist[DIRECT] > 0.95


class TestGeneratorMechanics:
    def test_deterministic_per_seed(self):
        a = generate_app_trace("lu", 16, 10_000, seed=3)
        b = generate_app_trace("lu", 16, 10_000, seed=3)
        assert a == b
        c = generate_app_trace("lu", 16, 10_000, seed=4)
        assert a != c

    def test_records_time_ordered_within_duration(self):
        records = generate_app_trace("fft", 16, 10_000, seed=2)
        assert all(0 <= r.cycle < 10_000 for r in records)

    def test_shadow_matches_replay(self):
        # The generator's shadow directory and a fresh replay must agree:
        # classification is a pure function of the access sequence.
        gen = SplashTraceGenerator(APP_MODELS["water"], 16, seed=5)
        records = gen.generate(15_000)
        dist, d = replay_distribution(records)
        assert d.response_counts == {
            DIRECT: gen.realized[DIRECT],
            INVALIDATION: gen.realized[INVALIDATION],
            FORWARDING: gen.realized[FORWARDING],
        }

    def test_radix_generates_most_traffic(self):
        lens = {
            app: len(generate_app_trace(app, 16, 20_000, seed=2))
            for app in APP_MODELS
        }
        assert lens["radix"] == max(lens.values())

    def test_invalid_app_raises(self):
        with pytest.raises(KeyError):
            generate_app_trace("nbody", 16, 1000)

    def test_burst_phases_create_load_variance(self):
        records = generate_app_trace("radix", 16, 20_000, seed=2)
        # Compare record density in low vs burst phases.
        buckets = [0] * 20
        for r in records:
            buckets[min(19, r.cycle // 1000)] += 1
        assert max(buckets) > 4 * (min(buckets) + 1)
