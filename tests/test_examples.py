"""The example scripts must run end-to-end (with small arguments)."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=480):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py", "0.004")
    assert "Delivered throughput" in out
    assert "Normalized deadlocks" in out


def test_deadlock_recovery_demo():
    out = run_example("deadlock_recovery_demo.py")
    assert "token CAPTURED" in out
    assert "token RELEASED" in out
    assert "progressive recovery adds none" in out


def test_coherence_traces():
    out = run_example("coherence_traces.py", "fft", "8000")
    assert "Response types" in out
    assert "CWG knots" in out


def test_scheme_comparison():
    out = run_example("scheme_comparison.py", "PAT100", "4")
    assert "--- SA ---" in out and "--- PR ---" in out
    assert "saturation throughput" in out


def test_endpoint_coupling():
    out = run_example("endpoint_coupling.py", "0.012")
    assert "coupling index" in out
    assert "per-type queues" in out
