"""Tests for repro.util.backoff: the shared retry delay policy."""

import pytest

from repro.util.backoff import BackoffPolicy
from repro.util.errors import ConfigurationError


class TestBackoffPolicy:
    def test_exponential_growth_without_jitter(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=100.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(5) == pytest.approx(1.6)

    def test_cap_bounds_the_delay(self):
        policy = BackoffPolicy(base=1.0, factor=10.0, cap=5.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(1.0)
        assert policy.delay(2) == pytest.approx(5.0)
        assert policy.delay(50) == pytest.approx(5.0)

    def test_jitter_is_bounded_and_deterministic(self):
        policy = BackoffPolicy(base=1.0, factor=1.0, cap=10.0,
                               jitter=0.5, seed=7)
        for attempt in range(1, 6):
            d = policy.delay(attempt, key="k")
            assert 1.0 <= d <= 1.5
            # same (seed, key, attempt) -> same delay, every time
            assert d == policy.delay(attempt, key="k")

    def test_jitter_varies_by_key_seed_and_attempt(self):
        policy = BackoffPolicy(base=1.0, factor=1.0, cap=10.0, jitter=0.5)
        other_seed = BackoffPolicy(base=1.0, factor=1.0, cap=10.0,
                                   jitter=0.5, seed=99)
        assert policy.delay(1, key="a") != policy.delay(1, key="b")
        assert policy.delay(1, key="a") != policy.delay(2, key="a")
        assert policy.delay(1, key="a") != other_seed.delay(1, key="a")

    def test_attempts_are_one_based(self):
        policy = BackoffPolicy()
        with pytest.raises(ConfigurationError):
            policy.delay(0)
        with pytest.raises(ConfigurationError):
            policy.delay(-1)

    def test_zero_base_means_no_sleep(self):
        policy = BackoffPolicy(base=0.0, jitter=0.5)
        assert policy.delay(1) == 0.0
        assert policy.delay(7, key="x") == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base=-1.0)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(cap=-0.1)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(jitter=-0.5)
