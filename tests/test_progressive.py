"""Tests for PR: Extended Disha Sequential progressive recovery."""

import pytest

from repro.core.progressive import DmbSource, ProgressiveController, RecoveryLane
from repro.core.token import Token
from repro.network.topology import Torus
from repro.protocol.chains import GENERIC_MSI
from repro.protocol.message import Message
from repro.protocol.transactions import PAT721
from tests.helpers import block_injection, build_engine, stall_endpoint

M1 = GENERIC_MSI.type_named("m1")
M2 = GENERIC_MSI.type_named("m2")
M4 = GENERIC_MSI.type_named("m4")


def stall_home(engine, home, length=3):
    nodes = engine.topology.num_nodes

    def factory(i):
        req = (home + 1 + i) % nodes
        if req == home:
            req = (req + 1) % nodes
        third = (home + 5 + i) % nodes
        while third in (home, req):
            third = (third + 1) % nodes
        return PAT721.build_transaction(req, home, third, engine.now, length=length)

    return stall_endpoint(engine, home, factory)


class TestRecoveryLane:
    def test_carries_packet_dmb_to_dmb(self):
        topo = Torus((4, 4))
        lane = RecoveryLane(topo)
        msg = Message(M2, src=0, dst=9)
        lane.start(DmbSource(msg), 0, topo.router_of_node(9), msg)
        cycles = 0
        while not lane.step(cycles):
            cycles += 1
            assert cycles < 200
        # Pipeline latency: at least hops + packet size cycles.
        assert cycles + 1 >= topo.min_hops(0, 9) + msg.size
        assert msg.flits_ejected == msg.size
        assert not lane.active

    def test_same_router_transfer(self):
        topo = Torus((2, 2), bristling=2)
        lane = RecoveryLane(topo)
        msg = Message(M2, src=0, dst=1)  # same router, different NI
        lane.start(DmbSource(msg), 0, 0, msg)
        cycles = 0
        while not lane.step(cycles):
            cycles += 1
            assert cycles < 100
        assert msg.flits_ejected == msg.size

    def test_exclusive_use(self):
        topo = Torus((4, 4))
        lane = RecoveryLane(topo)
        a = Message(M2, src=0, dst=5)
        lane.start(DmbSource(a), 0, 5, a)
        from repro.util.errors import SimulationError

        with pytest.raises(SimulationError):
            lane.start(DmbSource(a), 0, 5, a)


class TestNiCapture:
    def test_rescue_resolves_endpoint_stall(self):
        e = build_engine(scheme="PR")
        roots = stall_home(e, home=5)
        e.run(400)
        ctl = e.scheme.controller
        assert ctl.ni_captures >= 1
        assert ctl.rescues >= 1
        # The rescued head was consumed and its subordinate delivered
        # without creating any extra message.
        head = roots[0]
        assert head.rescued
        assert head.consumed_cycle > 0
        assert head.transaction.messages_used == head.transaction.chain_length

    def test_token_released_after_rescue(self):
        e = build_engine(scheme="PR")
        stall_home(e, home=5)
        e.run(600)
        ctl = e.scheme.controller
        assert ctl.token.state == Token.CIRCULATING
        assert ctl.phase == ProgressiveController.IDLE

    def test_rescued_transaction_completes(self):
        e = build_engine(scheme="PR")
        roots = stall_home(e, home=5)
        e.run(3000)
        txn = roots[0].transaction
        assert txn.completed
        assert txn.rescues >= 1

    def test_progressive_never_adds_messages(self):
        e = build_engine(scheme="PR")
        roots = stall_home(e, home=5)
        e.run(3000)
        for root in roots:
            txn = root.transaction
            assert txn.messages_used == txn.chain_length
            assert txn.deflections == 0

    def test_counts_reported(self):
        e = build_engine(scheme="PR")
        stall_home(e, home=5)
        e.run(400)
        assert e.scheme.deadlocks_detected >= 1
        assert e.stats.total.deadlocks >= 1


class TestRouterCapture:
    def _engine_with_blocked_destination(self):
        """A packet stuck at its destination router because the input
        queue never drains: classic in-network blocking for Disha."""
        e = build_engine(scheme="PR", router_timeout=25)
        # Wedge node 5's endpoint completely.
        stall_home(e, home=5)
        # Now send an unrelated terminating reply to node 5: it cannot
        # reserve an input slot and blocks at the router.
        victim = Message(M4, src=0, dst=5)
        victim.vc_class = 0
        chan = e.fabric.injection_channel(0, 0)
        e.fabric.start_injection(chan, victim, e.now)
        return e, victim

    def test_blocked_packet_is_rescued_via_dmb(self):
        e, victim = self._engine_with_blocked_destination()
        e.run(800)
        ctl = e.scheme.controller
        assert victim.rescued or victim.delivered_cycle > 0
        assert ctl.rescues >= 1

    def test_preemption_sinks_terminating_message(self):
        e, victim = self._engine_with_blocked_destination()
        e.run(1200)
        # Even with the input queue full, the rescued terminating reply
        # is sunk by the (preempted) memory controller.
        assert victim.consumed_cycle > 0 or victim.delivered_cycle > 0


class TestTokenReuse:
    def test_chained_rescue_multiple_legs(self):
        # Wedge two nodes so the rescued subordinate itself cannot be
        # queued at its destination and the token must be reused.
        e = build_engine(scheme="PR", router_timeout=100_000)
        nodes = e.topology.num_nodes

        stall_home(e, home=5)

        # Manually wedge node 9's input queue too (it is the 'third'
        # node of home 5's head transaction: dst of the m2 subordinate).
        head = e.interfaces[5].in_bank.queue(0).peek()
        third = head.continuation[0].dst
        ni3 = e.interfaces[third]
        q3 = ni3.in_bank.queue(0)
        block_injection(e, third, 0)
        out3 = ni3.out_bank.queue(0)
        while out3.free_slots > 0:
            f = Message(M2, src=third, dst=(third + 2) % nodes)
            f.vc_class = 0
            out3.push(f)
        while q3.free_slots > 0:
            txn = PAT721.build_transaction(
                (third + 1) % nodes, third, (third + 6) % nodes, 0, length=3
            )
            txn.root.vc_class = 0
            q3.push(txn.root)

        e.run(1500)
        ctl = e.scheme.controller
        # The m2 arrived at a full queue: MC preemption consumed it and
        # its own subordinate (m4) continued over the lane or fit the
        # output queue; either way the rescue chain terminated and the
        # token was released.
        assert ctl.rescues >= 1
        assert ctl.token.state == Token.CIRCULATING
        assert head.consumed_cycle > 0
