"""Scenario tests tied to specific claims in the paper's text."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SimConfig
from repro.core.token import Token
from repro.protocol.chains import GENERIC_MSI
from repro.protocol.message import Message, MessageSpec, Transaction
from repro.protocol.transactions import PAT721
from repro.sim.engine import Engine
from tests.helpers import build_engine, stall_endpoint

M1 = GENERIC_MSI.type_named("m1")
M2 = GENERIC_MSI.type_named("m2")
M4 = GENERIC_MSI.type_named("m4")


class TestFigure1Ring:
    """Figure 1: separating request/reply networks on a ring avoids the
    cycle but halves per-message channel availability."""

    def test_sa_on_ring_partitions_channels(self):
        e = build_engine(dims=(4,), scheme="SA", pattern="PAT100",
                         num_vcs=4, load=0.0)
        # Two logical networks, one escape pair each, nothing shared.
        assert e.scheme.vc_map.num_classes == 2
        assert e.scheme.vc_map.availability(0) == 1

    def test_pr_on_ring_shares_everything(self):
        e = build_engine(dims=(4,), scheme="PR", pattern="PAT100",
                         num_vcs=4, load=0.0)
        assert e.scheme.vc_map.availability(0) == 4

    @pytest.mark.parametrize("scheme", ["SA", "PR"])
    def test_ring_traffic_flows(self, scheme):
        e = build_engine(dims=(4,), scheme=scheme, pattern="PAT100",
                         num_vcs=4, load=0.01, seed=2)
        w = e.run_measured(500, 1500)
        assert w.messages_delivered > 30
        assert e.quiesce(max_cycles=50_000)


class TestAppendixCase4:
    """Lemma Case 4: a rescued message generating *several* subordinates
    that all fail to enter the output queue — the token is reused for
    each before returning."""

    def test_multi_subordinate_rescue(self):
        e = build_engine(scheme="PR")
        home, nodes = 5, e.topology.num_nodes
        scheme = e.scheme
        ni = e.interfaces[home]

        # Head message with two request-class subordinates (like a
        # two-sharer invalidation).
        txn = Transaction(uid=991, requester=6, home=home, chain_length=3,
                          created_cycle=0)
        head = Message(
            M1, src=6, dst=home,
            continuation=(MessageSpec(M2, 9), MessageSpec(M2, 10)),
            transaction=txn,
        )
        txn.root = head
        txn.outstanding = 3
        txn.messages_used = 3
        head.vc_class = 0
        q = ni.in_bank.queue(0)
        q.push(head)

        # Fill the rest of the input queue and wedge the output side.
        def filler_txn(i):
            req = (home + 1 + i) % nodes
            if req == home:
                req = (req + 1) % nodes
            third = (home + 6 + i) % nodes
            while third in (home, req):
                third = (third + 1) % nodes
            return PAT721.build_transaction(req, home, third, 0, length=3)

        stall_endpoint(e, home, filler_txn)

        e.run(800)
        ctl = e.scheme.controller
        assert ctl.rescues >= 1
        assert head.consumed_cycle > 0
        # Both subordinates reached their destinations with no extras.
        assert txn.messages_used == 3
        assert ctl.token.state == Token.CIRCULATING
        e.run(2000)
        assert txn.completed


class TestSingleTokenUnderPressure:
    def test_many_wedged_nodes_resolved_sequentially(self):
        # Several NIs deadlocked at once: the single token must visit and
        # rescue them one at a time (Section 3: "only one
        # message-dependent deadlock can be resolved at a time").
        e = build_engine(scheme="PR")
        nodes = e.topology.num_nodes
        homes = (3, 9, 14)
        for home in homes:
            def factory(i, home=home):
                req = (home + 1 + i) % nodes
                if req == home:
                    req = (req + 1) % nodes
                third = (home + 7 + i) % nodes
                while third in (home, req):
                    third = (third + 1) % nodes
                return PAT721.build_transaction(req, home, third, 0, length=3)

            stall_endpoint(e, home, factory)
        e.run(3000)
        ctl = e.scheme.controller
        assert ctl.ni_captures >= len(homes)
        assert ctl.token.state == Token.CIRCULATING


@settings(max_examples=12, deadline=None)
@given(
    dims=st.sampled_from([(4,), (2, 2), (3, 3), (4, 4)]),
    scheme=st.sampled_from(["PR", "NONE"]),
    seed=st.integers(0, 50),
)
def test_conservation_property(dims, scheme, seed):
    """Random light-load runs always drain completely: every message
    injected is delivered exactly once and consumed exactly once."""
    e = Engine(SimConfig(dims=dims, scheme=scheme, pattern="PAT721",
                         load=0.004, seed=seed))
    e.run(600)
    assert e.quiesce(max_cycles=80_000)
    total = e.stats.total
    assert total.messages_consumed == total.messages_delivered
    for txn in e.traffic.transactions:
        assert txn.completed
