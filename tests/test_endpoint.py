"""Tests for the memory controller and network interface."""

from repro import SimConfig
from repro.protocol.chains import GENERIC_MSI
from repro.protocol.message import Message, MessageSpec
from repro.sim.engine import Engine

M1 = GENERIC_MSI.type_named("m1")
M2 = GENERIC_MSI.type_named("m2")
M4 = GENERIC_MSI.type_named("m4")


def quiet_engine(**kwargs):
    defaults = dict(dims=(4, 4), scheme="PR", pattern="PAT721", load=0.0, seed=5)
    defaults.update(kwargs)
    return Engine(SimConfig(**defaults))


def deliver_direct(engine, ni, msg):
    """Place a message straight into the NI input queue."""
    cls = engine.scheme.queue_class_of(msg.mtype)
    ni.in_bank.queue(cls).push(msg)


class TestMemoryController:
    def test_terminating_message_sinks_quickly(self):
        e = quiet_engine(sink_time=1)
        ni = e.interfaces[3]
        msg = Message(M4, src=0, dst=3)
        deliver_direct(e, ni, msg)
        e.run(5)
        assert msg.consumed_cycle > 0
        assert ni.controller.messages_serviced == 1

    def test_service_time_respected(self):
        e = quiet_engine(service_time=40)
        ni = e.interfaces[3]
        msg = Message(M1, src=0, dst=3, continuation=(MessageSpec(M4, 0),))
        deliver_direct(e, ni, msg)
        e.run(10)
        assert msg.consumed_cycle == -1  # still being serviced
        e.run(40)
        assert msg.consumed_cycle > 0

    def test_subordinates_created_on_completion(self):
        e = quiet_engine()
        ni = e.interfaces[3]
        msg = Message(
            M1, src=0, dst=3,
            continuation=(MessageSpec(M2, 7, (MessageSpec(M4, 0),)),),
        )
        deliver_direct(e, ni, msg)
        e.run(200)
        # The m2 was produced, injected, and delivered to node 7.
        assert e.stats.total.messages_delivered >= 1
        assert msg.consumed_cycle > 0

    def test_service_gated_on_output_space(self):
        e = quiet_engine(queue_capacity=2)
        ni = e.interfaces[3]
        out_cls = e.scheme.queue_class_of(M2)
        out_q = ni.out_bank.queue(out_cls)
        # Fill the output queue so the head cannot be serviced.
        filler1 = Message(M2, src=3, dst=9)
        filler2 = Message(M2, src=3, dst=10)
        out_q.push(filler1)
        out_q.push(filler2)
        # Saturate the injection path so the queue cannot drain: fill it
        # again as soon as the NI pulls a message into the channel.
        msg = Message(M1, src=0, dst=3, continuation=(MessageSpec(M2, 7),))
        deliver_direct(e, ni, msg)
        for _ in range(5):
            e.step()
            while out_q.free_slots > 0:
                out_q.push(Message(M2, src=3, dst=11))
        assert msg.consumed_cycle == -1  # blocked on output space

    def test_multi_subordinate_needs_space_for_all(self):
        e = quiet_engine(queue_capacity=2)
        ni = e.interfaces[3]
        out_cls = e.scheme.queue_class_of(M2)
        out_q = ni.out_bank.queue(out_cls)
        msg = Message(
            M1, src=0, dst=3,
            continuation=(MessageSpec(M2, 7), MessageSpec(M2, 8)),
        )
        deliver_direct(e, ni, msg)
        # Occupy the injection channel with a long packet so the output
        # queue cannot drain, then hold the queue at one free slot: two
        # subordinates never fit, so the head must not be taken up for
        # service (and no held slots may leak from failed attempts).
        blocker = Message(M2, src=3, dst=9, size=500)
        blocker.vc_class = 0
        e.fabric.start_injection(e.fabric.injection_channel(3, out_cls), blocker, 0)
        out_q.push(Message(M2, src=3, dst=9))
        for _ in range(6):
            e.step()
        assert out_q.free_slots == 1
        assert msg.consumed_cycle == -1
        assert out_q.held == 0


class TestAdmissionControl:
    def test_max_outstanding_limits_admission(self):
        e = quiet_engine(max_outstanding=2)
        ni = e.interfaces[0]
        for _ in range(5):
            msg = Message(M1, src=0, dst=3, continuation=(MessageSpec(M4, 0),))
            ni.enqueue_root(msg)
        e.run(3)
        assert ni.outstanding == 2
        assert len(ni.source_queue) == 3

    def test_admission_resumes_after_completion(self):
        e = quiet_engine(max_outstanding=1)
        ni = e.interfaces[0]
        from repro.protocol.transactions import PAT100

        for _ in range(2):
            txn = PAT100.build_transaction(0, 3, 9, e.now, length=2)
            ni.enqueue_root(txn.root)
        e.run(400)
        assert ni.outstanding == 0
        assert len(ni.source_queue) == 0

    def test_latency_includes_source_queue_wait(self):
        e = quiet_engine(max_outstanding=1)
        ni = e.interfaces[0]
        from repro.protocol.transactions import PAT100

        txns = [PAT100.build_transaction(0, 3, 9, 1, length=2) for _ in range(2)]
        for t in txns:
            ni.enqueue_root(t.root)
        e.run(500)
        lat0 = txns[0].root.delivered_cycle - txns[0].root.created_cycle
        lat1 = txns[1].root.delivered_cycle - txns[1].root.created_cycle
        assert lat1 > lat0  # second one waited for the first MSHR


class TestReservationsUnderDR:
    def test_injection_reserves_reply_slot(self):
        e = quiet_engine(scheme="DR", pattern="PAT721")
        ni = e.interfaces[0]
        from repro.protocol.transactions import PAT721

        txn = PAT721.build_transaction(0, 3, 9, 0, length=2)
        ni.enqueue_root(txn.root)
        e.run(2)
        reply_cls = e.scheme.queue_class_of(M4)
        assert ni.in_bank.queue(reply_cls).reserved == 1

    def test_reservation_consumed_by_reply(self):
        e = quiet_engine(scheme="DR", pattern="PAT721")
        ni = e.interfaces[0]
        from repro.protocol.transactions import PAT721

        txn = PAT721.build_transaction(0, 3, 9, 0, length=2)
        ni.enqueue_root(txn.root)
        e.run(600)
        assert txn.completed
        reply_cls = e.scheme.queue_class_of(M4)
        assert ni.in_bank.queue(reply_cls).reserved == 0

    def test_partial_reservation_failure_rolls_back(self):
        """Admission needing two reply slots with only one free must not
        leak the slot it managed to claim, and must succeed on retry."""
        e = quiet_engine(scheme="DR", pattern="PAT721")
        ni = e.interfaces[0]
        reply_cls = e.scheme.queue_class_of(M4)
        reply_q = ni.in_bank.queue(reply_cls)
        # Artificially occupy reply slots until exactly one remains.
        pinned = 0
        while reply_q.free_slots > 1:
            assert reply_q.try_reserve_reply()
            pinned += 1
        assert reply_q.free_slots == 1
        # A root owed two replies: make_reservations claims the first
        # slot, fails on the second, and must roll the first back.
        root = Message(
            M1, src=0, dst=3,
            continuation=(MessageSpec(M4, 0), MessageSpec(M4, 0)),
        )
        ni.enqueue_root(root)
        reserved_before = reply_q.reserved
        e.run(10)  # ten admission retries; a leak would accumulate
        assert len(ni.source_queue) == 1  # still waiting
        assert ni.outstanding == 0
        assert reply_q.reserved == reserved_before
        assert reply_q.free_slots == 1
        # Free the pinned slots: the retried admission now succeeds and
        # claims both reply slots.
        for _ in range(pinned):
            reply_q.release_reservation()
        e.run(5)
        assert len(ni.source_queue) == 0
        assert ni.outstanding == 1
        assert reply_q.reserved == 2
        # Both replies come back, consume their reservations, and the
        # system drains cleanly.
        assert e.quiesce(max_cycles=20_000)
        assert reply_q.reserved == 0
        assert e.stats.total.messages_consumed == e.stats.total.messages_delivered

    def test_home_reserves_for_m3_in_l4_chain(self):
        e = quiet_engine(scheme="DR", pattern="PAT721")
        from repro.protocol.transactions import PAT721

        txn = PAT721.build_transaction(0, 3, 9, 0, length=4)
        e.interfaces[0].enqueue_root(txn.root)
        home = e.interfaces[3]
        m3_cls = e.scheme.queue_class_of(GENERIC_MSI.type_named("m3"))
        saw_reservation = False
        for _ in range(900):
            e.step()
            if home.in_bank.queue(m3_cls).reserved > 0:
                saw_reservation = True
        assert saw_reservation
        assert txn.completed
        assert home.in_bank.queue(m3_cls).reserved == 0
