"""Two-backend equivalence: vector results must be bit-identical.

The vector backend (``SimConfig(backend="vector")``) re-implements the
fabric as struct-of-arrays state advanced by a compiled kernel, but it
must produce *exactly* the results of the reference engine — every
counter, every float accumulation, every per-node controller statistic.
These tests compare deep snapshots of both engines after identical runs:

* a ladder of small deterministic points covering every scheme,
* saturated 8x8 points that exercise deflection and progressive
  rescue (token captures, lane transfers, priority service),
* a hypothesis property over random (dims, scheme, load, seed) points,
* the full seeded smoke campaign grid (marked ``campaign``; run by the
  ``backend-equivalence`` CI job, deselected from the default suite).

There is no tolerance anywhere: any field that differs is a failure.
The only documented divergence between backends is feature *support* —
telemetry, faults, invariants, the watchdog and CWG detection raise
``UnsupportedFeatureError`` on the vector backend (see
``test_unsupported_features_raise``) instead of silently diverging.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimConfig
from repro.sim.engine import build_engine
from repro.sim.sweep import run_point
from repro.util.errors import UnsupportedFeatureError

pytestmark = []


def engine_snapshot(engine) -> dict:
    """Everything observable about a finished run, for exact comparison."""
    stats = engine.stats
    snap = {
        "now": engine.now,
        "total": dataclasses.asdict(stats.total),
        "by_type": stats.by_type,
        "messages_created": stats.messages_created,
        "first_deadlock_cycle": stats.first_deadlock_cycle,
        "occupancy": engine.fabric.occupancy(),
        "flits_forwarded": engine.fabric.flits_forwarded,
        "flits_injected": engine.fabric.flits_injected,
        "flits_ejected": engine.fabric.flits_ejected,
        "alloc_failures": engine.fabric.alloc_failures,
        "queued": engine.total_queued_messages(),
        "outstanding": [ni.outstanding for ni in engine.interfaces],
        "serviced": [ni.controller.messages_serviced for ni in engine.interfaces],
        "busy_cycles": [ni.controller.busy_cycles for ni in engine.interfaces],
        "source_depth": [len(ni.source_queue) for ni in engine.interfaces],
        "deadlocks_detected": engine.scheme.deadlocks_detected,
        "recoveries": engine.scheme.recoveries,
    }
    controller = getattr(engine.scheme, "controller", None)
    for field in (
        "deflections",
        "rescues",
        "router_captures",
        "ni_captures",
        "token_regenerations",
    ):
        if controller is not None and hasattr(controller, field):
            snap[field] = getattr(controller, field)
    return snap


def assert_backends_identical(cycles: int, **cfg) -> dict:
    ref = build_engine(SimConfig(backend="reference", **cfg))
    vec = build_engine(SimConfig(backend="vector", **cfg))
    ref.run(cycles)
    vec.run(cycles)
    a, b = engine_snapshot(ref), engine_snapshot(vec)
    assert a == b, (
        "backend divergence for "
        f"{cfg}: "
        + ", ".join(f"{k}: {a[k]!r} != {b[k]!r}" for k in a if a[k] != b[k])
    )
    return a


LADDER = [
    dict(scheme="SA", pattern="PAT721", dims=(4, 4), num_vcs=8, load=0.02, seed=1),
    dict(scheme="NONE", pattern="PAT721", dims=(4, 4), num_vcs=4, load=0.05, seed=2),
    dict(scheme="DR", pattern="PAT721", dims=(4, 4), num_vcs=4, load=0.05, seed=1),
    dict(scheme="DR", pattern="PAT721", dims=(4, 4), num_vcs=4, load=0.1, seed=3),
    dict(scheme="PR", pattern="PAT721", dims=(4, 4), num_vcs=4, load=0.05, seed=1),
    dict(scheme="PR", pattern="PAT721", dims=(4, 4), num_vcs=4, load=0.1, seed=2),
    dict(scheme="PR", pattern="PAT271", dims=(4, 4), num_vcs=4, load=0.08, seed=4),
]


@pytest.mark.parametrize(
    "cfg", LADDER, ids=[f"{c['scheme']}-{c['load']}-s{c['seed']}" for c in LADDER]
)
def test_small_points_bit_identical(cfg):
    assert_backends_identical(4000, **cfg)


TOPOLOGY_LADDER = [
    dict(topology="fullmesh", dims=(2, 4), scheme="SA", pattern="PAT721",
         num_vcs=8, load=0.02, seed=1),
    dict(topology="fullmesh", dims=(2, 4), scheme="PR", pattern="PAT271",
         num_vcs=4, load=0.05, seed=2),
    dict(topology="mesh2d", dims=(4, 4), scheme="DR", pattern="PAT271",
         num_vcs=4, load=0.05, seed=1),
    dict(topology="mesh2d", dims=(4, 4), scheme="PR", pattern="PAT721",
         num_vcs=4, load=0.05, seed=3),
    dict(topology="irregular", scheme="SA", pattern="PAT721",
         num_vcs=8, load=0.02, seed=1),
    dict(topology="irregular", scheme="DR", pattern="PAT271",
         num_vcs=8, load=0.03, seed=4),
    dict(topology="irregular", scheme="PR", pattern="PAT271",
         num_vcs=4, load=0.05, seed=2),
]


@pytest.mark.parametrize(
    "cfg", TOPOLOGY_LADDER,
    ids=[f"{c['topology']}-{c['scheme']}-s{c['seed']}"
         for c in TOPOLOGY_LADDER],
)
def test_new_topology_points_bit_identical(cfg):
    """Table routing exports to the kernel identically to the reference
    engine on full-mesh, open-mesh and irregular substrates."""
    assert_backends_identical(4000, **cfg)


def test_saturated_pr_exercises_rescue():
    """8x8 PR past saturation: token captures and lane rescues occur and agree."""
    snap = assert_backends_identical(
        2500,
        scheme="PR", pattern="PAT721", dims=(8, 8), num_vcs=4,
        load=0.014, seed=3,
    )
    assert snap["rescues"] > 0, "point too light to exercise the rescue path"


def test_saturated_dr_exercises_deflection():
    snap = assert_backends_identical(
        4000,
        scheme="DR", pattern="PAT271", dims=(8, 8), num_vcs=4,
        load=0.022, seed=4,
    )
    assert snap["deflections"] > 0, "point too light to exercise deflection"


def test_dr_drain_mode_rearm_ties_identical():
    """Timer-expiry ordering audit: same-cycle ties + mid-loop re-arm.

    DR's drain policy keeps deflecting queue heads in a while-loop after
    the first success, which re-arms the detector *mid-step* — the
    vector bank's ``_rearm_midloop`` path, which must leave the site
    dirty so the next cycle re-collects a still-fired detector even
    though its calendar entry is stale.  At saturation several nodes'
    timers expire on the same cycle, so this also pins the bank's
    expiry ordering against the reference engine's build-order scan.
    """
    snap = assert_backends_identical(
        4000,
        scheme="DR", pattern="PAT271", dims=(8, 8), num_vcs=4,
        load=0.022, seed=4, recovery_policy="drain",
    )
    assert snap["deflections"] > 1, (
        "point too light to exercise drain-mode re-arm"
    )


def test_run_point_results_identical():
    """The sweep-facing surface (RunResult) agrees field for field."""
    base = dict(
        scheme="DR", pattern="PAT721", dims=(4, 4), num_vcs=4,
        load=0.06, seed=5,
    )
    ref = run_point(SimConfig(backend="reference", **base), warmup=500, measure=1500)
    vec = run_point(SimConfig(backend="vector", **base), warmup=500, measure=1500)
    assert ref == vec


@given(
    scheme=st.sampled_from(["NONE", "DR", "PR"]),
    dims=st.sampled_from([(3, 3), (4, 4), (2, 4), (5,)]),
    load=st.sampled_from([0.01, 0.04, 0.09]),
    seed=st.integers(min_value=0, max_value=2**16),
    pattern=st.sampled_from(["PAT721", "PAT271"]),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_points_bit_identical(scheme, dims, load, seed, pattern):
    assert_backends_identical(
        900,
        scheme=scheme, pattern=pattern, dims=dims, num_vcs=4,
        load=load, seed=seed,
    )


def test_unsupported_features_raise():
    """Introspection layers must refuse loudly, never silently diverge."""
    base = dict(scheme="PR", pattern="PAT721", dims=(4, 4), num_vcs=4, load=0.01)
    for extra in (
        dict(watchdog_timeout=1000),
        dict(invariants_every=100),
        dict(cwg_interval=50),
        dict(detector="cmh"),
        dict(detector="timeout"),
    ):
        with pytest.raises(UnsupportedFeatureError):
            build_engine(SimConfig(backend="vector", **base, **extra))
    engine = build_engine(SimConfig(backend="vector", **base))
    with pytest.raises(UnsupportedFeatureError):
        engine.attach_tracer(object())


# ----------------------------------------------------------------------
# The full seeded smoke campaign, per point (CI: backend-equivalence).
# ----------------------------------------------------------------------

def smoke_campaign_points() -> list[dict]:
    """The seeded smoke grid: every scheme/pattern at sweep loads."""
    points = []
    for scheme, num_vcs in [("SA", 8), ("NONE", 4), ("DR", 4), ("PR", 4)]:
        for pattern in ("PAT721", "PAT271"):
            if scheme == "DR" and pattern == "PAT271":
                continue  # DR needs a request-generating chain of length > 2
            for load in (0.004, 0.01, 0.02):
                points.append(
                    dict(
                        scheme=scheme, pattern=pattern, dims=(4, 4),
                        num_vcs=num_vcs, load=load, seed=7,
                    )
                )
    return points


@pytest.mark.campaign
@pytest.mark.parametrize(
    "cfg",
    smoke_campaign_points(),
    ids=lambda c: f"{c['scheme']}-{c['pattern']}-{c['load']}",
)
def test_smoke_campaign_point_identical(cfg):
    ref = run_point(SimConfig(backend="reference", **cfg), warmup=1000, measure=2500)
    vec = run_point(SimConfig(backend="vector", **cfg), warmup=1000, measure=2500)
    assert ref == vec
