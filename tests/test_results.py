"""Tests for result containers, sweeps and stats aggregation."""

import json

import pytest

from repro import SimConfig
from repro.sim.results import RunResult, SweepResult, burton_normal_form
from repro.sim.stats import WindowCounters
from repro.sim.sweep import run_point, run_sweep


def mk_point(load, thr, lat):
    return RunResult(
        scheme="PR", pattern="PAT721", num_vcs=4, load=load, cycles=1000,
        messages_delivered=100, throughput_fpc=thr, mean_latency=lat,
        latency_max=3 * int(lat) + 1, deadlocks=0, normalized_deadlocks=0.0,
        transactions_completed=40, mean_txn_latency=2 * lat,
    )


class TestContainers:
    def test_run_result_roundtrips_json(self):
        p = mk_point(0.004, 0.1, 25.0)
        d = json.loads(json.dumps(p.to_dict()))
        assert d["scheme"] == "PR" and d["throughput_fpc"] == 0.1

    def test_sweep_accessors(self):
        s = SweepResult("x", [mk_point(0.002, 0.05, 20), mk_point(0.004, 0.11, 26)])
        assert s.loads() == [0.002, 0.004]
        assert s.saturation_throughput() == 0.11
        assert s.latency_at_load(0.004) == 26
        with pytest.raises(KeyError):
            s.latency_at_load(0.5)
        assert burton_normal_form(s) == [(0.05, 20), (0.11, 26)]
        assert json.loads(s.to_json())["label"] == "x"

    def test_empty_sweep(self):
        assert SweepResult("e").saturation_throughput() == 0.0


class TestWindowCounters:
    def test_metrics(self):
        w = WindowCounters(start_cycle=100, end_cycle=200)
        w.messages_delivered = 10
        w.flits_delivered = 120
        w.latency_sum = 300.0
        w.deadlocks = 2
        assert w.cycles == 100
        assert w.mean_latency() == 30.0
        assert w.throughput_fpc(4) == 120 / (4 * 100)
        assert w.normalized_deadlocks() == 0.2

    def test_zero_division_guards(self):
        w = WindowCounters()
        assert w.mean_latency() == 0.0
        assert w.normalized_deadlocks() == 0.0
        assert w.cycles == 1


class TestSweep:
    def test_run_point_structure(self):
        cfg = SimConfig(scheme="PR", pattern="PAT721", num_vcs=4, load=0.004,
                        seed=3)
        p = run_point(cfg, warmup=300, measure=600)
        assert p.scheme == "PR" and p.load == 0.004
        assert p.messages_delivered > 0
        assert p.throughput_fpc > 0
        assert p.mean_latency > 0

    def test_sweep_orders_loads_and_labels(self):
        cfg = SimConfig(scheme="PR", pattern="PAT721", num_vcs=4, seed=3)
        s = run_sweep(cfg, [0.004, 0.002], warmup=200, measure=400,
                      stop_past_saturation=False)
        assert s.loads() == [0.002, 0.004]
        assert s.label == "PR/PAT721/4vc"

    def test_sweep_stops_past_saturation(self):
        cfg = SimConfig(scheme="DR", pattern="PAT721", num_vcs=4, seed=3)
        loads = [0.002, 0.006, 0.010, 0.014, 0.018, 0.022, 0.026,
                 0.030, 0.034]
        s = run_sweep(cfg, loads, warmup=800, measure=1500)
        # The sweep must cut off once throughput collapses.
        assert len(s.points) < len(loads)
