"""Property-based tests (hypothesis) on core structures and invariants."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cwg import find_knots
from repro.network.routing import partitioned_vc_map, tfar_vc_map
from repro.network.topology import Torus
from repro.protocol.chains import GENERIC_MSI
from repro.protocol.message import MessageSpec, count_messages
from repro.util.errors import ConfigurationError

dims_strategy = st.lists(st.integers(2, 6), min_size=1, max_size=3).map(tuple)


@settings(max_examples=60, deadline=None)
@given(dims=dims_strategy, data=st.data())
def test_dor_path_minimal_and_connected(dims, data):
    """DOR reaches every destination over a minimal path."""
    topo = Torus(dims)
    src = data.draw(st.integers(0, topo.num_routers - 1))
    dst = data.draw(st.integers(0, topo.num_routers - 1))
    path = topo.dor_path(src, dst)
    assert len(path) == topo.min_hops(src, dst)
    cur = src
    for link in path:
        assert link.src == cur
        cur = link.dst
    assert cur == dst


@settings(max_examples=60, deadline=None)
@given(dims=dims_strategy, data=st.data())
def test_productive_directions_reduce_distance(dims, data):
    topo = Torus(dims)
    src = data.draw(st.integers(0, topo.num_routers - 1))
    dst = data.draw(st.integers(0, topo.num_routers - 1))
    if src == dst:
        return
    base = topo.min_hops(src, dst)
    for dim, direction, _ in topo.productive_directions(src, dst):
        nxt = topo.out_link(src, dim, direction).dst
        assert topo.min_hops(nxt, dst) == base - 1


@settings(max_examples=100, deadline=None)
@given(num_vcs=st.integers(1, 32), num_classes=st.integers(1, 6),
       shared=st.booleans())
def test_vc_map_partition_covers_and_respects_formulas(num_vcs, num_classes, shared):
    """Partitioned maps: every class gets its escape pair; availability
    matches the paper's formulas; no class exceeds the channel range."""
    try:
        m = partitioned_vc_map(num_vcs, num_classes, shared_extras=shared)
    except ConfigurationError:
        assert num_vcs < 2 * num_classes or (
            not shared and num_vcs // num_classes < 2
        )
        return
    for cls in range(num_classes):
        lo, hi = m.escape[cls]
        assert 0 <= lo < hi < num_vcs
        for idx in m.adaptive[cls]:
            assert 0 <= idx < num_vcs
        if shared:
            assert m.availability(cls) == 1 + (num_vcs - 2 * num_classes)
    if not shared:
        # Split partitions are disjoint and cover all channels.
        all_vcs = []
        for cls in range(num_classes):
            all_vcs.extend(m.escape[cls])
            all_vcs.extend(m.adaptive[cls])
        assert sorted(all_vcs) == list(range(num_vcs))


@st.composite
def spec_trees(draw, depth=0):
    mtype = draw(st.sampled_from(GENERIC_MSI.types))
    dst = draw(st.integers(0, 15))
    if depth >= 3:
        children = ()
    else:
        children = tuple(
            draw(spec_trees(depth=depth + 1))
            for _ in range(draw(st.integers(0, 2)))
        )
    return MessageSpec(mtype, dst, children)


@settings(max_examples=100, deadline=None)
@given(tree=spec_trees())
def test_spec_tree_counts_consistent(tree):
    assert count_messages(tree) >= tree.chain_length()
    assert tree.chain_length() >= 1
    # count == 1 exactly for leaves.
    assert (count_messages(tree) == 1) == (tree.continuation == ())


@st.composite
def digraphs(draw):
    n = draw(st.integers(1, 10))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=25,
        )
    )
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    return g


@settings(max_examples=150, deadline=None)
@given(g=digraphs())
def test_knots_match_brute_force_definition(g):
    """find_knots agrees with the textbook definition: a maximal set K
    containing a cycle such that nothing outside K is reachable from K."""
    knots = find_knots(g)
    # Brute force: for every SCC, check sink-ness and cyclicity.
    expected = []
    for scc in nx.strongly_connected_components(g):
        has_cycle = len(scc) > 1 or any(g.has_edge(v, v) for v in scc)
        is_sink = all(w in scc for v in scc for w in g.successors(v))
        if has_cycle and is_sink:
            expected.append(set(scc))
    assert {frozenset(k) for k in knots} == {frozenset(k) for k in expected}
    # Every knot truly traps its members.
    for k in knots:
        for v in k:
            assert set(nx.descendants(g, v)) <= k


@settings(max_examples=40, deadline=None)
@given(num_vcs=st.integers(1, 16))
def test_tfar_map_exposes_every_channel(num_vcs):
    m = tfar_vc_map(num_vcs)
    assert m.availability(0) == num_vcs
    assert m.escape == (None,)
