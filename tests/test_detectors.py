"""Tests for the pluggable detector protocol: endpoint / cmh / timeout.

Covers detector selection and scheme wiring, the Chandy-Misra-Haas
edge chase on an engineered two-node dependency cycle, the probe
overlay network, the timeout heuristic, probe visibility in telemetry
and stitched episodes, the None-hardened dump/episode rendering, and
the lab's ground-truth guarantees as properties:

* zero false negatives — CMH declares on a run the CWG checker marks
  deadlocked (deterministic saturated point);
* zero cycle-prover false positives / bounded timeout false positives
  on CWG-certified deadlock-free runs (hypothesis over the light end
  of the seeded smoke grid).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimConfig
from repro.core.cmh import CmhDetector, CmhSite, ProbeNetwork
from repro.core.detection import DetectorPair, TimeoutSite
from repro.core.detectors import (
    OVERHEAD_FIELDS,
    EndpointDetector,
    TimeoutDetector,
)
from repro.protocol.message import Message
from repro.protocol.probe import PROBE_TYPE, Probe
from repro.protocol.transactions import PAT721
from repro.sim.invariants import capture_dump, format_dump
from repro.telemetry import Tracer, stitch_episodes
from repro.telemetry import events as ev
from repro.telemetry.episodes import RecoveryEpisode, format_episodes
from repro.util.errors import ConfigurationError
from tests.helpers import build_engine, deliver_direct, stall_endpoint


def make_txn_factory(engine, home, length=3):
    def factory(i):
        n = engine.topology.num_nodes
        req = (home + 1 + i) % n
        third = (home + 5 + i) % n
        if third in (home, req):
            third = (third + 1) % n
        return PAT721.build_transaction(req, home, third, engine.now, length=length)

    return factory


def wedge_pair(engine, a, b):
    """Wedge nodes ``a`` and ``b`` into a mutual wait-for cycle.

    Each node gets the full endpoint-stall condition (input queue of
    non-terminating requests, full output queue, occupied injection
    channel), and every wedged output message is retargeted at the
    *other* node — so the CMH wait-for frontier of ``a`` points at
    ``b`` and vice versa: a genuine two-edge dependency cycle.
    """
    for node, other in ((a, b), (b, a)):
        stall_endpoint(engine, node, make_txn=make_txn_factory(engine, node))
        for msg in engine.interfaces[node].out_bank.queue(0).entries:
            msg.dst = other


def chase_until_declared(det, max_cycles=60):
    """Drive pre_step until any site declares; returns (cycle, site)."""
    for cycle in range(1, max_cycles):
        det.pre_step(cycle)
        for site in det.sites:
            if site.declared_at >= 0:
                return cycle, site
    return None, None


# ----------------------------------------------------------------------
# Detector selection and scheme wiring
# ----------------------------------------------------------------------
class TestDetectorSelection:
    @pytest.mark.parametrize(
        "name,cls",
        [("endpoint", EndpointDetector), ("timeout", TimeoutDetector),
         ("cmh", CmhDetector)],
    )
    def test_config_selects_mechanism(self, name, cls):
        e = build_engine(scheme="NONE", detector=name)
        assert isinstance(e.detector, cls)
        assert e.detector.kind == name
        # Scheme controllers poll the detector's own site list.
        assert e.scheme.detectors is e.detector.sites
        assert set(e.detector.overhead()) == set(OVERHEAD_FIELDS)
        described = e.detector.describe()
        assert described["detector"] == name
        assert described["sites"] == len(e.detector.sites)

    def test_endpoint_detector_reports_zero_probe_overhead(self):
        e = build_engine(scheme="NONE", detector="endpoint")
        e.run(50)
        assert all(v == 0 for v in e.detector.overhead().values())

    @pytest.mark.parametrize("scheme", ["DR", "PR", "NONE"])
    @pytest.mark.parametrize("detector", ["endpoint", "cmh", "timeout"])
    def test_every_recovery_scheme_runs_every_detector(self, scheme, detector):
        e = build_engine(scheme=scheme, detector=detector, load=0.01)
        e.run(60)
        assert e.detector.kind == detector

    def test_sa_rejects_non_default_detectors(self):
        for detector in ("cmh", "timeout"):
            with pytest.raises(ConfigurationError):
                build_engine(scheme="SA", num_vcs=8, detector=detector)

    def test_unknown_detector_rejected_at_config(self):
        with pytest.raises(ConfigurationError):
            SimConfig(dims=(4, 4), scheme="NONE", pattern="PAT721",
                      detector="oracle")

    def test_detector_thresholds_validated(self):
        for bad in (
            dict(timeout_threshold=0),
            dict(cmh_block_threshold=0),
            dict(cmh_probe_interval=0),
        ):
            with pytest.raises(ConfigurationError):
                SimConfig(dims=(4, 4), scheme="NONE", pattern="PAT721", **bad)


# ----------------------------------------------------------------------
# The probe overlay
# ----------------------------------------------------------------------
class TestProbeNetwork:
    def test_latency_is_min_hops_plus_one(self):
        e = build_engine(scheme="NONE")
        topo = e.topology
        net = ProbeNetwork(topo)
        for src, dst in ((0, 1), (0, 5), (3, 12)):
            hops = topo.min_hops(topo.router_of_node(src),
                                 topo.router_of_node(dst))
            assert net.latency(src, dst) == hops + 1
        # Cached second lookup agrees.
        assert net.latency(0, 5) == net.latency(0, 5)

    def test_calendar_preserves_send_order_per_cycle(self):
        e = build_engine(scheme="NONE")
        net = ProbeNetwork(e.topology)
        p1 = Probe(0, 0, 0, src=0, dst=1, started_cycle=10, sent_cycle=10)
        p2 = Probe(2, 0, 0, src=0, dst=1, started_cycle=10, sent_cycle=10)
        lat = net.send(p1, 10)
        assert net.send(p2, 10) == lat
        assert net.in_flight == 2
        assert net.deliveries(10 + lat - 1) == []
        assert net.deliveries(10 + lat) == [p1, p2]
        assert net.in_flight == 0
        assert net.deliveries(10 + lat) == []

    def test_forwarded_probe_keeps_chase_identity(self):
        p = Probe(3, 1, 2, src=3, dst=7, started_cycle=10, sent_cycle=10)
        f = p.forwarded(7, 9, 14)
        assert f.site == p.site == (3, 1, 2)
        assert (f.src, f.dst) == (7, 9)
        assert f.started_cycle == 10 and f.sent_cycle == 14
        assert f.forwards == p.forwards + 1
        assert f.message.mtype is PROBE_TYPE and f.message.size == 1


# ----------------------------------------------------------------------
# The CMH edge chase on an engineered dependency cycle
# ----------------------------------------------------------------------
class TestCmhChase:
    def test_engineered_cycle_declares(self):
        e = build_engine(scheme="NONE", detector="cmh")
        wedge_pair(e, 5, 6)
        det = e.detector
        declared, site = chase_until_declared(det)
        assert declared is not None, "probe never returned to its initiator"
        assert isinstance(site, CmhSite)
        # The latch is what scheme controllers see when they poll.
        assert site.step(declared) is True
        # Formation timestamp feeds episode/latency accounting.
        assert site.since == site.blocked_since >= 1
        assert det.probes_sent > 0
        assert det.probes_returned >= 1
        assert det.probe_hops > 0
        # Probes that hit unblocked bystander nodes die there.
        assert det.probes_dropped >= 1
        assert det.net.in_flight >= 0

    def test_declaration_needs_a_cycle_not_just_blocking(self):
        # One wedged node with no return edge: blocked forever, but the
        # chase finds no cycle, so CMH (unlike a timeout) stays silent.
        e = build_engine(scheme="NONE", detector="cmh")
        stall_endpoint(e, 5, make_txn=make_txn_factory(e, 5))
        det = e.detector
        for cycle in range(1, 120):
            det.pre_step(cycle)
        assert all(site.declared_at < 0 for site in det.sites)
        assert det.probes_sent > 0  # it did chase
        assert det.probes_returned == 0

    def test_progress_aborts_declaration_and_chase(self):
        e = build_engine(scheme="NONE", detector="cmh")
        wedge_pair(e, 5, 6)
        det = e.detector
        declared, site = chase_until_declared(det)
        assert declared is not None
        assert site.key in det._engaged
        # The wedge breaks: input-queue progress at the declared site.
        site.ni.in_bank.queue(site.in_cls).pop()
        det.pre_step(declared + 1)
        assert site.declared_at < 0
        assert site.blocked_since < 0
        assert site.key not in det._engaged
        assert site.step(declared + 1) is False

    def test_reset_rearms_and_the_chase_redeclares(self):
        e = build_engine(scheme="NONE", detector="cmh")
        wedge_pair(e, 5, 6)
        det = e.detector
        declared, site = chase_until_declared(det)
        assert declared is not None
        site.reset(declared)  # a recovery controller acted
        assert site.declared_at < 0
        assert site.key not in det._engaged
        # The wedge persists, so a fresh chase declares again.
        redeclared = None
        for cycle in range(declared + 1, declared + 80):
            det.pre_step(cycle)
            if site.declared_at >= 0:
                redeclared = cycle
                break
        assert redeclared is not None

    def test_stale_probe_cannot_declare(self):
        # A probe started before the site's current blocked span is a
        # leftover of an older chase and must be dropped, not returned.
        e = build_engine(scheme="NONE", detector="cmh")
        wedge_pair(e, 5, 6)
        det = e.detector
        det.pre_step(1)  # marks both sites blocked at cycle 1
        site = next(s for s in det.sites if s.ni.node == 5)
        det._engaged[site.key] = {5}
        stale = Probe(5, site.in_cls, site.out_cls, src=6, dst=5,
                      started_cycle=0, sent_cycle=0)
        det.net.send(stale, 1)
        before = det.probes_dropped
        for cycle in range(2, 2 + det.net.latency(6, 5) + 1):
            det.pre_step(cycle)
        assert site.declared_at < 0 or site.declared_at > 1
        assert det.probes_dropped > before


# ----------------------------------------------------------------------
# The timeout heuristic
# ----------------------------------------------------------------------
class TestTimeoutDetector:
    def _site(self, engine, node):
        site = engine.detector.sites_at(node)[0]
        assert isinstance(site, TimeoutSite)
        return site

    def test_fires_on_any_waiting_head(self):
        e = build_engine(scheme="NONE", detector="timeout",
                         timeout_threshold=30)
        # A single *terminating* message: the endpoint detector would
        # never fire on this (no continuation, queues not stressed).
        msg = Message(e.protocol.types[0], src=0, dst=5)
        deliver_direct(e, 5, msg)
        site = self._site(e, 5)
        fired = [c for c in range(1, 80) if site.step(c)]
        assert fired and fired[0] > 30
        endpoint = DetectorPair(
            ni=e.interfaces[5], in_cls=0, out_cls=0, threshold=30,
            occupancy_threshold=1.0, require_request_child=False,
        )
        assert not any(endpoint.step(c) for c in range(80, 200))

    def test_queue_progress_resets_the_clock(self):
        e = build_engine(scheme="NONE", detector="timeout",
                         timeout_threshold=30)
        deliver_direct(e, 5, Message(e.protocol.types[0], src=0, dst=5))
        site = self._site(e, 5)
        for cycle in range(1, 20):
            assert not site.step(cycle)
        # A version bump (second arrival) restarts the countdown.
        deliver_direct(e, 5, Message(e.protocol.types[0], src=1, dst=5))
        fired = [c for c in range(20, 100) if site.step(c)]
        assert fired and fired[0] > 50

    def test_empty_queue_never_fires(self):
        e = build_engine(scheme="NONE", detector="timeout",
                         timeout_threshold=10)
        site = self._site(e, 5)
        assert not any(site.step(c) for c in range(1, 60))


# ----------------------------------------------------------------------
# Telemetry: probe events and episode attribution
# ----------------------------------------------------------------------
class TestProbeTelemetry:
    def test_probe_traffic_visible_in_trace_and_episodes(self):
        e = build_engine(scheme="NONE", detector="cmh")
        tracer = Tracer(level="message")
        e.attach_tracer(tracer)
        wedge_pair(e, 5, 6)
        for cycle in range(1, 60):
            e.scheme.step(cycle)
        kinds = {kind for _, kind, _ in tracer.events}
        assert ev.PROBE_SEND in kinds
        assert ev.PROBE_RETURN in kinds
        send = next(p for _, k, p in tracer.events if k == ev.PROBE_SEND)
        assert {"initiator", "src", "dst", "in_cls", "out_cls"} <= set(send)
        episodes = stitch_episodes(tracer)
        assert episodes
        first = episodes[0]
        assert first.probes > 0
        assert first.formation_cycle is not None
        assert first.detection_latency is not None
        assert first.detection_latency >= 0
        assert first.to_dict()["probes"] == first.probes

    def test_probeless_detectors_emit_no_probe_events(self):
        e = build_engine(scheme="NONE", detector="endpoint")
        tracer = Tracer(level="message")
        e.attach_tracer(tracer)
        stall_endpoint(e, 5, make_txn=make_txn_factory(e, 5))
        for cycle in range(1, 60):
            e.scheme.step(cycle)
        probe_kinds = {ev.PROBE_SEND, ev.PROBE_FORWARD,
                       ev.PROBE_RETURN, ev.PROBE_DROP}
        assert not any(k in probe_kinds for _, k, _ in tracer.events)


# ----------------------------------------------------------------------
# None-hardened rendering (dump + episode table)
# ----------------------------------------------------------------------
class TestRenderingHardening:
    def test_format_dump_without_any_detection(self):
        e = build_engine(scheme="NONE", detector="cmh", load=0.004, seed=3)
        e.run(80)
        dump = capture_dump(e, reason="unit")
        assert dump["first_deadlock_cycle"] is None
        assert dump["detector"] == "cmh"
        text = format_dump(dump)
        assert "detector: cmh, first detection: none" in text

    def test_format_dump_with_detection_cycle(self):
        e = build_engine(scheme="NONE", detector="endpoint")
        stall_endpoint(e, 5, make_txn=make_txn_factory(e, 5))
        for cycle in range(1, 60):
            e.scheme.step(cycle)
        dump = capture_dump(e, reason="unit")
        assert dump["first_deadlock_cycle"] is not None
        assert "first detection: cycle" in format_dump(dump)

    def test_format_episodes_with_unknown_formation(self):
        # A detector firing with no onset history (e.g. zero live
        # messages) yields a formation-less episode; every latency
        # column must degrade to "-" instead of raising.
        epi = RecoveryEpisode(index=0, formation_cycle=None,
                              detection_cycle=42)
        table = format_episodes([epi])
        row = table.splitlines()[-1]
        assert "42" in row and "-" in row
        assert epi.detection_latency is None
        assert epi.to_dict()["detection_latency"] is None

    def test_stitcher_handles_detect_event_without_since(self):
        epi = _feed_detect_payload({"node": 5})
        assert epi.formation_cycle is None
        assert epi.detection_cycle == 7

    def test_stitcher_backfills_formation_from_later_event(self):
        epi = _feed_detect_payload({"node": 5}, then={"node": 5, "since": 3})
        assert epi.formation_cycle == 3


def _feed_detect_payload(payload, then=None):
    from repro.telemetry.episodes import _Stitcher

    stitcher = _Stitcher()
    stitcher.feed(7, ev.DETECT, payload, lambda mid: "?")
    if then is not None:
        stitcher.feed(8, ev.DETECT, then, lambda mid: "?")
    assert len(stitcher.episodes) == 1
    return stitcher.episodes[0]


# ----------------------------------------------------------------------
# Ground-truth guarantees (satellite: zero-FN / bounded-FP properties)
# ----------------------------------------------------------------------
def test_cmh_declares_on_cwg_deadlocked_run():
    """Zero false negatives: the saturated detection-only point wedges
    into real CWG knots, and CMH's first detection is finite."""
    e = build_engine(scheme="NONE", num_vcs=4, load=0.02, seed=1,
                     detector="cmh", cwg_interval=25)
    e.run(4000)
    assert e.cwg_knots_seen > 0, "ground-truth point no longer wedges"
    assert e.stats.first_deadlock_cycle >= 0
    overhead = e.detector.overhead()
    assert overhead["probes_sent"] > 0
    assert overhead["probes_returned"] > 0


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    load=st.sampled_from([0.002, 0.004, 0.006]),
)
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_no_false_alarms_on_certified_deadlock_free_runs(seed, load):
    """On a CWG-certified deadlock-free run, the cycle-proving
    detectors (endpoint, cmh) report nothing and the timeout
    heuristic's false positives stay bounded by the site count.
    Detection is pure observation on NONE, so the data plane —
    knots and deliveries — must also be identical across detectors."""
    knots, delivered, detections, sites = {}, {}, {}, {}
    for detector in ("endpoint", "cmh", "timeout"):
        e = build_engine(scheme="NONE", num_vcs=4, load=load, seed=seed,
                         detector=detector, cwg_interval=25)
        e.run(1200)
        knots[detector] = e.cwg_knots_seen
        delivered[detector] = e.stats.total.messages_delivered
        detections[detector] = e.scheme.deadlocks_detected
        sites[detector] = len(e.detector.sites)
    assert len(set(knots.values())) == 1
    assert len(set(delivered.values())) == 1
    if knots["endpoint"] == 0:
        assert detections["endpoint"] == 0
        assert detections["cmh"] == 0
        assert detections["timeout"] <= sites["timeout"]
