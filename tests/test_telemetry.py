"""The telemetry subsystem: tracer, samplers, exporters, episode stitching.

The tracer is attached to real engines running the fault-campaign cells
(the same configurations the telemetry experiment traces), so the tests
pin the properties the subsystem promises: deterministic traces across
identically seeded runs, valid Perfetto JSON, ring-buffer bounds, and
episode timelines whose detection cycle matches ``SimStats``.
"""

import csv
import json

import pytest

from repro.config import SimConfig
from repro.experiments.telemetry import validate_perfetto
from repro.faults import FaultSpec
from repro.sim.engine import Engine
from repro.telemetry import (
    MetricsSampler,
    Tracer,
    export_perfetto,
    export_timeseries_csv,
    export_timeseries_json,
    format_episodes,
    stitch_episodes,
    to_perfetto,
)
from repro.telemetry import events as ev
from repro.util.errors import ConfigurationError

FAULT = FaultSpec("consumer-stall", target=5, start=600, duration=2000)


def traced_engine(scheme="PR", level="flit", sample_every=0, seed=11,
                  cycles=4000, capacity=None, **kwargs):
    defaults = dict(dims=(4, 4), scheme=scheme, pattern="PAT271", num_vcs=4,
                    load=0.012, seed=seed, faults=(FAULT,))
    defaults.update(kwargs)
    engine = Engine(SimConfig(**defaults))
    tracer_kw = {} if capacity is None else {"capacity": capacity}
    tracer = Tracer(level=level, sample_every=sample_every, **tracer_kw)
    engine.attach_tracer(tracer)
    engine.run(cycles)
    return engine, tracer


@pytest.fixture(scope="module")
def pr_run():
    return traced_engine("PR", sample_every=100)


@pytest.fixture(scope="module")
def dr_run():
    return traced_engine("DR", max_outstanding=12)


def kinds(tracer):
    return {kind for _, kind, _ in tracer.events}


class TestTracerConfig:
    def test_rejects_unknown_level(self):
        with pytest.raises(ConfigurationError, match="trace level"):
            Tracer(level="packet")

    def test_rejects_negative_sampling(self):
        with pytest.raises(ConfigurationError, match="sample_every"):
            Tracer(sample_every=-1)

    def test_rejects_empty_ring(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            Tracer(capacity=0)

    def test_unattached_engine_has_no_tracer(self):
        engine = Engine(SimConfig(dims=(4, 4), load=0.004))
        assert engine.tracer is None
        assert engine.fabric.tracer is None
        assert all(ni.tracer is None for ni in engine.interfaces)

    def test_attach_wires_every_hook_site(self, pr_run):
        engine, tracer = pr_run
        assert engine.tracer is tracer
        assert engine.fabric.tracer is tracer
        assert engine.scheme.tracer is tracer
        assert engine.scheme.controller.tracer is tracer
        assert engine.scheme.controller.token.tracer is tracer
        assert all(ni.tracer is tracer for ni in engine.interfaces)
        assert all(ni.controller.tracer is tracer for ni in engine.interfaces)


class TestRingBuffer:
    def test_capacity_bounds_the_ring(self):
        _, tracer = traced_engine("PR", capacity=500, cycles=2000)
        assert len(tracer.events) == 500
        assert tracer.events_recorded > 500
        assert tracer.dropped_events == tracer.events_recorded - 500

    def test_unbounded_smoke_run_drops_nothing(self, pr_run):
        _, tracer = pr_run
        assert tracer.dropped_events == 0
        assert tracer.events_recorded == len(tracer.events)

    def test_local_ids_are_dense_and_stable(self, pr_run):
        _, tracer = pr_run
        mids = {p["mid"] for _, k, p in tracer.events if k == ev.CREATED}
        assert mids == set(range(len(mids)))
        # Labels are uid-free: "<TYPE> <src>-><dst> @<cycle>".
        assert all("->" in tracer.label_of(mid) for mid in mids)


class TestTraceLevels:
    def test_flit_level_records_grants_and_token_hops(self, pr_run):
        _, tracer = pr_run
        assert ev.VC_GRANT in kinds(tracer)
        assert ev.TOKEN_HOP in kinds(tracer)

    def test_message_level_omits_flit_detail(self):
        _, tracer = traced_engine("PR", level="message", cycles=2500)
        assert ev.VC_GRANT not in kinds(tracer)
        assert ev.TOKEN_HOP not in kinds(tracer)
        assert ev.CREATED in kinds(tracer)


class TestLifecycleEvents:
    def test_full_lifecycle_recorded(self, pr_run):
        _, tracer = pr_run
        seen = kinds(tracer)
        for kind in (ev.CREATED, ev.ADMITTED, ev.INJECTED, ev.DELIVERED,
                     ev.CONSUMED, ev.BLOCKED, ev.UNBLOCKED):
            assert kind in seen, f"missing {kind}"

    def test_fault_lifecycle_recorded(self, pr_run):
        _, tracer = pr_run
        faults = [(c, k) for c, k, _ in tracer.events
                  if k in (ev.FAULT_APPLIED, ev.FAULT_REVOKED)]
        assert (600, ev.FAULT_APPLIED) in faults
        assert any(k == ev.FAULT_REVOKED and c >= 2600 for c, k in faults)

    def test_blocked_events_are_deduplicated(self, pr_run):
        _, tracer = pr_run
        # A frontier stays blocked for many cycles but opens one episode:
        # every BLOCKED for a mid must be closed before the next one.
        open_mids = set()
        for _, kind, payload in tracer.events:
            if kind == ev.BLOCKED:
                assert payload["mid"] not in open_mids
                open_mids.add(payload["mid"])
            elif kind == ev.UNBLOCKED:
                open_mids.discard(payload["mid"])


class TestSchemeEvents:
    def test_dr_records_detection_and_deflection(self, dr_run):
        engine, tracer = dr_run
        seen = kinds(tracer)
        assert ev.DETECT in seen and ev.DEFLECT in seen
        deflects = [p for _, k, p in tracer.events if k == ev.DEFLECT]
        assert len(deflects) == engine.scheme.recoveries
        # The deflection consumes the head and creates the BRP: both
        # lifecycle records must exist for the span to close.
        consumed = {p["mid"] for _, k, p in tracer.events if k == ev.CONSUMED}
        created = {p["mid"] for _, k, p in tracer.events if k == ev.CREATED}
        for d in deflects:
            assert d["head_mid"] in consumed
            assert d["brp_mid"] in created

    def test_pr_records_token_recovery(self, pr_run):
        engine, tracer = pr_run
        seen = kinds(tracer)
        assert ev.TOKEN_CAPTURE in seen and ev.TOKEN_RELEASE in seen
        captures = sum(1 for _, k, _ in tracer.events if k == ev.TOKEN_CAPTURE)
        assert captures == engine.scheme.controller.token.captures


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        _, t1 = traced_engine("PR", sample_every=100, cycles=2500)
        _, t2 = traced_engine("PR", sample_every=100, cycles=2500)
        assert list(t1.events) == list(t2.events)
        assert t1.samples == t2.samples
        assert json.dumps(to_perfetto(t1)) == json.dumps(to_perfetto(t2))


class TestEpisodes:
    def test_empty_tracer_stitches_nothing(self):
        tracer = Tracer()
        assert stitch_episodes(tracer) == []
        assert format_episodes([]) == "no recovery episodes"

    def test_detection_matches_stats(self, pr_run):
        engine, tracer = pr_run
        episodes = stitch_episodes(tracer)
        assert episodes
        assert episodes[0].detection_cycle == engine.stats.first_deadlock_cycle

    def test_dr_episodes_resolve_at_detection(self, dr_run):
        _, tracer = dr_run
        episodes = stitch_episodes(tracer)
        assert episodes
        for epi in episodes:
            # DR's deflection is both detection and resolution.
            assert epi.resolution_latency == 0
            assert epi.extra_messages  # the BRPs
            assert epi.detection_latency > 0  # the detector threshold

    def test_episode_timeline_is_ordered(self, pr_run):
        _, tracer = pr_run
        for epi in stitch_episodes(tracer):
            assert epi.formation_cycle <= epi.detection_cycle
            if epi.resolved:
                assert epi.detection_cycle <= epi.resolution_cycle
            if epi.drained:
                assert epi.resolved
                assert epi.resolution_cycle <= epi.drain_cycle

    def test_to_dict_round_trips_as_json(self, pr_run):
        _, tracer = pr_run
        episodes = stitch_episodes(tracer)
        dicts = [epi.to_dict() for epi in episodes]
        assert json.loads(json.dumps(dicts)) == dicts

    def test_format_renders_one_row_per_episode(self, pr_run):
        _, tracer = pr_run
        episodes = stitch_episodes(tracer)
        text = format_episodes(episodes)
        assert text.count("\n") == len(episodes) + 1  # header + rule
        assert "detect" in text and "drain" in text


class TestSamplers:
    def test_sampling_cadence(self, pr_run):
        engine, tracer = pr_run
        assert len(tracer.samples) == 4000 // 100
        assert [s["cycle"] for s in tracer.samples[:3]] == [100, 200, 300]

    def test_sample_shape(self, pr_run):
        engine, tracer = pr_run
        sample = tracer.samples[10]
        for key in ("busy_links", "channel_utilization", "flit_occupancy",
                    "live_messages", "blocked_frontiers", "ni_occupancy"):
            assert key in sample
        assert len(sample["ni_occupancy"]) == engine.topology.num_nodes
        assert 0.0 <= sample["channel_utilization"] <= 1.0
        # PR runs expose the token's position.
        assert "token_pos" in sample and "token_state" in sample

    def test_live_messages_tracks_conservation(self, pr_run):
        engine, tracer = pr_run
        sampler = MetricsSampler(engine)
        sample = sampler.sample(engine.now)
        stats = engine.stats
        assert sample["live_messages"] == (
            stats.messages_created - stats.total.messages_consumed
        )


class TestExporters:
    def test_perfetto_is_valid_and_loadable(self, pr_run, tmp_path):
        _, tracer = pr_run
        path = tmp_path / "trace.json"
        trace = export_perfetto(tracer, path)
        validate_perfetto(trace)
        assert json.loads(path.read_text()) == trace
        assert trace["otherData"]["trace_level"] == "flit"

    def test_perfetto_valid_for_dr(self, dr_run, tmp_path):
        _, tracer = dr_run
        validate_perfetto(export_perfetto(tracer, tmp_path / "dr.json"))

    def test_truncated_ring_still_exports_balanced_spans(self):
        _, tracer = traced_engine("PR", capacity=400, cycles=2500)
        assert tracer.dropped_events > 0
        validate_perfetto(to_perfetto(tracer))

    def test_counter_events_match_samples(self, pr_run):
        _, tracer = pr_run
        trace = to_perfetto(tracer)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"
                    and e["name"] == "live_messages"]
        assert len(counters) == len(tracer.samples)

    def test_csv_export(self, pr_run, tmp_path):
        _, tracer = pr_run
        path = tmp_path / "series.csv"
        export_timeseries_csv(tracer, path)
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(tracer.samples)
        assert int(rows[0]["cycle"]) == 100
        assert int(rows[5]["ni_occupied"]) >= 0

    def test_json_export(self, pr_run, tmp_path):
        _, tracer = pr_run
        path = tmp_path / "series.json"
        export_timeseries_json(tracer, path)
        payload = json.loads(path.read_text())
        assert payload["sample_every"] == 100
        assert len(payload["samples"]) == len(tracer.samples)
