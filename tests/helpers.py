"""Shared test helpers: engineered deadlock scenarios.

``stall_endpoint`` manufactures the paper's detection condition at one
node: the input queue is full of non-terminating requests, the output
queue is full, and the (sole relevant) injection channel is occupied by
a long packet so nothing drains — exactly the state from which DR must
deflect and PR must rescue.
"""

from __future__ import annotations

from repro import SimConfig
from repro.protocol.message import Message
from repro.sim.engine import Engine


def build_engine(**kwargs) -> Engine:
    defaults = dict(dims=(4, 4), pattern="PAT721", load=0.0, seed=9)
    defaults.update(kwargs)
    return Engine(SimConfig(**defaults))


def deliver_direct(engine: Engine, node: int, msg) -> None:
    """Place a message straight into a node's input queue."""
    cls = engine.scheme.queue_class_of(msg.mtype)
    engine.interfaces[node].in_bank.queue(cls).push(msg)


def block_injection(engine: Engine, node: int, queue_cls: int, size: int = 2000):
    """Occupy one injection channel with a very long packet."""
    mtype = engine.protocol.types[0]
    blocker = Message(mtype, src=node, dst=(node + 1) % engine.topology.num_nodes,
                      size=size)
    blocker.vc_class = engine.scheme.vc_class_of(mtype)
    chan = engine.fabric.injection_channel(node, queue_cls)
    engine.fabric.start_injection(chan, blocker, engine.now)
    return blocker


def stall_endpoint(engine: Engine, node: int, make_txn, n_requests: int | None = None):
    """Drive ``node`` into the endpoint-deadlock detection condition.

    ``make_txn(i)`` must return a transaction whose root is a
    non-terminating request destined to ``node``.  Returns the list of
    stuffed root messages.
    """
    scheme = engine.scheme
    ni = engine.interfaces[node]
    roots = []
    req_cls = None
    # Fill the input queue with arrived, unconsumed requests.
    i = 0
    while True:
        txn = make_txn(i)
        root = txn.root
        req_cls = scheme.queue_class_of(root.mtype)
        q = ni.in_bank.queue(req_cls)
        if q.free_slots <= 0 or (n_requests is not None and i >= n_requests):
            break
        root.vc_class = scheme.vc_class_of(root.mtype)
        q.push(root)
        roots.append(root)
        i += 1
    # Fill the output queue the head's subordinates would need.
    sub_type = roots[0].continuation[0].mtype
    out_cls = scheme.queue_class_of(sub_type)
    out_q = ni.out_bank.queue(out_cls)
    block_injection(engine, node, out_cls)
    while out_q.free_slots > 0:
        filler = Message(sub_type, src=node, dst=(node + 2) % engine.topology.num_nodes)
        filler.vc_class = scheme.vc_class_of(sub_type)
        out_q.push(filler)
    return roots
