"""Tests for the three-condition endpoint deadlock detector."""

from repro.core.detection import DetectorPair, build_detectors
from repro.protocol.transactions import PAT721
from tests.helpers import build_engine, stall_endpoint


def fresh_detector(engine, node, in_cls=0, out_cls=0, threshold=25,
                   require_request_child=False):
    return DetectorPair(
        ni=engine.interfaces[node],
        in_cls=in_cls,
        out_cls=out_cls,
        threshold=threshold,
        occupancy_threshold=1.0,
        require_request_child=require_request_child,
    )


def make_pat721_txn(engine, home, length=3):
    def factory(i):
        req = (home + 1 + i) % engine.topology.num_nodes
        third = (home + 5 + i) % engine.topology.num_nodes
        if third in (home, req):
            third = (third + 1) % engine.topology.num_nodes
        return PAT721.build_transaction(req, home, third, engine.now, length=length)

    return factory


class TestDetectorFiring:
    def test_fires_after_threshold_under_stall(self):
        e = build_engine(scheme="PR")
        stall_endpoint(e, node=5, make_txn=make_pat721_txn(e, 5))
        det = fresh_detector(e, 5, threshold=25)
        fired_at = None
        for cycle in range(1, 60):
            if det.step(cycle):
                fired_at = cycle
                break
        assert fired_at is not None
        assert fired_at > 25  # condition must persist beyond T

    def test_does_not_fire_below_threshold(self):
        e = build_engine(scheme="PR")
        stall_endpoint(e, node=5, make_txn=make_pat721_txn(e, 5))
        det = fresh_detector(e, 5, threshold=25)
        assert not any(det.step(c) for c in range(1, 25))

    def test_no_fire_when_queues_not_full(self):
        e = build_engine(scheme="PR")
        det = fresh_detector(e, 5)
        assert not any(det.step(c) for c in range(1, 100))

    def test_progress_resets_episode(self):
        e = build_engine(scheme="PR")
        stall_endpoint(e, node=5, make_txn=make_pat721_txn(e, 5))
        det = fresh_detector(e, 5, threshold=25)
        for cycle in range(1, 20):
            det.step(cycle)
        # A pop (progress) resets the stall clock via the version counter.
        ni = e.interfaces[5]
        popped = ni.in_bank.queue(0).pop()
        assert not any(det.step(c) for c in range(20, 44))
        ni.in_bank.queue(0).push(popped)  # full again: clock restarts
        assert not det.step(45)
        assert any(det.step(c) for c in range(46, 90))

    def test_terminating_head_is_ineligible(self):
        e = build_engine(scheme="PR")
        stall_endpoint(e, node=5, make_txn=make_pat721_txn(e, 5))
        ni = e.interfaces[5]
        q = ni.in_bank.queue(0)
        # Replace the head with a terminating message.
        from repro.protocol.chains import GENERIC_MSI
        from repro.protocol.message import Message

        q.entries[0] = Message(GENERIC_MSI.type_named("m4"), src=0, dst=5)
        det = fresh_detector(e, 5)
        assert not any(det.step(c) for c in range(1, 80))

    def test_request_child_filter(self):
        # Length-2 chains (m1 -> m4) have no request-class subordinate:
        # the DR detector (require_request_child) must not fire.
        e = build_engine(scheme="PR")
        stall_endpoint(e, node=5, make_txn=make_pat721_txn(e, 5, length=2))
        strict = fresh_detector(e, 5, require_request_child=True)
        lax = fresh_detector(e, 5, require_request_child=False)
        assert not any(strict.step(c) for c in range(1, 80))
        # The PR-style detector does fire (head is non-terminating).
        assert any(lax.step(c) for c in range(1, 80))

    def test_mc_service_counts_as_progress(self):
        e = build_engine(scheme="PR")
        stall_endpoint(e, node=5, make_txn=make_pat721_txn(e, 5))
        det = fresh_detector(e, 5)
        # Pretend the MC is busy servicing from this queue class.
        mc = e.interfaces[5].controller
        mc.current = object()
        mc.current_in_cls = 0
        assert not any(det.step(c) for c in range(1, 80))
        mc.current = None
        mc.current_in_cls = None


class TestBuildDetectors:
    def test_one_detector_per_ni_per_pair(self):
        e = build_engine(scheme="PR")
        dets = build_detectors(
            e.scheme, e, {("m1", "m2"), ("m2", "m3")}, require_request_child=False
        )
        # PR shares a single queue class: both couplings collapse to one.
        assert len(dets) == e.topology.num_nodes

    def test_dr_filters_reply_children(self):
        e = build_engine(scheme="DR")
        dets = build_detectors(
            e.scheme, e, {("m1", "m2"), ("m3", "m4")}, require_request_child=True
        )
        # Only the (request-in, request-out) pair survives.
        assert len(dets) == e.topology.num_nodes
        assert all(d.in_cls == 0 and d.out_cls == 0 for d in dets)
