"""PR recovery: Extended Disha Sequential (the paper's contribution).

Recovery resources
------------------
* one flit-sized **deadlock buffer** (DB) per router, forming a
  dedicated, conflict-free lane along dimension-order paths;
* one packet-sized **deadlock message buffer** (DMB) per NI;
* one circulating **token** visiting every router and NI; the capturer
  gains exclusive use of the lane (:mod:`repro.core.token`).

Rescue procedure (Figure 4 / Appendix proof)
--------------------------------------------
On capture at an NI, the non-terminating head of the input queue is
processed by the memory controller; subordinates that do not fit in the
output queue are placed in the DMB and routed over the DB lane to their
destination's DMB, the token travelling with them.  At the destination
the message enters the input queue if space exists; otherwise the memory
controller is *preempted* after its current operation and processes the
message directly.  A terminating message sinks (Case 2); a non-
terminating one whose subordinates fit the output queue completes the
leg (Case 1); otherwise the rescue continues down the dependency chain,
*reusing* the token (Cases 3-4), with multiple subordinates delivered
sequentially before the token is returned to the sender.  When the token
finally returns to the original capturer with nothing left to deliver,
it is released for re-circulation.  On capture at a *router* (routing-
dependent deadlock under true fully adaptive routing), the longest-
blocked packet is progressively rerouted over the lane to its
destination DMB, exactly as in Disha Sequential.

Because each message dependency chain is finite and acyclic and the lane
is dedicated, every rescue terminates — no messages are ever killed,
deflected, or added.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.detectors import build_detector
from repro.core.token import Stop, Token, build_ring
from repro.protocol.message import Message
from repro.util.errors import SimulationError


class DmbSource:
    """Sender-like wrapper streaming a packet out of a deadlock message buffer."""

    __slots__ = ("owner", "_next")

    def __init__(self, msg: Message) -> None:
        self.owner = msg
        self._next = 0

    def ready_flit(self, now: int) -> int | None:
        if self.owner is not None and self._next < self.owner.size:
            return self._next
        return None

    def pop_flit(self) -> int:
        idx = self._next
        self._next += 1
        self.owner.flits_sent = max(self.owner.flits_sent, self._next)
        return idx

    def release(self) -> None:
        self.owner = None


class RecoveryLane:
    """The DB pipeline: one flit per router DB, one hop per cycle."""

    def __init__(self, topology) -> None:
        self.topology = topology
        self.active = False
        self.source = None
        self.msg: Message | None = None
        self.slots: list[int | None] = []
        self.received = 0
        self.flits_carried = 0

    def start(self, source, src_router: int, dst_router: int, msg: Message) -> None:
        if self.active:  # pragma: no cover - guarded by single token
            raise SimulationError("recovery lane already in use")
        path = self.topology.route_path(src_router, dst_router)
        # One DB slot per router visited (source router included).
        self.slots = [None] * (len(path) + 1)
        self.source = source
        self.msg = msg
        self.received = 0
        self.active = True

    def step(self, now: int) -> bool:
        """Advance the pipeline one cycle; True when the packet is in the DMB."""
        if not self.active:  # pragma: no cover - callers check
            return False
        msg = self.msg
        # Drain the last DB into the destination DMB.
        if self.slots[-1] is not None:
            self.slots[-1] = None
            self.received += 1
            self.flits_carried += 1
            msg.flits_ejected += 1
        # Shift the pipeline forward.
        for i in range(len(self.slots) - 2, -1, -1):
            if self.slots[i] is not None and self.slots[i + 1] is None:
                self.slots[i + 1] = self.slots[i]
                self.slots[i] = None
        # Pull the next flit from the source.
        if self.slots[0] is None and self.source is not None:
            flit = self.source.ready_flit(now)
            if flit is not None:
                self.source.pop_flit()
                self.slots[0] = flit
                if flit == msg.size - 1:
                    self.source.release()
                    self.source = None
        if self.received >= msg.size:
            self.active = False
            self.msg = None
            return True
        return False


@dataclass
class Frame:
    """A token-sender node with subordinate messages still to deliver."""

    node: int
    pending: deque = field(default_factory=deque)


class ProgressiveController:
    """Per-cycle PR behaviour: detectors, token, and the rescue machine."""

    # Rescue phases.
    IDLE = "idle"
    SERVICE = "service"  # waiting for a memory controller callback
    LANE = "lane"  # packet in transit over the DB lane
    RETURN = "return"  # token travelling back to the frame sender

    def __init__(self, scheme, engine) -> None:
        self.scheme = scheme
        self.engine = engine
        self.topology = engine.topology
        self.detector = build_detector(scheme, engine, require_request_child=False)
        scheme.detector = self.detector
        self.detectors = self.detector.sites
        self._dets_by_node: dict[int, list] = {}
        for det in self.detectors:
            self._dets_by_node.setdefault(det.ni.node, []).append(det)
        self.token = Token(
            build_ring(engine.topology, scheme.config.token_ring)
        )
        self.lane = RecoveryLane(engine.topology)
        self.phase = ProgressiveController.IDLE
        self.capture_stop: Stop | None = None
        self.stack: list[Frame] = []
        self._fired: dict[int, bool] = {}
        self._return_timer = 0
        self._leg_msg: Message | None = None
        self.rescues = 0
        self.router_captures = 0
        self.ni_captures = 0
        # Token-loss recovery: each stop expects the token at least once
        # per lap, so a full ring length without it means it is gone.
        # This models distributed loss detection without simulating the
        # per-stop timers individually.
        self.token_regenerations = 0
        self._token_lost_for = 0
        #: telemetry hook (repro.telemetry.Tracer) or None.
        self.tracer = None
        #: (src_router, dst_router) of the lane leg in flight.
        self._leg_route: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        # Detectors always run so episode timing is continuous.
        self.detector.pre_step(now)
        self._fired = {}
        tracer = self.tracer
        for det in self.detectors:
            if det.step(now):
                self._fired[det.ni.node] = True
                if tracer is not None and not det.episode_counted:
                    # First firing of this stalled episode (queue
                    # progress or a reset rearms the flag).
                    det.episode_counted = True
                    tracer.detection(
                        det.ni.node, det.in_cls, det.out_cls, det.since, now
                    )
        if self.phase == ProgressiveController.IDLE:
            self._circulate(now)
        elif self.phase == ProgressiveController.LANE:
            if self.lane.step(now):
                self._on_lane_arrival(now)
        elif self.phase == ProgressiveController.RETURN:
            self._return_timer -= 1
            if self._return_timer <= 0:
                self._on_token_returned(now)
        # SERVICE: nothing to do; the MC callback advances the machine.

    # ------------------------------------------------------------------
    # Token circulation and capture
    # ------------------------------------------------------------------
    def _circulate(self, now: int) -> None:
        token = self.token
        if token.lost:
            self._token_lost_for += 1
            if self._token_lost_for > len(token.stops):
                token.regenerate()
                self.token_regenerations += 1
                self._token_lost_for = 0
            return
        stop = token.advance()
        if stop.kind == "ni":
            if self._fired.get(stop.ident):
                self._capture_at_ni(stop, now)
        else:
            sender = self._blocked_at_router(stop.ident, now)
            if sender is not None:
                self._capture_at_router(stop, sender, now)

    def _blocked_at_router(self, router: int, now: int):
        """Longest-blocked frontier packet at a router, if over threshold."""
        threshold = self.scheme.config.router_timeout
        best = None
        best_since = None
        for s in self.engine.fabric.pending:
            msg = s.owner
            if msg is None or s.next_sink is not None or msg.blocked_since < 0:
                continue
            if s.router != router:
                continue
            if now - msg.blocked_since > threshold:
                if best is None or msg.blocked_since < best_since:
                    best = s
                    best_since = msg.blocked_since
        return best

    def _capture_at_ni(self, stop: Stop, now: int) -> None:
        ni = self.engine.interfaces[stop.ident]
        head = None
        since = now
        for det in self._dets_by_node.get(stop.ident, ()):  # pick a fired pair
            if self._fired.get(stop.ident):
                candidate = det.head()
                if candidate is not None and candidate.continuation:
                    head = candidate
                    in_q = ni.in_bank.queue(det.in_cls)
                    since = det.since
                    break
        if head is None:
            return
        self.token.capture(stop)
        self.capture_stop = stop
        self.ni_captures += 1
        self._count_deadlock(now)
        if self.tracer is not None:
            self.tracer.token_captured(stop, head, since, now)
        in_q.pop()
        head.rescued = True
        if head.transaction is not None:
            head.transaction.rescues += 1
        # The memory controller processes the head; its subordinates come
        # back through the rescue callback for DMB placement.
        self.stack.append(Frame(stop.ident))
        self.phase = ProgressiveController.SERVICE
        ni.controller.request_priority_service(head, self._rescue_service_done)

    def _capture_at_router(self, stop: Stop, sender, now: int) -> None:
        msg = sender.owner
        self.token.capture(stop)
        self.capture_stop = stop
        self.router_captures += 1
        self._count_deadlock(now)
        if self.tracer is not None:
            self.tracer.token_captured(stop, msg, msg.blocked_since, now)
        msg.rescued = True
        if msg.transaction is not None:
            msg.transaction.rescues += 1
        self.engine.fabric.detach_frontier(sender)
        src_router = sender.router
        dst_router = self.topology.router_of_node(msg.dst)
        self._leg_msg = msg
        self._leg_route = (src_router, dst_router)
        self.lane.start(sender, src_router, dst_router, msg)
        self.phase = ProgressiveController.LANE
        if self.tracer is not None:
            self.tracer.rescue_leg(msg, src_router, dst_router, "start", now)

    def _count_deadlock(self, now: int) -> None:
        self.rescues += 1
        self.scheme.deadlocks_detected += 1
        self.scheme.recoveries += 1
        self.engine.stats.on_deadlock(now, resolved=True)

    # ------------------------------------------------------------------
    # Rescue progression
    # ------------------------------------------------------------------
    def _rescue_service_done(self, msg: Message, subs: list[Message], now: int) -> None:
        """MC finished a rescue service at ``msg.dst``; place subordinates."""
        node = msg.dst
        ni = self.engine.interfaces[node]
        overflow: list[Message] = []
        for sub in subs:
            out_q = ni.out_bank.queue(self.scheme.queue_class_of(sub.mtype))
            if out_q.free_slots > 0:
                out_q.push(sub)
            else:
                overflow.append(sub)
        if overflow:
            self.stack.append(Frame(node, deque(overflow)))
            self._start_leg(now)
        else:
            self._on_leg_complete(node, now)

    def _start_leg(self, now: int) -> None:
        frame = self.stack[-1]
        msg = frame.pending.popleft()
        msg.rescued = True
        src_router = self.topology.router_of_node(frame.node)
        dst_router = self.topology.router_of_node(msg.dst)
        self._leg_msg = msg
        self._leg_route = (src_router, dst_router)
        self.lane.start(DmbSource(msg), src_router, dst_router, msg)
        self.phase = ProgressiveController.LANE
        if self.tracer is not None:
            self.tracer.rescue_leg(msg, src_router, dst_router, "start", now)

    def _on_lane_arrival(self, now: int) -> None:
        """The rescued packet is complete in the destination DMB."""
        msg = self._leg_msg
        self._leg_msg = None
        node = msg.dst
        ni = self.engine.interfaces[node]
        msg.delivered_cycle = now
        self.engine.stats.on_delivered(msg, now)
        if self.tracer is not None:
            route = self._leg_route or (-1, -1)
            self.tracer.rescue_leg(msg, route[0], route[1], "arrival", now)
            self.tracer.message_delivered(msg, now)
        self._leg_route = None
        in_q = ni.in_bank.queue(self.scheme.queue_class_of(msg.mtype))
        if msg.has_reservation and in_q.reserved > 0:
            in_q.reserved -= 1
            in_q.held += 1
            in_q.commit(msg)
            self._on_leg_complete(node, now)
        elif in_q.free_slots > 0:
            in_q.push(msg)
            self._on_leg_complete(node, now)
        else:
            # Input queue full: preempt the memory controller (it finishes
            # its current operation first) and process the message from
            # the DMB directly.
            self.phase = ProgressiveController.SERVICE
            ni.controller.request_priority_service(msg, self._rescue_service_done)

    def _on_leg_complete(self, at_node: int, now: int) -> None:
        """A delivery leg finished at ``at_node``; send the token back."""
        if not self.stack:
            self._release_token()
            return
        frame = self.stack[-1]
        hops = self.topology.min_hops(
            self.topology.router_of_node(at_node),
            self.topology.router_of_node(frame.node),
        )
        self._return_timer = hops + 1
        self.phase = ProgressiveController.RETURN

    def _on_token_returned(self, now: int) -> None:
        frame = self.stack[-1]
        if frame.pending:
            self._start_leg(now)
            return
        self.stack.pop()
        if not self.stack:
            self._release_token()
        else:
            # The completed frame is itself a leg of its parent.
            self._on_leg_complete(frame.node, now)

    def _release_token(self) -> None:
        self.token.release(at_stop=self.capture_stop)
        self.capture_stop = None
        self.phase = ProgressiveController.IDLE
