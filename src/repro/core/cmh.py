"""Chandy-Misra-Haas edge-chasing deadlock detection (AND model).

Each detector *site* (one per NI per queue coupling, like the endpoint
detector's grid) watches its local blocked condition.  A site blocked
past ``cmh_block_threshold`` cycles becomes an **initiator**: it sends
one probe to every node it waits on — the destinations of the messages
wedged in its output queue, the occupant of its injection channel, and
its own packets blocked inside the fabric.  A node receiving a probe
while itself blocked forwards copies along *its* wait-for edges (each
node forwards a given initiator's chase at most once, the classic
"engaged" bit); a probe arriving back at its still-blocked initiator
proves a dependency cycle and the site **declares** deadlock.

Probes are real single-flit messages, but they travel a dedicated
control overlay (:class:`ProbeNetwork`) with topology-accurate hop
latency rather than the data-plane virtual channels: the channels a
probe must cross are exactly the ones the suspected deadlock has
wedged, and a detection mechanism that deadlocks with its subject is
useless.  This mirrors the paper's PR token, which likewise owns
conflict-free wiring.  Probe traffic is billed separately (counters +
telemetry events), never entering message conservation.

Unlike the endpoint detector's three-condition *timeout*, a declared
CMH detection is backed by an actually-traversed dependency cycle; its
phantom-deadlock window is only the probe flight time (an edge may
unblock while a probe is in flight).  The detection lab measures both
sides: latency vs. the endpoint timeout and false positives vs. the
omniscient CWG checker.
"""

from __future__ import annotations

from repro.core.detection import DetectorPair, build_detectors
from repro.core.detectors import Detector
from repro.protocol.probe import Probe


class CmhSite(DetectorPair):
    """One NI coupling watched by the CMH detector.

    The local blocked predicate and declaration latch are maintained by
    :meth:`CmhDetector.pre_step`; ``step`` only reports the latch, so
    the scheme controllers drive this site exactly like any other.
    """

    __slots__ = ("blocked_since", "declared_at", "last_probe_cycle", "detector")

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        #: first cycle of the current contiguous blocked span (-1 = free).
        self.blocked_since = -1
        #: cycle a probe return proved the cycle (-1 = undeclared).
        self.declared_at = -1
        #: last cycle this site sent its chase probes (-1 = never).
        self.last_probe_cycle = -1
        #: backref set by :class:`CmhDetector` after construction.
        self.detector = None

    @property
    def key(self) -> tuple[int, int, int]:
        return (self.ni.node, self.in_cls, self.out_cls)

    def step(self, now: int) -> bool:
        return self.declared_at >= 0

    def reset(self, now: int) -> None:
        """Recovery acted: drop the declaration and restart the chase."""
        self.since = now
        self.episode_counted = False
        self.declared_at = -1
        self.blocked_since = -1
        self.last_probe_cycle = -1
        if self.detector is not None:
            self.detector.abort_chase(self)


class ProbeNetwork:
    """Hop-per-cycle control overlay carrying probes between nodes.

    A probe sent at cycle ``t`` from node ``a`` to node ``b`` arrives at
    ``t + min_hops(a, b) + 1`` — topology-accurate distance over
    dedicated wiring, unconstrained by data-plane congestion.  Delivery
    order is deterministic: per arrival cycle, send order.
    """

    def __init__(self, topology) -> None:
        self.topology = topology
        self._calendar: dict[int, list[Probe]] = {}
        self._hops: dict[tuple[int, int], int] = {}
        self.in_flight = 0

    def latency(self, src: int, dst: int) -> int:
        pair = (src, dst)
        hops = self._hops.get(pair)
        if hops is None:
            topo = self.topology
            hops = self._hops[pair] = topo.min_hops(
                topo.router_of_node(src), topo.router_of_node(dst)
            )
        return hops + 1

    def send(self, probe: Probe, now: int) -> int:
        """Enqueue ``probe``; returns its hop latency."""
        lat = self.latency(probe.src, probe.dst)
        self._calendar.setdefault(now + lat, []).append(probe)
        self.in_flight += 1
        return lat

    def deliveries(self, now: int) -> list[Probe]:
        arrived = self._calendar.pop(now, [])
        self.in_flight -= len(arrived)
        return arrived


class CmhDetector(Detector):
    """The edge-chasing mechanism over a grid of :class:`CmhSite`\\ s."""

    kind = "cmh"

    def __init__(self, scheme, engine, require_request_child: bool) -> None:
        config = scheme.config
        sites = build_detectors(
            scheme, engine, scheme.couplings, require_request_child,
            site_class=CmhSite, threshold=config.cmh_block_threshold,
        )
        super().__init__(scheme, engine, sites)
        for site in self.sites:
            site.detector = self
        self.block_threshold = config.cmh_block_threshold
        self.probe_interval = config.cmh_probe_interval
        self.net = ProbeNetwork(engine.topology)
        self._sites_by_node: dict[int, list[CmhSite]] = {}
        for site in self.sites:
            self._sites_by_node.setdefault(site.ni.node, []).append(site)
        #: initiator site key -> nodes already engaged by its chase.
        self._engaged: dict[tuple[int, int, int], set[int]] = {}
        self._site_by_key = {site.key: site for site in self.sites}
        # Overhead counters (reported by Detector.overhead()).
        self.probes_sent = 0
        self.probes_forwarded = 0
        self.probes_returned = 0
        self.probes_dropped = 0
        self.probe_hops = 0

    # ------------------------------------------------------------------
    # Blocked predicates
    # ------------------------------------------------------------------
    @staticmethod
    def _strongly_blocked(site: CmhSite) -> bool:
        """The endpoint detector's conditions 1-2: initiation-grade."""
        controller = site.ni.controller
        if controller.current is not None and controller.current_in_cls == site.in_cls:
            return False
        in_q = site._in_q
        out_q = site._out_q
        return (
            site._queue_stressed(in_q)
            and site._queue_stressed(out_q)
            and site._head_eligible(in_q.entries[0] if in_q.entries else None)
        )

    @staticmethod
    def _forward_blocked(site: CmhSite) -> bool:
        """Looser forwarding predicate: a waiting head, wedged output.

        No request-child restriction and no input-stress requirement: a
        probe must keep chasing through any node whose head cannot make
        progress, or true cycles through partially filled queues escape
        detection.
        """
        in_q = site._in_q
        head = in_q.entries[0] if in_q.entries else None
        if head is None or not head.continuation:
            return False
        controller = site.ni.controller
        if controller.current is not None and controller.current_in_cls == site.in_cls:
            return False
        return site._out_q.admission_full

    # ------------------------------------------------------------------
    # Wait-for edges
    # ------------------------------------------------------------------
    def _dependents(self, site: CmhSite) -> list[int]:
        """Nodes ``site`` transitively waits on, one probe hop away."""
        node = site.ni.node
        deps = set(site.ni.frontier_destinations(site.out_cls))
        for sender in self.engine.fabric.pending:
            msg = sender.owner
            if (
                msg is not None
                and sender.next_sink is None
                and msg.blocked_since >= 0
                and msg.src == node
            ):
                deps.add(msg.dst)
        deps.discard(node)
        return sorted(deps)

    # ------------------------------------------------------------------
    # The per-cycle chase
    # ------------------------------------------------------------------
    def pre_step(self, now: int) -> None:
        self._update_blocked(now)
        self._deliver(now)
        self._initiate(now)

    def _update_blocked(self, now: int) -> None:
        for site in self.sites:
            if self._strongly_blocked(site):
                if site.blocked_since < 0:
                    site.blocked_since = now
            elif site.blocked_since >= 0 or site.declared_at >= 0:
                # Progress: the suspected deadlock (or phantom) is gone.
                site.blocked_since = -1
                site.declared_at = -1
                site.last_probe_cycle = -1
                site.since = now
                site.episode_counted = False
                self.abort_chase(site)

    def _deliver(self, now: int) -> None:
        tracer = self.tracer
        for probe in self.net.deliveries(now):
            self.probe_hops += probe.forwards + 1
            node = probe.dst
            if node == probe.initiator:
                site = self._site_by_key.get(probe.site)
                if (
                    site is not None
                    and site.blocked_since >= 0
                    and probe.started_cycle >= site.blocked_since
                ):
                    self.probes_returned += 1
                    if site.declared_at < 0:
                        site.declared_at = now
                        # The scheme's tracer.detection/latency math
                        # reads ``since`` as the formation cycle.
                        site.since = site.blocked_since
                    if tracer is not None:
                        tracer.probe_returned(probe, now)
                else:
                    self.probes_dropped += 1
                    if tracer is not None:
                        tracer.probe_dropped(probe, now)
                continue
            engaged = self._engaged.get(probe.site)
            if engaged is None or node in engaged:
                # Chase aborted, or this node already forwarded it.
                self.probes_dropped += 1
                if tracer is not None:
                    tracer.probe_dropped(probe, now)
                continue
            targets: set[int] = set()
            for site in self._sites_by_node.get(node, ()):
                if self._forward_blocked(site):
                    targets.update(self._dependents(site))
            targets.discard(node)
            if not targets:
                self.probes_dropped += 1
                if tracer is not None:
                    tracer.probe_dropped(probe, now)
                continue
            engaged.add(node)
            for dst in sorted(targets):
                fwd = probe.forwarded(node, dst, now)
                self.net.send(fwd, now)
                self.probes_forwarded += 1
                if tracer is not None:
                    tracer.probe_forwarded(fwd, now)

    def _initiate(self, now: int) -> None:
        tracer = self.tracer
        for site in self.sites:
            if site.blocked_since < 0 or site.declared_at >= 0:
                continue
            if now - site.blocked_since < self.block_threshold:
                continue
            if (
                site.last_probe_cycle >= 0
                and now - site.last_probe_cycle < self.probe_interval
            ):
                continue
            deps = self._dependents(site)
            if not deps:
                continue
            node = site.ni.node
            # (Re)start the chase: prior engagement is void so a fresh
            # wave can re-traverse a frontier that moved meanwhile.
            self._engaged[site.key] = {node}
            site.last_probe_cycle = now
            for dst in deps:
                probe = Probe(
                    node, site.in_cls, site.out_cls,
                    src=node, dst=dst,
                    started_cycle=now, sent_cycle=now,
                )
                self.net.send(probe, now)
                self.probes_sent += 1
                if tracer is not None:
                    tracer.probe_sent(probe, now)

    def abort_chase(self, site: CmhSite) -> None:
        """Void a site's engagement; stale in-flight probes can't declare."""
        self._engaged.pop(site.key, None)

    def describe(self) -> dict:
        out = super().describe()
        out.update(self.overhead())
        return out
