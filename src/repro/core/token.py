"""The circulating token of Extended Disha Sequential.

One token exists per network.  While *circulating* it advances one stop
per cycle along a configurable logical ring that visits every router
**and** every network interface (the paper's first extension of Disha:
the token path includes network endpoints).  A stop with a detected
potential deadlock *captures* the token; the holder gains exclusive use
of the recovery lane until it *releases* the token back into
circulation.  During a rescue the token may be *reused* to deliver the
subordinate messages of the rescued message before release.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.topology import Topology
from repro.util.errors import SimulationError


@dataclass(frozen=True)
class Stop:
    """One stop on the token ring: a router or a network interface."""

    kind: str  # "router" | "ni"
    ident: int  # router id or node id


def default_ring(topology: Topology) -> list[Stop]:
    """Router order with each router's NIs interleaved after it.

    The paper notes the token path is logical and configurable; this
    default simply snakes through router ids, visiting bristled NIs
    immediately after their router.
    """
    stops: list[Stop] = []
    for r in range(topology.num_routers):
        stops.append(Stop("router", r))
        for node in topology.nodes_of_router(r):
            stops.append(Stop("ni", node))
    return stops


def routers_first_ring(topology: Topology) -> list[Stop]:
    """Alternative logical ring: every router, then every NI."""
    stops = [Stop("router", r) for r in range(topology.num_routers)]
    stops += [Stop("ni", n) for n in range(topology.num_nodes)]
    return stops


RING_BUILDERS = {
    "interleaved": default_ring,
    "routers-first": routers_first_ring,
}


def build_ring(topology: Topology, order: str = "interleaved") -> list[Stop]:
    """Ring of the named order (see ``SimConfig.token_ring``)."""
    return RING_BUILDERS[order](topology)


class Token:
    """Single-token capture/release state machine."""

    CIRCULATING = "circulating"
    HELD = "held"

    def __init__(self, stops: list[Stop]) -> None:
        if not stops:
            raise SimulationError("token ring needs at least one stop")
        self.stops = stops
        self.pos = 0
        self.state = Token.CIRCULATING
        self.holder: Stop | None = None
        self.captures = 0
        self.laps = 0
        # Fault state (see repro.faults): a lost token stops moving until
        # the controller's loss watchdog regenerates it; ``duplicates``
        # counts injected extra tokens for the uniqueness invariant.
        self.lost = False
        self.duplicates = 0
        self.regenerations = 0
        #: telemetry hook (repro.telemetry.Tracer) or None.  Capture is
        #: traced by the progressive controller (which knows the rescued
        #: message); the token itself traces movement and release.
        self.tracer = None

    @property
    def at(self) -> Stop:
        return self.stops[self.pos]

    def advance(self) -> Stop:
        """Move one stop per cycle while circulating."""
        if self.state != Token.CIRCULATING:  # pragma: no cover - guarded
            raise SimulationError("cannot advance a held token")
        if self.lost:  # pragma: no cover - guarded by the controller
            raise SimulationError("cannot advance a lost token")
        self.pos = (self.pos + 1) % len(self.stops)
        if self.pos == 0:
            self.laps += 1
        stop = self.stops[self.pos]
        if self.tracer is not None:
            self.tracer.token_hop(stop, self.tracer.engine.now)
        return stop

    def capture(self, stop: Stop) -> None:
        if self.state != Token.CIRCULATING:  # pragma: no cover - guarded
            raise SimulationError("token already held: no second holder allowed")
        self.state = Token.HELD
        self.holder = stop
        self.captures += 1

    def release(self, at_stop: Stop | None = None) -> None:
        """Re-circulate, optionally from the stop where recovery ended."""
        if self.state != Token.HELD:  # pragma: no cover - guarded
            raise SimulationError("releasing a token that is not held")
        if at_stop is not None:
            try:
                self.pos = self.stops.index(at_stop)
            except ValueError:
                pass
        self.state = Token.CIRCULATING
        self.holder = None
        if self.tracer is not None:
            self.tracer.token_released(
                self.stops[self.pos], self.tracer.engine.now
            )

    # -- fault hooks (driven by repro.faults.injector) ------------------
    def lose(self) -> bool:
        """Drop a circulating token; a held one cannot silently vanish."""
        if self.state != Token.CIRCULATING or self.lost:
            return False
        self.lost = True
        return True

    def duplicate(self) -> None:
        """Record an injected duplicate token (invariant-check fodder)."""
        self.duplicates += 1

    def regenerate(self) -> None:
        """Controller-side loss recovery: mint a fresh circulating token."""
        self.lost = False
        self.state = Token.CIRCULATING
        self.holder = None
        self.regenerations += 1
        if self.tracer is not None:
            self.tracer.token_regenerated(self.tracer.engine.now)
