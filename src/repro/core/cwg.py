"""Channel wait-for graph (CWG) construction and knot detection.

Follows the formal model of Warnakulasuriya & Pinkston that FlexSim's
deadlock detection implements (Section 4.1): vertices are network
resources (virtual channels, NI queues, injection channels); a directed
edge ``a -> b`` means the packet/message holding ``a`` waits for ``b``.
A deadlock corresponds to a *knot*: a set of resources from which every
reachable resource lies inside the set — computed here as a sink
strongly-connected component of size > 1 (or with a self-loop) in the
wait-for graph's condensation.

This detector is exact but expensive (the paper notes the explosive
growth of CWG cycles under load and falls back to the endpoint timeout
detector); here it serves three purposes: correctness tests of the cheap
detector, the paper's optional 50-cycle CWG detection mode, and the
strict-avoidance verification that SA's dependency structure is acyclic.
"""

from __future__ import annotations

import networkx as nx

from repro.network.channel import VirtualChannel


def _vc_key(vc: VirtualChannel):
    return ("vc", vc.link.lid, vc.index)


def _queue_key(kind: str, node: int, cls: int):
    return (kind, node, cls)


def build_wait_for_graph(engine) -> nx.DiGraph:
    """Snapshot the live simulator into a resource wait-for graph.

    Edges:

    * frontier sender -> every candidate output VC (or the destination
      input queue when the header has reached its delivery router);
    * allocated channel -> its assigned next sink (space wait);
    * input queue -> output queue(s) its non-terminating head needs;
    * output queue -> candidate VCs of its head message.
    """
    g = nx.DiGraph()
    fabric = engine.fabric
    topo = engine.topology
    scheme = engine.scheme
    routing = scheme.routing

    def sender_key(s):
        if isinstance(s, VirtualChannel):
            return _vc_key(s)
        return ("inj", s.node, s.vc_class)

    # Channel-level edges.
    for vcs in fabric.link_vcs:
        for vc in vcs:
            if vc.owner is None:
                continue
            key = _vc_key(vc)
            g.add_node(key)
            sink = vc.next_sink
            if isinstance(sink, VirtualChannel):
                g.add_edge(key, _vc_key(sink))
            # (ejection ports drain unconditionally: no wait edge)

    # Busy injection channels whose packet is already routed onward.
    for chan in fabric._inj_channels.values():
        if chan.owner is None:
            continue
        key = ("inj", chan.node, chan.vc_class)
        g.add_node(key)
        if isinstance(chan.next_sink, VirtualChannel):
            g.add_edge(key, _vc_key(chan.next_sink))

    # Frontier senders wait on alternatives.
    for s in fabric.pending:
        msg = s.owner
        if msg is None or s.next_sink is not None:
            continue
        key = sender_key(s)
        g.add_node(key)
        cur_router = s.link.dst if isinstance(s, VirtualChannel) else s.router
        dst_router = topo.router_of_node(msg.dst)
        if cur_router == dst_router:
            cls = scheme.queue_class_of(msg.mtype)
            g.add_edge(key, _queue_key("inq", msg.dst, cls))
        else:
            for vc in routing.candidates(cur_router, dst_router, msg):
                g.add_edge(key, _vc_key(vc))

    # Endpoint edges.  A wait edge is drawn only when the head is
    # *actually* blocked now — otherwise the resource progresses on its
    # own and a cycle through it is not a deadlock.
    from collections import Counter

    for ni in engine.interfaces:
        controller = ni.controller
        for cls in range(ni.in_bank.num_classes):
            q = ni.in_bank.queue(cls)
            head = q.peek()
            qkey = _queue_key("inq", ni.node, cls)
            if q.occupancy > 0:
                g.add_node(qkey)
            if head is None or not head.continuation:
                continue
            if controller.current is not None and controller.current_in_cls == cls:
                continue  # being serviced: progress
            need = Counter(
                scheme.queue_class_of(spec.mtype) for spec in head.continuation
            )
            for out_cls, count in need.items():
                if ni.out_bank.queue(out_cls).free_slots < count:
                    g.add_edge(qkey, _queue_key("outq", ni.node, out_cls))
        for cls in range(ni.out_bank.num_classes):
            q = ni.out_bank.queue(cls)
            okey = _queue_key("outq", ni.node, cls)
            if q.occupancy > 0:
                g.add_node(okey)
            if q.peek() is None:
                continue
            chan = fabric._inj_channels.get((ni.node, cls))
            if chan is not None and chan.owner is not None:
                # The queue head waits behind the channel's packet.
                g.add_edge(okey, ("inj", ni.node, cls))
            # With an idle channel the head loads next cycle: no wait.
    return g


def find_knots(g: nx.DiGraph) -> list[set]:
    """Knots: sink SCCs that can still cycle internally.

    A single vertex without a self-loop cannot be deadlocked; an SCC with
    outgoing edges has an escape route.
    """
    knots = []
    condensation = nx.condensation(g)
    for scc_id in condensation.nodes:
        if condensation.out_degree(scc_id) > 0:
            continue
        members = condensation.nodes[scc_id]["members"]
        if len(members) > 1:
            knots.append(set(members))
        else:
            (m,) = members
            if g.has_edge(m, m):
                knots.append({m})
    return knots


def detect_deadlock(engine) -> list[set]:
    """Convenience wrapper: snapshot the engine and return any knots."""
    return find_knots(build_wait_for_graph(engine))
