"""The common detector interface: one protocol, three mechanisms.

The paper's schemes are agnostic to *how* deadlock is found; this
module makes that explicit.  A :class:`Detector` owns a list of
per-(NI, queue-coupling) **sites** — objects interface-compatible with
:class:`~repro.core.detection.DetectorPair` — that the scheme
controllers poll in build order every cycle, exactly as before.  The
detector additionally gets one :meth:`Detector.pre_step` call at the
top of the scheme's step, which is where distributed mechanisms (the
Chandy-Misra-Haas edge chase) move their probes.

Mechanisms
----------
``endpoint``
    The paper's three-condition detector (:mod:`repro.core.detection`).
``cmh``
    Chandy-Misra-Haas edge chasing with real probe messages
    (:mod:`repro.core.cmh`).
``timeout``
    The cheap progress-timeout heuristic
    (:class:`~repro.core.detection.TimeoutSite`).

The omniscient CWG checker (:mod:`repro.core.cwg`) is *not* a
:class:`Detector`: it stays the out-of-band ground truth that the
detection lab scores the in-band mechanisms against.
"""

from __future__ import annotations

from repro.core.detection import DetectorPair, TimeoutSite, build_detectors
from repro.util.errors import ConfigurationError

#: overhead counter names every detector reports (zeros when N/A).
OVERHEAD_FIELDS = (
    "probes_sent", "probes_forwarded", "probes_returned",
    "probes_dropped", "probe_hops",
)


class Detector:
    """Base detector: a list of poll-compatible sites plus a pre-step.

    ``sites`` is fixed at construction; scheme controllers iterate it in
    order and call ``site.step(now)`` / ``site.reset(now)`` exactly as
    they always did with bare :class:`DetectorPair` lists, so recovery
    ordering (and with it bit-identicality on the default mechanism) is
    untouched by the abstraction.
    """

    kind = "?"

    def __init__(self, scheme, engine, sites) -> None:
        self.scheme = scheme
        self.engine = engine
        self.sites = list(sites)
        #: telemetry hook (repro.telemetry.Tracer) or None.
        self.tracer = None

    def pre_step(self, now: int) -> None:
        """Per-cycle mechanism work before the sites are polled."""

    def sites_at(self, node: int) -> list:
        return [site for site in self.sites if site.ni.node == node]

    def overhead(self) -> dict[str, int]:
        """Probe-traffic bill of the run so far (all zero if probeless)."""
        return {name: getattr(self, name, 0) for name in OVERHEAD_FIELDS}

    def describe(self) -> dict:
        return {"detector": self.kind, "sites": len(self.sites)}


class EndpointDetector(Detector):
    """The paper's three-condition endpoint detector (the default)."""

    kind = "endpoint"

    def __init__(self, scheme, engine, require_request_child: bool) -> None:
        super().__init__(
            scheme, engine,
            build_detectors(
                scheme, engine, scheme.couplings, require_request_child
            ),
        )


class TimeoutDetector(Detector):
    """Progress-timeout heuristic over the same site grid."""

    kind = "timeout"

    def __init__(self, scheme, engine, require_request_child: bool) -> None:
        super().__init__(
            scheme, engine,
            build_detectors(
                scheme, engine, scheme.couplings, require_request_child,
                site_class=TimeoutSite,
                threshold=scheme.config.timeout_threshold,
            ),
        )


def build_detector(scheme, engine, require_request_child: bool) -> Detector:
    """Instantiate the detector named by ``scheme.config.detector``."""
    kind = scheme.config.detector
    if kind == "endpoint":
        return EndpointDetector(scheme, engine, require_request_child)
    if kind == "timeout":
        return TimeoutDetector(scheme, engine, require_request_child)
    if kind == "cmh":
        from repro.core.cmh import CmhDetector

        return CmhDetector(scheme, engine, require_request_child)
    raise ConfigurationError(f"unknown detector {kind!r}")


__all__ = [
    "Detector",
    "EndpointDetector",
    "TimeoutDetector",
    "DetectorPair",
    "build_detector",
    "OVERHEAD_FIELDS",
]
