"""Core: deadlock detection and the SA/DR/PR handling schemes."""

from repro.core.cwg import build_wait_for_graph, detect_deadlock, find_knots
from repro.core.detection import DetectorPair, build_detectors
from repro.core.schemes import (
    SCHEMES,
    DeflectiveRecovery,
    DetectionOnly,
    ProgressiveRecovery,
    Scheme,
    StrictAvoidance,
    build_scheme,
    walk_specs,
)
from repro.core.token import Stop, Token, build_ring, default_ring, routers_first_ring

__all__ = [
    "Scheme",
    "StrictAvoidance",
    "DeflectiveRecovery",
    "ProgressiveRecovery",
    "DetectionOnly",
    "SCHEMES",
    "build_scheme",
    "walk_specs",
    "DetectorPair",
    "build_detectors",
    "Token",
    "Stop",
    "default_ring",
    "routers_first_ring",
    "build_ring",
    "build_wait_for_graph",
    "find_knots",
    "detect_deadlock",
]
