"""DR recovery: Origin2000-style backoff deflection.

When the detector fires at a node's NI, the head of the stressed input
queue — a request whose consumption would generate further requests — is
taken off the queue and *deflected*: a backoff reply (BRP) carrying the
pending work is sent to the original requester, which then issues the
subordinate request(s) directly.  The dependency chain
``ORQ < FRQ < TRP`` becomes ``ORQ < BRP < FRQ < TRP`` (Figure 2), at the
cost of one additional message per recovered transaction; the paper's
"minimum recovery action" resolves exactly one message per detection
event (Section 4.3.1).

The BRP travels on the reply network, whose delivery is guaranteed by
the requester's preallocated reply slot; the node keeps/creates its own
reservations for any replies still owed to it along the deflected chain
(e.g. the home's FRP slot in four-type chains).
"""

from __future__ import annotations

from repro.core.detection import DetectorPair
from repro.core.detectors import build_detector
from repro.protocol.message import Message, NetClass


class DeflectionController:
    """Per-cycle DR behaviour: run detectors, deflect stressed heads."""

    def __init__(self, scheme, engine) -> None:
        self.scheme = scheme
        self.engine = engine
        self.detector = build_detector(scheme, engine, require_request_child=True)
        scheme.detector = self.detector
        self.detectors = self.detector.sites
        self.deflections = 0

    def step(self, now: int) -> None:
        drain = self.scheme.config.recovery_policy == "drain"
        tracer = self.scheme.tracer
        self.detector.pre_step(now)
        for det in self.detectors:
            if not det.step(now):
                continue
            if tracer is not None and not det.episode_counted:
                # First firing of this stalled episode (the reset below
                # and any queue progress both rearm the flag).
                det.episode_counted = True
                tracer.detection(
                    det.ni.node, det.in_cls, det.out_cls, det.since, now
                )
            if self._try_deflect(det, now):
                if drain:
                    # DASH behaviour (paper footnote 4): keep removing
                    # queue heads until one would generate a terminating
                    # reply or the output queue drops below threshold.
                    out_q = det.ni.out_bank.queue(det.out_cls)
                    while out_q.admission_full and self._try_deflect(det, now):
                        pass
                det.reset(now)

    # ------------------------------------------------------------------
    def _try_deflect(self, det: DetectorPair, now: int) -> bool:
        ni = det.ni
        scheme = self.scheme
        in_q = ni.in_bank.queue(det.in_cls)
        head = in_q.peek()
        if head is None or not head.continuation:
            return False
        if not any(
            spec.mtype.net_class == NetClass.REQUEST for spec in head.continuation
        ):
            return False
        backoff_type = scheme.protocol.backoff
        out_q = ni.out_bank.queue(scheme.queue_class_of(backoff_type))
        if out_q.free_slots <= 0:
            return False
        # R3: keep slots reserved for replies still owed to this node
        # along the deflected chain (the home's FRP in 4-type chains).
        # The deflected head vacates its slot, which may back one of them.
        if not scheme.make_reservations(
            ni.node, ni.in_bank, head.continuation, vacating=in_q
        ):
            return False

        in_q.pop()
        brp = Message(
            backoff_type,
            src=ni.node,
            dst=head.src,
            continuation=head.continuation,
            transaction=head.transaction,
            created_cycle=now,
        )
        brp.vc_class = scheme.vc_class_of(backoff_type)
        brp.has_reservation = scheme.wants_reservation(backoff_type)
        out_q.push(brp)

        head.deflected = True
        head.consumed_cycle = now
        txn = head.transaction
        if txn is not None:
            # The deflected request is consumed (-1) but the BRP adds a
            # message (+1): outstanding is unchanged, the count grows.
            txn.deflections += 1
            txn.messages_used += 1
        self.deflections += 1
        scheme.deadlocks_detected += 1
        scheme.recoveries += 1
        stats = self.engine.stats
        stats.on_created(brp)
        stats.on_consumed(head, now)
        stats.on_deadlock(now, resolved=True)
        tracer = scheme.tracer
        if tracer is not None:
            tracer.deflection(ni.node, head, brp, det.since, now)
        return True
