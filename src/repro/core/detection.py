"""Endpoint detection of potential message-dependent deadlock.

Implements the three-condition detector of Section 2.2 (as used by the
Origin2000 and assumed by the paper's DR/PR evaluations):

1. the input queue holding a message type *and* the output queue its
   subordinate would enter are both filled beyond a threshold;
2. the message at the head of the input queue is one that generates a
   (for DR: request-class) non-terminating subordinate;
3. conditions 1-2 persist for more than a timeout of ``T`` cycles with
   the NI making no progress.

The default timeout is 25 cycles, the paper's stand-in for the average
latency of CWG-based detection; progress is observed through the queues'
version counters so any pop/push resets the episode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocol.message import Message, NetClass


@dataclass(slots=True)
class DetectorPair:
    """One (input class, output class) coupling to watch at one NI.

    ``step`` runs for every detector on every cycle, so the queue
    references are resolved once and the conditions are evaluated
    cheapest-first (version change, then queue stress, then head
    eligibility) — the state transitions are identical to evaluating
    everything up front.
    """

    ni: object
    in_cls: int
    out_cls: int
    threshold: int
    occupancy_threshold: float
    require_request_child: bool
    since: int = -1
    last_version: int = -1
    episode_counted: bool = field(default=False)
    _in_q: object = field(default=None, init=False, repr=False)
    _out_q: object = field(default=None, init=False, repr=False)
    _full_mode: bool = field(default=True, init=False, repr=False)

    def __post_init__(self) -> None:
        self._in_q = self.ni.in_bank.queue(self.in_cls)
        self._out_q = self.ni.out_bank.queue(self.out_cls)
        # The common configuration (threshold >= 1.0) reduces "stressed"
        # to admission_full; precomputed so step() can inline the slot
        # arithmetic instead of chaining two property lookups per queue.
        self._full_mode = self.occupancy_threshold >= 1.0

    def _queue_stressed(self, q) -> bool:
        if self.occupancy_threshold >= 1.0:
            return q.admission_full
        return q.occupancy >= self.occupancy_threshold * q.capacity

    def _head_eligible(self, head: Message | None) -> bool:
        if head is None or not head.continuation:
            return False
        if not self.require_request_child:
            return True
        return any(
            spec.mtype.net_class == NetClass.REQUEST for spec in head.continuation
        )

    def head(self) -> Message | None:
        return self._in_q.peek()

    def step(self, now: int) -> bool:
        """Advance one cycle; return True while the detector is *fired*."""
        in_q = self._in_q
        out_q = self._out_q
        version = in_q.version + out_q.version
        if version != self.last_version:
            self.since = now
            self.last_version = version
            self.episode_counted = False
            return False
        controller = self.ni.controller
        if controller.current is not None and controller.current_in_cls == self.in_cls:
            conditions = False
        elif self._full_mode:
            # Inline _queue_stressed/admission_full/free_slots.
            conditions = (
                in_q.capacity - len(in_q.entries) - in_q.held - in_q.reserved <= 0
                and out_q.capacity - len(out_q.entries) - out_q.held - out_q.reserved
                <= 0
                and self._head_eligible(in_q.entries[0] if in_q.entries else None)
            )
        else:
            conditions = (
                self._queue_stressed(in_q)
                and self._queue_stressed(out_q)
                and self._head_eligible(in_q.entries[0] if in_q.entries else None)
            )
        if not conditions:
            self.since = now
            self.episode_counted = False
            return False
        return (now - self.since) > self.threshold

    def reset(self, now: int) -> None:
        self.since = now
        self.episode_counted = False


class TimeoutSite(DetectorPair):
    """Cheap timeout heuristic: any waiting head + no queue progress.

    Drops conditions 1-2 of the endpoint detector (queue stress, head
    eligibility): the site fires whenever the input queue has held at
    least one message through ``timeout_threshold`` cycles of unchanged
    queue versions.  Deliberately false-positive-prone — a memory
    controller busy elsewhere for long enough trips it — so it bounds
    from below what detection certainty is worth.  Shares the
    :class:`DetectorPair` state machine, so recovery controllers drive
    it unchanged (their recovery preconditions still guard the action).
    """

    __slots__ = ()

    def step(self, now: int) -> bool:
        in_q = self._in_q
        out_q = self._out_q
        version = in_q.version + out_q.version
        if version != self.last_version:
            self.since = now
            self.last_version = version
            self.episode_counted = False
            return False
        controller = self.ni.controller
        if controller.current is not None and controller.current_in_cls == self.in_cls:
            conditions = False
        else:
            conditions = bool(in_q.entries)
        if not conditions:
            self.since = now
            self.episode_counted = False
            return False
        return (now - self.since) > self.threshold


def coupling_queue_pairs(
    scheme, couplings: set[tuple[str, str]], require_request_child: bool
) -> list[tuple[int, int]]:
    """Distinct (in-queue class, out-queue class) pairs, in build order.

    ``couplings`` are (parent type name, child type name) pairs from the
    live traffic pattern/protocol; they are mapped through the scheme's
    queue classes and de-duplicated (e.g. DR's per-net queues collapse
    every request coupling to the single (request-in, request-out) pair).
    """
    protocol = scheme.protocol
    pairs: set[tuple[int, int]] = set()
    for parent, child in couplings:
        child_t = protocol.type_named(child)
        if require_request_child and child_t.net_class != NetClass.REQUEST:
            continue
        pairs.add(
            (
                scheme.queue_class_of(protocol.type_named(parent)),
                scheme.queue_class_of(child_t),
            )
        )
    return sorted(pairs)


def build_detectors(
    scheme, engine, couplings: set[tuple[str, str]], require_request_child: bool,
    site_class: type[DetectorPair] = DetectorPair, threshold: int | None = None,
) -> list[DetectorPair]:
    """One detector per NI per distinct (in-queue, out-queue) coupling."""
    pairs = coupling_queue_pairs(scheme, couplings, require_request_child)
    if threshold is None:
        threshold = scheme.config.detection_threshold
    detectors: list[DetectorPair] = []
    for ni in engine.interfaces:
        for in_cls, out_cls in pairs:
            detectors.append(
                site_class(
                    ni=ni,
                    in_cls=in_cls,
                    out_cls=out_cls,
                    threshold=threshold,
                    occupancy_threshold=scheme.config.occupancy_threshold,
                    require_request_child=require_request_child,
                )
            )
    return detectors
