"""Deadlock-handling schemes: SA, DR, PR and a detection-only baseline.

A scheme bundles the three decisions the paper compares (Section 4.3.1):

1. **Channel organisation** — the :class:`~repro.network.routing.VcMap`
   and routing function (logical networks per type for SA, two networks
   for DR, True Fully Adaptive Routing for PR).
2. **Endpoint queue organisation** — how message types map onto NI queue
   classes, plus the MSHR reply-slot preallocation rule.
3. **Run-time behaviour** — detection and recovery actions executed each
   cycle (nothing for SA; backoff deflection for DR; Extended Disha
   Sequential token rescue for PR).

The scheme object doubles as the *endpoint policy* consumed by
:class:`~repro.endpoint.controller.MemoryController` and
:class:`~repro.endpoint.interface.NetworkInterface`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.network.routing import (
    VcMap,
    dimension_order_routing,
    duato_routing,
    partitioned_vc_map,
    tfar_vc_map,
    true_fully_adaptive_routing,
)
from repro.network.topology import Topology
from repro.protocol.chains import Protocol
from repro.protocol.message import NetClass
from repro.util.errors import ConfigurationError


def walk_specs(continuation):
    """Yield every spec in a continuation tree (all depths)."""
    for spec in continuation:
        yield spec
        yield from walk_specs(spec.continuation)


class Scheme(ABC):
    """Base class: channel map + queue policy + per-cycle behaviour."""

    name: str = "?"

    def __init__(
        self,
        config,
        topology: Topology,
        protocol: Protocol,
        types_used: tuple[str, ...],
        couplings: set[tuple[str, str]],
    ) -> None:
        self.config = config
        self.topology = topology
        self.protocol = protocol
        self.types_used = tuple(types_used)
        self.couplings = set(couplings)
        self.service_time = config.service_time
        self.sink_time = config.sink_time
        self._type_index = {n: i for i, n in enumerate(self.types_used)}
        self.engine = None
        #: telemetry hook (repro.telemetry.Tracer) or None.
        self.tracer = None
        #: the detection mechanism (repro.core.detectors.Detector), built
        #: on attach by schemes that detect; None for SA.
        self.detector = None
        # Statistics common to all schemes.
        self.deadlocks_detected = 0
        self.recoveries = 0
        self.vc_map: VcMap | None = None
        self.routing = None

    # ------------------------------------------------------------------
    # Endpoint policy interface
    # ------------------------------------------------------------------
    @abstractmethod
    def queue_class_of(self, mtype) -> int:
        """NI queue class for a message type."""

    @abstractmethod
    def vc_class_of(self, mtype) -> int:
        """Logical network (VC class) for a message type."""

    def wants_reservation(self, mtype) -> bool:
        """Whether arrivals of this type are backed by reply preallocation."""
        return False

    @property
    @abstractmethod
    def num_queue_classes(self) -> int:
        ...

    def make_reservations(self, node: int, in_bank, continuation,
                          vacating=None) -> bool:
        """Reserve one input slot per reply-class spec destined to ``node``.

        All-or-nothing: on failure every reservation made here is rolled
        back and ``False`` is returned so the caller can retry later.

        ``vacating`` names a queue whose head is consumed by the same
        action these reservations belong to (service of a message frees
        its slot atomically): one reservation into that queue may use
        the head's slot.  Without this, a head needing a reservation in
        its own full queue — a BRP in the shared reply queue, any head
        under shared queue mode — could never be serviced: an artificial
        endpoint deadlock the protocol does not actually have.
        """
        made = []
        for spec in walk_specs(continuation):
            if spec.dst == node and self.wants_reservation(spec.mtype):
                q = in_bank.queue(self.queue_class_of(spec.mtype))
                # The +1 self-limits: over-reserving drives free_slots
                # negative, so the head's slot is only ever spent once.
                if q.try_reserve_reply(extra=1 if q is vacating else 0):
                    made.append(q)
                else:
                    for made_q in made:
                        made_q.release_reservation()
                    return False
        return True

    # ------------------------------------------------------------------
    # Runtime
    # ------------------------------------------------------------------
    def attach(self, engine) -> None:
        self.engine = engine

    def step(self, now: int) -> None:
        """Per-cycle detection/recovery work (default: none)."""

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _resolve_queue_mode(self, default: str) -> str:
        mode = self.config.queue_mode
        return default if mode == "auto" else mode

    def _type_queue_class(self, mtype) -> int:
        """Per-type class; the backoff reply shares its terminating sibling's queue."""
        idx = self._type_index.get(mtype.name)
        if idx is not None:
            return idx
        if mtype.is_backoff:
            # Share the queue of the last reply-class type in use.
            for i in range(len(self.types_used) - 1, -1, -1):
                t = self.protocol.type_named(self.types_used[i])
                if t.net_class == NetClass.REPLY:
                    return i
        raise ConfigurationError(f"message type {mtype.name} not in {self.types_used}")

    def request_couplings(self) -> set[tuple[str, str]]:
        """Couplings whose subordinate is a request-class type."""
        out = set()
        for parent, child in self.couplings:
            if self.protocol.type_named(child).net_class == NetClass.REQUEST:
                out.add((parent, child))
        return out

    def describe(self) -> dict:
        """Human-readable summary used by examples and experiment logs."""
        return {
            "scheme": self.name,
            "num_vcs": self.vc_map.num_vcs if self.vc_map else None,
            "logical_networks": self.vc_map.num_classes if self.vc_map else None,
            "availability": [
                self.vc_map.availability(c) for c in range(self.vc_map.num_classes)
            ]
            if self.vc_map
            else None,
            "queue_classes": self.num_queue_classes,
            "adaptive": getattr(self.routing, "adaptive", None),
        }


class StrictAvoidance(Scheme):
    """SA: one logical network (escape pair + queues) per message type.

    Message-dependent deadlock can never form: resource dependencies flow
    only from a type to its subordinates, and each type's network is
    routing-deadlock-free by itself.  The cost is partitioning: with C
    virtual channels and L types, per-type availability is
    ``1 + (C/L - E_r)`` (split) or ``1 + (C - E_m)`` (shared extras).
    Requires ``C >= 2L`` (the paper omits SA from the 4-VC experiments
    for patterns with chains longer than two for exactly this reason).
    """

    name = "SA"

    def __init__(self, config, topology, protocol, types_used, couplings):
        super().__init__(config, topology, protocol, types_used, couplings)
        if config.detector != "endpoint":
            raise ConfigurationError(
                "SA runs no detector (deadlock cannot form); "
                f"detector={config.detector!r} is meaningless here"
            )
        num_classes = len(self.types_used)
        self.vc_map = partitioned_vc_map(
            config.num_vcs, num_classes, shared_extras=config.shared_extras
        )
        has_adaptive = any(self.vc_map.adaptive)
        if has_adaptive:
            self.routing = duato_routing(topology, self.vc_map)
        else:
            self.routing = dimension_order_routing(topology, self.vc_map)
        mode = self._resolve_queue_mode("per-type")
        if mode != "per-type":
            raise ConfigurationError(
                "strict avoidance requires per-type message queues"
            )

    def queue_class_of(self, mtype) -> int:
        if mtype.is_backoff:  # pragma: no cover - SA never deflects
            raise ConfigurationError("SA cannot route backoff replies")
        return self._type_index[mtype.name]

    vc_class_of = queue_class_of

    @property
    def num_queue_classes(self) -> int:
        return len(self.types_used)


class DeflectiveRecovery(Scheme):
    """DR: two logical networks (request/reply) with Origin2000 backoff.

    Message-dependent deadlock may form on the request network; the reply
    network is strictly avoided via MSHR reply-slot preallocation.  On
    detection, the head request that would generate further requests is
    deflected back to its requester as a backoff reply (BRP), which then
    re-issues the subordinate request directly — one extra message per
    recovery (Section 2.2).  Behavioural logic lives in
    :class:`repro.core.deflection.DeflectionController`.
    """

    name = "DR"

    def __init__(self, config, topology, protocol, types_used, couplings):
        super().__init__(config, topology, protocol, types_used, couplings)
        if len(self.types_used) <= 2:
            raise ConfigurationError(
                "DR is not valid for two-type protocols (it degenerates to "
                "SA); the paper gives no DR results for PAT100"
            )
        if protocol.backoff is None:
            raise ConfigurationError("DR needs a backoff reply type")
        self.vc_map = partitioned_vc_map(
            config.num_vcs, 2, shared_extras=config.shared_extras
        )
        if any(self.vc_map.adaptive):
            self.routing = duato_routing(topology, self.vc_map)
        else:
            self.routing = dimension_order_routing(topology, self.vc_map)
        self._mode = self._resolve_queue_mode("per-net")
        if self._mode not in ("per-net", "per-type"):
            raise ConfigurationError(f"DR cannot use queue mode {self._mode!r}")
        self.controller = None  # DeflectionController, built on attach

    def queue_class_of(self, mtype) -> int:
        if self._mode == "per-net":
            return int(mtype.net_class)
        return self._type_queue_class(mtype)

    def vc_class_of(self, mtype) -> int:
        return int(mtype.net_class)

    def wants_reservation(self, mtype) -> bool:
        return mtype.net_class == NetClass.REPLY

    @property
    def num_queue_classes(self) -> int:
        return 2 if self._mode == "per-net" else len(self.types_used)

    def attach(self, engine) -> None:
        super().attach(engine)
        from repro.core.deflection import DeflectionController

        self.controller = DeflectionController(self, engine)

    def step(self, now: int) -> None:
        self.controller.step(now)


class ProgressiveRecovery(Scheme):
    """PR: the paper's Extended Disha Sequential technique.

    Every channel and queue is shared by every message type (True Fully
    Adaptive Routing, shared queues by default).  Both routing- and
    message-dependent deadlock may form; a circulating token that visits
    routers *and* network interfaces grants exclusive access to the
    recovery lane (per-router deadlock buffers plus per-NI deadlock
    message buffers) over which detected deadlocks are progressively
    resolved without creating extra messages.  Behavioural logic lives in
    :class:`repro.core.progressive.ProgressiveController`.
    """

    name = "PR"

    def __init__(self, config, topology, protocol, types_used, couplings):
        super().__init__(config, topology, protocol, types_used, couplings)
        self.vc_map = tfar_vc_map(config.num_vcs)
        self.routing = true_fully_adaptive_routing(topology, self.vc_map)
        self._mode = self._resolve_queue_mode("shared")
        if self._mode not in ("shared", "per-type"):
            raise ConfigurationError(f"PR cannot use queue mode {self._mode!r}")
        self.controller = None  # ProgressiveController, built on attach

    def queue_class_of(self, mtype) -> int:
        if self._mode == "shared":
            return 0
        return self._type_queue_class(mtype)

    def vc_class_of(self, mtype) -> int:
        return 0

    @property
    def num_queue_classes(self) -> int:
        return 1 if self._mode == "shared" else len(self.types_used)

    def attach(self, engine) -> None:
        super().attach(engine)
        from repro.core.progressive import ProgressiveController

        self.controller = ProgressiveController(self, engine)

    def step(self, now: int) -> None:
        self.controller.step(now)


class DetectionOnly(Scheme):
    """Baseline: Duato routing, shared queues, detection without recovery.

    Used for the trace-driven characterization (Section 4.2), where the
    question is *whether* message-dependent deadlocks occur, not how to
    resolve them.  Routing-dependent deadlock is strictly avoided
    (Duato's protocol), isolating message-dependent events.
    """

    name = "NONE"

    def __init__(self, config, topology, protocol, types_used, couplings):
        super().__init__(config, topology, protocol, types_used, couplings)
        self.vc_map = partitioned_vc_map(config.num_vcs, 1)
        self.routing = duato_routing(topology, self.vc_map)
        self._mode = self._resolve_queue_mode("shared")
        self.detectors = []

    def queue_class_of(self, mtype) -> int:
        if self._mode == "shared":
            return 0
        return self._type_queue_class(mtype)

    def vc_class_of(self, mtype) -> int:
        return 0

    @property
    def num_queue_classes(self) -> int:
        return 1 if self._mode == "shared" else len(self.types_used)

    def attach(self, engine) -> None:
        super().attach(engine)
        from repro.core.detectors import build_detector

        self.detector = build_detector(self, engine, require_request_child=False)
        self.detectors = self.detector.sites

    def step(self, now: int) -> None:
        self.detector.pre_step(now)
        for det in self.detectors:
            if det.step(now):
                # Count each stalled episode once, at first firing.
                if not det.episode_counted:
                    det.episode_counted = True
                    self.deadlocks_detected += 1
                    self.engine.stats.on_deadlock(now, resolved=False)
                    if self.tracer is not None:
                        self.tracer.detection(
                            det.ni.node, det.in_cls, det.out_cls, det.since, now
                        )


SCHEMES = {
    "SA": StrictAvoidance,
    "DR": DeflectiveRecovery,
    "PR": ProgressiveRecovery,
    "NONE": DetectionOnly,
}


def build_scheme(
    config,
    topology: Topology,
    protocol: Protocol,
    types_used: tuple[str, ...],
    couplings: set[tuple[str, str]],
) -> Scheme:
    """Instantiate the scheme named by ``config.scheme``."""
    try:
        cls = SCHEMES[config.scheme]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheme {config.scheme!r}; expected one of {sorted(SCHEMES)}"
        ) from None
    return cls(config, topology, protocol, types_used, couplings)
