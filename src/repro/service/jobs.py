"""Asyncio campaign job manager: priorities, dedup, streaming, drain.

A *job* is one :class:`~repro.farm.plan.CampaignSpec` submitted for
execution.  The manager:

* assigns a **deterministic job id** — a digest of the campaign's
  per-point cache keys — so resubmitting the same campaign (same
  scenario, scale, seed, code version) is idempotent: the caller gets
  the existing job back instead of queueing duplicate work;
* **dedups before scheduling** through the shared
  :func:`repro.sim.parallel.resolve_points`, so points already in
  ``.repro_cache`` are filled instantly and never dispatched (a fully
  cached campaign completes without touching the executor at all);
* executes missing points through the **existing backends** — the
  in-process traced path (default: live time-series streaming + a
  per-job Perfetto trace), the parallel pool (``workers > 1``) or the
  distributed farm (``farm_hosts``) — all writing through the same
  cache keys, so results are bit-identical to ``run_sweep`` whichever
  path runs them;
* streams **progress / sample / status events** through an
  :class:`~repro.service.sse.EventBroker` topic per job id;
* **drains gracefully**: shutdown finishes the running job, then
  persists the still-queued submissions to ``queue.json`` so a
  restarted service resumes them (cached points making the resume
  cheap).
"""

from __future__ import annotations

import asyncio
import hashlib
import heapq
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.config import SimConfig
from repro.farm.plan import CampaignSpec
from repro.sim.parallel import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    resolve_points,
)
from repro.sim.results import RunResult
from repro.sim.sweep import summarize_window
from repro.telemetry import Tracer, to_perfetto
from repro.util.errors import UnsupportedFeatureError

#: name of the persisted submission queue inside the jobs directory.
QUEUE_FILENAME = "queue.json"

#: job lifecycle states.
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled"
)
_TERMINAL = (DONE, FAILED, CANCELLED)

#: ring-buffer size of each per-point tracer; bounds job trace memory.
TRACE_CAPACITY = 20_000


def job_id_for(spec: CampaignSpec) -> str:
    """Deterministic job id: digest of the campaign's point cache keys.

    Two submissions naming the same points (keys already fold in the
    full config, the window and the code digest) collapse onto one job,
    whatever scenario name or priority they arrived with.
    """
    blob = json.dumps(
        {"keys": spec.point_keys(), "warmup": spec.warmup,
         "measure": spec.measure},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


@dataclass
class Job:
    """One submitted campaign and everything observable about it."""

    id: str
    spec: CampaignSpec
    priority: int = 0
    scenario: str | None = None
    state: str = QUEUED
    seq: int = 0
    #: point indices filled from the cache at submission (the dedup).
    cached_points: list[int] = field(default_factory=list)
    computed: int = 0
    error: str | None = None
    created: float = 0.0
    started: float | None = None
    finished: float | None = None
    results: list[RunResult | None] = field(default_factory=list)
    keys: list[str] = field(default_factory=list)
    trace_path: str | None = None

    @property
    def total(self) -> int:
        return len(self.spec.configs)

    @property
    def done_points(self) -> int:
        return len(self.cached_points) + self.computed

    def to_dict(self, with_results: bool = False) -> dict[str, Any]:
        out: dict[str, Any] = {
            "id": self.id,
            "name": self.spec.name,
            "scenario": self.scenario,
            "priority": self.priority,
            "state": self.state,
            "total": self.total,
            "cached": len(self.cached_points),
            "cached_points": list(self.cached_points),
            "computed": self.computed,
            "done_points": self.done_points,
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "trace": self.trace_path,
        }
        if with_results:
            out["results"] = [
                r.to_dict() if r is not None else None for r in self.results
            ]
            out["spec"] = self.spec.to_dict()
        return out


def _merge_point_traces(
    point_traces: list[tuple[int, SimConfig, dict[str, Any]]],
) -> dict[str, Any]:
    """Fold per-point engine traces into one job-level Perfetto trace.

    Every point keeps its full track layout, shifted to its own pid
    block (point *k* lives at pids ``1000*(k+1) + original``), with a
    process-name prefix naming the point, so the job trace opens as one
    document with one process group per executed point.
    """
    events: list[dict[str, Any]] = []
    other: dict[str, Any] = {"points": len(point_traces)}
    for idx, config, trace in point_traces:
        base = 1000 * (idx + 1)
        label = f"point{idx} load={config.load:g} {config.scheme}"
        for event in trace["traceEvents"]:
            ev = dict(event)
            ev["pid"] = base + ev["pid"]
            if event.get("ph") == "M" and event.get("name") == "process_name":
                ev = dict(ev)
                ev["args"] = {"name": f"{label}: {event['args']['name']}"}
            events.append(ev)
        other[f"point{idx}"] = trace.get("otherData", {})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


class _ThreadReporter:
    """Duck-typed ProgressReporter forwarding pool progress to the loop.

    ``run_points`` calls ``update``/``finish`` from a worker thread;
    events are marshalled onto the event loop thread-safely.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, publish) -> None:
        self._loop = loop
        self._publish = publish
        self._done = 0

    def update(self, cached: bool = False, elapsed: float | None = None,
               failed: bool = False) -> None:
        self._done += 1
        self._loop.call_soon_threadsafe(
            self._publish, {"cached": cached, "failed": failed,
                            "elapsed_ms": round((elapsed or 0.0) * 1e3)}
        )

    def finish(self) -> None:
        pass


class JobManager:
    """Priority-ordered campaign execution with streaming telemetry."""

    def __init__(
        self,
        *,
        cache_dir: str | Path = DEFAULT_CACHE_DIR,
        jobs_dir: str | Path = "service_jobs",
        workers: int = 1,
        farm_hosts: str | None = None,
        sample_every: int = 200,
        trace_level: str = "message",
        broker=None,
        poll_interval: float = 0.02,
    ) -> None:
        from repro.service.sse import EventBroker

        self.cache = ResultCache(cache_dir)
        self.jobs_dir = Path(jobs_dir)
        self.workers = workers
        self.farm_hosts = farm_hosts
        self.sample_every = sample_every
        self.trace_level = trace_level
        self.broker = broker if broker is not None else EventBroker()
        self.poll_interval = poll_interval
        self.jobs: dict[str, Job] = {}
        self._heap: list[tuple[int, int, str]] = []
        self._seq = 0
        self._wake = asyncio.Event()
        self._stopping = False
        self._task: asyncio.Task | None = None
        self.current: Job | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Load persisted state and start the dispatch loop."""
        self._load_records()
        self._load_queue()
        self._task = asyncio.ensure_future(self._loop())

    async def shutdown(self, drain: bool = True) -> None:
        """Stop dispatching; with ``drain`` finish the running job first.

        Queued-but-unstarted jobs are persisted (and marked cancelled in
        memory) so a restarted manager resumes them idempotently.
        """
        self._stopping = True
        self._wake.set()
        if self._task is not None:
            if drain:
                await self._task
            else:
                self._task.cancel()
                try:
                    await self._task
                except asyncio.CancelledError:
                    pass
            self._task = None
        self._persist_queue()
        for job in self.jobs.values():
            if job.state == QUEUED:
                job.state = CANCELLED
                job.error = "service shut down before execution"
                self._publish_status(job)
                self.broker.close_topic(job.id)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, spec: CampaignSpec, priority: int = 0,
               scenario: str | None = None) -> tuple[Job, bool]:
        """Queue a campaign; returns ``(job, created)``.

        Identical campaigns collapse onto the existing job (``created``
        False) unless that job failed or was cancelled, in which case it
        is re-queued fresh.  A resubmission with a higher priority
        promotes a still-queued job.
        """
        jid = job_id_for(spec)
        existing = self.jobs.get(jid)
        if existing is not None and existing.state not in (FAILED, CANCELLED):
            if existing.state == QUEUED and priority > existing.priority:
                existing.priority = priority
                self._push(existing)
            return existing, False

        resolution = resolve_points(
            spec.configs, spec.warmup, spec.measure, self.cache,
            keys=spec.point_keys(),
        )
        self._seq += 1
        missing_set = set(resolution.missing)
        job = Job(
            id=jid, spec=spec, priority=priority, scenario=scenario,
            seq=self._seq, created=time.time(),
            cached_points=[
                i for i in range(resolution.total) if i not in missing_set
            ],
            results=resolution.results,
            keys=resolution.keys,
        )
        self.jobs[jid] = job
        if not resolution.missing:
            # Fully deduplicated: the cache already holds every point.
            job.state = DONE
            job.started = job.finished = job.created
            self._publish_status(job)
            self._publish(job, "done", job.to_dict())
            self._persist_record(job)
            self.broker.close_topic(job.id)
        else:
            self._push(job)
            self._publish_status(job)
            self._persist_queue()
            self._wake.set()
        return job, True

    def submit_scenario(self, name: str, priority: int = 0,
                        scale: str = "smoke", *, seed: int | None = None,
                        warmup: int | None = None,
                        measure: int | None = None) -> tuple[Job, bool]:
        """Build a named scenario's campaign and submit it."""
        from repro.service.scenarios import build_campaign

        spec = build_campaign(
            name, scale, seed=seed, warmup=warmup, measure=measure
        )
        return self.submit(spec, priority=priority, scenario=name)

    def list_jobs(self) -> list[Job]:
        return sorted(self.jobs.values(), key=lambda j: j.seq)

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def _push(self, job: Job) -> None:
        heapq.heappush(self._heap, (-job.priority, job.seq, job.id))

    def _pop_next(self) -> Job | None:
        while self._heap:
            _, _, jid = heapq.heappop(self._heap)
            job = self.jobs.get(jid)
            # Stale heap entries (re-prioritized or already run) skip.
            if job is not None and job.state == QUEUED:
                return job
        return None

    async def _loop(self) -> None:
        while not self._stopping:
            job = self._pop_next()
            if job is None:
                self._wake.clear()
                if self._stopping:
                    break
                await self._wake.wait()
                continue
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        self.current = job
        job.state = RUNNING
        job.started = time.time()
        self._publish_status(job)
        self._persist_queue()
        try:
            await self._execute(job)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.state = FAILED
            job.error = f"{type(exc).__name__}: {exc}"
        else:
            job.state = DONE
        finally:
            job.finished = time.time()
            self.current = None
        self._publish_status(job)
        self._publish(job, "done", job.to_dict())
        self._persist_record(job)
        self._persist_queue()
        self.broker.close_topic(job.id)

    # ------------------------------------------------------------------
    # Execution backends
    # ------------------------------------------------------------------
    async def _execute(self, job: Job) -> None:
        missing = [i for i, r in enumerate(job.results) if r is None]
        if not missing:
            return
        if self.farm_hosts is not None:
            await self._execute_farm(job, missing)
        elif self.workers > 1:
            await self._execute_pool(job, missing)
        else:
            await self._execute_traced(job, missing)

    async def _execute_traced(self, job: Job, missing: list[int]) -> None:
        """Default path: one point at a time, in a thread, with a tracer.

        Telemetry hooks are non-perturbing (the PR-4 guarantee, pinned
        by the backend-equivalence suite), so the traced result is
        bit-identical to ``run_point``; the tracer buys live
        time-series samples on the job's SSE stream and the per-job
        Perfetto trace.
        """
        loop = asyncio.get_event_loop()
        point_traces: list[tuple[int, SimConfig, dict[str, Any]]] = []
        for idx in missing:
            config = job.spec.configs[idx]
            tracer: Tracer | None = Tracer(
                level=self.trace_level, sample_every=self.sample_every,
                capacity=TRACE_CAPACITY,
            )
            start = time.monotonic()
            future = loop.run_in_executor(
                None, self._traced_point, config, job.spec.warmup,
                job.spec.measure, tracer,
            )
            cursor = 0
            while True:
                try:
                    result, tracer = await asyncio.wait_for(
                        asyncio.shield(future), timeout=self.poll_interval
                    )
                    break
                except asyncio.TimeoutError:
                    cursor = self._publish_samples(job, idx, tracer, cursor)
            self._publish_samples(job, idx, tracer, cursor)
            self.cache.put(
                job.keys[idx], config, job.spec.warmup, job.spec.measure,
                result,
            )
            job.results[idx] = result
            job.computed += 1
            self._publish_progress(job, idx, config, cached=False,
                                   elapsed=time.monotonic() - start)
            if tracer is not None:
                point_traces.append((idx, config, to_perfetto(tracer)))
        if point_traces:
            self._write_trace(job, point_traces)

    @staticmethod
    def _traced_point(config: SimConfig, warmup: int, measure: int,
                      tracer: Tracer | None):
        """Worker-thread body: run one point, tracer attached if allowed."""
        from repro.sim.engine import build_engine

        engine = build_engine(config)
        if tracer is not None:
            try:
                engine.attach_tracer(tracer)
            except UnsupportedFeatureError:
                # e.g. the vector backend refuses tracing; the point
                # still runs (progress streams, no samples/trace).
                tracer = None
        window = engine.run_measured(warmup, measure)
        return summarize_window(config, engine, window), tracer

    def _publish_samples(self, job: Job, idx: int, tracer: Tracer | None,
                         cursor: int) -> int:
        if tracer is None:
            return cursor
        samples = tracer.samples
        for sample in samples[cursor:]:
            occ = sample.get("ni_occupancy", ())
            payload = {
                "point": idx,
                "cycle": sample["cycle"],
                "channel_utilization": sample["channel_utilization"],
                "flit_occupancy": sample["flit_occupancy"],
                "live_messages": sample["live_messages"],
                "blocked_frontiers": sample["blocked_frontiers"],
                "ni_occupied": sum(o for o, _, _ in occ),
            }
            if "token_pos" in sample:
                payload["token_pos"] = sample["token_pos"]
            self._publish(job, "sample", payload)
        return len(samples)

    async def _execute_pool(self, job: Job, missing: list[int]) -> None:
        """Parallel pool path: ``run_points`` across worker processes."""
        from repro.sim.parallel import run_points

        loop = asyncio.get_event_loop()
        reporter = _ThreadReporter(
            loop, lambda info: self._pool_progress(job, info)
        )
        configs = [job.spec.configs[i] for i in missing]
        results = await loop.run_in_executor(
            None,
            lambda: run_points(
                configs, job.spec.warmup, job.spec.measure,
                workers=self.workers, cache=self.cache, reporter=reporter,
            ),
        )
        for idx, result in zip(missing, results):
            job.results[idx] = result
        job.computed += len(missing)

    def _pool_progress(self, job: Job, info: dict[str, Any]) -> None:
        self._publish(job, "progress", {
            "total": job.total, "cached": len(job.cached_points), **info,
        })

    async def _execute_farm(self, job: Job, missing: list[int]) -> None:
        """Distributed path: points fan across the farm's hosts."""
        from repro.farm import farm_run_points, parse_hosts

        workers = parse_hosts(self.farm_hosts)
        configs = [job.spec.configs[i] for i in missing]
        loop = asyncio.get_event_loop()
        results = await loop.run_in_executor(
            None,
            lambda: farm_run_points(
                configs, job.spec.warmup, job.spec.measure, workers,
                cache=self.cache, name=job.spec.name,
            ),
        )
        for idx, result in zip(missing, results):
            job.results[idx] = result
            job.computed += 1
            self._publish_progress(job, idx, job.spec.configs[idx],
                                   cached=False, elapsed=0.0)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _publish(self, job: Job, event: str, data: dict[str, Any]) -> None:
        self.broker.publish(job.id, event, data)

    def _publish_status(self, job: Job) -> None:
        self._publish(job, "status", job.to_dict())

    def _publish_progress(self, job: Job, idx: int, config: SimConfig,
                          cached: bool, elapsed: float) -> None:
        self._publish(job, "progress", {
            "point": idx,
            "done": job.done_points,
            "total": job.total,
            "cached": cached,
            "load": config.load,
            "scheme": config.scheme,
            "pattern": config.pattern,
            "elapsed_ms": round(elapsed * 1e3),
        })

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _queue_path(self) -> Path:
        return self.jobs_dir / QUEUE_FILENAME

    def _record_path(self, jid: str) -> Path:
        return self.jobs_dir / f"job-{jid}.json"

    def trace_file(self, jid: str) -> Path:
        return self.jobs_dir / f"job-{jid}.trace.json"

    def _write_trace(self, job: Job,
                     point_traces: list[tuple[int, SimConfig, dict]]) -> None:
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        path = self.trace_file(job.id)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(_merge_point_traces(point_traces),
                       separators=(",", ":")),
            "utf-8",
        )
        tmp.replace(path)
        job.trace_path = str(path)

    def _persist_queue(self) -> None:
        """Snapshot queued + running submissions for restart resume."""
        entries = [
            {"spec": job.spec.to_dict(), "priority": job.priority,
             "scenario": job.scenario}
            for job in self.list_jobs() if job.state in (QUEUED, RUNNING)
        ]
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        path = self._queue_path()
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps({"queued": entries}, indent=1), "utf-8")
        tmp.replace(path)

    def _load_queue(self) -> None:
        try:
            payload = json.loads(self._queue_path().read_text("utf-8"))
        except (OSError, ValueError):
            return
        for entry in payload.get("queued", ()):
            try:
                spec = CampaignSpec.from_dict(entry["spec"])
            except (KeyError, TypeError, ValueError):
                continue
            self.submit(spec, priority=int(entry.get("priority", 0)),
                        scenario=entry.get("scenario"))

    def _persist_record(self, job: Job) -> None:
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        path = self._record_path(job.id)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(job.to_dict(with_results=True), indent=1),
                       "utf-8")
        tmp.replace(path)

    def _load_records(self) -> None:
        """Rehydrate terminal job records written by earlier runs."""
        for path in sorted(self.jobs_dir.glob("job-*.json")):
            try:
                payload = json.loads(path.read_text("utf-8"))
                spec = CampaignSpec.from_dict(payload["spec"])
                results = [
                    RunResult(**r) if r is not None else None
                    for r in payload.get("results", ())
                ]
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if payload.get("state") not in _TERMINAL:
                continue
            self._seq += 1
            job = Job(
                id=payload["id"], spec=spec,
                priority=int(payload.get("priority", 0)),
                scenario=payload.get("scenario"),
                state=payload["state"], seq=self._seq,
                cached_points=list(payload.get("cached_points", ())),
                computed=int(payload.get("computed", 0)),
                error=payload.get("error"),
                created=payload.get("created", 0.0),
                started=payload.get("started"),
                finished=payload.get("finished"),
                results=results,
                trace_path=payload.get("trace"),
            )
            self.jobs[job.id] = job
