"""Named scenario/workload library for the campaign service.

A *scenario* is a named recipe that expands to a
:class:`~repro.farm.plan.CampaignSpec` — the same campaign object the
farm plans and the job manager executes — at a chosen scale.  The split
follows the FireSim manager's shape (SNIPPETS.md): *runtime* knobs
(scale, seed, warmup/measure overrides, priority, execution backend)
arrive with the submission, while the *workload definition* (patterns,
schemes, topologies, fault storms) lives here under a stable name, so
the API, the CLI and experiments all address the same library.

Categories
----------
synthetic
    The paper's Table 2/3 synthetic load patterns, as Burton-curve
    ladders per scheme.
splash
    The Table-3 application mixes (the PAT distributions are the
    paper's Splash-2-derived traffic characterization).
adversarial
    Worst-case traffic: deep reply chains at saturating load with
    minimal buffering — the regime where deadlock handling dominates.
faults
    Fault storms layered on healthy traffic (stacked injector specs).
cdg
    The CDG registry pairs of :mod:`repro.experiments.cdg_lab`,
    realized as simulator cells (Mendlovic & Matias's arbitrary-network
    framing as first-class named scenarios).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, replace

from repro.config import SimConfig
from repro.experiments.common import SCALES, Scale, load_grid
from repro.farm.plan import CampaignSpec
from repro.faults.models import FaultSpec
from repro.util.errors import ConfigurationError

#: loads used by the fixed-ladder scenarios (scaled by sweep_points).
_LADDER_MAX = 0.016


@dataclass(frozen=True)
class Scenario:
    """One named workload definition."""

    name: str
    category: str
    description: str
    build: Callable[[Scale], tuple[SimConfig, ...]]

    def describe(self) -> dict:
        """JSON-able listing entry (point count at smoke scale)."""
        return {
            "name": self.name,
            "category": self.category,
            "description": self.description,
            "smoke_points": len(self.build(SCALES["smoke"])),
        }


def _ladder(config: SimConfig, scale: Scale,
            max_load: float = _LADDER_MAX) -> tuple[SimConfig, ...]:
    return tuple(
        config.with_(load=load) for load in load_grid(scale, max_load)
    )


def _baseline_pr(scale: Scale) -> tuple[SimConfig, ...]:
    return _ladder(
        SimConfig(dims=(4, 4), scheme="PR", pattern="PAT271", num_vcs=4),
        scale,
    )


def _scheme_ladder(scale: Scale) -> tuple[SimConfig, ...]:
    """The paper's SA/DR/PR comparison, one short ladder per scheme."""
    cells = (
        SimConfig(dims=(4, 4), scheme="SA", pattern="PAT721", num_vcs=8),
        SimConfig(dims=(4, 4), scheme="DR", pattern="PAT271", num_vcs=4,
                  max_outstanding=12),
        SimConfig(dims=(4, 4), scheme="PR", pattern="PAT271", num_vcs=4),
    )
    loads = load_grid(scale, _LADDER_MAX)[:3]
    return tuple(c.with_(load=load) for c in cells for load in loads)


def _splash_mix(scale: Scale) -> tuple[SimConfig, ...]:
    """Table-3 application mixes: every PAT distribution, two loads."""
    patterns = ("PAT100", "PAT721", "PAT451", "PAT271", "PAT280")
    loads = (0.006, 0.012)
    return tuple(
        SimConfig(dims=(4, 4), scheme="PR", pattern=pattern, num_vcs=4,
                  load=load)
        for pattern in patterns for load in loads
    )


def _adversarial_worstcase(scale: Scale) -> tuple[SimConfig, ...]:
    """Deep chains past saturation with minimal buffering.

    The NONE cell is the exhibit: detection without recovery, so
    unresolved deadlocks accumulate in the result row.  DR and PR run
    the same traffic and must keep delivering.
    """
    base = SimConfig(
        dims=(4, 4), pattern="PAT271", num_vcs=4,
        queue_capacity=8, flit_buffer_depth=1,
    )
    return tuple(
        base.with_(scheme=scheme, load=load)
        for scheme in ("NONE", "DR", "PR")
        for load in (0.02, 0.03)
    )


def _fault_storm(scale: Scale) -> tuple[SimConfig, ...]:
    """Stacked injector faults over healthy PR traffic, two seeds."""
    storms = (
        (
            FaultSpec("consumer-stall", target=5, start=300, duration=900),
            FaultSpec("token-loss", start=450),
        ),
        (
            FaultSpec("link-stall", target=3, start=300, duration=900),
            FaultSpec("eject-stall", target=5, start=600, duration=600),
        ),
    )
    return tuple(
        SimConfig(dims=(4, 4), scheme="PR", pattern="PAT271", num_vcs=4,
                  load=0.012, seed=seed, faults=faults)
        for faults in storms for seed in (1, 2)
    )


def _fat_tree(scale: Scale) -> tuple[SimConfig, ...]:
    """Uniform traffic on the fat-tree substrate (PR and SA cells)."""
    cells = (
        SimConfig(topology="fat_tree", dims=(2, 4), scheme="PR",
                  pattern="PAT271", num_vcs=4),
        SimConfig(topology="fat_tree", dims=(2, 4), scheme="SA",
                  pattern="PAT721", num_vcs=8),
    )
    loads = load_grid(scale, 0.012)[:3]
    return tuple(c.with_(load=load) for c in cells for load in loads)


def _cdg_cell(config: SimConfig) -> Callable[[Scale], tuple[SimConfig, ...]]:
    return lambda scale: (config,)


def _builtin_scenarios() -> Iterable[Scenario]:
    yield Scenario(
        "baseline-pr", "synthetic",
        "PR/PAT271/4vc Burton ladder on the 4x4 torus", _baseline_pr,
    )
    yield Scenario(
        "scheme-ladder", "synthetic",
        "SA vs DR vs PR, each in its paper-representative cell",
        _scheme_ladder,
    )
    yield Scenario(
        "splash-mix", "splash",
        "every Table-3 application mix (PAT100..PAT280) at two loads",
        _splash_mix,
    )
    yield Scenario(
        "adversarial-worstcase", "adversarial",
        "deep reply chains past saturation with minimal buffering"
        " (NONE exhibit + DR/PR under the same traffic)",
        _adversarial_worstcase,
    )
    yield Scenario(
        "fault-storm", "faults",
        "stacked consumer/link/eject stalls and token loss over PR",
        _fault_storm,
    )
    yield Scenario(
        "fat-tree", "synthetic",
        "uniform traffic on the fat_tree substrate (PR + SA)", _fat_tree,
    )
    # The CDG registry pairs realized as simulator cells — imported from
    # the lab so the service and the cdg_lab experiment can never drift.
    from repro.experiments.cdg_lab import _CERTIFIED_CELLS, _REFUTED_CELLS

    for pair_name, config in _REFUTED_CELLS:
        yield Scenario(
            f"cdg-{pair_name}", "cdg",
            f"registry pair {pair_name} (statically REFUTED; the"
            " simulator must deadlock and recover)",
            _cdg_cell(config),
        )
    for pair_name, config in _CERTIFIED_CELLS:
        yield Scenario(
            f"cdg-{pair_name}", "cdg",
            f"registry pair {pair_name} (statically CERTIFIED; SA over"
            " the certified escape routing)",
            _cdg_cell(config),
        )


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario for scenario in _builtin_scenarios()
}


def scenario_names() -> list[str]:
    return list(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {', '.join(SCENARIOS)}"
        )
    return scenario


def describe_scenarios() -> list[dict]:
    """The JSON listing served by ``GET /api/scenarios``."""
    return [scenario.describe() for scenario in SCENARIOS.values()]


def build_campaign(
    name: str,
    scale: str | Scale = "smoke",
    *,
    seed: int | None = None,
    warmup: int | None = None,
    measure: int | None = None,
) -> CampaignSpec:
    """Expand a scenario into the campaign the job manager executes.

    ``scale`` is a named scale ("smoke"/"paper") or a custom
    :class:`Scale`.  ``seed``/``warmup``/``measure`` are runtime
    overrides: the seed replaces every point's, the window replaces the
    scale's.  The same arguments produce the same campaign — and
    therefore, via :func:`repro.service.jobs.job_id_for`, the same job.
    """
    if isinstance(scale, str):
        if scale not in SCALES:
            raise ConfigurationError(
                f"unknown scale {scale!r}; known: {', '.join(SCALES)}"
            )
        scale = SCALES[scale]
    scenario = get_scenario(name)
    configs = scenario.build(scale)
    if seed is not None:
        configs = tuple(replace(c, seed=seed) for c in configs)
    return CampaignSpec(
        configs=configs,
        warmup=scale.warmup if warmup is None else warmup,
        measure=scale.measure if measure is None else measure,
        name=f"{name}@{scale.name}",
    )
