"""Campaign service: async job API, scenario library, streaming telemetry.

A long-running asyncio front-end over the simulator's existing
execution substrate.  Campaigns are submitted (by scenario name or raw
spec) with priorities, deduplicated against ``.repro_cache`` *before*
scheduling, executed through the in-process traced path / parallel pool
/ distributed farm, and observed live over Server-Sent Events — job
progress plus :class:`~repro.telemetry.MetricsSampler` time series —
with a merged Perfetto trace downloadable per job.

Everything is stdlib: :mod:`asyncio` sockets on the server,
:mod:`http.client` in the client, shared SSE framing in between.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.http import CampaignServer, run_service
from repro.service.jobs import Job, JobManager, job_id_for
from repro.service.scenarios import (
    SCENARIOS,
    Scenario,
    build_campaign,
    describe_scenarios,
    get_scenario,
    scenario_names,
)
from repro.service.sse import EventBroker, Subscription, format_sse, parse_sse

__all__ = [
    "CampaignServer",
    "run_service",
    "ServiceClient",
    "ServiceError",
    "Job",
    "JobManager",
    "job_id_for",
    "Scenario",
    "SCENARIOS",
    "build_campaign",
    "describe_scenarios",
    "get_scenario",
    "scenario_names",
    "EventBroker",
    "Subscription",
    "format_sse",
    "parse_sse",
]
