"""Minimal asyncio HTTP/1.1 front-end for the campaign service.

Implemented directly on :func:`asyncio.start_server` — no
``http.server``, no third-party framework — because the API surface is
small and the one non-trivial transport concern (SSE streams with
per-client backpressure) needs direct control of the writer anyway.
Every response closes the connection (``Connection: close``), which
keeps the parser one-shot and is exactly what SSE clients expect at
end-of-stream.

Routes
------
``GET  /api/health``            liveness + queue summary
``GET  /api/scenarios``         the scenario library listing
``POST /api/jobs``              submit (``scenario`` name or raw ``spec``)
``GET  /api/jobs``              all jobs, submission order
``GET  /api/jobs/<id>``         one job (``?results=1`` embeds results)
``GET  /api/jobs/<id>/events``  SSE: status / progress / sample / done
``GET  /api/jobs/<id>/trace``   merged Perfetto trace for the job
``POST /api/shutdown``          graceful drain + exit
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.service.jobs import _TERMINAL, JobManager
from repro.service.scenarios import describe_scenarios
from repro.service.sse import format_sse
from repro.util.errors import ConfigurationError

#: request line + headers are bounded; bodies via Content-Length only.
MAX_HEADER_BYTES = 32_768
MAX_BODY_BYTES = 8_000_000


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


def _response(status: int, body: bytes,
              content_type: str = "application/json") -> bytes:
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload: Any) -> bytes:
    return _response(status, json.dumps(payload, default=str).encode("utf-8"))


class CampaignServer:
    """The service process: one :class:`JobManager` behind an HTTP API."""

    def __init__(self, manager: JobManager, host: str = "127.0.0.1",
                 port: int = 8321) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self._shutdown_requested = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until ``POST /api/shutdown`` (or cancellation) drains us."""
        await self._shutdown_requested.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.shutdown(drain=True)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as err:
                writer.write(_json_response(
                    err.status, {"error": err.message}
                ))
                return
            try:
                await self._dispatch(method, path, body, writer)
            except _HttpError as err:
                writer.write(_json_response(
                    err.status, {"error": err.message}
                ))
            except ConfigurationError as err:
                writer.write(_json_response(400, {"error": str(err)}))
            except Exception as err:  # noqa: BLE001 - connection boundary
                writer.write(_json_response(
                    500, {"error": f"{type(err).__name__}: {err}"}
                ))
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(413, "headers too large") from exc
        except (asyncio.IncompleteReadError, ConnectionError) as exc:
            raise _HttpError(400, "truncated request") from exc
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(413, "headers too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError as exc:
                    raise _HttpError(400, "bad Content-Length") from exc
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "body too large")
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _dispatch(self, method: str, target: str, body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        path, _, query = target.partition("?")
        params = dict(
            pair.partition("=")[::2] for pair in query.split("&") if pair
        )
        if path == "/api/health" and method == "GET":
            writer.write(_json_response(200, self._health()))
        elif path == "/api/scenarios" and method == "GET":
            writer.write(_json_response(
                200, {"scenarios": describe_scenarios()}
            ))
        elif path == "/api/jobs" and method == "POST":
            self._submit(body, writer)
        elif path == "/api/jobs" and method == "GET":
            writer.write(_json_response(200, {
                "jobs": [j.to_dict() for j in self.manager.list_jobs()]
            }))
        elif path == "/api/shutdown" and method == "POST":
            writer.write(_json_response(200, {"draining": True}))
            self._shutdown_requested.set()
        elif path.startswith("/api/jobs/"):
            await self._job_route(method, path, params, writer)
        else:
            raise _HttpError(404, f"no route for {method} {path}")

    def _health(self) -> dict[str, Any]:
        jobs = self.manager.list_jobs()
        return {
            "ok": True,
            "jobs": len(jobs),
            "queued": sum(1 for j in jobs if j.state == "queued"),
            "running": self.manager.current.id
            if self.manager.current else None,
        }

    def _submit(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body or b"{}")
        except ValueError as exc:
            raise _HttpError(400, "body is not valid JSON") from exc
        priority = int(payload.get("priority", 0))
        if "scenario" in payload:
            job, created = self.manager.submit_scenario(
                payload["scenario"], priority=priority,
                scale=payload.get("scale", "smoke"),
                seed=payload.get("seed"),
                warmup=payload.get("warmup"),
                measure=payload.get("measure"),
            )
        elif "spec" in payload:
            from repro.farm.plan import CampaignSpec

            job, created = self.manager.submit(
                CampaignSpec.from_dict(payload["spec"]), priority=priority
            )
        else:
            raise _HttpError(400, "submit needs 'scenario' or 'spec'")
        writer.write(_json_response(
            201 if created else 200,
            {"job": job.to_dict(), "created": created},
        ))

    async def _job_route(self, method: str, path: str,
                         params: dict[str, str],
                         writer: asyncio.StreamWriter) -> None:
        rest = path[len("/api/jobs/"):]
        jid, _, action = rest.partition("/")
        job = self.manager.jobs.get(jid)
        if job is None:
            raise _HttpError(404, f"unknown job {jid!r}")
        if method != "GET":
            raise _HttpError(405, f"{method} not allowed here")
        if not action:
            writer.write(_json_response(
                200, job.to_dict(with_results=params.get("results") == "1")
            ))
        elif action == "events":
            await self._stream_events(jid, writer)
        elif action == "trace":
            self._send_trace(job, writer)
        else:
            raise _HttpError(404, f"unknown job action {action!r}")

    def _send_trace(self, job, writer: asyncio.StreamWriter) -> None:
        path = self.manager.trace_file(job.id)
        if job.trace_path is None or not path.exists():
            raise _HttpError(
                404,
                "no trace for this job (cached/pool/farm jobs run"
                " untraced)",
            )
        writer.write(_response(200, path.read_bytes()))

    async def _stream_events(self, jid: str,
                             writer: asyncio.StreamWriter) -> None:
        """SSE stream for one job; replays history, then live events.

        ``writer.drain()`` honours the client's TCP receive window, so a
        slow consumer backs pressure into its *own* bounded subscription
        queue (drop-oldest + ``dropped`` gap marker, see
        :mod:`repro.service.sse`) and never stalls the job manager.
        """
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        sub = self.manager.broker.subscribe(jid)
        job = self.manager.jobs.get(jid)
        if job is not None and job.state in _TERMINAL:
            # Finished job: replay the recorded history, then end the
            # stream instead of waiting for events that will never come.
            sub.closed = True
        try:
            async for event_id, event, data in sub:
                writer.write(format_sse(
                    event, data, event_id if event_id >= 0 else None
                ))
                await writer.drain()
        except StopAsyncIteration:
            pass
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            sub.close()


async def run_service(
    *,
    host: str = "127.0.0.1",
    port: int = 8321,
    cache_dir: str = ".repro_cache",
    jobs_dir: str = "service_jobs",
    workers: int = 1,
    farm_hosts: str | None = None,
    sample_every: int = 200,
    announce=None,
) -> None:
    """Build, start and run a campaign service until shutdown."""
    manager = JobManager(
        cache_dir=cache_dir, jobs_dir=jobs_dir, workers=workers,
        farm_hosts=farm_hosts, sample_every=sample_every,
    )
    server = CampaignServer(manager, host=host, port=port)
    await server.start()
    if announce is not None:
        announce(server)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        await server.stop()
        raise
