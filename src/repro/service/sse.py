"""Server-Sent Events framing and a bounded fan-out broker.

SSE is the streaming transport of the campaign service: stdlib-only,
proxy-friendly, and trivially parseable.  :func:`format_sse` /
:func:`parse_sse` implement the wire framing (including multi-line
data splitting) symmetrically, so the client, the server and the tests
share one implementation.

:class:`EventBroker` fans job events out to any number of subscribers
with *bounded* per-subscriber queues: a slow client never blocks the
job manager or other subscribers.  On overflow the oldest queued event
is dropped and the subscriber's next delivered event carries a
``dropped`` marker, so a lagging consumer knows its view has gaps
instead of silently seeing a truncated history.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from typing import Any

#: events kept per topic for replay to late subscribers.
DEFAULT_HISTORY = 512
#: per-subscriber queue bound (overflow drops oldest + marks the gap).
DEFAULT_QUEUE_SIZE = 256


def format_sse(event: str, data: Any, event_id: int | None = None) -> bytes:
    """Serialize one event in SSE wire framing.

    ``data`` is JSON-encoded; embedded newlines become multiple
    ``data:`` lines per the SSE spec (clients re-join with "\\n").
    """
    text = data if isinstance(data, str) else json.dumps(data, default=str)
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"event: {event}")
    for chunk in text.split("\n"):
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def parse_sse(lines) -> Any:
    """Parse SSE frames from an iterable of text lines.

    Yields ``(event, data, id)`` tuples; ``data`` is the re-joined data
    payload (still a string — callers JSON-decode where appropriate).
    Comment lines (``:`` prefix) are ignored per spec.
    """
    event, data, event_id = None, [], None
    for raw in lines:
        line = raw.rstrip("\r\n") if isinstance(raw, str) else raw.decode(
            "utf-8"
        ).rstrip("\r\n")
        if not line:
            if data or event is not None:
                yield (event or "message", "\n".join(data), event_id)
            event, data, event_id = None, [], None
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if field == "event":
            event = value
        elif field == "data":
            data.append(value)
        elif field == "id":
            try:
                event_id = int(value)
            except ValueError:
                event_id = None
    if data or event is not None:
        yield (event or "message", "\n".join(data), event_id)


class Subscription:
    """One subscriber's bounded event queue (async-iterable)."""

    def __init__(self, broker: "EventBroker", topic: str,
                 queue_size: int) -> None:
        self._broker = broker
        self.topic = topic
        self._queue: deque[tuple[int, str, Any]] = deque()
        self._queue_size = queue_size
        self._wake = asyncio.Event()
        #: events discarded because this subscriber lagged.
        self.dropped = 0
        self._pending_gap = 0
        self.closed = False

    def _offer(self, item: tuple[int, str, Any]) -> None:
        if len(self._queue) >= self._queue_size:
            self._queue.popleft()
            self.dropped += 1
            self._pending_gap += 1
        self._queue.append(item)
        self._wake.set()

    async def get(self) -> tuple[int, str, Any]:
        """Next ``(id, event, data)``; a lag gap is delivered first."""
        while not self._queue:
            if self.closed:
                raise StopAsyncIteration
            self._wake.clear()
            await self._wake.wait()
        if self._pending_gap:
            gap, self._pending_gap = self._pending_gap, 0
            return (-1, "dropped", {"dropped": gap, "total": self.dropped})
        return self._queue.popleft()

    def __aiter__(self) -> "Subscription":
        return self

    async def __anext__(self) -> tuple[int, str, Any]:
        try:
            return await self.get()
        except StopAsyncIteration:
            raise

    def close(self) -> None:
        self.closed = True
        self._wake.set()
        self._broker._detach(self)


class EventBroker:
    """Per-topic pub/sub with replay history and bounded subscribers."""

    def __init__(self, history: int = DEFAULT_HISTORY,
                 queue_size: int = DEFAULT_QUEUE_SIZE) -> None:
        self._history: dict[str, deque[tuple[int, str, Any]]] = {}
        self._subs: dict[str, list[Subscription]] = {}
        self._next_id = 0
        self.history_size = history
        self.queue_size = queue_size

    def publish(self, topic: str, event: str, data: Any) -> int:
        """Record and fan out one event; returns its id."""
        self._next_id += 1
        item = (self._next_id, event, data)
        hist = self._history.setdefault(
            topic, deque(maxlen=self.history_size)
        )
        hist.append(item)
        for sub in self._subs.get(topic, []):
            sub._offer(item)
        return self._next_id

    def subscribe(self, topic: str, replay: bool = True,
                  queue_size: int | None = None) -> Subscription:
        """Attach a subscriber; with ``replay`` the history is queued
        first (subject to the same bound, oldest dropped first)."""
        sub = Subscription(
            self, topic,
            queue_size if queue_size is not None else self.queue_size,
        )
        self._subs.setdefault(topic, []).append(sub)
        if replay:
            for item in self._history.get(topic, ()):
                sub._offer(item)
        return sub

    def _detach(self, sub: Subscription) -> None:
        subs = self._subs.get(sub.topic)
        if subs and sub in subs:
            subs.remove(sub)

    def close_topic(self, topic: str) -> None:
        """Wake every subscriber of a finished topic so streams end."""
        for sub in list(self._subs.get(topic, [])):
            sub.closed = True
            sub._wake.set()
