"""Blocking stdlib client for the campaign service API.

Built on :mod:`http.client` so the CLI (``repro submit`` / ``repro
jobs``), experiments and tests all talk to the service without any new
dependency.  SSE streams are decoded with the same
:func:`~repro.service.sse.parse_sse` the server-side tests use.
"""

from __future__ import annotations

import http.client
import json
from collections.abc import Iterator
from typing import Any

from repro.service.sse import parse_sse
from repro.util.errors import SimulationError


class ServiceError(SimulationError):
    """The service answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"service returned {status}: {message}")
        self.status = status


class ServiceClient:
    """One campaign service endpoint, addressed as host:port."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8321,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Plain JSON endpoints
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Any | None = None) -> Any:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            decoded = json.loads(data) if data else {}
            if response.status >= 400:
                raise ServiceError(
                    response.status,
                    decoded.get("error", data.decode("utf-8", "replace")),
                )
            return decoded
        finally:
            conn.close()

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/api/health")

    def scenarios(self) -> list[dict[str, Any]]:
        return self._request("GET", "/api/scenarios")["scenarios"]

    def submit(self, scenario: str | None = None, *,
               spec: dict[str, Any] | None = None, priority: int = 0,
               scale: str = "smoke", seed: int | None = None,
               warmup: int | None = None,
               measure: int | None = None) -> dict[str, Any]:
        """Submit a scenario by name (or a raw campaign spec dict).

        Returns ``{"job": {...}, "created": bool}`` — ``created`` False
        means the deterministic job id matched an existing submission.
        """
        payload: dict[str, Any] = {"priority": priority}
        if scenario is not None:
            payload.update(scenario=scenario, scale=scale)
            if seed is not None:
                payload["seed"] = seed
            if warmup is not None:
                payload["warmup"] = warmup
            if measure is not None:
                payload["measure"] = measure
        elif spec is not None:
            payload["spec"] = spec
        else:
            raise ValueError("submit needs a scenario name or a spec")
        return self._request("POST", "/api/jobs", payload)

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/api/jobs")["jobs"]

    def job(self, job_id: str, results: bool = False) -> dict[str, Any]:
        suffix = "?results=1" if results else ""
        return self._request("GET", f"/api/jobs/{job_id}{suffix}")

    def trace(self, job_id: str) -> dict[str, Any]:
        """Download the job's merged Perfetto trace (parsed JSON)."""
        return self._request("GET", f"/api/jobs/{job_id}/trace")

    def shutdown(self) -> dict[str, Any]:
        return self._request("POST", "/api/shutdown")

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def stream_events(self, job_id: str,
                      timeout: float | None = None) -> Iterator[tuple]:
        """Yield ``(event, data, id)`` from the job's SSE stream.

        ``data`` arrives JSON-decoded.  The stream ends when the service
        closes it (job reached a terminal state and its history was
        delivered).
        """
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            conn.request("GET", f"/api/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = json.loads(data).get("error", "")
                except ValueError:
                    message = data.decode("utf-8", "replace")
                raise ServiceError(response.status, message)
            for event, data, event_id in parse_sse(iter(response.readline,
                                                        b"")):
                try:
                    decoded = json.loads(data)
                except ValueError:
                    decoded = data
                yield event, decoded, event_id
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: float = 600.0) -> dict[str, Any]:
        """Follow the job's stream until it finishes; final job dict."""
        final: dict[str, Any] | None = None
        for event, data, _ in self.stream_events(job_id, timeout=timeout):
            if event == "done":
                final = data
            elif event == "status" and isinstance(data, dict) and (
                data.get("state") in ("done", "failed", "cancelled")
            ):
                final = data
        if final is None:
            raise ServiceError(504, f"stream for {job_id} ended mid-run")
        return final
