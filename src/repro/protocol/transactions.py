"""Transaction patterns (Table 3) and transaction construction.

A *transaction pattern* fixes the probability of each dependency-chain
length; sampling a pattern yields a concrete transaction: an ``m1`` from a
requester to a home node whose continuation spells out every subordinate
message.  The five patterns of Table 3 are provided, and the closed-form
message-type distribution implied by a pattern can be computed with
:meth:`TransactionPattern.type_distribution` (this is what regenerates
Table 3; see EXPERIMENTS.md for the PAT721 erratum).

Chain shapes (one sharer per shared block, per the paper):

========  ===========================================================
Length    Messages
========  ===========================================================
2         requester --m1--> home --m4--> requester
3 (MSI)   requester --m1--> home --m2--> third --m4--> requester
3 (O2K)   requester --ORQ--> home --FRQ--> third --TRP--> requester
4 (MSI)   requester --m1--> home --m2--> third --m3--> home
          --m4--> requester
========  ===========================================================
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass

import numpy as np

from repro.protocol.chains import GENERIC_MSI, GENERIC_ORIGIN, Protocol
from repro.protocol.message import Message, MessageSpec, Transaction
from repro.util.errors import ConfigurationError

_txn_uid = itertools.count()


@functools.lru_cache(maxsize=None)
def _length_sampler(
    length_probs: tuple[tuple[int, float], ...],
) -> tuple[np.ndarray, np.ndarray]:
    """Chain lengths and their normalized CDF, computed once per pattern."""
    lengths = np.asarray([length for length, _ in length_probs])
    p = np.asarray([p for _, p in length_probs], dtype=np.float64)
    cdf = p.cumsum()
    cdf /= cdf[-1]
    return lengths, cdf


@dataclass(frozen=True)
class TransactionPattern:
    """A distribution over dependency-chain lengths (one Table 3 row).

    Parameters
    ----------
    name:
        Pattern name, e.g. ``"PAT721"``.
    protocol:
        The protocol whose chains are sampled.
    length_probs:
        Mapping from chain length to probability; must sum to 1.
    """

    name: str
    protocol: Protocol
    length_probs: tuple[tuple[int, float], ...]

    def __post_init__(self) -> None:
        total = sum(p for _, p in self.length_probs)
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"{self.name}: chain-length probabilities sum to {total}, not 1"
            )
        for length, _ in self.length_probs:
            if length < 2 or length > self.protocol.max_chain_length + (
                1 if self.protocol.backoff else 0
            ):
                raise ConfigurationError(
                    f"{self.name}: unsupported chain length {length}"
                )

    # ------------------------------------------------------------------
    # Chain structure
    # ------------------------------------------------------------------
    def chain_type_names(self, length: int) -> list[str]:
        """Ordered type names for a chain of the given length."""
        p = self.protocol
        if p is GENERIC_ORIGIN or p.name == "generic-origin":
            shapes = {2: ["ORQ", "TRP"], 3: ["ORQ", "FRQ", "TRP"]}
        else:
            names = [t.name for t in p.types]
            shapes = {
                2: [names[0], names[3]],
                3: [names[0], names[1], names[3]],
                4: list(names),
            }
        if length not in shapes:
            raise ConfigurationError(
                f"{self.name}: protocol {p.name} has no chain of length {length}"
            )
        return shapes[length]

    @property
    def types_used(self) -> tuple[str, ...]:
        """Type names appearing in any chain with non-zero probability.

        This determines the number of logical networks strict avoidance
        must provide (e.g. PAT100 only ever uses m1 and m4, so SA needs
        just two networks even under the four-type protocol).
        """
        used: list[str] = []
        for length, prob in self.length_probs:
            if prob <= 0.0:
                continue
            for name in self.chain_type_names(length):
                if name not in used:
                    used.append(name)
        order = {t.name: t.index for t in self.protocol.types}
        return tuple(sorted(used, key=lambda n: order[n]))

    @property
    def num_message_types(self) -> int:
        return len(self.types_used)

    @property
    def dr_valid(self) -> bool:
        """Deflective recovery needs >2 types, else it degenerates to SA.

        The paper: "for PAT100, DR is not valid, so no results are given"
        (Section 4.3.2).
        """
        return self.num_message_types > 2

    # ------------------------------------------------------------------
    # Table 3: message-type distribution
    # ------------------------------------------------------------------
    def type_distribution(self) -> dict[str, float]:
        """Closed-form fraction of network messages of each type.

        Each chain of length ``L`` contributes exactly one message of each
        of its ``L`` types; the fraction of type ``t`` is its expected
        count divided by the expected total message count.
        """
        counts: dict[str, float] = {t.name: 0.0 for t in self.protocol.types}
        total = 0.0
        for length, prob in self.length_probs:
            if prob <= 0.0:
                continue
            for name in self.chain_type_names(length):
                counts[name] += prob
            total += prob * length
        return {name: c / total for name, c in counts.items()}

    def mean_chain_length(self) -> float:
        return sum(length * prob for length, prob in self.length_probs)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_chain_length(self, rng: np.random.Generator) -> int:
        # Equivalent to ``rng.choice(lengths, p=probs)`` but with the CDF
        # cached across calls: choice() revalidates and re-normalizes the
        # probability vector on every draw, which dominated traffic
        # generation.  The single uniform draw and the searchsorted lookup
        # mirror choice()'s internals, so the RNG stream and the sampled
        # values are unchanged.
        lengths, cdf = _length_sampler(self.length_probs)
        return int(lengths[cdf.searchsorted(rng.random(), side="right")])

    def build_transaction(
        self,
        requester: int,
        home: int,
        third: int,
        created_cycle: int,
        length: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> Transaction:
        """Create a transaction with a concrete message plan.

        ``third`` is the owner/sharer node used by chains of length >= 3
        (the paper assumes a single sharer per block).  The returned
        transaction's ``root`` is the initial request message, ready for
        enqueueing at the requester.
        """
        if length is None:
            if rng is None:
                raise ConfigurationError("either length or rng must be given")
            length = self.sample_chain_length(rng)
        names = self.chain_type_names(length)
        p = self.protocol
        t = Transaction(
            uid=next(_txn_uid),
            requester=requester,
            home=home,
            chain_length=length,
            created_cycle=created_cycle,
        )

        # Build the continuation inside-out (last message first).
        if length == 2:
            # home -> requester
            cont = (MessageSpec(p.type_named(names[1]), requester),)
        elif length == 3:
            # home -> third -> requester
            last = MessageSpec(p.type_named(names[2]), requester)
            cont = (MessageSpec(p.type_named(names[1]), third, (last,)),)
        elif length == 4:
            # home -> third -> home -> requester
            last = MessageSpec(p.type_named(names[3]), requester)
            back = MessageSpec(p.type_named(names[2]), home, (last,))
            cont = (MessageSpec(p.type_named(names[1]), third, (back,)),)
        else:  # pragma: no cover - guarded in chain_type_names
            raise ConfigurationError(f"unsupported chain length {length}")

        root = Message(
            p.type_named(names[0]),
            src=requester,
            dst=home,
            continuation=cont,
            transaction=t,
            created_cycle=created_cycle,
        )
        t.root = root
        t.outstanding = length  # one live/pending message per chain type
        t.messages_used = length
        return t


def _pattern(name: str, protocol: Protocol, probs: dict[int, float]):
    return TransactionPattern(name, protocol, tuple(sorted(probs.items())))


#: Table 3 patterns.  PAT100 models message-passing / all-home-owned
#: shared memory; PAT721..PAT271 model increasing remote ownership under
#: the MSI-style generic protocol; PAT280 models an Origin2000-like
#: protocol with chains of at most three types.
PAT100 = _pattern("PAT100", GENERIC_MSI, {2: 1.0})
PAT721 = _pattern("PAT721", GENERIC_MSI, {2: 0.7, 3: 0.2, 4: 0.1})
PAT451 = _pattern("PAT451", GENERIC_MSI, {2: 0.4, 3: 0.5, 4: 0.1})
PAT271 = _pattern("PAT271", GENERIC_MSI, {2: 0.2, 3: 0.7, 4: 0.1})
PAT280 = _pattern("PAT280", GENERIC_ORIGIN, {2: 0.2, 3: 0.8})

PATTERNS: dict[str, TransactionPattern] = {
    p.name: p for p in (PAT100, PAT721, PAT451, PAT271, PAT280)
}
