"""Deadlock-detection probes for Chandy-Misra-Haas edge chasing.

A probe is a real (single-flit) message: it carries the identity of the
blocked *initiator site* that started the chase and travels from a
blocked node to the nodes it waits on.  A node that receives a probe
while itself blocked forwards copies along its own wait-for edges; a
probe arriving back at its initiator proves a dependency cycle and the
initiator declares deadlock (Chandy, Misra & Haas 1983, the AND model).

Probes are *control-plane* traffic: they ride a dedicated overlay
(:class:`repro.core.cmh.ProbeNetwork`) rather than the data-plane
virtual channels, because the channels a probe must traverse are
exactly the ones the suspected deadlock has wedged.  This mirrors the
paper's PR token wiring — detection/recovery hardware gets its own
conflict-free resources.  Probes therefore never enter the message-
conservation ledger; their cost is reported separately (probe counts
and hop totals in detector stats and telemetry).
"""

from __future__ import annotations

from repro.protocol.message import Message, MessageType, NetClass

#: the probe message type: one flit, request-class (it chases request
#: dependencies), outside every protocol's chain order.
PROBE_TYPE = MessageType(
    "PROBE", index=-1, net_class=NetClass.REQUEST, flits=1
)


class Probe:
    """One in-flight probe of an edge chase.

    ``initiator``/``in_cls``/``out_cls`` name the blocked detector site
    whose chase this probe belongs to; ``src``/``dst`` are the hop being
    travelled; ``forwards`` counts edges traversed since initiation.
    Each forward creates a fresh :class:`Probe` (probes fan out), so an
    instance is immutable in practice.
    """

    __slots__ = (
        "initiator", "in_cls", "out_cls", "src", "dst",
        "started_cycle", "sent_cycle", "forwards", "message",
    )

    def __init__(
        self,
        initiator: int,
        in_cls: int,
        out_cls: int,
        src: int,
        dst: int,
        started_cycle: int,
        sent_cycle: int,
        forwards: int = 0,
    ) -> None:
        self.initiator = initiator
        self.in_cls = in_cls
        self.out_cls = out_cls
        self.src = src
        self.dst = dst
        self.started_cycle = started_cycle
        self.sent_cycle = sent_cycle
        self.forwards = forwards
        #: the wrapped single-flit message (telemetry labelling).
        self.message = Message(
            PROBE_TYPE, src=src, dst=dst, created_cycle=sent_cycle
        )

    @property
    def site(self) -> tuple[int, int, int]:
        """The initiating site's identity: (node, in_cls, out_cls)."""
        return (self.initiator, self.in_cls, self.out_cls)

    def forwarded(self, src: int, dst: int, now: int) -> "Probe":
        """A fresh probe continuing this chase over edge ``src -> dst``."""
        return Probe(
            self.initiator, self.in_cls, self.out_cls,
            src=src, dst=dst,
            started_cycle=self.started_cycle, sent_cycle=now,
            forwards=self.forwards + 1,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Probe(init={self.initiator} {self.src}->{self.dst}"
            f" fwd={self.forwards})"
        )
