"""Protocol layer: message types, dependency chains, transactions, coherence."""

from repro.protocol.chains import (
    GENERIC_MSI,
    GENERIC_ORIGIN,
    MSI_COHERENCE,
    PROTOCOLS,
    Protocol,
)
from repro.protocol.message import (
    Message,
    MessageSpec,
    MessageType,
    NetClass,
    Transaction,
    count_messages,
)
from repro.protocol.probe import PROBE_TYPE, Probe
from repro.protocol.transactions import (
    PAT100,
    PAT271,
    PAT280,
    PAT451,
    PAT721,
    PATTERNS,
    TransactionPattern,
)

__all__ = [
    "Message",
    "MessageSpec",
    "MessageType",
    "NetClass",
    "Transaction",
    "count_messages",
    "Probe",
    "PROBE_TYPE",
    "Protocol",
    "GENERIC_MSI",
    "GENERIC_ORIGIN",
    "MSI_COHERENCE",
    "PROTOCOLS",
    "TransactionPattern",
    "PATTERNS",
    "PAT100",
    "PAT721",
    "PAT451",
    "PAT271",
    "PAT280",
]
