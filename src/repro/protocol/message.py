"""Message types, the subordination relation, and the message unit.

The paper defines a *message dependency* as a coupling at a network
endpoint between two message types: ``m1 < m2`` ("m2 is subordinate to
m1") iff receiving an ``m1`` can cause the node to generate an ``m2`` for
some data transaction (Section 1).  The final type of a chain is the
*terminating* type; the number of types along a chain is the *chain
length*.

A :class:`Message` here corresponds to both the protocol-level message and
the network-level packet: the paper treats the two interchangeably for
deadlock purposes (footnote 1).  Each message carries its *continuation* —
the concrete subordinate messages its consumption must generate — so the
memory controller, the deflective backoff rewrite, and the progressive
rescue all operate on the same self-describing structure.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class NetClass(enum.IntEnum):
    """Coarse request/reply role of a message type.

    Used (a) by deflective recovery (DR) to map types onto its two logical
    networks, and (b) to pick default message lengths (requests are short
    headers, replies carry a cache line: 4 vs 20 flits in Table 2).
    """

    REQUEST = 0
    REPLY = 1


@dataclass(frozen=True)
class MessageType:
    """A protocol message type.

    Parameters
    ----------
    name:
        Human-readable name, e.g. ``"m1"``, ``"ORQ"``, ``"BRP"``.
    index:
        Position in the protocol's total order (0-based).  Strict avoidance
        assigns one logical network per index.
    net_class:
        Request/reply role used by deflective recovery's two networks.
    flits:
        Packet length in flits for messages of this type.
    is_backoff:
        True only for backoff-reply (BRP) types that exist solely for
        deflective recovery and do not occupy a logical network of their
        own under strict avoidance.
    """

    name: str
    index: int
    net_class: NetClass
    flits: int
    is_backoff: bool = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MessageType({self.name})"


# Monotonically increasing ids, shared across simulator instances.  Only
# used for hashing/diagnostics; determinism of a run never depends on the
# absolute values.
_uid_counter = itertools.count()


@dataclass(frozen=True)
class MessageSpec:
    """A not-yet-created subordinate message.

    ``continuation`` holds the specs this message must generate when it is
    consumed at ``dst``; a spec with an empty continuation describes a
    terminating message.
    """

    mtype: MessageType
    dst: int
    continuation: tuple["MessageSpec", ...] = ()

    def chain_length(self) -> int:
        """Types along the longest dependency chain rooted at this spec."""
        if not self.continuation:
            return 1
        return 1 + max(spec.chain_length() for spec in self.continuation)


class Message:
    """One routable message/packet instance.

    Network-facing state (flit progress, blocking) lives directly on the
    object so the simulator's hot loop avoids auxiliary lookups.
    """

    __slots__ = (
        "uid",
        "mtype",
        "src",
        "dst",
        "size",
        "continuation",
        "transaction",
        "created_cycle",
        "injected_cycle",
        "delivered_cycle",
        "consumed_cycle",
        "flits_sent",
        "flits_ejected",
        "vc_class",
        "dst_router",
        "blocked_since",
        "rescued",
        "deflected",
        "hops",
        "crossed_mask",
        "has_reservation",
    )

    def __init__(
        self,
        mtype: MessageType,
        src: int,
        dst: int,
        continuation: tuple[MessageSpec, ...] = (),
        transaction: "Transaction | None" = None,
        created_cycle: int = 0,
        size: int | None = None,
    ) -> None:
        self.uid = next(_uid_counter)
        self.mtype = mtype
        self.src = src
        self.dst = dst
        self.size = mtype.flits if size is None else size
        self.continuation = continuation
        self.transaction = transaction
        self.created_cycle = created_cycle
        self.injected_cycle = -1
        self.delivered_cycle = -1
        self.consumed_cycle = -1
        # Number of flits that have left the source NI so far.
        self.flits_sent = 0
        # Number of flits drained into the destination NI so far.
        self.flits_ejected = 0
        # Scheme-assigned virtual-channel class (logical network id).
        self.vc_class = 0
        # Destination router, cached by the fabric at injection so the
        # allocation loop never re-derives it (-1 = not yet resolved).
        self.dst_router = -1
        # Cycle since which the header has made no forward progress
        # (-1 = not blocked); used by PR's router-level timeout detection.
        self.blocked_since = -1
        self.rescued = False
        self.deflected = False
        self.hops = 0
        # Bitmask of dimensions whose dateline this packet has crossed;
        # drives the escape virtual-channel class (Dally-Seitz datelines).
        self.crossed_mask = 0
        # True if a slot in the destination input queue was preallocated
        # (MSHR-style) by the node that requested this message.
        self.has_reservation = False

    @property
    def is_terminating(self) -> bool:
        """True if consuming this message generates no subordinates."""
        return not self.continuation

    def chain_length(self) -> int:
        """Types along the longest chain rooted at this live message."""
        if not self.continuation:
            return 1
        return 1 + max(spec.chain_length() for spec in self.continuation)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message(#{self.uid} {self.mtype.name} "
            f"{self.src}->{self.dst} {self.size}f)"
        )


@dataclass
class Transaction:
    """A complete data transaction: an ``m1`` and everything it spawns.

    ``outstanding`` counts live messages (created but not yet consumed)
    plus pending specs; it reaches zero exactly when the transaction
    completes.  Deflective recovery may grow the message count (the
    backoff reply is an *additional* message, Section 2.2).
    """

    uid: int
    requester: int
    home: int
    chain_length: int
    created_cycle: int
    outstanding: int = 0
    completed_cycle: int = -1
    messages_used: int = 0
    deflections: int = 0
    rescues: int = 0
    root: Message | None = field(default=None, repr=False)

    @property
    def completed(self) -> bool:
        return self.completed_cycle >= 0


def count_messages(spec_or_continuation) -> int:
    """Total messages described by a spec (itself plus all descendants)."""
    if isinstance(spec_or_continuation, MessageSpec):
        return 1 + sum(count_messages(c) for c in spec_or_continuation.continuation)
    return sum(count_messages(c) for c in spec_or_continuation)
