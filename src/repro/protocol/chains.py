"""Protocol definitions: message types and allowed dependency chains.

Three protocols from the paper are provided:

* :data:`GENERIC_MSI` — the generic four-type protocol of Figure 7 under
  the S-1/MSI mapping (``m1 = RQ``, ``m2 = FRQ``, ``m3 = FRP``,
  ``m4 = RP``); chains of length 2 (``m1 < m4``), 3 (``m1 < m2 < m4``)
  and 4 (``m1 < m2 < m3 < m4``).  Used by transaction patterns PAT100,
  PAT721, PAT451 and PAT271.
* :data:`GENERIC_ORIGIN` — the generic protocol under the Origin2000
  mapping (``m1 = ORQ``, ``m2 = BRP``, ``m3 = FRQ``, ``m4 = TRP``,
  Figure 2); chains of length 2 and 3, where the backoff reply ``BRP``
  appears *only* during deflective recovery.  Used by PAT280.
* :data:`MSI_COHERENCE` — the full-map directory MSI protocol of Figure 5
  used for the trace-driven characterization; structurally identical to
  :data:`GENERIC_MSI` but with the coherence-level names.

Message lengths follow Table 2: request-class types are 4 flits, reply
types 20 flits.  The backoff reply carries only owner/sharer identity, so
it defaults to the request length (4 flits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocol.message import MessageType, NetClass
from repro.util.errors import ConfigurationError

REQUEST_FLITS = 4
REPLY_FLITS = 20


@dataclass(frozen=True)
class Protocol:
    """A communication protocol: ordered message types plus a backoff type.

    ``types`` are in total (chain) order; ``backoff`` is the extra
    terminating reply used exclusively by deflective recovery and is *not*
    counted as a logical network by strict avoidance (the Origin2000 lets
    BRP share the reply network, Section 2.2).
    """

    name: str
    types: tuple[MessageType, ...]
    backoff: MessageType | None = None
    _by_name: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        mapping = {t.name: t for t in self.types}
        if self.backoff is not None:
            mapping[self.backoff.name] = self.backoff
        object.__setattr__(self, "_by_name", mapping)

    def type_named(self, name: str) -> MessageType:
        """Look up a message type by name (raises ``KeyError`` if absent)."""
        return self._by_name[name]

    @property
    def all_types(self) -> tuple[MessageType, ...]:
        """Chain types plus the backoff type, if any."""
        if self.backoff is None:
            return self.types
        return self.types + (self.backoff,)

    @property
    def max_chain_length(self) -> int:
        return len(self.types)

    def subordinate_pairs(self) -> set[tuple[str, str]]:
        """All ``(a, b)`` with ``a < b`` in the protocol's total order."""
        pairs: set[tuple[str, str]] = set()
        for i, a in enumerate(self.types):
            for b in self.types[i + 1 :]:
                pairs.add((a.name, b.name))
        return pairs

    def validate_chain(self, names: list[str]) -> None:
        """Ensure ``names`` respects the total order (used by tests)."""
        idx = [self.type_named(n).index for n in names]
        if any(b <= a for a, b in zip(idx, idx[1:])):
            raise ConfigurationError(
                f"chain {names} violates the total order of {self.name}"
            )


def _mk(name: str, index: int, cls: NetClass, flits: int, backoff: bool = False):
    return MessageType(name, index, cls, flits, is_backoff=backoff)


#: Generic protocol, S-1/MSI mapping (paper Section 4.3.1, Figure 7).
GENERIC_MSI = Protocol(
    name="generic-msi",
    types=(
        _mk("m1", 0, NetClass.REQUEST, REQUEST_FLITS),
        _mk("m2", 1, NetClass.REQUEST, REQUEST_FLITS),
        _mk("m3", 2, NetClass.REPLY, REPLY_FLITS),
        _mk("m4", 3, NetClass.REPLY, REPLY_FLITS),
    ),
    backoff=_mk("BRP", 1, NetClass.REPLY, REQUEST_FLITS, backoff=True),
)

#: Generic protocol, Origin2000 mapping (Figure 2).  ``m2`` *is* the
#: backoff reply; the normal chains use only m1/m3/m4.
GENERIC_ORIGIN = Protocol(
    name="generic-origin",
    types=(
        _mk("ORQ", 0, NetClass.REQUEST, REQUEST_FLITS),
        _mk("FRQ", 2, NetClass.REQUEST, REQUEST_FLITS),
        _mk("TRP", 3, NetClass.REPLY, REPLY_FLITS),
    ),
    backoff=_mk("BRP", 1, NetClass.REPLY, REQUEST_FLITS, backoff=True),
)

#: Full-map directory MSI protocol (Figure 5), used for trace-driven runs.
MSI_COHERENCE = Protocol(
    name="msi",
    types=(
        _mk("RQ", 0, NetClass.REQUEST, REQUEST_FLITS),
        _mk("FRQ", 1, NetClass.REQUEST, REQUEST_FLITS),
        _mk("FRP", 2, NetClass.REPLY, REPLY_FLITS),
        _mk("RP", 3, NetClass.REPLY, REPLY_FLITS),
    ),
    backoff=_mk("BRP", 1, NetClass.REPLY, REQUEST_FLITS, backoff=True),
)

PROTOCOLS: dict[str, Protocol] = {
    p.name: p for p in (GENERIC_MSI, GENERIC_ORIGIN, MSI_COHERENCE)
}
