"""Full-map directory MSI cache coherence (Figure 5).

Turns memory accesses into network transactions the way FlexSim's
trace-driven mode does: a three-state (M/S/I) invalidation-based protocol
with a full-map directory at each block's home node, producing the three
response classes measured in Table 1:

* **Direct Reply** — the home satisfies the request itself
  (``RQ < RP``, chain length 2);
* **Invalidation** — the home invalidates the sharers before replying
  (``RQ < FRQ < FRP < RP``, length 4; one FRQ/FRP per sharer);
* **Forwarding** — the home forwards to the exclusive owner
  (``RQ < FRQ < FRP < RP``, length 4).

Replies to forwarded requests return via the home ("The reply to the
forwarded request is sent to the home where a reply message is sent to
the requester", Section 4.2.2).  Caches are infinite (no evictions), as
appropriate for trace-driven characterization.  When several sharers are
invalidated the final reply is attached to one acknowledgement branch —
a join is approximated by a chain, which preserves message counts and
chain length.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.protocol.chains import MSI_COHERENCE, Protocol
from repro.protocol.message import Message, MessageSpec, Transaction

_txn_uid = itertools.count(1_000_000)

#: Response classes (Table 1 row labels).
DIRECT = "direct"
INVALIDATION = "invalidation"
FORWARDING = "forwarding"


@dataclass
class DirectoryEntry:
    """Directory state for one memory block."""

    state: str = "I"  # I | S | M
    owner: int = -1
    sharers: set[int] = field(default_factory=set)


@dataclass
class CoherenceTransaction:
    """A built transaction plus its injection roots and classification."""

    transaction: Transaction
    roots: list[Message]
    response_class: str
    requester: int


class DirectoryMSI:
    """The protocol engine: accesses in, classified transactions out."""

    def __init__(self, num_nodes: int, protocol: Protocol = MSI_COHERENCE) -> None:
        self.num_nodes = num_nodes
        self.protocol = protocol
        self.directory: dict[int, DirectoryEntry] = {}
        #: per-cpu cache state: (cpu, block) -> "S" | "M"
        self.caches: dict[tuple[int, int], str] = {}
        self.response_counts = {DIRECT: 0, INVALIDATION: 0, FORWARDING: 0}
        self.local_hits = 0
        self.requests = 0

    # ------------------------------------------------------------------
    def home_of(self, block: int) -> int:
        return block % self.num_nodes

    def entry(self, block: int) -> DirectoryEntry:
        e = self.directory.get(block)
        if e is None:
            e = DirectoryEntry()
            self.directory[block] = e
        return e

    # ------------------------------------------------------------------
    def access(
        self, cpu: int, op: str, block: int, now: int
    ) -> CoherenceTransaction | None:
        """Process one access; None when it hits locally (no traffic)."""
        cached = self.caches.get((cpu, block))
        if op == "R" and cached in ("S", "M"):
            self.local_hits += 1
            return None
        if op == "W" and cached == "M":
            self.local_hits += 1
            return None

        home = self.home_of(block)
        entry = self.entry(block)
        if op == "R":
            result = self._read_miss(cpu, home, entry, block, now)
        else:
            result = self._write_miss(cpu, home, entry, block, now)
        if result is not None:
            self.requests += 1
            self.response_counts[result.response_class] += 1
        return result

    # ------------------------------------------------------------------
    def _read_miss(self, cpu, home, entry, block, now):
        if entry.state == "M" and entry.owner != cpu and entry.owner != home:
            # Forward to the exclusive owner; it degrades to S.
            owner = entry.owner
            self.caches[(owner, block)] = "S"
            self.caches[(cpu, block)] = "S"
            entry.state = "S"
            entry.sharers = {owner, cpu}
            entry.owner = -1
            return self._forwarding(cpu, home, owner, now)
        # Home can satisfy the read directly.
        self.caches[(cpu, block)] = "S"
        if entry.state == "M":  # owner is home (or requester impossible here)
            entry.state = "S"
            entry.sharers = {entry.owner, cpu}
            entry.owner = -1
        else:
            entry.state = "S"
            entry.sharers.add(cpu)
        if cpu == home:
            return None  # purely local
        return self._direct(cpu, home, now)

    def _write_miss(self, cpu, home, entry, block, now):
        remote_sharers = {
            s for s in entry.sharers if s not in (cpu,)
        } if entry.state == "S" else set()
        remote_owner = (
            entry.owner
            if entry.state == "M" and entry.owner not in (cpu,)
            else -1
        )
        # Update end state first: requester becomes exclusive owner.
        self.caches[(cpu, block)] = "M"
        for s in list(entry.sharers):
            if s != cpu:
                self.caches.pop((s, block), None)
        if remote_owner >= 0:
            self.caches.pop((remote_owner, block), None)
        entry.state = "M"
        entry.owner = cpu
        entry.sharers = set()

        if remote_owner >= 0 and remote_owner != home:
            return self._forwarding(cpu, home, remote_owner, now)
        inv_targets = sorted(t for t in remote_sharers if t != home)
        if inv_targets:
            return self._invalidation(cpu, home, inv_targets, now)
        if cpu == home:
            return None
        return self._direct(cpu, home, now)

    # ------------------------------------------------------------------
    # Transaction builders
    # ------------------------------------------------------------------
    def _types(self):
        p = self.protocol
        return (
            p.type_named("RQ"),
            p.type_named("FRQ"),
            p.type_named("FRP"),
            p.type_named("RP"),
        )

    def _new_txn(self, requester, home, length, now) -> Transaction:
        return Transaction(
            uid=next(_txn_uid),
            requester=requester,
            home=home,
            chain_length=length,
            created_cycle=now,
        )

    def _direct(self, cpu, home, now) -> CoherenceTransaction:
        rq, _, _, rp = self._types()
        txn = self._new_txn(cpu, home, 2, now)
        root = Message(
            rq, src=cpu, dst=home,
            continuation=(MessageSpec(rp, cpu),),
            transaction=txn, created_cycle=now,
        )
        txn.root = root
        txn.outstanding = 2
        txn.messages_used = 2
        return CoherenceTransaction(txn, [root], DIRECT, cpu)

    def _forwarding(self, cpu, home, owner, now) -> CoherenceTransaction:
        rq, frq, frp, rp = self._types()
        txn = self._new_txn(cpu, home, 4, now)
        chain = MessageSpec(
            frq, owner,
            (MessageSpec(frp, home, (MessageSpec(rp, cpu),)),),
        )
        if cpu == home:
            # The home itself requests: the forwarded request is the root.
            root = Message(
                frq, src=home, dst=owner,
                continuation=(MessageSpec(frp, home),),
                transaction=txn, created_cycle=now,
            )
            txn.root = root
            txn.outstanding = 2
            txn.messages_used = 2
            txn.chain_length = 2
            return CoherenceTransaction(txn, [root], FORWARDING, cpu)
        root = Message(
            rq, src=cpu, dst=home, continuation=(chain,),
            transaction=txn, created_cycle=now,
        )
        txn.root = root
        txn.outstanding = 4
        txn.messages_used = 4
        return CoherenceTransaction(txn, [root], FORWARDING, cpu)

    def _invalidation(self, cpu, home, sharers, now) -> CoherenceTransaction:
        rq, frq, frp, rp = self._types()
        txn = self._new_txn(cpu, home, 4, now)
        branches = []
        for i, sharer in enumerate(sharers):
            if i == len(sharers) - 1 and cpu != home:
                # The final acknowledgement branch carries the reply.
                ack = MessageSpec(frp, home, (MessageSpec(rp, cpu),))
            else:
                ack = MessageSpec(frp, home)
            branches.append(MessageSpec(frq, sharer, (ack,)))
        n_msgs = 2 * len(sharers) + (2 if cpu != home else 0)
        if cpu == home:
            txn.root = None
            txn.outstanding = n_msgs
            txn.messages_used = n_msgs
            txn.chain_length = 2
            roots = [
                Message(
                    spec.mtype, src=home, dst=spec.dst,
                    continuation=spec.continuation,
                    transaction=txn, created_cycle=now,
                )
                for spec in branches
            ]
            if roots:
                txn.root = roots[0]
            return CoherenceTransaction(txn, roots, INVALIDATION, cpu)
        root = Message(
            rq, src=cpu, dst=home, continuation=tuple(branches),
            transaction=txn, created_cycle=now,
        )
        txn.root = root
        txn.outstanding = n_msgs
        txn.messages_used = n_msgs
        return CoherenceTransaction(txn, [root], INVALIDATION, cpu)

    # ------------------------------------------------------------------
    def response_distribution(self) -> dict[str, float]:
        """Table 1 row: fraction of requests per response class."""
        total = sum(self.response_counts.values())
        if total == 0:
            return {k: 0.0 for k in self.response_counts}
        return {k: v / total for k, v in self.response_counts.items()}
