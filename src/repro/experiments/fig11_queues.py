"""Figure 11: message-queue configurations at 16 VCs, PAT271.

Compares SA, DR, PR with their default endpoint queues against DR-QA
and PR-QA, where each message type gets its own input/output queues
(separation for *performance*, not deadlock avoidance — Section 4.3.2
and the conclusion).  Paper finding reproduced: with shared queues,
inter-message coupling at the endpoints bottlenecks DR and PR below SA;
with per-type queues both recover and match or beat SA while keeping
full routing freedom.
"""

from __future__ import annotations

from repro.experiments.common import get_scale, print_curves, sweep_scheme
from repro.sim.results import SweepResult

NUM_VCS = 16
PATTERN = "PAT271"

#: (scheme, queue_mode) cells plotted in Figure 11.
CELLS = (
    ("SA", "auto"),
    ("DR", "auto"),
    ("PR", "auto"),
    ("DR", "per-type"),
    ("PR", "per-type"),
)


def run(scale: str = "smoke", seed: int = 1) -> list[SweepResult]:
    sc = get_scale(scale)
    return [
        sweep_scheme(scheme, PATTERN, NUM_VCS, sc, seed=seed, queue_mode=mode)
        for scheme, mode in CELLS
    ]


def main(scale: str = "smoke") -> None:
    sweeps = run(scale)
    print_curves(f"Figure 11 ({PATTERN}, {NUM_VCS} VCs, queue configs)", sweeps)
    sat = {s.label: s.saturation_throughput() for s in sweeps}
    print("\nSaturation summary:", sat)


if __name__ == "__main__":
    main()
