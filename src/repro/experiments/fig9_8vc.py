"""Figure 9: throughput/latency with 8 virtual channels per link.

With 8 VCs all three schemes are feasible for four-type patterns.
Paper findings reproduced here: SA still saturates early for patterns
whose traffic concentrates on few types (only ``1 + (8/L - 2)`` channels
per type); for PAT100 (two types) SA's share is large enough that SA and
PR are nearly indistinguishable; DR approaches PR for chains longer than
two because two partitions spread traffic almost as evenly as none.
"""

from __future__ import annotations

from repro.experiments.figures import (
    PANEL_PATTERNS,
    print_figure,
    run_figure,
    saturation_by_scheme,
)

NUM_VCS = 8


def run(scale: str = "smoke", seed: int = 1) -> dict:
    return run_figure(NUM_VCS, PANEL_PATTERNS, scale, seed=seed)


def main(scale: str = "smoke") -> None:
    panels = run(scale)
    print_figure(f"Figure 9 ({NUM_VCS} VCs)", panels)
    print("\nSaturation summary:", saturation_by_scheme(panels))


if __name__ == "__main__":
    main()
