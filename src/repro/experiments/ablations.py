"""Ablations of design choices beyond the paper's figures.

1. **Channel partitioning** — SA/DR with split extras (availability
   ``1 + (C/L - E_r)``) vs Martinez-style shared extras
   (``1 + (C - E_m)``), Section 2.1's two availability formulas.
2. **Detection threshold** — sensitivity of DR/PR to the endpoint
   timeout T (paper fixes T = 25 as the CWG-detection stand-in).
3. **Recovery aggressiveness** — PR's router-level Disha timeout, which
   trades false-positive rescues against time spent deadlocked.
"""

from __future__ import annotations

from repro.experiments.common import get_scale, sweep_scheme
from repro.sim.results import SweepResult


def partitioning_ablation(scale: str = "smoke", seed: int = 1) -> list[SweepResult]:
    """SA split vs shared-extras at 16 VCs on the skewed PAT721 mix."""
    sc = get_scale(scale)
    out = []
    for scheme in ("SA", "DR"):
        for shared in (False, True):
            sweep = sweep_scheme(
                "%s" % scheme, "PAT721", 16, sc, seed=seed, shared_extras=shared
            )
            sweep.label = f"{scheme}/{'shared-extras' if shared else 'split'}"
            out.append(sweep)
    return out


def detection_threshold_ablation(
    scale: str = "smoke", seed: int = 1, thresholds=(10, 25, 100)
) -> list[SweepResult]:
    """DR at 8 VCs under different endpoint timeouts."""
    sc = get_scale(scale)
    out = []
    for t in thresholds:
        s = sweep_scheme(
            "DR", "PAT271", 8, sc, seed=seed, detection_threshold=t
        )
        s.label = f"DR/T={t}"
        out.append(s)
    return out


def router_timeout_ablation(
    scale: str = "smoke", seed: int = 1, timeouts=(25, 100, 400)
) -> list[SweepResult]:
    """PR at 4 VCs under different Disha router timeouts."""
    sc = get_scale(scale)
    out = []
    for t in timeouts:
        s = sweep_scheme("PR", "PAT721", 4, sc, seed=seed, router_timeout=t)
        s.label = f"PR/rt={t}"
        out.append(s)
    return out


def run(scale: str = "smoke", seed: int = 1) -> dict:
    return {
        "partitioning": partitioning_ablation(scale, seed),
        "detection_threshold": detection_threshold_ablation(scale, seed),
        "router_timeout": router_timeout_ablation(scale, seed),
    }


def main(scale: str = "smoke") -> None:
    from repro.experiments.common import print_curves

    results = run(scale)
    for name, sweeps in results.items():
        print_curves(f"Ablation: {name}", sweeps)


if __name__ == "__main__":
    main()
