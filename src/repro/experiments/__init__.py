"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(scale="smoke"|"paper", seed=...) -> dict`` and
a ``main()`` that prints the regenerated rows/series.  ``smoke`` shrinks
cycle counts and load grids so the whole suite finishes in minutes;
``paper`` uses the paper's 30,000-cycle measurement windows.  See
EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments.common import SCALES, Scale

__all__ = ["Scale", "SCALES"]
