"""Run named service scenarios through the experiments runner.

The campaign service's scenario library
(:mod:`repro.service.scenarios`) is addressable from experiments too:
``python -m repro.experiments.runner smoke scenarios`` expands every
named scenario at the requested scale and executes it through the same
cache-aware point dispatch as the sweeps — so a scenario run here, by
the service, or via ``repro submit`` produces (and reuses) identical
cache entries.
"""

from __future__ import annotations

from repro.experiments.common import Scale, get_scale
from repro.service.scenarios import SCENARIOS, build_campaign
from repro.sim.parallel import (
    ResultCache,
    get_default_execution,
    resolve_points,
    run_points,
)


def run(scale: str | Scale = "smoke",
        names: list[str] | None = None) -> list[dict]:
    """Execute each named scenario's campaign; one summary row each."""
    sc = get_scale(scale)
    execution = get_default_execution()
    cache = ResultCache(execution.cache_dir) if execution.use_cache else None
    rows = []
    for name in names if names is not None else list(SCENARIOS):
        spec = build_campaign(name, sc)
        before = resolve_points(
            spec.configs, spec.warmup, spec.measure, cache,
            keys=spec.point_keys(),
        )
        results = run_points(
            list(spec.configs), spec.warmup, spec.measure,
            workers=execution.workers, cache=cache,
        )
        rows.append({
            "scenario": name,
            "category": SCENARIOS[name].category,
            "points": len(results),
            "cached": before.cached,
            "peak_throughput": max(r.throughput_fpc for r in results),
            "deadlocks": sum(r.deadlocks for r in results),
            "delivered": sum(r.messages_delivered for r in results),
        })
    return rows


def main(scale: str = "smoke") -> None:
    rows = run(scale)
    print("\n== Scenario library: every named campaign ==")
    print(f"{'scenario':24s} {'category':12s} {'pts':>4s} {'cache':>5s}"
          f" {'peak':>7s} {'dlk':>5s} {'deliv':>7s}")
    for row in rows:
        print(f"{row['scenario']:24s} {row['category']:12s}"
              f" {row['points']:4d} {row['cached']:5d}"
              f" {row['peak_throughput']:7.4f} {row['deadlocks']:5d}"
              f" {row['delivered']:7d}")
    print("every scenario resolved, expanded and executed by name;"
          " points shared with the service through the result cache")


if __name__ == "__main__":
    main()
