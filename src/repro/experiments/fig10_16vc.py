"""Figure 10: throughput/latency with 16 virtual channels per link.

Panels (a)-(d) = PAT721/451/271/280 (the paper drops PAT100 here).
With abundant channels, link balance stops mattering and *endpoint
message coupling* dominates: schemes sharing NI queues between
heterogeneous message types (DR with two queues, PR with one) fall below
SA, whose per-type queues decouple the types.  Figure 11 shows the
remedy (QA queue separation).
"""

from __future__ import annotations

from repro.experiments.figures import (
    print_figure,
    run_figure,
    saturation_by_scheme,
)

NUM_VCS = 16
FIG10_PATTERNS = ("PAT721", "PAT451", "PAT271", "PAT280")


def run(scale: str = "smoke", seed: int = 1) -> dict:
    return run_figure(NUM_VCS, FIG10_PATTERNS, scale, seed=seed)


def main(scale: str = "smoke") -> None:
    panels = run(scale)
    print_figure(f"Figure 10 ({NUM_VCS} VCs)", panels)
    print("\nSaturation summary:", saturation_by_scheme(panels))


if __name__ == "__main__":
    main()
