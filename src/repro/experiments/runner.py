"""Regenerate every table and figure: ``python -m repro.experiments.runner``.

Usage::

    python -m repro.experiments.runner [smoke|paper] [exp ...] \\
        [--workers N] [--hosts SPEC] [--no-cache] [--cache-dir DIR]

With no experiment names, all of them run in order.  ``paper`` scale
uses the paper's 30,000-cycle measurement windows and takes hours
serially; ``--workers N`` fans sweep points across N processes, and the
on-disk result cache (on by default, see :mod:`repro.sim.parallel`)
lets an interrupted paper-scale run resume instead of restarting.
``--hosts SPEC`` goes further and fans sweep points across a
fault-tolerant farm (:mod:`repro.farm`) — the same comma-separated
``local[:N]``/``ssh:HOST``/``ext:DIR`` syntax as ``repro farm run`` —
with results bit-identical to local execution and shared through the
same cache.  ``smoke`` (default) finishes in minutes.

Exits non-zero on an unknown argument or a failed experiment, so CI
smoke jobs fail loudly when regeneration breaks.
"""

from __future__ import annotations

import sys
import time
import traceback

from repro.config import ExecutionConfig
from repro.experiments import (
    ablations,
    cdg_lab,
    detection_lab,
    faults,
    fig6_load_rates,
    fig8_4vc,
    fig9_8vc,
    fig10_16vc,
    fig11_queues,
    scenario_sweep,
    table1_responses,
    table3_distributions,
    telemetry,
    topologies,
    trace_deadlocks,
)
from repro.farm import parse_hosts
from repro.sim.parallel import DEFAULT_CACHE_DIR, set_default_execution
from repro.util.errors import ConfigurationError

EXPERIMENTS = {
    "table1": table1_responses,
    "table3": table3_distributions,
    "fig6": fig6_load_rates,
    "trace_deadlocks": trace_deadlocks,
    "fig8": fig8_4vc,
    "fig9": fig9_8vc,
    "fig10": fig10_16vc,
    "fig11": fig11_queues,
    "ablations": ablations,
    "faults": faults,
    "telemetry": telemetry,
    "detection_lab": detection_lab,
    "topologies": topologies,
    "cdg_lab": cdg_lab,
    "scenarios": scenario_sweep,
}


def parse_args(argv: list[str]) -> tuple[str, list[str], ExecutionConfig]:
    """Split argv into (scale, experiment names, execution policy)."""
    scale = "smoke"
    names: list[str] = []
    workers = 1
    use_cache = True
    cache_dir = DEFAULT_CACHE_DIR
    farm_hosts: str | None = None
    it = iter(argv)
    for arg in it:
        if arg in ("smoke", "paper"):
            scale = arg
        elif arg in EXPERIMENTS:
            names.append(arg)
        elif arg == "--no-cache":
            use_cache = False
        elif arg == "--workers" or arg.startswith("--workers="):
            value = arg.partition("=")[2] if "=" in arg else next(it, None)
            if value is None or not value.isdigit() or int(value) < 1:
                raise SystemExit("--workers needs a positive integer")
            workers = int(value)
        elif arg == "--cache-dir" or arg.startswith("--cache-dir="):
            value = arg.partition("=")[2] if "=" in arg else next(it, None)
            if not value:
                raise SystemExit("--cache-dir needs a path")
            cache_dir = value
        elif arg == "--hosts" or arg.startswith("--hosts="):
            value = arg.partition("=")[2] if "=" in arg else next(it, None)
            if not value:
                raise SystemExit("--hosts needs a host specification")
            # Fail on a malformed spec here, before hours of sweeps.
            try:
                parse_hosts(value)
            except ConfigurationError as exc:
                raise SystemExit(f"bad --hosts: {exc}") from exc
            farm_hosts = value
        else:
            raise SystemExit(
                f"unknown argument {arg!r}; experiments: {sorted(EXPERIMENTS)}"
            )
    execution = ExecutionConfig(
        workers=workers,
        use_cache=use_cache,
        cache_dir=cache_dir,
        progress=True,
        farm_hosts=farm_hosts,
    )
    return scale, names or list(EXPERIMENTS), execution


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    scale, names, execution = parse_args(argv)
    previous = set_default_execution(execution)
    failed: list[str] = []
    try:
        for name in names:
            t0 = time.time()
            try:
                EXPERIMENTS[name].main(scale)
            except Exception:
                traceback.print_exc()
                print(f"[{name} FAILED after {time.time() - t0:.1f}s]",
                      file=sys.stderr)
                failed.append(name)
            else:
                print(f"[{name} done in {time.time() - t0:.1f}s]")
    finally:
        set_default_execution(previous)
    if failed:
        print(f"failed experiments: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
