"""Regenerate every table and figure: ``python -m repro.experiments.runner``.

Usage::

    python -m repro.experiments.runner [smoke|paper] [exp ...]

With no experiment names, all of them run in order.  ``paper`` scale
uses the paper's 30,000-cycle measurement windows and takes hours;
``smoke`` (default) finishes in minutes.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    ablations,
    fig6_load_rates,
    fig8_4vc,
    fig9_8vc,
    fig10_16vc,
    fig11_queues,
    table1_responses,
    table3_distributions,
    trace_deadlocks,
)

EXPERIMENTS = {
    "table1": table1_responses,
    "table3": table3_distributions,
    "fig6": fig6_load_rates,
    "trace_deadlocks": trace_deadlocks,
    "fig8": fig8_4vc,
    "fig9": fig9_8vc,
    "fig10": fig10_16vc,
    "fig11": fig11_queues,
    "ablations": ablations,
}


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    scale = "smoke"
    names = []
    for arg in argv:
        if arg in ("smoke", "paper"):
            scale = arg
        elif arg in EXPERIMENTS:
            names.append(arg)
        else:
            raise SystemExit(
                f"unknown argument {arg!r}; experiments: {sorted(EXPERIMENTS)}"
            )
    names = names or list(EXPERIMENTS)
    for name in names:
        t0 = time.time()
        EXPERIMENTS[name].main(scale)
        print(f"[{name} done in {time.time() - t0:.1f}s]")


if __name__ == "__main__":
    main()
