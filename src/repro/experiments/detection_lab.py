"""Detection lab: detector x scheme comparison against CWG ground truth.

Runs every in-band detection mechanism (``endpoint``, ``cmh``,
``timeout``) over a small grid of cells with the omniscient CWG checker
scoring each run:

* ``none-light`` — detection-only at a comfortable load: the CWG
  checker certifies the run deadlock-free, so any detection here is a
  false positive;
* ``none-heavy`` — detection-only at saturation: the run wedges into
  real CWG knots and nothing recovers, so detection latency and
  coverage are measured against persisting deadlock;
* ``dr-stall`` / ``pr-stall`` — a consumer-stall fault wedges a DR/PR
  run, and the *detector drives recovery*: delivered messages per cell
  show what detection quality is worth end to end.

Reported per (cell x detector): detections, first-detection latency,
formation->detection latency from stitched recovery episodes, probe
overhead (CMH's message bill), recoveries, delivered messages and CWG
knots.  Hard guarantees enforced (the run raises on violation):

* the three detectors never perturb a detection-only run — the CWG
  knot count and delivered totals are identical across detectors on
  NONE cells (detection is observation there, not action);
* CMH declares (finite first detection) on every NONE run the CWG
  checker marks deadlocked — no false negatives on true deadlocks;
* the cycle-proving detectors (endpoint, cmh) report zero detections
  on runs the CWG checker certifies deadlock-free;
* probe traffic is visible in the telemetry trace of every CMH run
  that sent probes;
* DR/PR stall cells drain completely with zero conservation delta
  under every detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SimConfig
from repro.experiments.common import Scale, get_scale
from repro.faults.models import FaultSpec
from repro.sim.engine import Engine
from repro.sim.invariants import conservation_delta, format_dump
from repro.telemetry import Tracer, stitch_episodes
from repro.telemetry import events as ev

DETECTORS = ("endpoint", "cmh", "timeout")

_PROBE_KINDS = frozenset(
    (ev.PROBE_SEND, ev.PROBE_FORWARD, ev.PROBE_RETURN, ev.PROBE_DROP)
)


@dataclass(frozen=True)
class LabScale:
    """Run-size knobs for the detection lab."""

    run_cycles: int
    fault_start: int
    fault_duration: int
    quiesce_cycles: int


_LAB_SCALES = {
    "smoke": LabScale(
        run_cycles=4000, fault_start=600, fault_duration=2000,
        quiesce_cycles=100_000,
    ),
    "paper": LabScale(
        run_cycles=20_000, fault_start=2000, fault_duration=6000,
        quiesce_cycles=200_000,
    ),
}


@dataclass(frozen=True)
class LabCell:
    """One column of the lab grid (each cell runs once per detector).

    Seeds are pinned per cell: ``none-heavy`` at seed 1 reliably wedges
    the 4x4 torus into CWG knots within the smoke window, which the
    no-false-negative guarantee needs.
    """

    name: str
    scheme: str
    pattern: str
    load: float
    seed: int
    cwg_interval: int
    stall_fault: bool = False
    extra: dict = field(default_factory=dict)


_CELLS = (
    LabCell("none-light", "NONE", "PAT721", 0.008, seed=1, cwg_interval=25),
    LabCell("none-heavy", "NONE", "PAT721", 0.020, seed=1, cwg_interval=25),
    LabCell("dr-stall", "DR", "PAT271", 0.012, seed=11, cwg_interval=50,
            stall_fault=True, extra={"max_outstanding": 12}),
    LabCell("pr-stall", "PR", "PAT271", 0.012, seed=11, cwg_interval=50,
            stall_fault=True),
)


def _cell_config(cell: LabCell, detector: str, ls: LabScale) -> SimConfig:
    faults = ()
    watchdog = 0
    if cell.stall_fault:
        faults = (
            FaultSpec("consumer-stall", target=5, start=ls.fault_start,
                      duration=ls.fault_duration),
        )
        watchdog = max(4 * ls.fault_duration, 4000)
    return SimConfig(
        dims=(4, 4),
        scheme=cell.scheme,
        pattern=cell.pattern,
        num_vcs=4,
        load=cell.load,
        seed=cell.seed,
        detector=detector,
        cwg_interval=cell.cwg_interval,
        faults=faults,
        invariants_every=250,
        watchdog_timeout=watchdog,
        **cell.extra,
    )


def run_cell(cell: LabCell, detector: str, ls: LabScale) -> dict:
    """Run one (cell, detector) point; returns its metrics row."""
    engine = Engine(_cell_config(cell, detector, ls))
    tracer = Tracer(level="message")
    engine.attach_tracer(tracer)
    engine.run(ls.run_cycles)

    lost = None
    if cell.stall_fault:
        drained = engine.quiesce(ls.quiesce_cycles)
        if not drained:
            raise RuntimeError(
                f"detection lab cell {cell.name}/{detector} failed to"
                f" drain:\n" + format_dump(drained.dump)
            )
        lost = conservation_delta(engine)
        if lost != 0:
            raise RuntimeError(
                f"detection lab cell {cell.name}/{detector}:"
                f" conservation delta {lost}"
            )

    stats = engine.stats
    first = stats.first_deadlock_cycle if stats.first_deadlock_cycle >= 0 else None
    detect_latency = None
    if first is not None:
        detect_latency = first - (ls.fault_start if cell.stall_fault else 0)

    episodes = stitch_episodes(tracer)
    episode_latencies = [
        epi.detection_latency for epi in episodes
        if epi.detection_latency is not None
    ]
    probe_events = sum(
        1 for _, kind, _ in tracer.events if kind in _PROBE_KINDS
    )
    overhead = engine.detector.overhead()
    knots = engine.cwg_knots_seen
    detections = engine.scheme.deadlocks_detected
    return {
        "cell": cell.name,
        "scheme": cell.scheme,
        "detector": detector,
        "load": cell.load,
        "detections": detections,
        "first_detection": first,
        "detect_latency": detect_latency,
        "mean_episode_latency": (
            sum(episode_latencies) / len(episode_latencies)
            if episode_latencies else None
        ),
        "episodes": len(episodes),
        "recoveries": engine.scheme.recoveries,
        "delivered": stats.total.messages_delivered,
        "lost": lost,
        "cwg_knots_seen": knots,
        # A detection on a run the CWG checker certified deadlock-free.
        "false_positives": detections if knots == 0 and not cell.stall_fault
        else 0,
        "probe_events": probe_events,
        **overhead,
    }


def _check_guarantees(rows: list[dict]) -> None:
    by_cell: dict[str, dict[str, dict]] = {}
    for row in rows:
        by_cell.setdefault(row["cell"], {})[row["detector"]] = row

    for name, per_det in by_cell.items():
        if not name.startswith("none-"):
            continue
        # Non-perturbation: NONE runs are data-plane identical across
        # detectors, so the ground truth and traffic must agree.
        knots = {d: r["cwg_knots_seen"] for d, r in per_det.items()}
        delivered = {d: r["delivered"] for d, r in per_det.items()}
        if len(set(knots.values())) != 1 or len(set(delivered.values())) != 1:
            raise RuntimeError(
                f"{name}: detectors perturbed a detection-only run:"
                f" knots={knots} delivered={delivered}"
            )
        for detector, row in per_det.items():
            if row["cwg_knots_seen"] > 0 and detector == "cmh":
                # No false negatives: CMH must declare on a CWG-
                # certified deadlocked run.
                if row["first_detection"] is None:
                    raise RuntimeError(
                        f"{name}: CWG saw {row['cwg_knots_seen']} knot(s)"
                        " but CMH never declared"
                    )
            if row["cwg_knots_seen"] == 0 and detector in ("endpoint", "cmh"):
                if row["detections"] != 0:
                    raise RuntimeError(
                        f"{name}/{detector}: {row['detections']} detection(s)"
                        " on a CWG-certified deadlock-free run"
                    )
    # The lab must include at least one genuinely deadlocked cell, or
    # the latency/coverage comparison measured nothing.
    if not any(
        r["cwg_knots_seen"] > 0 for r in rows if r["cell"] == "none-heavy"
    ):
        raise RuntimeError("none-heavy never wedged: no ground truth to score")
    for row in rows:
        if row["detector"] == "cmh" and row["probes_sent"] > 0:
            if row["probe_events"] == 0:
                raise RuntimeError(
                    f"{row['cell']}: {row['probes_sent']} probes sent but"
                    " none visible in the telemetry trace"
                )


def run(scale: str | Scale = "smoke") -> list[dict]:
    """Run the full grid; returns one row dict per (cell, detector)."""
    name = scale if isinstance(scale, str) else get_scale(scale).name
    ls = _LAB_SCALES[name]
    rows = []
    for cell in _CELLS:
        for detector in DETECTORS:
            rows.append(run_cell(cell, detector, ls))
    _check_guarantees(rows)
    return rows


def main(scale: str = "smoke") -> None:
    rows = run(scale)
    print("\n== Detection lab: detector x scheme vs CWG ground truth ==")
    print(f"{'cell':11s} {'detector':9s} {'ndet':>5s} {'detect':>7s}"
          f" {'ep.lat':>7s} {'fp':>3s} {'recov':>6s} {'deliv':>6s}"
          f" {'knots':>6s} {'probes':>7s} {'p.hops':>7s}")
    for row in rows:
        detect = (
            f"{row['detect_latency']}c"
            if row["detect_latency"] is not None else "-"
        )
        eplat = (
            f"{row['mean_episode_latency']:.0f}c"
            if row["mean_episode_latency"] is not None else "-"
        )
        probes = (
            f"{row['probes_sent']}/{row['probes_returned']}"
            if row["probes_sent"] else "-"
        )
        print(
            f"{row['cell']:11s} {row['detector']:9s} {row['detections']:5d}"
            f" {detect:>7s} {eplat:>7s} {row['false_positives']:3d}"
            f" {row['recoveries']:6d} {row['delivered']:6d}"
            f" {row['cwg_knots_seen']:6d} {probes:>7s} {row['probe_hops']:7d}"
        )
    print("\nguarantees held: detectors non-perturbing on NONE cells;"
          " CMH declared on every CWG-deadlocked run; zero endpoint/CMH"
          " false positives on certified-free runs; stall cells drained"
          " under every detector")


if __name__ == "__main__":
    main()
