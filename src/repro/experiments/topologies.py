"""Topology campaign: scheme x topology grid beyond the paper's torus.

The paper evaluates SA/DR/PR on k-ary n-cube (torus) networks only; the
generalized substrate (:mod:`repro.network.topology`) also supports open
meshes, full meshes and irregular graphs.  This campaign runs every
scheme on every non-torus topology and enforces the guarantees that make
the schemes portable:

* every cell reaches a measurement window and **drains completely**
  once admission stops (no stuck messages under any substrate);
* **message conservation** holds (nothing lost or duplicated);
* SA (strict avoidance) sees **zero deadlocks and zero CWG knots** on
  every topology — its C >= 2L guarantee is substrate-independent;
* DR/PR cells report detected deadlocks and recoveries, demonstrating
  detection + recovery working away from the torus.

The ``topology-smoke`` CI job runs this at smoke scale and fails loudly
when a guarantee breaks (the run raises).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimConfig
from repro.experiments.common import Scale, get_scale
from repro.sim.engine import Engine
from repro.sim.invariants import conservation_delta, format_dump


@dataclass(frozen=True)
class CampaignScale:
    """Run-size knobs for the topology campaign."""

    warmup: int
    measure: int
    quiesce_cycles: int


_CAMPAIGN_SCALES = {
    "smoke": CampaignScale(warmup=500, measure=2500, quiesce_cycles=100_000),
    "paper": CampaignScale(warmup=2000, measure=10_000,
                           quiesce_cycles=200_000),
}

#: the non-torus substrates: (kind, dims, label).  "fullmesh" gets 8
#: routers (prod of dims); "irregular" is the built-in 9-router graph.
_TOPOLOGIES = (
    ("fullmesh", (2, 4), "fullmesh8"),
    ("mesh2d", (4, 4), "mesh2d4x4"),
    ("irregular", (4, 4), "irregular9"),
)

_SCHEMES = ("SA", "DR", "PR")

#: per-scheme cell configuration, mirroring the fault campaign: SA needs
#: C >= 2L for PAT721's four-type chains and runs the CWG ground-truth
#: checker; DR/PR run the paper's request-reply pattern at a load that
#: provokes deadlock on adaptive substrates.
_SCHEME_CONFIG = {
    "SA": {"pattern": "PAT721", "num_vcs": 8, "cwg_interval": 50,
           "load": 0.012},
    "DR": {"pattern": "PAT271", "num_vcs": 4, "max_outstanding": 12,
           "load": 0.02},
    "PR": {"pattern": "PAT271", "num_vcs": 4, "load": 0.02},
}


def _run_cell(kind: str, dims: tuple[int, ...], label: str, scheme: str,
              cs: CampaignScale, seed: int) -> dict:
    config = SimConfig(
        topology=kind,
        dims=dims,
        scheme=scheme,
        seed=seed,
        invariants_every=250,
        watchdog_timeout=8000,
        **_SCHEME_CONFIG[scheme],
    )
    engine = Engine(config)
    window = engine.run_measured(cs.warmup, cs.measure)
    drained = engine.quiesce(cs.quiesce_cycles)
    if not drained:
        raise RuntimeError(
            f"topology campaign cell {label}/{scheme} failed to drain:\n"
            + format_dump(drained.dump)
        )
    lost = conservation_delta(engine)
    if lost != 0:
        raise RuntimeError(
            f"topology campaign cell {label}/{scheme}: conservation delta"
            f" {lost} (messages {'lost' if lost > 0 else 'duplicated'})"
        )
    deadlocks = window.deadlocks + window.deadlocks_unresolved
    if scheme == "SA" and (deadlocks or engine.cwg_knots_seen):
        raise RuntimeError(
            f"SA on {label}: {deadlocks} deadlock(s),"
            f" {engine.cwg_knots_seen} CWG knot(s) — avoidance broke"
            " off-torus"
        )
    nodes = engine.topology.num_nodes
    return {
        "topology": label,
        "scheme": scheme,
        "throughput_fpc": window.throughput_fpc(nodes),
        "mean_latency": window.mean_latency(),
        "delivered": window.messages_delivered,
        "deadlocks": deadlocks,
        "recoveries": engine.scheme.recoveries,
        "cwg_knots_seen": engine.cwg_knots_seen,
        "lost": lost,
    }


def run(scale: str | Scale = "smoke", seed: int = 7) -> list[dict]:
    """Run the scheme x topology grid; returns one row dict per cell."""
    name = scale if isinstance(scale, str) else get_scale(scale).name
    cs = _CAMPAIGN_SCALES[name]
    return [
        _run_cell(kind, dims, label, scheme, cs, seed)
        for kind, dims, label in _TOPOLOGIES
        for scheme in _SCHEMES
    ]


def main(scale: str = "smoke") -> None:
    rows = run(scale)
    print("\n== Topology campaign: scheme x topology ==")
    print(f"{'topology':12s} {'scheme':7s} {'thr(fpc)':>9s} {'latency':>9s}"
          f" {'deliv':>7s} {'dlks':>5s} {'recov':>6s}")
    for row in rows:
        print(
            f"{row['topology']:12s} {row['scheme']:7s}"
            f" {row['throughput_fpc']:9.4f} {row['mean_latency']:8.1f}c"
            f" {row['delivered']:7d} {row['deadlocks']:5d}"
            f" {row['recoveries']:6d}"
        )
    print("all cells drained; conservation delta 0 everywhere;"
          " SA saw zero deadlocks and zero CWG knots on every substrate")


if __name__ == "__main__":
    main()
