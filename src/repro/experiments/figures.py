"""Shared machinery for the Figure 8/9/10/11 throughput-latency studies."""

from __future__ import annotations

from repro.experiments.common import Scale, get_scale, print_curves, sweep_scheme
from repro.protocol.transactions import PATTERNS
from repro.sim.results import SweepResult

#: Patterns in the paper's panel order for Figures 8 and 9.
PANEL_PATTERNS = ("PAT100", "PAT721", "PAT451", "PAT271", "PAT280")


def valid_schemes(pattern_name: str, num_vcs: int) -> list[str]:
    """Schemes the paper plots for a (pattern, VC-count) cell.

    SA needs ``C >= 2L`` escape channels (omitted at 4 VCs for chains
    longer than two); DR degenerates for two-type patterns (omitted for
    PAT100).  PR is always valid.
    """
    pattern = PATTERNS[pattern_name]
    schemes = []
    if num_vcs >= 2 * pattern.num_message_types:
        schemes.append("SA")
    if pattern.dr_valid:
        schemes.append("DR")
    schemes.append("PR")
    return schemes


def run_figure(
    num_vcs: int,
    patterns: tuple[str, ...],
    scale: str | Scale,
    seed: int = 1,
) -> dict[str, list[SweepResult]]:
    """One panel per pattern, one curve per valid scheme."""
    sc = get_scale(scale)
    panels: dict[str, list[SweepResult]] = {}
    for pattern in patterns:
        sweeps = [
            sweep_scheme(scheme, pattern, num_vcs, sc, seed=seed)
            for scheme in valid_schemes(pattern, num_vcs)
        ]
        panels[pattern] = sweeps
    return panels


def print_figure(title: str, panels: dict[str, list[SweepResult]]) -> None:
    for pattern, sweeps in panels.items():
        print_curves(f"{title} — {pattern}", sweeps)


def saturation_by_scheme(panels: dict[str, list[SweepResult]]) -> dict:
    """{pattern: {scheme-label: saturation throughput}} summary."""
    return {
        pattern: {s.label.split("/")[0]: s.saturation_throughput() for s in sweeps}
        for pattern, sweeps in panels.items()
    }
