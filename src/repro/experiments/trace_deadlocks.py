"""Section 4.2.2: message-dependent deadlock frequency under real traces.

The paper's finding: *no application experienced message-dependent
deadlock*, on the base 4x4 torus or when network load is concentrated by
bristling 2 and 4 nodes per router (2x4 and 2x2 tori).  This experiment
replays every application trace through all three configurations with
both the endpoint timeout detector and periodic exact CWG knot detection
enabled, and reports the counts.
"""

from __future__ import annotations

from repro.experiments.common import get_scale
from repro.experiments.fig6_load_rates import simulate_app
from repro.traffic.splash import APP_MODELS

#: (dims, bristling) for bristling factors 1, 2 and 4 with 16 CPUs.
BRISTLED_CONFIGS = (
    ((4, 4), 1),
    ((2, 4), 2),
    ((2, 2), 4),
)


def run(scale: str = "smoke", seed: int = 2) -> dict:
    sc = get_scale(scale)
    out: dict[str, dict] = {}
    for app in APP_MODELS:
        out[app] = {}
        for dims, bristling in BRISTLED_CONFIGS:
            engine, samples = simulate_app(
                app,
                sc.trace_duration,
                seed=seed,
                dims=dims,
                bristling=bristling,
                cwg_interval=50,
            )
            total = engine.stats.total
            cap = engine.topology.uniform_capacity()
            out[app][f"{dims[0]}x{dims[1]}b{bristling}"] = {
                "timeout_episodes": total.deadlocks + total.deadlocks_unresolved,
                "cwg_knots": engine.cwg_knots_seen,
                "mean_load": float(samples.mean() / cap),
                "messages": total.messages_delivered,
            }
    return out


def main(scale: str = "smoke") -> None:
    rows = run(scale)
    print("\n== Trace-driven deadlock counts (paper: zero everywhere) ==")
    for app, configs in rows.items():
        for name, r in configs.items():
            print(
                f"{app:8s} {name:8s} episodes={r['timeout_episodes']:3d} "
                f"knots={r['cwg_knots']:3d} mean_load={r['mean_load']*100:5.1f}% "
                f"delivered={r['messages']}"
            )


if __name__ == "__main__":
    main()
