"""Table 1: types and frequencies of responses to request messages.

Replays the synthetic Splash-2-like traces through the full-map MSI
directory and tabulates the Direct Reply / Invalidation / Forwarding
mix per application.  Paper values:

=========  ============  ============  ==========
App        Direct Reply  Invalidation  Forwarding
=========  ============  ============  ==========
FFT        98.7%         0.9%          0.4%
LU         96.5%         3.0%          0.5%
Radix      95.5%         3.6%          0.8%
Water      15.2%         50.1%         34.7%
=========  ============  ============  ==========
"""

from __future__ import annotations

from repro.experiments.common import get_scale
from repro.protocol.coherence import (
    DIRECT,
    FORWARDING,
    INVALIDATION,
    DirectoryMSI,
)
from repro.traffic.splash import APP_MODELS, generate_app_trace

#: Paper's Table 1, as fractions.
PAPER_TABLE1 = {
    "fft": {DIRECT: 0.987, INVALIDATION: 0.009, FORWARDING: 0.004},
    "lu": {DIRECT: 0.965, INVALIDATION: 0.030, FORWARDING: 0.005},
    "radix": {DIRECT: 0.955, INVALIDATION: 0.036, FORWARDING: 0.008},
    "water": {DIRECT: 0.152, INVALIDATION: 0.501, FORWARDING: 0.347},
}


def run(scale: str = "smoke", seed: int = 2, num_cpus: int = 16) -> dict:
    """Regenerate Table 1; returns {app: {class: fraction}}."""
    sc = get_scale(scale)
    rows: dict[str, dict[str, float]] = {}
    for app in APP_MODELS:
        records = generate_app_trace(app, num_cpus, sc.trace_duration, seed=seed)
        directory = DirectoryMSI(num_cpus)
        for r in records:
            directory.access(r.cpu, r.op, r.block, r.cycle)
        rows[app] = directory.response_distribution()
    return rows


def main(scale: str = "smoke") -> None:
    rows = run(scale)
    print("\n== Table 1: response types to request messages ==")
    print(f"{'App':8s} {'Direct':>10s} {'Inval':>10s} {'Forward':>10s}"
          f"   (paper: D/I/F)")
    for app, dist in rows.items():
        paper = PAPER_TABLE1[app]
        print(
            f"{app:8s} {dist[DIRECT]*100:9.1f}% {dist[INVALIDATION]*100:9.1f}%"
            f" {dist[FORWARDING]*100:9.1f}%   "
            f"({paper[DIRECT]*100:.1f}/{paper[INVALIDATION]*100:.1f}/"
            f"{paper[FORWARDING]*100:.1f})"
        )


if __name__ == "__main__":
    main()
