"""Table 3: message-type distributions of the transaction patterns.

Computed two ways — closed form from the chain-length mix, and Monte
Carlo over sampled transactions — and compared against the paper's rows.
The PAT721 row of the paper sums to 112% (47.7+12.4+4.2+47.7); the
closed-form values implied by its own chain-length mix are
41.7/12.5/4.2/41.7 (see EXPERIMENTS.md).
"""

from __future__ import annotations

from collections import Counter

from repro.protocol.message import MessageSpec
from repro.protocol.transactions import PATTERNS
from repro.util.rng import make_rng

#: Paper's Table 3 message-type columns (fractions).  Keyed by the
#: generic m1..m4 positions; PAT280 uses the Origin mapping where the
#: m2 column is the (unused) backoff reply.
PAPER_TABLE3 = {
    "PAT100": (0.500, 0.000, 0.000, 0.500),
    "PAT721": (0.477, 0.124, 0.042, 0.477),  # erratum: sums to 1.12
    "PAT451": (0.371, 0.221, 0.037, 0.371),
    "PAT271": (0.345, 0.276, 0.034, 0.345),
    "PAT280": (0.357, 0.000, 0.286, 0.357),
}


def _column_order(pattern) -> list[str]:
    """Type names in m1..m4 column order (absent columns map to None)."""
    if pattern.protocol.name == "generic-origin":
        return ["ORQ", None, "FRQ", "TRP"]
    return ["m1", "m2", "m3", "m4"]


def closed_form(pattern) -> tuple[float, float, float, float]:
    dist = pattern.type_distribution()
    return tuple(
        dist.get(name, 0.0) if name else 0.0 for name in _column_order(pattern)
    )


def monte_carlo(pattern, samples: int = 20_000, seed: int = 7):
    """Empirical distribution over sampled transactions."""
    rng = make_rng(seed, f"table3-{pattern.name}")
    counts: Counter[str] = Counter()

    def count_spec(spec: MessageSpec) -> None:
        counts[spec.mtype.name] += 1
        for child in spec.continuation:
            count_spec(child)

    for _ in range(samples):
        txn = pattern.build_transaction(0, 1, 2, 0, rng=rng)
        counts[txn.root.mtype.name] += 1
        for spec in txn.root.continuation:
            count_spec(spec)
    total = sum(counts.values())
    return tuple(
        counts.get(name, 0) / total if name else 0.0
        for name in _column_order(pattern)
    )


def run(scale: str = "smoke", seed: int = 7) -> dict:
    samples = 5_000 if scale == "smoke" else 50_000
    out = {}
    for name, pattern in PATTERNS.items():
        out[name] = {
            "closed_form": closed_form(pattern),
            "monte_carlo": monte_carlo(pattern, samples, seed),
            "paper": PAPER_TABLE3[name],
        }
    return out


def main(scale: str = "smoke") -> None:
    rows = run(scale)
    print("\n== Table 3: message type distributions ==")
    print(f"{'Pattern':8s} {'m1':>7s} {'m2':>7s} {'m3':>7s} {'m4':>7s}  (paper)")
    for name, row in rows.items():
        cf = row["closed_form"]
        p = row["paper"]
        print(
            f"{name:8s} " + " ".join(f"{v*100:6.1f}%" for v in cf)
            + "  (" + "/".join(f"{v*100:.1f}" for v in p) + ")"
        )


if __name__ == "__main__":
    main()
