"""CDG lab: cross-validate static certification against simulation.

:mod:`repro.analysis.cdg` decides deadlock freedom *statically* — it
never runs a cycle of simulation.  This experiment closes the loop by
checking both directions of that claim dynamically:

* **Static phase** — every built-in (topology, routing) pair gets
  certified; any verdict that disagrees with its registered expectation
  (or any un-annotated refutation) raises, exactly like the
  ``cdg-certify`` CI gate.
* **REFUTED pairs deadlock** — for each small refuted pair we run the
  simulator in the configuration that realizes that routing (PR's true
  fully adaptive routing) at a provoking load and require the endpoint
  detector to confirm at least one real deadlock.  A refutation that
  never manifests would suggest the extractor hallucinates cycles.
* **CERTIFIED pairs never deadlock** — for certified escape-routed
  pairs we run SA (pure avoidance over that routing) under saturation
  with the omniscient CWG ground-truth checker on, and require zero
  detected deadlocks *and* zero CWG knots.  A knot under a certified
  routing would disprove the witness ordering.

Note the asymmetry: the certifier talks about *routing* deadlock, so
the dynamic CERTIFIED check uses SA, whose queue-class partitioning
removes message-dependent (protocol) deadlock from the picture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import check_all, gate_failures
from repro.config import SimConfig
from repro.experiments.common import Scale, get_scale
from repro.sim.engine import Engine


@dataclass(frozen=True)
class LabScale:
    """Run-size knobs for the dynamic phases."""

    warmup: int
    measure: int


_LAB_SCALES = {
    "smoke": LabScale(warmup=500, measure=2500),
    "paper": LabScale(warmup=2000, measure=10_000),
}

#: refuted registry pairs realized as simulator cells: PR's routing is
#: exactly the registry's true-fully-adaptive pair on each substrate.
_REFUTED_CELLS = (
    ("torus4x4-tfar", SimConfig(topology="torus", dims=(4, 4), scheme="PR",
                                pattern="PAT271", num_vcs=4, load=0.02)),
    ("irregular9-tfar", SimConfig(topology="irregular", scheme="PR",
                                  pattern="PAT271", num_vcs=4, load=0.02)),
)

#: certified registry pairs realized as SA cells (avoidance over the
#: certified escape routing) with the CWG ground-truth checker on.
_CERTIFIED_CELLS = (
    ("torus4x4-duato", SimConfig(topology="torus", dims=(4, 4), scheme="SA",
                                 pattern="PAT721", num_vcs=8,
                                 cwg_interval=50, load=0.012)),
    ("mesh2d4x4-duato", SimConfig(topology="mesh2d", dims=(4, 4), scheme="SA",
                                  pattern="PAT721", num_vcs=8,
                                  cwg_interval=50, load=0.012)),
    ("irregular9-updown", SimConfig(topology="irregular", scheme="SA",
                                    pattern="PAT721", num_vcs=8,
                                    cwg_interval=50, load=0.012)),
)


def _run_dynamic(config: SimConfig, ls: LabScale) -> tuple[int, int]:
    """(detected deadlocks, CWG knots) over one measured window."""
    engine = Engine(config.with_(watchdog_timeout=8000))
    window = engine.run_measured(ls.warmup, ls.measure)
    deadlocks = window.deadlocks + window.deadlocks_unresolved
    return deadlocks, engine.cwg_knots_seen


def run(scale: str | Scale = "smoke") -> dict:
    """Static + dynamic cross-validation; raises on any disagreement."""
    name = scale if isinstance(scale, str) else get_scale(scale).name
    ls = _LAB_SCALES[name]

    reports = check_all()
    problems = gate_failures(reports)
    if problems:
        raise RuntimeError("cdg gate failures: " + "; ".join(problems))

    refuted_rows = []
    for pair_name, config in _REFUTED_CELLS:
        deadlocks, _ = _run_dynamic(config, ls)
        if deadlocks == 0:
            raise RuntimeError(
                f"{pair_name} is statically REFUTED but the simulator"
                " saw no deadlock — provoke harder or distrust the cycle"
            )
        refuted_rows.append({"pair": pair_name, "deadlocks": deadlocks})

    certified_rows = []
    for pair_name, config in _CERTIFIED_CELLS:
        deadlocks, knots = _run_dynamic(config, ls)
        if deadlocks or knots:
            raise RuntimeError(
                f"{pair_name} is statically CERTIFIED but the simulator"
                f" saw {deadlocks} deadlock(s) / {knots} CWG knot(s) —"
                " the witness ordering is wrong"
            )
        certified_rows.append({"pair": pair_name, "deadlocks": 0,
                               "cwg_knots": knots})

    return {
        "reports": [r.to_dict() for r in reports],
        "refuted": refuted_rows,
        "certified": certified_rows,
    }


def main(scale: str = "smoke") -> None:
    result = run(scale)
    print("\n== CDG lab: static certification vs simulated deadlock ==")
    print(f"{'pair':26s} {'static':10s} {'dynamic':s}")
    for report in result["reports"]:
        print(f"{report['name']:26s} {report['verdict']:10s} -")
    for row in result["refuted"]:
        print(f"{row['pair']:26s} {'REFUTED':10s}"
              f" {row['deadlocks']} detector-confirmed deadlock(s)")
    for row in result["certified"]:
        print(f"{row['pair']:26s} {'CERTIFIED':10s}"
              " 0 deadlocks, 0 CWG knots under saturation")
    print("static verdicts and simulation agree on every cross-checked"
          " pair")


if __name__ == "__main__":
    main()
