"""Figure 6: load-rate distributions of the benchmark applications.

Replays each application trace through the 4x4-torus trace environment
(Section 4.2.1: 4 VCs, 16-message queues, Duato escape routing) and
histograms the injected network load per sampling interval as a fraction
of network capacity.  Paper observations reproduced here:

* FFT, LU, Water: network load stays under 5% of capacity for the vast
  majority of execution time (92-99% in the paper);
* Radix: the only application that drives load toward saturation
  (bursts up to ~30-40% of capacity; ~19% average).
"""

from __future__ import annotations

import numpy as np

from repro.config import SimConfig
from repro.experiments.common import get_scale
from repro.protocol.chains import MSI_COHERENCE
from repro.protocol.coherence import DirectoryMSI
from repro.sim.engine import Engine
from repro.traffic.splash import APP_MODELS, generate_app_trace
from repro.traffic.trace import TraceTraffic, trace_couplings

#: Load bands (fractions of capacity) used for the histogram.
BANDS = (0.05, 0.10, 0.15, 0.20, 0.30, 1.01)

MSI_TYPES = ("RQ", "FRQ", "FRP", "RP")


def simulate_app(
    app: str,
    duration: int,
    seed: int = 2,
    num_cpus: int = 16,
    sample_interval: int = 500,
    dims: tuple[int, ...] = (4, 4),
    bristling: int = 1,
    cwg_interval: int = 0,
):
    """Trace-driven run of one app; returns (engine, load samples)."""
    records = generate_app_trace(app, num_cpus, duration, seed=seed)
    coherence = DirectoryMSI(num_cpus)
    traffic = TraceTraffic(records, coherence)
    config = SimConfig(
        dims=dims,
        bristling=bristling,
        scheme="NONE",
        num_vcs=4,
        load=0.0,
        queue_mode="per-type",
        cwg_interval=cwg_interval,
    )
    engine = Engine(
        config,
        traffic=traffic,
        protocol=MSI_COHERENCE,
        types_used=MSI_TYPES,
        couplings=trace_couplings(),
    )
    engine.stats.enable_load_sampling(sample_interval)
    engine.stats.begin_window(0)
    engine.run(duration + 1000)
    engine.stats.end_window(engine.now)
    return engine, np.asarray(engine.stats.load_samples)


def run(scale: str = "smoke", seed: int = 2) -> dict:
    """{app: {"mean": float, "bands": [fraction per band], ...}}."""
    sc = get_scale(scale)
    out = {}
    for app in APP_MODELS:
        engine, samples = simulate_app(app, sc.trace_duration, seed=seed)
        cap = engine.topology.uniform_capacity()
        rel = samples / cap
        hist = []
        lo = 0.0
        for hi in BANDS:
            hist.append(float(((rel >= lo) & (rel < hi)).mean()))
            lo = hi
        out[app] = {
            "mean": float(rel.mean()),
            "max": float(rel.max()),
            "frac_below_5pct": float((rel < 0.05).mean()),
            "bands": hist,
        }
    return out


def main(scale: str = "smoke") -> None:
    rows = run(scale)
    labels = ["<5%", "5-10%", "10-15%", "15-20%", "20-30%", ">30%"]
    print("\n== Figure 6: load rate distributions (fraction of time) ==")
    print(f"{'App':8s} {'mean':>6s} {'max':>6s}  " + "  ".join(f"{lab:>7s}" for lab in labels))
    for app, row in rows.items():
        bands = "  ".join(f"{v*100:6.1f}%" for v in row["bands"])
        print(f"{app:8s} {row['mean']*100:5.1f}% {row['max']*100:5.1f}%  {bands}")


if __name__ == "__main__":
    main()
