"""Fault campaign: substrate x scheme x fault-model matrix.

Every cell injects one fault model into an otherwise healthy run — a
memory-controller (consumer) stall, a delayed-ejection port, a dead
link, a frozen router, or (PR only) a lost token — then drains the
system and audits the books.  The grid is **topology-aware**: every
(scheme, model) cell runs on the 4x4 torus, the 4x4 mesh (edge routers,
no wraparound) and the 9-router irregular graph (up*/down* escape), so
the drain/conservation guarantees are exercised where the routing
actually differs, not just on the symmetric substrate.  Reported per
cell:

* **detect** — detection latency: cycles from fault onset to the first
  detected deadlock (``-`` when the scheme never declared one; SA has no
  detector by design, it avoids instead);
* **recov** — recovery actions taken (DR deflections / PR rescues, plus
  ``+Nregen`` for PR token regenerations);
* **deliv** — messages delivered over the whole run;
* **lost** — the message-conservation delta after quiescing.

Hard guarantees enforced (the run *raises* on violation, so the smoke
job fails loudly): every cell drains completely once the fault clears,
and no cell loses or duplicates messages — in particular PR's no-kill
guarantee (the paper's Section 4.3.2: progressive recovery never
removes messages from the network).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimConfig
from repro.experiments.common import Scale, get_scale
from repro.faults.models import FaultSpec
from repro.sim.engine import Engine
from repro.sim.invariants import conservation_delta, format_dump


@dataclass(frozen=True)
class CampaignScale:
    """Run-size knobs for the fault campaign."""

    run_cycles: int
    fault_start: int
    fault_duration: int
    quiesce_cycles: int


_CAMPAIGN_SCALES = {
    "smoke": CampaignScale(
        run_cycles=4000, fault_start=600, fault_duration=2000,
        quiesce_cycles=100_000,
    ),
    "paper": CampaignScale(
        run_cycles=30_000, fault_start=2000, fault_duration=6000,
        quiesce_cycles=200_000,
    ),
}

#: fault models exercised against every scheme (token faults are PR-only).
_COMMON_MODELS = ("consumer-stall", "eject-stall", "link-stall", "router-freeze")

_SCHEMES = ("SA", "DR", "PR")

#: substrates the grid runs on.  Fault targets (router 5, link 3) are
#: interior/busy on all three: the smallest has 9 routers and 22+ links.
_SUBSTRATES = (
    ("torus4x4", {"topology": "torus", "dims": (4, 4)}),
    ("mesh2d4x4", {"topology": "mesh2d", "dims": (4, 4)}),
    ("irregular9", {"topology": "irregular", "dims": (4, 4)}),
)


#: per-scheme network/protocol configuration: each scheme runs its
#: paper-representative cell.  SA needs C >= 2L (PAT721's four-type
#: chains at 8 VCs); DR's detection heuristic needs MSHR headroom below
#: the reply-queue capacity (max_outstanding < queue_capacity), exactly
#: as in the Origin2000, so admission-time reservations cannot starve
#: the service-time ones.
_SCHEME_CONFIG = {
    "SA": {"pattern": "PAT721", "num_vcs": 8, "cwg_interval": 50},
    "DR": {"pattern": "PAT271", "num_vcs": 4, "max_outstanding": 12},
    "PR": {"pattern": "PAT271", "num_vcs": 4},
}


def _specs_for(model: str, cs: CampaignScale) -> tuple[FaultSpec, ...]:
    if model == "token-loss":
        return (FaultSpec("token-loss", start=cs.fault_start),)
    # Targets sit mid-fabric so the fault shadows real traffic:
    # node/router 5 is interior and link 3 carries busy flows on every
    # substrate in the grid (all have >= 9 routers and >= 22 links).
    target = {"link-stall": 3, "router-freeze": 5}.get(model, 5)
    return (
        FaultSpec(model, target=target, start=cs.fault_start,
                  duration=cs.fault_duration),
    )


def _run_cell(scheme: str, model: str, cs: CampaignScale, seed: int,
              tracer=None, substrate: dict | None = None,
              substrate_name: str = "torus4x4") -> dict:
    config = SimConfig(
        **(substrate if substrate is not None
           else {"topology": "torus", "dims": (4, 4)}),
        scheme=scheme,
        load=0.012,
        seed=seed,
        faults=_specs_for(model, cs),
        invariants_every=250,
        # Generous: transient faults stall progress for fault_duration
        # cycles at most, and a recovered system must move again.
        watchdog_timeout=max(4 * cs.fault_duration, 4000),
        **_SCHEME_CONFIG[scheme],
    )
    engine = Engine(config)
    if tracer is not None:
        engine.attach_tracer(tracer)
    engine.run(cs.run_cycles)
    drained = engine.quiesce(cs.quiesce_cycles)
    if not drained:
        raise RuntimeError(
            f"fault campaign cell {substrate_name}/{scheme}/{model}"
            f" failed to drain:\n" + format_dump(drained.dump)
        )
    lost = conservation_delta(engine)
    if lost != 0:
        raise RuntimeError(
            f"fault campaign cell {substrate_name}/{scheme}/{model}:"
            f" conservation delta {lost}"
            f" (messages {'lost' if lost > 0 else 'duplicated'})"
        )
    stats = engine.stats
    controller = getattr(engine.scheme, "controller", None)
    detect = (
        stats.first_deadlock_cycle - cs.fault_start
        if stats.first_deadlock_cycle >= 0 else None
    )
    regen = getattr(controller, "token_regenerations", 0)
    row = {
        "substrate": substrate_name,
        "scheme": scheme,
        "model": model,
        "detect_latency": detect,
        "recoveries": engine.scheme.recoveries,
        "token_regenerations": regen,
        "delivered": stats.total.messages_delivered,
        "lost": lost,
        "cwg_knots_seen": engine.cwg_knots_seen,
        "invariant_checks": engine.invariants.checks_run,
        "fault_activations": engine.faults.activation_counts(),
    }
    if scheme == "SA" and engine.cwg_knots_seen:
        # SA's whole claim is avoidance: a CWG knot under an endpoint
        # fault means the C >= 2L guarantee broke.
        raise RuntimeError(
            f"SA saw {engine.cwg_knots_seen} CWG knot(s) under {model}"
        )
    if scheme == "PR" and model == "token-loss" and regen == 0:
        raise RuntimeError("PR never regenerated the lost token")
    return row


def run(scale: str | Scale = "smoke", seed: int = 11) -> list[dict]:
    """Run the full campaign matrix; returns one row dict per cell."""
    name = scale if isinstance(scale, str) else get_scale(scale).name
    cs = _CAMPAIGN_SCALES[name]
    rows = []
    for substrate_name, substrate in _SUBSTRATES:
        for scheme in _SCHEMES:
            models = _COMMON_MODELS + (
                ("token-loss",) if scheme == "PR" else ()
            )
            for model in models:
                rows.append(_run_cell(
                    scheme, model, cs, seed, substrate=substrate,
                    substrate_name=substrate_name,
                ))
    return rows


def main(scale: str = "smoke") -> None:
    rows = run(scale)
    print("\n== Fault campaign: substrate x scheme x fault model ==")
    print(f"{'substrate':11s} {'scheme':7s} {'fault':15s} {'detect':>7s}"
          f" {'recov':>7s} {'deliv':>7s} {'lost':>5s}")
    for row in rows:
        detect = (
            f"{row['detect_latency']}c"
            if row["detect_latency"] is not None else "-"
        )
        recov = str(row["recoveries"])
        if row["token_regenerations"]:
            recov += f"+{row['token_regenerations']}regen"
        print(
            f"{row['substrate']:11s} {row['scheme']:7s} {row['model']:15s}"
            f" {detect:>7s} {recov:>7s}"
            f" {row['delivered']:7d} {row['lost']:5d}"
        )
    print("all cells drained on every substrate; conservation delta 0"
          " everywhere (PR no-kill guarantee holds)")


if __name__ == "__main__":
    main()
