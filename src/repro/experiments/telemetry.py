"""Telemetry experiment: traced DR and PR fault cells with episode tables.

Re-runs one DR and one PR fault-campaign cell (the consumer-stall model
of :mod:`repro.experiments.faults`) with a flit-level tracer attached,
then checks the acceptance properties of the telemetry subsystem:

* the exported Chrome/Perfetto trace-event JSON is structurally valid
  (required keys per phase, balanced async begin/end per message);
* episode stitching is deterministic — two identically seeded runs
  produce identical :class:`~repro.telemetry.episodes.RecoveryEpisode`
  records;
* the first episode's detection cycle matches the fault campaign's
  ``detect`` column (both observe ``SimStats.first_deadlock_cycle``).

Trace files land in ``results/telemetry/`` so a run's timeline can be
opened in https://ui.perfetto.dev directly after the experiment.
"""

from __future__ import annotations

import json
import os

from repro.experiments.common import Scale, get_scale
from repro.experiments.faults import _CAMPAIGN_SCALES, _run_cell
from repro.telemetry import (
    Tracer,
    export_perfetto,
    format_episodes,
    stitch_episodes,
)

#: cells traced: scheme -> fault model (both detect via consumer stall).
_CELLS = (("DR", "consumer-stall"), ("PR", "consumer-stall"))

OUTPUT_DIR = os.path.join("results", "telemetry")

#: required keys per trace-event phase.
_REQUIRED_KEYS = {
    "b": {"name", "cat", "id", "ts", "pid", "tid"},
    "e": {"name", "cat", "id", "ts", "pid", "tid"},
    "n": {"name", "cat", "id", "ts", "pid", "tid"},
    "i": {"name", "ts", "pid", "tid", "s"},
    "C": {"name", "ts", "pid", "args"},
    "M": {"name", "pid", "args"},
}


def validate_perfetto(trace: dict) -> None:
    """Raise ``AssertionError`` unless ``trace`` is loadable trace JSON."""
    events = trace["traceEvents"]
    assert events, "empty traceEvents"
    open_spans: dict[tuple[str, int], int] = {}
    last_ts = None
    for event in events:
        ph = event.get("ph")
        assert ph in _REQUIRED_KEYS, f"unknown phase {ph!r}"
        missing = _REQUIRED_KEYS[ph] - set(event)
        assert not missing, f"{ph!r} event missing {sorted(missing)}"
        if ph != "M":
            assert isinstance(event["ts"], int) and event["ts"] >= 0
        if ph == "b":
            key = (event["cat"], event["id"])
            open_spans[key] = open_spans.get(key, 0) + 1
        elif ph == "e":
            key = (event["cat"], event["id"])
            assert open_spans.get(key, 0) > 0, f"end without begin: {key}"
            open_spans[key] -= 1
        elif ph == "n":
            key = (event["cat"], event["id"])
            assert open_spans.get(key, 0) > 0, f"instant outside span: {key}"
        last_ts = event.get("ts", last_ts)
    unbalanced = {k: v for k, v in open_spans.items() if v}
    assert not unbalanced, f"unterminated spans: {unbalanced}"
    # Must round-trip as JSON (what chrome://tracing actually parses).
    json.loads(json.dumps(trace))


def _traced_cell(scheme: str, model: str, cs, seed: int):
    tracer = Tracer(level="flit", sample_every=100)
    row = _run_cell(scheme, model, cs, seed, tracer=tracer)
    return row, tracer


def run(scale: str | Scale = "smoke", seed: int = 11) -> list[dict]:
    """Run the traced cells; returns one row dict per cell."""
    name = scale if isinstance(scale, str) else get_scale(scale).name
    cs = _CAMPAIGN_SCALES[name]
    out_rows = []
    for scheme, model in _CELLS:
        row, tracer = _traced_cell(scheme, model, cs, seed)
        episodes = stitch_episodes(tracer)

        # Determinism: a second identically seeded traced run must
        # reconstruct byte-identical episodes.
        row2, tracer2 = _traced_cell(scheme, model, cs, seed)
        episodes2 = stitch_episodes(tracer2)
        dicts = [epi.to_dict() for epi in episodes]
        assert dicts == [epi.to_dict() for epi in episodes2], (
            f"{scheme}/{model}: episodes differ between identical runs"
        )

        # The first episode's detection is the campaign's detect column.
        if row["detect_latency"] is not None:
            assert episodes, f"{scheme}/{model}: deadlock but no episodes"
            first = episodes[0]
            got = first.detection_cycle - cs.fault_start
            assert got == row["detect_latency"], (
                f"{scheme}/{model}: episode detect {got} !="
                f" campaign detect {row['detect_latency']}"
            )

        os.makedirs(OUTPUT_DIR, exist_ok=True)
        path = os.path.join(OUTPUT_DIR, f"{scheme}_{model}_{name}.json")
        trace = export_perfetto(tracer, path)
        validate_perfetto(trace)

        row["episodes"] = dicts
        row["events_recorded"] = tracer.events_recorded
        row["dropped_events"] = tracer.dropped_events
        row["trace_path"] = path
        out_rows.append((row, episodes))
    return out_rows


def main(scale: str = "smoke") -> None:
    rows = run(scale)
    print("\n== Telemetry: traced fault cells, recovery episodes ==")
    for row, episodes in rows:
        detect = (
            f"{row['detect_latency']}c"
            if row["detect_latency"] is not None else "-"
        )
        print(f"\n{row['scheme']}/{row['model']}: detect={detect}"
              f" recoveries={row['recoveries']}"
              f" events={row['events_recorded']}"
              f" (dropped {row['dropped_events']})")
        print(format_episodes(episodes))
        print(f"trace: {row['trace_path']} (open in ui.perfetto.dev)")
    print("\nperfetto traces valid; episodes deterministic; detection"
          " latencies match the fault campaign")


if __name__ == "__main__":
    main()
