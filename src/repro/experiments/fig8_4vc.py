"""Figure 8: throughput/latency with 4 virtual channels per link.

8x8 bidirectional torus, panels (a)-(e) = PAT100/721/451/271/280.
With only 4 VCs, SA is infeasible for chains longer than two (needs
``C >= 2L``), so SA appears only in the PAT100 panel and DR is absent
there (two-type protocols make DR degenerate).  Paper findings this
module reproduces: PR yields substantially more throughput than DR
(up to ~2x for PAT721) and than SA for PAT100, because partitioning so
few channels starves the avoidance-based schemes.
"""

from __future__ import annotations

from repro.experiments.figures import (
    PANEL_PATTERNS,
    print_figure,
    run_figure,
    saturation_by_scheme,
)

NUM_VCS = 4


def run(scale: str = "smoke", seed: int = 1) -> dict:
    return run_figure(NUM_VCS, PANEL_PATTERNS, scale, seed=seed)


def main(scale: str = "smoke") -> None:
    panels = run(scale)
    print_figure(f"Figure 8 ({NUM_VCS} VCs)", panels)
    print("\nSaturation summary:", saturation_by_scheme(panels))


if __name__ == "__main__":
    main()
