"""Shared experiment infrastructure: scales, load grids, curve helpers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ExecutionConfig, SimConfig
from repro.sim.results import SweepResult
from repro.sim.sweep import run_sweep


@dataclass(frozen=True)
class Scale:
    """Run-size knobs for an experiment."""

    name: str
    warmup: int
    measure: int
    #: number of points on each load sweep
    sweep_points: int
    #: trace length (cycles) for the characterization experiments
    trace_duration: int


SCALES: dict[str, Scale] = {
    # Fast enough for the benchmark suite; shapes still assertable.
    "smoke": Scale("smoke", warmup=1500, measure=3000, sweep_points=5,
                   trace_duration=20_000),
    # The paper's setup: 30,000 cycles beyond steady state.
    "paper": Scale("paper", warmup=5000, measure=30_000, sweep_points=9,
                   trace_duration=60_000),
}


def get_scale(scale: str | Scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    return SCALES[scale]


def load_grid(scale: Scale, max_load: float) -> list[float]:
    """Evenly spaced applied loads from light traffic to past saturation."""
    n = scale.sweep_points
    return [max_load * (i + 1) / n for i in range(n)]


#: Applied-load ceilings by VC count: enough to drive every scheme past
#: saturation on the 8x8 torus without wasting runtime deep in collapse.
MAX_LOAD_BY_VCS = {4: 0.016, 8: 0.020, 16: 0.024, 64: 0.024}


def sweep_scheme(
    scheme: str,
    pattern: str,
    num_vcs: int,
    scale: Scale,
    seed: int = 1,
    queue_mode: str = "auto",
    execution: ExecutionConfig | None = None,
    **config_kwargs,
) -> SweepResult:
    """One Burton-Normal-Form curve for a (scheme, pattern, C) cell.

    ``execution`` (workers, caching, progress) defaults to the
    process-wide policy installed by the CLI/runner; see
    :mod:`repro.sim.parallel`.
    """
    config = SimConfig(
        scheme=scheme,
        pattern=pattern,
        num_vcs=num_vcs,
        queue_mode=queue_mode,
        seed=seed,
        **config_kwargs,
    )
    loads = load_grid(scale, MAX_LOAD_BY_VCS.get(num_vcs, 0.02))
    label = f"{scheme}{'-QA' if queue_mode == 'per-type' else ''}/{pattern}/{num_vcs}vc"
    return run_sweep(
        config,
        loads,
        warmup=scale.warmup,
        measure=scale.measure,
        label=label,
        execution=execution,
    )


def print_curves(title: str, sweeps: list[SweepResult]) -> None:
    print(f"\n== {title} ==")
    for s in sweeps:
        pts = "  ".join(
            f"{p.load:.4f}:{p.throughput_fpc:.3f}fpc/{p.mean_latency:.0f}cyc"
            for p in s.points
        )
        print(f"{s.label:24s} sat={s.saturation_throughput():.3f}  {pts}")
