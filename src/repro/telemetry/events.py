"""The ring-buffer tracer: typed events recorded through narrow hooks.

Every event is a ``(cycle, kind, payload)`` tuple appended to a
``deque(maxlen=capacity)`` — a true ring buffer, so an always-on trace
of a long run keeps the most recent window instead of growing without
bound (``events_recorded`` still counts everything, so exporters can
report how many events were dropped).

Messages are identified by *local* ids assigned on first sight
(:meth:`Tracer._mid`): unlike the process-global ``Message.uid``, local
ids are deterministic per run, so two identically seeded runs produce
byte-identical traces — the property the telemetry tests pin.

Hook sites live in ``sim/engine.py`` (sampling), ``network/fabric.py``
(blocked/unblocked/VC grants/injection), ``endpoint/{interface,
controller}.py`` (lifecycle), ``core/{schemes,deflection,progressive,
token}.py`` (detection and recovery) and ``faults/injector.py``; each
site guards its call with one ``if tracer is not None`` test, which is
all the healthy untraced hot path ever pays.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.telemetry.samplers import MetricsSampler
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocol.message import Message

#: supported trace levels: ``message`` records lifecycle, detection,
#: recovery and fault events; ``flit`` additionally records per-hop
#: token movement and VC grants.
TRACE_LEVELS = ("message", "flit")

# -- event kinds --------------------------------------------------------
CREATED = "created"
ADMITTED = "admitted"
INJECTED = "injected"
BLOCKED = "blocked"
UNBLOCKED = "unblocked"
VC_GRANT = "vc_grant"
DELIVERED = "delivered"
CONSUMED = "consumed"
DETECT = "detect"
PROBE_SEND = "probe_send"
PROBE_FORWARD = "probe_forward"
PROBE_RETURN = "probe_return"
PROBE_DROP = "probe_drop"
DEFLECT = "deflect"
TOKEN_HOP = "token_hop"
TOKEN_CAPTURE = "token_capture"
TOKEN_RELEASE = "token_release"
TOKEN_REGEN = "token_regen"
RESCUE_LEG = "rescue_leg"
FAULT_APPLIED = "fault_applied"
FAULT_REVOKED = "fault_revoked"

# -- farm event kinds (campaign orchestration, not simulation) ----------
# Recorded by :class:`repro.farm.manager.FarmManager` with millisecond
# timestamps relative to campaign start instead of engine cycles; a farm
# tracer is never attached to an engine, so the two time bases never mix
# inside one ring buffer.
FARM_DISPATCH = "farm_dispatch"
FARM_HEARTBEAT = "farm_heartbeat"
FARM_SHARD_DONE = "farm_shard_done"
FARM_SHARD_FAILED = "farm_shard_failed"
FARM_BACKOFF = "farm_backoff"
FARM_SUSPECT = "farm_suspect"
FARM_QUARANTINE = "farm_quarantine"
FARM_PROBATION = "farm_probation"
FARM_REDISPATCH = "farm_redispatch"
FARM_MERGE = "farm_merge"

FARM_EVENT_KINDS = (
    FARM_DISPATCH, FARM_HEARTBEAT, FARM_SHARD_DONE, FARM_SHARD_FAILED,
    FARM_BACKOFF, FARM_SUSPECT, FARM_QUARANTINE, FARM_PROBATION,
    FARM_REDISPATCH, FARM_MERGE,
)

EVENT_KINDS = (
    CREATED, ADMITTED, INJECTED, BLOCKED, UNBLOCKED, VC_GRANT, DELIVERED,
    CONSUMED, DETECT, PROBE_SEND, PROBE_FORWARD, PROBE_RETURN, PROBE_DROP,
    DEFLECT, TOKEN_HOP, TOKEN_CAPTURE, TOKEN_RELEASE,
    TOKEN_REGEN, RESCUE_LEG, FAULT_APPLIED, FAULT_REVOKED,
    *FARM_EVENT_KINDS,
)

#: default ring capacity: roomy enough for any smoke run, bounded for
#: always-on tracing of long campaigns.
DEFAULT_CAPACITY = 1_000_000


def message_label(msg: "Message") -> str:
    """Uid-free message label, stable across identically seeded runs."""
    return f"{msg.mtype.name} {msg.src}->{msg.dst} @{msg.created_cycle}"


class Tracer:
    """Records typed events and periodic metric samples for one engine.

    Parameters
    ----------
    level:
        ``"message"`` (default) or ``"flit"`` (adds VC grants and
        per-hop token movement).
    sample_every:
        Sampling interval in cycles for the time-series metrics
        (0 = no sampling).
    capacity:
        Ring-buffer size in events; the oldest events are dropped once
        the buffer is full.
    """

    def __init__(
        self,
        level: str = "message",
        sample_every: int = 0,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if level not in TRACE_LEVELS:
            raise ConfigurationError(
                f"trace level {level!r} not in {TRACE_LEVELS}"
            )
        if sample_every < 0:
            raise ConfigurationError("sample_every must be >= 0")
        if capacity < 1:
            raise ConfigurationError("trace capacity must be positive")
        self.level = level
        self.flit_level = level == "flit"
        self.sample_every = sample_every
        self.capacity = capacity
        self.events: deque[tuple[int, str, dict[str, Any]]] = deque(
            maxlen=capacity
        )
        self.samples: list[dict[str, Any]] = []
        #: total events recorded, including any dropped from the ring.
        self.events_recorded = 0
        self.last_cycle = 0
        self.engine = None
        self._sampler: MetricsSampler | None = None
        #: Message.uid -> deterministic local message id.
        self._ids: dict[int, int] = {}
        #: uid -> label, so episode stitching survives ring-buffer drops.
        self._labels: dict[int, str] = {}
        #: local ids of messages currently inside a blocked episode.
        self._blocked: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, engine) -> None:
        """Install this tracer on every hook site of ``engine``.

        Called by :meth:`repro.sim.engine.Engine.attach_tracer`; safe to
        call once per engine.  The hook attributes default to ``None``
        in each class, so an unattached engine pays only truthiness
        tests.
        """
        self.engine = engine
        engine.fabric.tracer = self
        for ni in engine.interfaces:
            ni.tracer = self
            ni.controller.tracer = self
        scheme = engine.scheme
        scheme.tracer = self
        detector = getattr(scheme, "detector", None)
        if detector is not None:
            detector.tracer = self
        controller = getattr(scheme, "controller", None)
        if controller is not None:
            controller.tracer = self
            token = getattr(controller, "token", None)
            if token is not None:
                token.tracer = self
        self._sampler = MetricsSampler(engine)

    @property
    def dropped_events(self) -> int:
        """Events that fell out of the ring buffer."""
        return self.events_recorded - len(self.events)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _record(self, cycle: int, kind: str, payload: dict[str, Any]) -> None:
        self.events.append((cycle, kind, payload))
        self.events_recorded += 1
        if cycle > self.last_cycle:
            self.last_cycle = cycle

    def _mid(self, msg: "Message") -> int:
        """Deterministic local id for ``msg`` (assigned on first sight)."""
        mid = self._ids.get(msg.uid)
        if mid is None:
            mid = self._ids[msg.uid] = len(self._ids)
            self._labels[mid] = message_label(msg)
        return mid

    def label_of(self, mid: int) -> str:
        """Uid-free label of a locally identified message."""
        return self._labels.get(mid, f"msg#{mid}")

    # ------------------------------------------------------------------
    # Message lifecycle hooks
    # ------------------------------------------------------------------
    def message_created(self, msg, now: int) -> None:
        self._record(now, CREATED, {
            "mid": self._mid(msg), "mtype": msg.mtype.name,
            "src": msg.src, "dst": msg.dst, "size": msg.size,
        })

    def message_admitted(self, msg, now: int) -> None:
        self._record(now, ADMITTED, {"mid": self._mid(msg), "node": msg.src})

    def message_injected(self, msg, now: int) -> None:
        self._record(now, INJECTED, {
            "mid": self._mid(msg), "node": msg.src, "vc_class": msg.vc_class,
        })

    def message_blocked(self, msg, router: int, now: int) -> None:
        """Open a blocked episode (deduplicated per frontier episode)."""
        mid = self._mid(msg)
        if mid in self._blocked:
            return
        self._blocked[mid] = now
        self._record(now, BLOCKED, {"mid": mid, "router": router})

    def message_unblocked(self, msg, now: int) -> None:
        """Close the blocked episode opened by :meth:`message_blocked`."""
        mid = self._mid(msg)
        since = self._blocked.pop(mid, None)
        if since is None:
            return
        self._record(now, UNBLOCKED, {"mid": mid, "since": since})

    def vc_granted(self, msg, router: int, vc, now: int) -> None:
        """Allocation success: close the blocked span, log the grant."""
        self.message_unblocked(msg, now)
        if self.flit_level:
            self._record(now, VC_GRANT, {
                "mid": self._mid(msg), "router": router,
                "link": vc.link.lid, "vc": vc.index,
            })

    def message_delivered(self, msg, now: int) -> None:
        self._record(now, DELIVERED, {
            "mid": self._mid(msg), "node": msg.dst,
            "rescued": msg.rescued,
        })

    def message_consumed(self, msg, now: int) -> None:
        self._record(now, CONSUMED, {"mid": self._mid(msg), "node": msg.dst})

    # ------------------------------------------------------------------
    # Detection / recovery hooks
    # ------------------------------------------------------------------
    def detection(self, node: int, in_cls: int, out_cls: int,
                  since: int, now: int) -> None:
        """An endpoint detector's first firing of a stalled episode."""
        self._record(now, DETECT, {
            "node": node, "in_cls": in_cls, "out_cls": out_cls,
            "since": since,
        })

    def _probe_event(self, kind: str, probe, now: int) -> None:
        self._record(now, kind, {
            "mid": self._mid(probe.message),
            "initiator": probe.initiator, "src": probe.src, "dst": probe.dst,
            "in_cls": probe.in_cls, "out_cls": probe.out_cls,
            "forwards": probe.forwards,
        })

    def probe_sent(self, probe, now: int) -> None:
        """CMH: a blocked initiator launched one probe of a chase wave."""
        self._probe_event(PROBE_SEND, probe, now)

    def probe_forwarded(self, probe, now: int) -> None:
        """CMH: a blocked node continued a chase along a wait-for edge."""
        self._probe_event(PROBE_FORWARD, probe, now)

    def probe_returned(self, probe, now: int) -> None:
        """CMH: a probe closed its cycle — the initiator declares."""
        self._probe_event(PROBE_RETURN, probe, now)

    def probe_dropped(self, probe, now: int) -> None:
        """CMH: a probe died (receiver unblocked, engaged, or stale)."""
        self._probe_event(PROBE_DROP, probe, now)

    def deflection(self, node: int, head, brp, since: int, now: int) -> None:
        """DR recovery: ``head`` deflected back to its requester as ``brp``.

        The deflection consumes the head in place (it never reaches the
        memory controller) and creates the BRP outside the endpoint's
        subordinate path, so both lifecycle events are recorded here.
        """
        self.message_created(brp, now)
        self._record(now, DEFLECT, {
            "node": node,
            "head_mid": self._mid(head), "head": message_label(head),
            "brp_mid": self._mid(brp), "brp": message_label(brp),
            "since": since,
        })
        self.message_consumed(head, now)

    def token_hop(self, stop, now: int) -> None:
        """Flit-level only: one stop of token circulation per cycle."""
        if self.flit_level:
            self._record(now, TOKEN_HOP, {
                "kind": stop.kind, "ident": stop.ident,
            })

    def token_captured(self, stop, msg, since: int, now: int) -> None:
        self._record(now, TOKEN_CAPTURE, {
            "kind": stop.kind, "ident": stop.ident,
            "mid": self._mid(msg), "message": message_label(msg),
            "since": since,
        })

    def token_released(self, stop, now: int) -> None:
        payload = {}
        if stop is not None:
            payload = {"kind": stop.kind, "ident": stop.ident}
        self._record(now, TOKEN_RELEASE, payload)

    def token_regenerated(self, now: int) -> None:
        self._record(now, TOKEN_REGEN, {})

    def rescue_leg(self, msg, src_router: int, dst_router: int,
                   phase: str, now: int) -> None:
        """PR lane traffic: ``phase`` is ``start`` or ``arrival``."""
        self._record(now, RESCUE_LEG, {
            "mid": self._mid(msg), "src_router": src_router,
            "dst_router": dst_router, "phase": phase,
        })

    # ------------------------------------------------------------------
    # Farm hooks (campaign orchestration; ``now`` is a millisecond
    # offset from campaign start, not an engine cycle — farm tracers are
    # standalone and never attached to an engine)
    # ------------------------------------------------------------------
    def farm_event(self, kind: str, now: int, **payload: Any) -> None:
        """Record one farm orchestration event (dispatch, health, merge)."""
        if kind not in FARM_EVENT_KINDS:
            raise ConfigurationError(
                f"farm event kind {kind!r} not in {FARM_EVENT_KINDS}"
            )
        self._record(int(now), kind, payload)

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------
    def fault_applied(self, description: str, now: int) -> None:
        self._record(now, FAULT_APPLIED, {"fault": description})

    def fault_revoked(self, description: str, now: int) -> None:
        self._record(now, FAULT_REVOKED, {"fault": description})

    # ------------------------------------------------------------------
    # Per-cycle sampling (driven by Engine.step)
    # ------------------------------------------------------------------
    def on_cycle(self, now: int) -> None:
        if now > self.last_cycle:
            self.last_cycle = now
        if (
            self.sample_every
            and self._sampler is not None
            and now % self.sample_every == 0
        ):
            self.samples.append(self._sampler.sample(now))
