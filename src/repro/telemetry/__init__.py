"""Event tracing, time-series metrics, and recovery-episode timelines.

The paper's claims are *temporal* — how fast each scheme detects and
resolves message-dependent deadlock — yet aggregate counters cannot
show a single detection firing or token hop.  This subsystem records
typed events into a bounded ring buffer through narrow hooks in the
engine, fabric, endpoint, scheme, token and fault layers (each hook
costs one ``is None`` test when tracing is off), samples time-series
metrics at a configurable interval, and exports both as:

* Chrome/Perfetto trace-event JSON (:func:`export_perfetto`) —
  messages as async spans, routers/NIs/recovery as tracks, sampled
  metrics as counter tracks; loads directly in ``chrome://tracing`` or
  https://ui.perfetto.dev;
* CSV / JSON time series (:func:`export_timeseries_csv`,
  :func:`export_timeseries_json`);
* per-deadlock :class:`RecoveryEpisode` records
  (:func:`stitch_episodes`) — formation → detection → resolution →
  drain timelines consumed by the ``telemetry`` experiment and attached
  to :func:`repro.sim.invariants.format_dump`.

Attach with ``engine.attach_tracer(Tracer(level="message"))``; trace
level ``"flit"`` additionally records VC grants and token hops.
"""

from repro.telemetry.episodes import (
    RecoveryEpisode,
    format_episodes,
    stitch_episodes,
)
from repro.telemetry.events import TRACE_LEVELS, Tracer
from repro.telemetry.export import (
    export_perfetto,
    export_timeseries_csv,
    export_timeseries_json,
    to_perfetto,
)
from repro.telemetry.samplers import MetricsSampler

__all__ = [
    "TRACE_LEVELS",
    "Tracer",
    "MetricsSampler",
    "RecoveryEpisode",
    "stitch_episodes",
    "format_episodes",
    "to_perfetto",
    "export_perfetto",
    "export_timeseries_csv",
    "export_timeseries_json",
]
