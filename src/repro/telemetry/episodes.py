"""Fold traced events into per-deadlock :class:`RecoveryEpisode` records.

An episode is one wave of message-dependent deadlock, reconstructed
from the trace as **formation → detection → resolution → drain**:

* *formation* — the earliest condition onset (the ``since`` field of a
  detection/recovery event: when the detector's timeout countdown, the
  deflection head's stall, or the captured message's block began);
* *detection* — the first scheme *action* cycle (a DR deflection or a
  PR token capture; for detection-only schemes, the detector firing).
  This is the cycle :meth:`SimStats.on_deadlock` records, so episode 0's
  detection matches the fault campaign's ``detect`` column;
* *resolution* — when recovery pushed its fix: the first BRP deflection
  (DR, same cycle as detection) or the token release ending the rescue
  (PR);
* *drain* — when every message the episode touched was consumed.

Recovery events with a ``since`` at or before the current episode's
resolution belong to the same wave; a later onset starts a new episode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.telemetry import events as ev


@dataclass
class RecoveryEpisode:
    """One deadlock's reconstructed timeline and traffic bill.

    ``formation_cycle`` may be ``None`` when the detection event carried
    no onset (``since``) information — a detector firing with no queue
    history, e.g. declared on a cycle with zero live messages.
    """

    index: int
    formation_cycle: int | None
    detection_cycle: int
    resolution_cycle: int | None = None
    drain_cycle: int | None = None
    detections: int = 0
    deflections: int = 0
    captures: int = 0
    releases: int = 0
    rescue_legs: int = 0
    #: CMH probe messages observed during this episode's window.
    probes: int = 0
    #: local ids of messages the episode touched (victims + BRPs).
    involved: list[int] = field(default_factory=list)
    #: labels for ``involved``, index-aligned.
    involved_labels: list[str] = field(default_factory=list)
    #: local ids of extra traffic the recovery itself generated (BRPs).
    extra_messages: list[int] = field(default_factory=list)

    # -- latencies -----------------------------------------------------
    @property
    def detection_latency(self) -> int | None:
        """Cycles from condition formation to the scheme's first action."""
        if self.formation_cycle is None:
            return None
        return self.detection_cycle - self.formation_cycle

    @property
    def resolution_latency(self) -> int | None:
        """Cycles from detection to the recovery push (0 for DR)."""
        if self.resolution_cycle is None:
            return None
        return self.resolution_cycle - self.detection_cycle

    @property
    def drain_latency(self) -> int | None:
        """Cycles from resolution until every involved message drained."""
        if self.drain_cycle is None or self.resolution_cycle is None:
            return None
        return self.drain_cycle - self.resolution_cycle

    @property
    def resolved(self) -> bool:
        return self.resolution_cycle is not None

    @property
    def drained(self) -> bool:
        return self.drain_cycle is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "formation_cycle": self.formation_cycle,
            "detection_cycle": self.detection_cycle,
            "resolution_cycle": self.resolution_cycle,
            "drain_cycle": self.drain_cycle,
            "detection_latency": self.detection_latency,
            "resolution_latency": self.resolution_latency,
            "drain_latency": self.drain_latency,
            "detections": self.detections,
            "deflections": self.deflections,
            "captures": self.captures,
            "releases": self.releases,
            "rescue_legs": self.rescue_legs,
            "probes": self.probes,
            "involved": list(self.involved_labels),
            "extra_messages": len(self.extra_messages),
        }


_PROBE_KINDS = frozenset(
    (ev.PROBE_SEND, ev.PROBE_FORWARD, ev.PROBE_RETURN, ev.PROBE_DROP)
)


class _Stitcher:
    """Single forward pass over the ring buffer."""

    def __init__(self) -> None:
        self.episodes: list[RecoveryEpisode] = []
        self.current: RecoveryEpisode | None = None
        #: episode -> set of involved mids not yet consumed.
        self.pending: dict[int, set[int]] = {}
        #: probe events seen before any episode opened.
        self._probe_backlog = 0

    # -- episode bookkeeping -------------------------------------------
    def _open_or_extend(self, since: int | None, cycle: int) -> RecoveryEpisode:
        epi = self.current
        onset = cycle if since is None else since
        if epi is not None and (
            epi.resolution_cycle is None or onset <= epi.resolution_cycle
        ):
            if since is not None and (
                epi.formation_cycle is None or since < epi.formation_cycle
            ):
                epi.formation_cycle = since
            return epi
        epi = RecoveryEpisode(
            index=len(self.episodes),
            formation_cycle=since,
            detection_cycle=cycle,
            probes=self._probe_backlog,
        )
        self._probe_backlog = 0
        self.episodes.append(epi)
        self.pending[epi.index] = set()
        self.current = epi
        return epi

    def _involve(self, epi: RecoveryEpisode, mid: int, label: str) -> None:
        if mid not in epi.involved:
            epi.involved.append(mid)
            epi.involved_labels.append(label)
            self.pending[epi.index].add(mid)

    # -- event dispatch ------------------------------------------------
    def feed(self, cycle: int, kind: str, payload: dict, label_of) -> None:
        if kind == ev.DETECT:
            epi = self._open_or_extend(payload.get("since"), cycle)
            epi.detections += 1
        elif kind in _PROBE_KINDS:
            # Probe traffic bills to the wave it is chasing: the open
            # episode if any, otherwise the next one to open.
            if self.current is not None:
                self.current.probes += 1
            else:
                self._probe_backlog += 1
        elif kind == ev.DEFLECT:
            epi = self._open_or_extend(payload["since"], cycle)
            epi.deflections += 1
            self._involve(epi, payload["head_mid"], payload["head"])
            self._involve(epi, payload["brp_mid"], payload["brp"])
            if payload["brp_mid"] not in epi.extra_messages:
                epi.extra_messages.append(payload["brp_mid"])
            if epi.resolution_cycle is None:
                epi.resolution_cycle = cycle
        elif kind == ev.TOKEN_CAPTURE:
            epi = self._open_or_extend(payload["since"], cycle)
            epi.captures += 1
            self._involve(epi, payload["mid"], payload["message"])
        elif kind == ev.TOKEN_RELEASE:
            epi = self.current
            if epi is not None:
                epi.releases += 1
                if epi.resolution_cycle is None:
                    epi.resolution_cycle = cycle
        elif kind == ev.RESCUE_LEG:
            epi = self.current
            if epi is not None and payload["phase"] == "start":
                epi.rescue_legs += 1
                self._involve(epi, payload["mid"], label_of(payload["mid"]))
        elif kind == ev.CONSUMED:
            mid = payload["mid"]
            for epi in self.episodes:
                waiting = self.pending[epi.index]
                if mid in waiting:
                    waiting.discard(mid)
                    if not waiting and epi.resolved:
                        epi.drain_cycle = cycle


def stitch_episodes(tracer) -> list[RecoveryEpisode]:
    """Reconstruct deadlock episodes from a tracer's ring buffer."""
    stitcher = _Stitcher()
    for cycle, kind, payload in tracer.events:
        stitcher.feed(cycle, kind, payload, tracer.label_of)
    return stitcher.episodes


_COLUMNS = (
    ("ep", lambda e: str(e.index)),
    ("form", lambda e: "-" if e.formation_cycle is None
     else str(e.formation_cycle)),
    ("detect", lambda e: str(e.detection_cycle)),
    ("resolve", lambda e: "-" if e.resolution_cycle is None
     else str(e.resolution_cycle)),
    ("drain", lambda e: "-" if e.drain_cycle is None
     else str(e.drain_cycle)),
    ("d.lat", lambda e: "-" if e.detection_latency is None
     else str(e.detection_latency)),
    ("r.lat", lambda e: "-" if e.resolution_latency is None
     else str(e.resolution_latency)),
    ("msgs", lambda e: str(len(e.involved))),
    ("brp", lambda e: str(len(e.extra_messages))),
    ("legs", lambda e: str(e.rescue_legs)),
    ("probes", lambda e: str(e.probes)),
)


def format_episodes(episodes: list[RecoveryEpisode]) -> str:
    """Render episodes as an aligned table (dump / experiment output)."""
    if not episodes:
        return "no recovery episodes"
    headers = [name for name, _ in _COLUMNS]
    rows = [[fmt(e) for _, fmt in _COLUMNS] for e in episodes]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
