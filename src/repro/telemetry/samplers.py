"""Periodic time-series samplers over a live engine.

One :class:`MetricsSampler` snapshot per ``sample_every`` cycles
captures what the aggregate end-of-run counters cannot: per-channel
utilization, per-NI queue occupancy split into occupied/held/reserved
slots, the live-message count, and the PR token position.  Sampling
runs only while a tracer is attached with ``sample_every > 0``; the
scan cost is paid at sample time, never in the cycle loop.
"""

from __future__ import annotations

from typing import Any


class MetricsSampler:
    """Scans an engine into one JSON-able sample dict per call."""

    def __init__(self, engine) -> None:
        self.engine = engine
        self.num_links = len(engine.topology.links)

    def sample(self, now: int) -> dict[str, Any]:
        engine = self.engine
        fabric = engine.fabric
        stats = engine.stats

        busy_links = len(fabric._busy_links)
        # Per-NI queue occupancy, input and output banks combined:
        # (occupied, held, reserved) per node.
        ni_occupancy: list[tuple[int, int, int]] = []
        for ni in engine.interfaces:
            occupied = held = reserved = 0
            for bank in (ni.in_bank, ni.out_bank):
                for q in bank:
                    occupied += len(q.entries)
                    held += q.held
                    reserved += q.reserved
            ni_occupancy.append((occupied, held, reserved))

        sample: dict[str, Any] = {
            "cycle": now,
            "busy_links": busy_links,
            "channel_utilization": (
                busy_links / self.num_links if self.num_links else 0.0
            ),
            "flit_occupancy": fabric.occupancy(),
            "live_messages": (
                stats.messages_created - stats.total.messages_consumed
            ),
            "blocked_frontiers": sum(
                1 for s in fabric.pending
                if s.owner is not None and s.next_sink is None
                and s.owner.blocked_since >= 0
            ),
            "ni_occupancy": ni_occupancy,
        }
        controller = getattr(engine.scheme, "controller", None)
        token = getattr(controller, "token", None)
        if token is not None:
            sample["token_pos"] = token.pos
            sample["token_state"] = token.state
        return sample
