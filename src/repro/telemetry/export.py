"""Exporters: Chrome/Perfetto trace-event JSON and CSV/JSON time series.

The Perfetto export follows the Trace Event Format (the JSON flavour
accepted by both ``chrome://tracing`` and https://ui.perfetto.dev):

* each traced message becomes an **async span** (``ph`` ``b``/``n``/``e``
  keyed by ``cat`` + ``id``) from creation to consumption, with its
  lifecycle milestones as nested instants;
* blocked episodes become a second async series per message, so stalls
  render as sub-spans under the message;
* detection, recovery, token and fault events become **instants**
  (``ph`` ``i``) on dedicated scheme/token/fault tracks;
* sampled metrics become **counter tracks** (``ph`` ``C``).

Cycle numbers map 1:1 onto the format's microsecond timestamps, so one
trace "µs" is one simulated cycle.
"""

from __future__ import annotations

import csv
import json
from typing import Any

from repro.telemetry import events as ev

#: process ids for the Perfetto track layout.
PID_MESSAGES = 1
PID_SCHEME = 2
PID_METRICS = 3
PID_FARM = 4

#: threads inside the scheme process.
TID_DETECTION = 1
TID_RECOVERY = 2
TID_TOKEN = 3
TID_FAULTS = 4

_INSTANT_TRACKS = {
    ev.DETECT: ("detect", TID_DETECTION),
    ev.PROBE_SEND: ("probe_send", TID_DETECTION),
    ev.PROBE_FORWARD: ("probe_forward", TID_DETECTION),
    ev.PROBE_RETURN: ("probe_return", TID_DETECTION),
    ev.PROBE_DROP: ("probe_drop", TID_DETECTION),
    ev.DEFLECT: ("deflect", TID_RECOVERY),
    ev.RESCUE_LEG: ("rescue_leg", TID_RECOVERY),
    ev.VC_GRANT: ("vc_grant", TID_RECOVERY),
    ev.TOKEN_HOP: ("token_hop", TID_TOKEN),
    ev.TOKEN_CAPTURE: ("token_capture", TID_TOKEN),
    ev.TOKEN_RELEASE: ("token_release", TID_TOKEN),
    ev.TOKEN_REGEN: ("token_regen", TID_TOKEN),
    ev.FAULT_APPLIED: ("fault_applied", TID_FAULTS),
    ev.FAULT_REVOKED: ("fault_revoked", TID_FAULTS),
}

#: lifecycle milestones rendered as instants nested inside the span.
_SPAN_MILESTONES = (ev.ADMITTED, ev.INJECTED, ev.DELIVERED)

#: campaign-level farm events rendered on the farm process's thread 0;
#: host-attributed events get one thread per host (assigned on first
#: sight) so each machine reads as its own timeline row.
_FARM_CAMPAIGN_KINDS = (ev.FARM_MERGE, ev.FARM_BACKOFF)


def _meta(pid: int, name: str, tid: int | None = None) -> dict[str, Any]:
    out: dict[str, Any] = {
        "name": "thread_name" if tid is not None else "process_name",
        "ph": "M",
        "pid": pid,
        "tid": tid if tid is not None else 0,
        "args": {"name": name},
    }
    return out


def to_perfetto(tracer) -> dict[str, Any]:
    """Fold a tracer's ring buffer and samples into a trace-event dict."""
    out: list[dict[str, Any]] = [
        _meta(PID_MESSAGES, "messages"),
        _meta(PID_SCHEME, "scheme"),
        _meta(PID_SCHEME, "detection", TID_DETECTION),
        _meta(PID_SCHEME, "recovery", TID_RECOVERY),
        _meta(PID_SCHEME, "token", TID_TOKEN),
        _meta(PID_SCHEME, "faults", TID_FAULTS),
        _meta(PID_METRICS, "metrics"),
    ]
    open_spans: set[int] = set()
    open_blocks: set[int] = set()
    # Farm track state: the process meta is added lazily so engine-only
    # traces keep their exact historical layout; hosts become threads in
    # order of first appearance, each shard dispatch->completion pairs
    # into an "X" span on its host's row.
    farm_tids: dict[str, int] = {}
    open_shards: dict[tuple[str | None, Any], int] = {}

    def farm_tid(host: str | None) -> int:
        if host is None:
            host = "campaign"
        tid = farm_tids.get(host)
        if tid is None:
            if not farm_tids:
                out.append(_meta(PID_FARM, "farm"))
                out.append(_meta(PID_FARM, "campaign", 0))
            if host == "campaign":
                tid = farm_tids[host] = 0
            else:
                tid = farm_tids[host] = max(farm_tids.values(), default=0) + 1
                out.append(_meta(PID_FARM, host, tid))
        return tid

    def begin_span(mid: int, ts: int) -> None:
        open_spans.add(mid)
        out.append({
            "name": tracer.label_of(mid), "cat": "message", "ph": "b",
            "id": mid, "ts": ts, "pid": PID_MESSAGES, "tid": 0, "args": {},
        })

    for cycle, kind, payload in tracer.events:
        mid = payload.get("mid")
        if kind == ev.CREATED:
            begin_span(mid, cycle)
        elif kind == ev.CONSUMED:
            if mid not in open_spans:  # creation fell out of the ring
                begin_span(mid, cycle)
            open_spans.discard(mid)
            out.append({
                "name": tracer.label_of(mid), "cat": "message", "ph": "e",
                "id": mid, "ts": cycle, "pid": PID_MESSAGES, "tid": 0,
                "args": {},
            })
        elif kind in _SPAN_MILESTONES:
            if mid not in open_spans:
                begin_span(mid, cycle)
            out.append({
                "name": kind, "cat": "message", "ph": "n",
                "id": mid, "ts": cycle, "pid": PID_MESSAGES, "tid": 0,
                "args": dict(payload),
            })
        elif kind == ev.BLOCKED:
            if mid not in open_spans:
                begin_span(mid, cycle)
            open_blocks.add(mid)
            out.append({
                "name": f"blocked {tracer.label_of(mid)}", "cat": "blocked",
                "ph": "b", "id": mid, "ts": cycle,
                "pid": PID_MESSAGES, "tid": 0,
                "args": {"router": payload.get("router")},
            })
        elif kind == ev.UNBLOCKED:
            if mid in open_blocks:
                open_blocks.discard(mid)
                out.append({
                    "name": f"blocked {tracer.label_of(mid)}",
                    "cat": "blocked", "ph": "e", "id": mid, "ts": cycle,
                    "pid": PID_MESSAGES, "tid": 0, "args": {},
                })
        elif kind in _INSTANT_TRACKS:
            name, tid = _INSTANT_TRACKS[kind]
            out.append({
                "name": name, "ph": "i", "ts": cycle,
                "pid": PID_SCHEME, "tid": tid, "s": "t",
                "args": dict(payload),
            })
        elif kind in ev.FARM_EVENT_KINDS:
            host = payload.get("host")
            tid = farm_tid(None if kind in _FARM_CAMPAIGN_KINDS else host)
            shard = payload.get("shard")
            if kind in (ev.FARM_DISPATCH, ev.FARM_REDISPATCH):
                open_shards[(host, shard)] = cycle
            elif kind in (ev.FARM_SHARD_DONE, ev.FARM_SHARD_FAILED):
                start = open_shards.pop((host, shard), None)
                if start is not None:
                    out.append({
                        "name": f"shard {shard}", "cat": "farm", "ph": "X",
                        "ts": start, "dur": max(0, cycle - start),
                        "pid": PID_FARM, "tid": tid, "args": dict(payload),
                    })
            out.append({
                "name": kind, "ph": "i", "ts": cycle,
                "pid": PID_FARM, "tid": tid, "s": "t",
                "args": dict(payload),
            })

    # Close anything still open so the trace stays well-formed.
    end = tracer.last_cycle
    for mid in sorted(open_blocks):
        out.append({
            "name": f"blocked {tracer.label_of(mid)}", "cat": "blocked",
            "ph": "e", "id": mid, "ts": end, "pid": PID_MESSAGES, "tid": 0,
            "args": {"truncated": True},
        })
    for mid in sorted(open_spans):
        out.append({
            "name": tracer.label_of(mid), "cat": "message", "ph": "e",
            "id": mid, "ts": end, "pid": PID_MESSAGES, "tid": 0,
            "args": {"truncated": True},
        })

    for sample in tracer.samples:
        ts = sample["cycle"]
        for metric in ("busy_links", "flit_occupancy", "live_messages",
                       "blocked_frontiers"):
            out.append({
                "name": metric, "ph": "C", "ts": ts,
                "pid": PID_METRICS, "tid": 0,
                "args": {metric: sample[metric]},
            })
        if "token_pos" in sample:
            out.append({
                "name": "token_pos", "ph": "C", "ts": ts,
                "pid": PID_METRICS, "tid": 0,
                "args": {"token_pos": sample["token_pos"]},
            })

    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_level": tracer.level,
            "events_recorded": tracer.events_recorded,
            "dropped_events": tracer.dropped_events,
            "last_cycle": tracer.last_cycle,
        },
    }


def export_perfetto(tracer, path) -> dict[str, Any]:
    """Write the Perfetto JSON to ``path`` and return the trace dict."""
    trace = to_perfetto(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, separators=(",", ":"))
        fh.write("\n")
    return trace


#: aggregate CSV columns (per-NI detail lives in the JSON export).
CSV_FIELDS = (
    "cycle", "busy_links", "channel_utilization", "flit_occupancy",
    "live_messages", "blocked_frontiers",
    "ni_occupied", "ni_held", "ni_reserved",
    "token_pos", "token_state",
)


def _csv_row(sample: dict[str, Any]) -> dict[str, Any]:
    occ = sample["ni_occupancy"]
    return {
        "cycle": sample["cycle"],
        "busy_links": sample["busy_links"],
        "channel_utilization": f"{sample['channel_utilization']:.6f}",
        "flit_occupancy": sample["flit_occupancy"],
        "live_messages": sample["live_messages"],
        "blocked_frontiers": sample["blocked_frontiers"],
        "ni_occupied": sum(o for o, _, _ in occ),
        "ni_held": sum(h for _, h, _ in occ),
        "ni_reserved": sum(r for _, _, r in occ),
        "token_pos": sample.get("token_pos", ""),
        "token_state": sample.get("token_state", ""),
    }


def export_timeseries_csv(tracer, path) -> None:
    """Write the sampled time series as aggregate-per-cycle CSV rows."""
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for sample in tracer.samples:
            writer.writerow(_csv_row(sample))


def export_timeseries_json(tracer, path) -> None:
    """Write the full sampled time series (per-NI detail included)."""
    payload = {
        "sample_every": tracer.sample_every,
        "last_cycle": tracer.last_cycle,
        "samples": tracer.samples,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
