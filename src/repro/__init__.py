"""repro: reproduction of Song & Pinkston, "Efficient Handling of
Message-Dependent Deadlock in Multiprocessor/Multicomputer Systems"
(IPPS 2001 / USC CENG TR 01-01).

A flit-level wormhole network simulator for k-ary n-cube tori with three
message-dependent deadlock handling techniques: strict avoidance (SA),
Origin2000-style deflective recovery (DR), and the paper's progressive
recovery (PR, *Extended Disha Sequential*).

Quickstart::

    from repro import SimConfig, Engine

    cfg = SimConfig(scheme="PR", pattern="PAT721", num_vcs=4, load=0.004)
    engine = Engine(cfg)
    window = engine.run_measured(warmup=2000, measure=5000)
    print(window.throughput_fpc(engine.topology.num_nodes),
          window.mean_latency())
"""

from repro.config import ExecutionConfig, SimConfig
from repro.faults import FaultSpec, parse_fault
from repro.protocol.chains import GENERIC_MSI, GENERIC_ORIGIN, MSI_COHERENCE
from repro.protocol.transactions import PATTERNS
from repro.sim.engine import Engine
from repro.sim.results import RunResult, SweepResult, burton_normal_form
from repro.sim.sweep import run_point, run_sweep
from repro.util.errors import (
    InvariantViolation,
    LivenessError,
    PointTimeoutError,
    SweepExecutionError,
)

__version__ = "1.0.0"

__all__ = [
    "ExecutionConfig",
    "SimConfig",
    "Engine",
    "FaultSpec",
    "parse_fault",
    "RunResult",
    "SweepResult",
    "burton_normal_form",
    "run_point",
    "run_sweep",
    "PATTERNS",
    "GENERIC_MSI",
    "GENERIC_ORIGIN",
    "MSI_COHERENCE",
    "InvariantViolation",
    "LivenessError",
    "PointTimeoutError",
    "SweepExecutionError",
    "__version__",
]
