"""Network substrate: topology, channels, routing, flit movement."""

from repro.network.channel import EjectionPort, InjectionChannel, VirtualChannel
from repro.network.fabric import Fabric
from repro.network.routing import (
    ESCAPE_PER_NETWORK,
    RoutingFunction,
    VcMap,
    dimension_order_routing,
    duato_routing,
    duato_vc_map,
    partitioned_vc_map,
    tfar_vc_map,
    true_fully_adaptive_routing,
)
from repro.network.topology import Link, Torus, ring

__all__ = [
    "Link",
    "Torus",
    "ring",
    "VirtualChannel",
    "InjectionChannel",
    "EjectionPort",
    "VcMap",
    "RoutingFunction",
    "ESCAPE_PER_NETWORK",
    "partitioned_vc_map",
    "tfar_vc_map",
    "duato_vc_map",
    "dimension_order_routing",
    "duato_routing",
    "true_fully_adaptive_routing",
    "Fabric",
]
