"""Struct-of-arrays export of topology and channel structure.

The vector backend (:mod:`repro.sim.vector`) keeps all fabric state in
flat numpy arrays and advances it with a compiled kernel; this module is
the bridge from the object world.  :class:`TopologySoA` flattens any
:class:`~repro.network.topology.Topology` — link endpoints, dimensions,
dateline flags, node-to-router map — and :func:`build_route_table`
precomputes every routing-memo row in terms of *virtual-channel ids*
(``lid * num_vcs + index``) instead of ``VirtualChannel`` objects, so
the kernel's allocation scan can consult a candidate table and still
make exactly the choices the reference engine makes.  Row contents come
from the routing function's ``static_candidate_ids`` protocol method,
so grid (:class:`~repro.network.routing.RoutingFunction`) and
table-driven (:class:`~repro.network.routing.TableRouting`) routing
export identically.
"""

from __future__ import annotations

import numpy as np

from repro.network.routing import Routing, RoutingFunction
from repro.network.topology import Topology


class TopologySoA:
    """Flat array view of a :class:`~repro.network.topology.Topology`.

    ``vc_dim`` / ``vc_dateline`` carry the dateline machinery; for
    topologies without wrap links they are all zero and the kernel's
    crossing mask degenerates to a constant 0.
    """

    def __init__(self, topology: Topology, num_vcs: int) -> None:
        self.topology = topology
        self.num_vcs = num_vcs
        links = topology.links
        self.num_links = len(links)
        #: total virtual channels; vc id = lid * num_vcs + index.
        self.num_vcs_total = self.num_links * num_vcs
        self.link_src = np.array([ln.src for ln in links], dtype=np.int32)
        self.link_dst = np.array([ln.dst for ln in links], dtype=np.int32)
        self.link_dim = np.array([ln.dim for ln in links], dtype=np.int32)
        self.link_dateline = np.array(
            [1 if ln.crosses_dateline else 0 for ln in links], dtype=np.int32
        )
        self.router_of_node = np.array(
            [topology.router_of_node(n) for n in range(topology.num_nodes)],
            dtype=np.int32,
        )
        # Per-VC static facts, indexed by vc id.
        self.vc_link = np.repeat(
            np.arange(self.num_links, dtype=np.int32), num_vcs
        )
        self.vc_router = self.link_dst[self.vc_link]
        self.vc_dim = self.link_dim[self.vc_link]
        self.vc_dateline = self.link_dateline[self.vc_link]

    def vc_id(self, lid: int, index: int) -> int:
        return lid * self.num_vcs + index


def build_route_table(
    topology: Topology,
    routing: Routing,
    num_vcs: int,
    stride: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Every routing-memo row, precomputed (``(rk_idx, rows)``).

    Equivalent to calling ``routing.static_candidate_ids`` for every
    reachable ``(router, dst_router, vc_class, crossed_mask)`` key.
    Filling the table at fabric construction removes the route-miss
    suspensions from the kernel's allocation phase, which otherwise
    dominate the first tens of thousands of cycles (new keys keep
    appearing as packets reach fresh (position, destination, dateline)
    combinations).

    For the grid :class:`~repro.network.routing.RoutingFunction` the
    per-(router, destination) work — productive directions, output
    links — is done once and shared across the class and mask axes
    (only the escape choice depends on them).  Table routing has no
    dateline machinery, so one row is shared across the whole mask axis.
    """
    if isinstance(routing, RoutingFunction):
        return _build_grid_route_table(topology, routing, num_vcs, stride)
    return _build_table_route_table(topology, routing, stride)


def _build_grid_route_table(
    topology, routing: RoutingFunction, num_vcs: int, stride: int
) -> tuple[np.ndarray, np.ndarray]:
    vc_map = routing.vc_map
    adaptive = routing.adaptive
    R = topology.num_routers
    ndim = topology.ndim
    vcls = vc_map.num_classes
    nmask = 1 << ndim
    n_rows = R * (R - 1) * vcls * nmask
    rk_idx = np.full((R * R * vcls) << ndim, -1, dtype=np.int32)
    rows = np.zeros((max(n_rows, 1), stride), dtype=np.int32)
    mask_arr = np.arange(nmask, dtype=np.int32)
    indices = [vc_map.adaptive[c] if adaptive else () for c in range(vcls)]
    escape = [vc_map.escape[c] for c in range(vcls)]
    row0 = 0
    for r in range(R):
        for dstr in range(R):
            if dstr == r:
                continue
            dirs = topology.productive_directions(r, dstr)
            links = [topology.out_link(r, d, s) for d, s, _ in dirs]
            edim, edir, _ = min(dirs, key=lambda t: (t[0], -t[1]))
            elink = topology.out_link(r, edim, edir)
            # cls1 when the escape hop crosses the dateline or the
            # packet already did in that dimension (the mask bit).
            cls1 = elink.crosses_dateline | ((mask_arr >> edim) & 1)
            for cls in range(vcls):
                cands = [
                    ln.lid * num_vcs + idx
                    for ln in links
                    for idx in indices[cls]
                ]
                block = rows[row0 : row0 + nmask]
                block[:, 0] = len(cands)
                if cands:
                    block[:, 2 : 2 + len(cands)] = cands
                pair = escape[cls]
                if pair is None:
                    block[:, 1] = -1
                else:
                    block[:, 1] = elink.lid * num_vcs + np.where(
                        cls1, pair[1], pair[0]
                    )
                key0 = (((r * R + dstr) * vcls + cls)) << ndim
                rk_idx[key0 : key0 + nmask] = np.arange(
                    row0, row0 + nmask, dtype=np.int32
                )
                row0 += nmask
    return rk_idx, rows.reshape(-1)


def _build_table_route_table(
    topology: Topology, routing: Routing, stride: int
) -> tuple[np.ndarray, np.ndarray]:
    vc_map = routing.vc_map
    R = topology.num_routers
    ndim = topology.ndim
    vcls = vc_map.num_classes
    nmask = 1 << ndim
    n_rows = R * (R - 1) * vcls * nmask
    rk_idx = np.full((R * R * vcls) << ndim, -1, dtype=np.int32)
    rows = np.zeros((max(n_rows, 1), stride), dtype=np.int32)
    row0 = 0
    for r in range(R):
        for dstr in range(R):
            if dstr == r:
                continue
            for cls in range(vcls):
                # mask-invariant: fill the whole mask axis from one row.
                cands, esc = routing.static_candidate_ids(r, dstr, cls, 0)
                block = rows[row0 : row0 + nmask]
                block[:, 0] = len(cands)
                block[:, 1] = esc
                if cands:
                    block[:, 2 : 2 + len(cands)] = cands
                key0 = (((r * R + dstr) * vcls + cls)) << ndim
                rk_idx[key0 : key0 + nmask] = np.arange(
                    row0, row0 + nmask, dtype=np.int32
                )
                row0 += nmask
    return rk_idx, rows.reshape(-1)
