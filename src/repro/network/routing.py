"""Virtual-channel maps and routing functions.

A :class:`VcMap` assigns each virtual-channel index on every link to a
*logical network* (message class) and a role (escape or adaptive).  The
three deadlock-handling techniques differ exactly here:

* **SA** — one logical network per message type: ``partitioned`` map with
  ``num_classes = L``.  Per-type availability is ``1 + (C/L - E_r)`` with
  split extras or ``1 + (C - E_m)`` with shared extras (Section 2.1).
* **DR** — two logical networks (request/reply): ``partitioned`` with
  ``num_classes = 2``.
* **PR** — a single class with every channel adaptive and *no* escape:
  ``tfar`` map (True Fully Adaptive Routing).

Routing functions build on the map: deterministic dimension-order routing
over the escape pair (Dally-Seitz dateline classes), Duato's protocol
(minimal-adaptive over the adaptive set with the escape pair as fallback),
and true fully adaptive routing.

Two implementations share one candidate protocol (``bind`` /
``candidates`` / ``static_candidate_ids`` / ``max_static_candidates``):

* :class:`RoutingFunction` — the memoized grid router over
  ``productive_directions`` (torus and mesh; dateline-aware escape).
* :class:`TableRouting` — table-driven routing over any
  :class:`~repro.network.topology.Topology`: BFS-minimal adaptive hops
  plus the topology's ``route_path`` discipline as escape (direct links
  on a full mesh — Cano et al., HOTI'25 — or up*/down* tree routing on
  irregular graphs).

The factory functions (:func:`dimension_order_routing`,
:func:`duato_routing`, :func:`true_fully_adaptive_routing`,
:func:`full_mesh_routing`) dispatch on the topology, so the schemes
never name a concrete router.  None of this *assumes* deadlock freedom:
:mod:`repro.analysis.cdg` certifies or refutes each (topology, routing)
pair from its static channel-dependency graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.channel import VirtualChannel
from repro.network.topology import (
    FullMesh,
    GridTopology,
    IrregularGraph,
    Link,
    Topology,
)
from repro.util.errors import ConfigurationError

#: Escape channels needed per logical network on a torus (dateline pair).
ESCAPE_PER_NETWORK = 2


def _fifo_occupancy(vc: VirtualChannel) -> int:
    return len(vc.fifo)


@dataclass(frozen=True)
class VcMap:
    """Assignment of VC indices to logical networks and roles.

    Attributes
    ----------
    num_vcs:
        Virtual channels per unidirectional link (``C``).
    num_classes:
        Number of logical networks.
    escape:
        Per class, the ``(class0, class1)`` dateline escape pair, or
        ``None`` for classes with no escape (TFAR).
    adaptive:
        Per class, the tuple of fully adaptive VC indices available to it.
    """

    num_vcs: int
    num_classes: int
    escape: tuple[tuple[int, int] | None, ...]
    adaptive: tuple[tuple[int, ...], ...]

    def availability(self, cls: int) -> int:
        """Channels a packet of this class can choose from at a hop.

        The paper's availability metric: one escape channel (only one of
        the pair is usable at a given hop) plus all adaptive channels.
        """
        esc = 1 if self.escape[cls] is not None else 0
        return esc + len(self.adaptive[cls])

    def classes_of_vc(self, vc_index: int) -> list[int]:
        """Logical networks allowed to use a VC index (for validation)."""
        out = []
        for cls in range(self.num_classes):
            pair = self.escape[cls]
            if (pair is not None and vc_index in pair) or vc_index in self.adaptive[
                cls
            ]:
                out.append(cls)
        return out


def partitioned_vc_map(
    num_vcs: int, num_classes: int, shared_extras: bool = False
) -> VcMap:
    """Logical networks for SA (``num_classes = L``) or DR (= 2).

    ``shared_extras`` implements the Martinez-style improvement where all
    channels beyond the per-class escape minimum are shared among every
    class, raising availability from ``1 + (C/L - E_r)`` to
    ``1 + (C - E_m)``.
    """
    if num_classes < 1:
        raise ConfigurationError("need at least one message class")
    e_m = ESCAPE_PER_NETWORK * num_classes
    if num_vcs < e_m:
        raise ConfigurationError(
            f"{num_vcs} VCs cannot host {num_classes} logical networks: "
            f"need at least E_m = {e_m} escape channels (Section 2.1)"
        )
    escape: list[tuple[int, int]] = []
    adaptive: list[tuple[int, ...]] = []
    if shared_extras:
        for cls in range(num_classes):
            escape.append((2 * cls, 2 * cls + 1))
        extras = tuple(range(e_m, num_vcs))
        adaptive = [extras for _ in range(num_classes)]
    else:
        # Split channels as evenly as possible; earlier classes absorb the
        # remainder.  Each class's first two channels are its escape pair.
        base = num_vcs // num_classes
        rem = num_vcs % num_classes
        start = 0
        for cls in range(num_classes):
            share = base + (1 if cls < rem else 0)
            if share < ESCAPE_PER_NETWORK:
                raise ConfigurationError(
                    f"class {cls} share {share} < {ESCAPE_PER_NETWORK} escape VCs"
                )
            escape.append((start, start + 1))
            adaptive.append(tuple(range(start + 2, start + share)))
            start += share
    return VcMap(num_vcs, num_classes, tuple(escape), tuple(adaptive))


def tfar_vc_map(num_vcs: int) -> VcMap:
    """Single class, every channel adaptive, no escape (PR's map)."""
    if num_vcs < 1:
        raise ConfigurationError("need at least one VC")
    return VcMap(num_vcs, 1, (None,), (tuple(range(num_vcs)),))


def duato_vc_map(num_vcs: int) -> VcMap:
    """Single class with an escape pair: Duato's protocol on one network."""
    return partitioned_vc_map(num_vcs, 1)


class RoutingFunction:
    """Supplies candidate output VCs for a packet at a router.

    ``link_vcs`` maps link id to that link's :class:`VirtualChannel`
    list; it is bound by the fabric after construction via :meth:`bind`.
    """

    def __init__(
        self, topology: GridTopology, vc_map: VcMap, adaptive: bool
    ) -> None:
        self.topology = topology
        self.vc_map = vc_map
        #: Whether adaptive candidates are offered (Duato/TFAR) or the
        #: packet is restricted to dimension-order escape routing.
        self.adaptive = adaptive
        self.link_vcs: list[list[VirtualChannel]] | None = None
        #: (router, dst_router, vc_class, crossed_mask) -> static
        #: candidate structure; see :meth:`candidates`.
        self._memo: dict[tuple[int, int, int, int],
                         tuple[tuple[VirtualChannel, ...],
                               VirtualChannel | None]] = {}

    def bind(self, link_vcs: list[list[VirtualChannel]]) -> None:
        self.link_vcs = link_vcs
        self._memo.clear()

    # ------------------------------------------------------------------
    def escape_candidate(
        self, router: int, dst_router: int, msg
    ) -> VirtualChannel | None:
        """The single dimension-order escape VC for this hop, if any."""
        pair = self.vc_map.escape[msg.vc_class]
        if pair is None:
            return None
        dirs = self.topology.productive_directions(router, dst_router)
        if not dirs:
            return None
        # Lowest dimension first; prefer +1 on a tie of directions.
        dim, direction, _ = min(dirs, key=lambda t: (t[0], -t[1]))
        link = self.topology.out_link(router, dim, direction)
        cls1 = link.crosses_dateline or (msg.crossed_mask >> dim) & 1
        vc_index = pair[1] if cls1 else pair[0]
        return self.link_vcs[link.lid][vc_index]

    def adaptive_candidates(
        self, router: int, dst_router: int, msg
    ) -> list[VirtualChannel]:
        """Free adaptive VCs on all productive links, emptiest first."""
        indices = self.vc_map.adaptive[msg.vc_class]
        if not indices or not self.adaptive:
            return []
        out: list[VirtualChannel] = []
        for dim, direction, _ in self.topology.productive_directions(
            router, dst_router
        ):
            link = self.topology.out_link(router, dim, direction)
            vcs = self.link_vcs[link.lid]
            for idx in indices:
                vc = vcs[idx]
                if vc.owner is None:
                    out.append(vc)
        out.sort(key=lambda vc: len(vc.fifo))
        return out

    def _static_candidates(
        self, router: int, dst_router: int, vc_class: int, crossed_mask: int
    ) -> tuple[tuple[VirtualChannel, ...], VirtualChannel | None]:
        """The hop's candidate VCs independent of channel occupancy.

        Which VCs are *eligible* at a hop depends only on the (current
        router, destination router, VC class, dateline-crossing mask)
        tuple, so the productive-direction walk and link lookups are done
        once per key; :meth:`candidates` then applies the per-attempt
        dynamic parts (ownership filter, emptiest-first sort).
        """
        adaptive: list[VirtualChannel] = []
        indices = self.vc_map.adaptive[vc_class]
        if indices and self.adaptive:
            for dim, direction, _ in self.topology.productive_directions(
                router, dst_router
            ):
                vcs = self.link_vcs[self.topology.out_link(router, dim, direction).lid]
                for idx in indices:
                    adaptive.append(vcs[idx])
        esc = None
        pair = self.vc_map.escape[vc_class]
        if pair is not None:
            dirs = self.topology.productive_directions(router, dst_router)
            if dirs:
                dim, direction, _ = min(dirs, key=lambda t: (t[0], -t[1]))
                link = self.topology.out_link(router, dim, direction)
                cls1 = link.crosses_dateline or (crossed_mask >> dim) & 1
                esc = self.link_vcs[link.lid][pair[1] if cls1 else pair[0]]
        return tuple(adaptive), esc

    def candidates(self, router: int, dst_router: int, msg) -> list[VirtualChannel]:
        """All candidate output VCs in preference order.

        Adaptive choices first (Duato: a packet may always fall back to
        the escape path, listed last).  Only *free* adaptive channels are
        returned; the escape candidate is returned regardless so callers
        can wait on it.
        """
        key = (router, dst_router, msg.vc_class, msg.crossed_mask)
        entry = self._memo.get(key)
        if entry is None:
            entry = self._memo[key] = self._static_candidates(*key)
        static_adaptive, esc = entry
        # Free channels keep their static (direction-major) order under
        # the stable emptiest-first sort — identical to rebuilding the
        # candidate list from scratch every attempt.
        cands = [vc for vc in static_adaptive if vc.owner is None]
        cands.sort(key=_fifo_occupancy)
        if esc is not None:
            cands.append(esc)
        return cands

    # ------------------------------------------------------------------
    # Static export (vector backend, CDG analysis)
    # ------------------------------------------------------------------
    def static_candidate_ids(
        self, router: int, dst_router: int, vc_class: int, crossed_mask: int
    ) -> tuple[tuple[int, ...], int]:
        """One routing-memo row as virtual-channel ids.

        ``(adaptive_vc_ids, escape_vc_id_or_-1)`` with
        ``vc id = lid * num_vcs + index``, in exactly the order
        :meth:`_static_candidates` produces the channels.  Unlike the
        memo this needs no bound ``link_vcs``, so the vector backend and
        the CDG extractor can consult it before any fabric exists.
        """
        num_vcs = self.vc_map.num_vcs
        out: list[int] = []
        indices = self.vc_map.adaptive[vc_class]
        dirs = self.topology.productive_directions(router, dst_router)
        if indices and self.adaptive:
            for dim, direction, _ in dirs:
                lid = self.topology.out_link(router, dim, direction).lid
                for idx in indices:
                    out.append(lid * num_vcs + idx)
        esc = -1
        pair = self.vc_map.escape[vc_class]
        if pair is not None and dirs:
            dim, direction, _ = min(dirs, key=lambda t: (t[0], -t[1]))
            link = self.topology.out_link(router, dim, direction)
            cls1 = link.crosses_dateline or (crossed_mask >> dim) & 1
            esc = link.lid * num_vcs + (pair[1] if cls1 else pair[0])
        return tuple(out), esc

    def max_static_candidates(self) -> int:
        """Upper bound on adaptive candidates per hop (table sizing)."""
        if not self.adaptive:
            return 0
        widest = max((len(a) for a in self.vc_map.adaptive), default=0)
        return 2 * self.topology.ndim * widest


class TableRouting:
    """Table-driven routing over an arbitrary :class:`Topology`.

    Candidates per hop are the BFS-minimal next links (adaptive set) and
    the first hop of the topology's ``route_path`` discipline (escape):
    direct links on a :class:`~repro.network.topology.FullMesh`
    (Cano-style — with ``num_vcs=1`` this is VC-free routing), up*/down*
    tree hops on an :class:`~repro.network.topology.IrregularGraph`.
    There are no datelines off the grid, so escape traffic always uses
    class-0 of the escape pair and the crossing mask stays zero.

    The *dynamic* candidate discipline is identical to
    :class:`RoutingFunction`: free adaptive channels emptiest-first
    (stable on the static order), escape appended regardless of
    occupancy so callers can wait on it.
    """

    def __init__(
        self, topology: Topology, vc_map: VcMap, adaptive: bool,
        name: str = "table",
    ) -> None:
        self.topology = topology
        self.vc_map = vc_map
        self.adaptive = adaptive
        self.name = name
        self.link_vcs: list[list[VirtualChannel]] | None = None
        #: (router, dst_router) -> (minimal next links, escape link).
        self._hops: dict[tuple[int, int], tuple[tuple[Link, ...], Link | None]] = {}
        self._memo: dict[tuple[int, int, int],
                         tuple[tuple[VirtualChannel, ...],
                               VirtualChannel | None]] = {}

    def bind(self, link_vcs: list[list[VirtualChannel]]) -> None:
        self.link_vcs = link_vcs
        self._memo.clear()

    # ------------------------------------------------------------------
    def _hop_links(
        self, router: int, dst_router: int
    ) -> tuple[tuple[Link, ...], Link | None]:
        key = (router, dst_router)
        entry = self._hops.get(key)
        if entry is None:
            topo = self.topology
            if router == dst_router:
                entry = ((), None)
            else:
                want = topo.min_hops(router, dst_router) - 1
                minimal = tuple(
                    ln for ln in topo.out_links(router)
                    if topo.min_hops(ln.dst, dst_router) == want
                )
                entry = (minimal, topo.route_path(router, dst_router)[0])
            self._hops[key] = entry
        return entry

    def _static_candidates(
        self, router: int, dst_router: int, vc_class: int
    ) -> tuple[tuple[VirtualChannel, ...], VirtualChannel | None]:
        minimal, escape_link = self._hop_links(router, dst_router)
        adaptive: list[VirtualChannel] = []
        indices = self.vc_map.adaptive[vc_class]
        if indices and self.adaptive:
            for link in minimal:
                vcs = self.link_vcs[link.lid]
                for idx in indices:
                    adaptive.append(vcs[idx])
        esc = None
        pair = self.vc_map.escape[vc_class]
        if pair is not None and escape_link is not None:
            esc = self.link_vcs[escape_link.lid][pair[0]]
        return tuple(adaptive), esc

    def escape_candidate(
        self, router: int, dst_router: int, msg
    ) -> VirtualChannel | None:
        """The single escape VC for this hop, if any."""
        return self._memoized(router, dst_router, msg.vc_class)[1]

    def adaptive_candidates(
        self, router: int, dst_router: int, msg
    ) -> list[VirtualChannel]:
        """Free adaptive VCs on all minimal links, emptiest first."""
        static_adaptive, _ = self._memoized(router, dst_router, msg.vc_class)
        out = [vc for vc in static_adaptive if vc.owner is None]
        out.sort(key=_fifo_occupancy)
        return out

    def _memoized(
        self, router: int, dst_router: int, vc_class: int
    ) -> tuple[tuple[VirtualChannel, ...], VirtualChannel | None]:
        key = (router, dst_router, vc_class)
        entry = self._memo.get(key)
        if entry is None:
            entry = self._memo[key] = self._static_candidates(*key)
        return entry

    def candidates(self, router: int, dst_router: int, msg) -> list[VirtualChannel]:
        """All candidate output VCs in preference order (see class doc)."""
        static_adaptive, esc = self._memoized(router, dst_router, msg.vc_class)
        cands = [vc for vc in static_adaptive if vc.owner is None]
        cands.sort(key=_fifo_occupancy)
        if esc is not None:
            cands.append(esc)
        return cands

    # ------------------------------------------------------------------
    # Static export (vector backend, CDG analysis)
    # ------------------------------------------------------------------
    def static_candidate_ids(
        self, router: int, dst_router: int, vc_class: int, crossed_mask: int
    ) -> tuple[tuple[int, ...], int]:
        """As :meth:`RoutingFunction.static_candidate_ids`.

        ``crossed_mask`` is accepted for interface parity but ignored:
        nothing here crosses a dateline, so every mask maps to the same
        row.
        """
        num_vcs = self.vc_map.num_vcs
        minimal, escape_link = self._hop_links(router, dst_router)
        indices = self.vc_map.adaptive[vc_class] if self.adaptive else ()
        ids = tuple(
            link.lid * num_vcs + idx for link in minimal for idx in indices
        )
        esc = -1
        pair = self.vc_map.escape[vc_class]
        if pair is not None and escape_link is not None:
            esc = escape_link.lid * num_vcs + pair[0]
        return ids, esc

    def max_static_candidates(self) -> int:
        """Upper bound on adaptive candidates per hop (table sizing)."""
        if not self.adaptive:
            return 0
        widest = max((len(a) for a in self.vc_map.adaptive), default=0)
        degree = max(
            (len(self.topology.out_links(r))
             for r in range(self.topology.num_routers)),
            default=0,
        )
        return degree * widest


#: Anything the fabric/schemes accept as a routing function.
Routing = RoutingFunction | TableRouting


def _require_escape(vc_map: VcMap, what: str) -> None:
    if any(pair is None for pair in vc_map.escape):
        raise ConfigurationError(f"{what} requires an escape pair per class")


def dimension_order_routing(topology: Topology, vc_map: VcMap) -> Routing:
    """Deterministic escape-only routing per class.

    Dimension order over the Dally-Seitz dateline pair on grids; the
    topology's deterministic ``route_path`` discipline (direct / tree
    routing) elsewhere.
    """
    _require_escape(vc_map, "DOR")
    if isinstance(topology, GridTopology):
        return RoutingFunction(topology, vc_map, adaptive=False)
    return TableRouting(topology, vc_map, adaptive=False, name="escape")


def duato_routing(topology: Topology, vc_map: VcMap) -> Routing:
    """Duato's protocol: minimal adaptive + deterministic escape.

    On an :class:`~repro.network.topology.IrregularGraph` the adaptive
    set is disabled: minimal detours off the up*/down* tree create
    indirect dependencies between tree channels (a packet can hold an
    up-channel, detour, and later request a deeper up-channel), which
    breaks the escape ordering Duato's condition needs — `repro
    cdg-check` refutes exactly that pair.  Irregular graphs therefore
    route escape-only under avoidance schemes; recovery schemes (PR)
    keep full adaptivity and handle the fallout.
    """
    _require_escape(vc_map, "Duato routing")
    if isinstance(topology, GridTopology):
        return RoutingFunction(topology, vc_map, adaptive=True)
    if isinstance(topology, IrregularGraph):
        return TableRouting(topology, vc_map, adaptive=False, name="updown")
    return TableRouting(topology, vc_map, adaptive=True, name="duato-table")


def true_fully_adaptive_routing(topology: Topology, vc_map: VcMap) -> Routing:
    """All channels adaptive, no escape; deadlock handled by recovery."""
    if isinstance(topology, GridTopology):
        return RoutingFunction(topology, vc_map, adaptive=True)
    return TableRouting(topology, vc_map, adaptive=True, name="tfar-table")


def full_mesh_routing(topology: FullMesh, vc_map: VcMap | None = None) -> Routing:
    """Cano-style direct full-mesh routing (HOTI'25).

    Single-hop direct links generate no channel-to-channel dependencies,
    so this is deadlock-free with zero dedicated escape VCs — with the
    default one-VC map it is literally VC-free.
    """
    if not isinstance(topology, FullMesh):
        raise ConfigurationError(
            f"full_mesh_routing needs a FullMesh, got {topology!r}"
        )
    if vc_map is None:
        vc_map = tfar_vc_map(1)
    return TableRouting(topology, vc_map, adaptive=True, name="cano-direct")
