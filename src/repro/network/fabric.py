"""The flit-movement engine: allocation, link arbitration, ejection.

The fabric advances the network by one cycle at a time in three phases:

1. **Ejection** — each NI's ejection port drains at most one flit from a
   packet routed to it; a tail flit completes delivery into the NI input
   queue (via the delivery hook installed by the endpoint layer).
2. **Allocation** — every *frontier* sender (a virtual channel or
   injection channel holding a packet header with no assigned next hop)
   attempts route computation + VC allocation, or reserves an input-queue
   slot when the header has reached its destination router.  Failure
   leaves the packet blocked, holding all channels its flits occupy.
3. **Link traversal** — each unidirectional link forwards at most one
   flit per cycle, round-robin among the senders routed over it; each NI
   injects at most one flit per cycle across its injection channels.

Blocking time of frontier packets is tracked on the message
(``blocked_since``), which is what progressive recovery's router-level
timeout detection consumes.
"""

from __future__ import annotations

from repro.network.channel import EjectionPort, InjectionChannel, VirtualChannel
from repro.network.routing import RoutingFunction
from repro.network.topology import Torus
from repro.protocol.message import Message
from repro.util.errors import SimulationError


class Fabric:
    """Owns all network resources and moves flits between them."""

    def __init__(
        self,
        topology: Torus,
        num_vcs: int,
        flit_buffer_depth: int,
        routing: RoutingFunction,
    ) -> None:
        self.topology = topology
        self.num_vcs = num_vcs
        self.flit_buffer_depth = flit_buffer_depth
        self.routing = routing

        #: link id -> list of VirtualChannel (buffers at the downstream router)
        self.link_vcs: list[list[VirtualChannel]] = [
            [VirtualChannel(link, i, flit_buffer_depth) for i in range(num_vcs)]
            for link in topology.links
        ]
        routing.bind(self.link_vcs)

        #: link id -> senders currently routed over this link
        self.link_senders: list[list] = [[] for _ in topology.links]
        self._link_rr: list[int] = [0] * len(topology.links)
        #: links with at least one sender (kept as a set for sparse scans)
        self._busy_links: set[int] = set()

        #: frontier senders awaiting route/VC allocation or a queue slot
        self.pending: list = []

        #: per-node ejection port; delivery hooks installed via set_endpoint_hooks
        self.ejection_ports: list[EjectionPort] = [
            EjectionPort(node, self._unwired_deliver)
            for node in range(topology.num_nodes)
        ]
        #: per-node reservation hook: try_reserve(msg) -> bool
        self._reserve_hooks = [self._unwired_reserve] * topology.num_nodes

        #: (node, vc_class) -> InjectionChannel
        self._inj_channels: dict[tuple[int, int], InjectionChannel] = {}
        self._inj_used = bytearray(topology.num_nodes)

        # Statistics
        self.flits_forwarded = 0
        self.flits_injected = 0
        self.flits_ejected = 0
        self.alloc_failures = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @staticmethod
    def _unwired_deliver(msg, now):  # pragma: no cover - guarded
        raise SimulationError("delivery hook not installed")

    @staticmethod
    def _unwired_reserve(msg):  # pragma: no cover - guarded
        raise SimulationError("reservation hook not installed")

    def set_endpoint_hooks(self, node: int, try_reserve, deliver) -> None:
        """Install the NI input-queue hooks for ``node``.

        ``try_reserve(msg) -> bool`` reserves a message slot when the
        header reaches the delivery port; ``deliver(msg, now)`` commits
        the message once its tail flit drains.
        """
        self._reserve_hooks[node] = try_reserve
        self.ejection_ports[node].deliver = deliver

    def injection_channel(self, node: int, vc_class: int) -> InjectionChannel:
        """The (lazily created) injection channel for a logical network."""
        key = (node, vc_class)
        chan = self._inj_channels.get(key)
        if chan is None:
            chan = InjectionChannel(
                node, self.topology.router_of_node(node), vc_class
            )
            self._inj_channels[key] = chan
        return chan

    # ------------------------------------------------------------------
    # Packet entry
    # ------------------------------------------------------------------
    def start_injection(self, chan: InjectionChannel, msg: Message, now: int) -> None:
        """Begin streaming ``msg`` from an idle injection channel."""
        chan.load(msg)
        msg.injected_cycle = now
        msg.blocked_since = now
        self.pending.append(chan)

    # ------------------------------------------------------------------
    # Cycle phases
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        self._phase_eject(now)
        self._phase_allocate(now)
        self._phase_links(now)

    def _phase_eject(self, now: int) -> None:
        for port in self.ejection_ports:
            if port.senders:
                before = port.flits_drained
                port.step(now)
                self.flits_ejected += port.flits_drained - before

    def _phase_allocate(self, now: int) -> None:
        if not self.pending:
            return
        still: list = []
        topo = self.topology
        routing = self.routing
        for sender in self.pending:
            msg = sender.owner
            if msg is None:  # rescued or otherwise detached meanwhile
                continue
            if sender.next_sink is not None:
                # A recovery scheme may have routed this sender already.
                continue
            cur_router = (
                sender.link.dst
                if isinstance(sender, VirtualChannel)
                else sender.router
            )
            dst_router = topo.router_of_node(msg.dst)
            if cur_router == dst_router:
                if self._reserve_hooks[msg.dst](msg):
                    port = self.ejection_ports[msg.dst]
                    sender.next_sink = port
                    port.senders.append(sender)
                    msg.blocked_since = -1
                    continue
            else:
                allocated = False
                for vc in routing.candidates(cur_router, dst_router, msg):
                    if vc.owner is None:
                        vc.owner = msg
                        sender.next_sink = vc
                        lid = vc.link.lid
                        self.link_senders[lid].append(sender)
                        self._busy_links.add(lid)
                        allocated = True
                        break
                if allocated:
                    msg.blocked_since = -1
                    continue
            # Blocked: keep waiting; stamp the start of the blocked episode.
            if msg.blocked_since < 0:
                msg.blocked_since = now
            self.alloc_failures += 1
            still.append(sender)
        # Rotate for fairness so the same frontier does not always win ties.
        if len(still) > 1:
            still.append(still.pop(0))
        self.pending = still

    def _phase_links(self, now: int) -> None:
        self._inj_used[:] = b"\x00" * len(self._inj_used)
        done_links: list[int] = []
        for lid in self._busy_links:
            senders = self.link_senders[lid]
            n = len(senders)
            if n == 0:
                done_links.append(lid)
                continue
            start = self._link_rr[lid] % n
            for i in range(n):
                sender = senders[(start + i) % n]
                sink = sender.next_sink
                if not sink.has_space():
                    continue
                flit = sender.ready_flit(now)
                if flit is None:
                    continue
                is_injection = isinstance(sender, InjectionChannel)
                if is_injection:
                    if self._inj_used[sender.node]:
                        continue
                    self._inj_used[sender.node] = 1
                self._move_flit(sender, sink, flit, now, is_injection)
                self._link_rr[lid] = (start + i + 1) % max(1, len(senders))
                break
            if not senders:
                done_links.append(lid)
        for lid in done_links:
            self._busy_links.discard(lid)

    def _move_flit(
        self,
        sender,
        sink: VirtualChannel,
        flit: int,
        now: int,
        is_injection: bool,
    ) -> None:
        msg = sender.owner
        sender.pop_flit()
        sink.accept_flit(flit, now)
        self.flits_forwarded += 1
        if is_injection:
            self.flits_injected += 1
        if flit == 0:
            # Header advanced one hop: update dateline state and queue the
            # downstream channel for route computation next cycle.
            msg.hops += 1
            link = sink.link
            if link.crosses_dateline:
                msg.crossed_mask |= 1 << link.dim
            self.pending.append(sink)
            msg.blocked_since = now
        if flit == msg.size - 1:
            # Tail departed this sender: free the channel behind the packet.
            self.link_senders[sink.link.lid].remove(sender)
            sender.release()
            if is_injection:
                self.on_injection_complete(sender, msg, now)

    # Hook the endpoint layer overrides to reload injection channels.
    def on_injection_complete(self, chan: InjectionChannel, msg, now: int) -> None:
        """Called when a packet's tail leaves its injection channel."""

    # ------------------------------------------------------------------
    # Introspection (used by detection, recovery and tests)
    # ------------------------------------------------------------------
    def frontier_senders(self) -> list:
        """Senders holding a packet header that is not yet routed onward."""
        return [s for s in self.pending if s.owner is not None and s.next_sink is None]

    def blocked_frontiers(self, now: int, threshold: int) -> list:
        """Frontier senders blocked for more than ``threshold`` cycles."""
        out = []
        for s in self.pending:
            msg = s.owner
            if (
                msg is not None
                and s.next_sink is None
                and msg.blocked_since >= 0
                and now - msg.blocked_since > threshold
            ):
                out.append(s)
        return out

    def detach_frontier(self, sender) -> None:
        """Remove a frontier sender from the pending list (rescue path).

        The caller becomes responsible for draining the sender's flits;
        used by progressive recovery to reroute a packet over the
        deadlock-buffer lane.
        """
        try:
            self.pending.remove(sender)
        except ValueError:  # pragma: no cover - tolerate double detach
            pass

    def occupancy(self) -> int:
        """Total flits currently buffered in network virtual channels."""
        return sum(
            len(vc.fifo) for vcs in self.link_vcs for vc in vcs
        )

    def all_vcs(self):
        for vcs in self.link_vcs:
            yield from vcs
