"""The flit-movement engine: allocation, link arbitration, ejection.

The fabric advances the network by one cycle at a time in three phases:

1. **Ejection** — each NI's ejection port drains at most one flit from a
   packet routed to it; a tail flit completes delivery into the NI input
   queue (via the delivery hook installed by the endpoint layer).
2. **Allocation** — every *frontier* sender (a virtual channel or
   injection channel holding a packet header with no assigned next hop)
   attempts route computation + VC allocation, or reserves an input-queue
   slot when the header has reached its destination router.  Failure
   leaves the packet blocked, holding all channels its flits occupy.
3. **Link traversal** — each unidirectional link forwards at most one
   flit per cycle, round-robin among the senders routed over it; each NI
   injects at most one flit per cycle across its injection channels.

Blocking time of frontier packets is tracked on the message
(``blocked_since``), which is what progressive recovery's router-level
timeout detection consumes.
"""

from __future__ import annotations

from repro.network.channel import EjectionPort, InjectionChannel, VirtualChannel
from repro.network.routing import Routing
from repro.network.topology import Topology
from repro.protocol.message import Message
from repro.util.errors import SimulationError


class Fabric:
    """Owns all network resources and moves flits between them."""

    def __init__(
        self,
        topology: Topology,
        num_vcs: int,
        flit_buffer_depth: int,
        routing: Routing,
    ) -> None:
        self.topology = topology
        self.num_vcs = num_vcs
        self.flit_buffer_depth = flit_buffer_depth
        self.routing = routing

        #: one-cell flit-occupancy ledger shared by every VC, so
        #: :meth:`occupancy` is O(1) instead of an O(links x VCs) scan.
        self._occ = [0]
        #: link id -> list of VirtualChannel (buffers at the downstream router)
        self.link_vcs: list[list[VirtualChannel]] = [
            [
                VirtualChannel(link, i, flit_buffer_depth, ledger=self._occ)
                for i in range(num_vcs)
            ]
            for link in topology.links
        ]
        routing.bind(self.link_vcs)

        #: link id -> ``(sender, sink_vc, is_injection)`` triples for the
        #: senders currently routed over this link.  The sink and kind
        #: flag are fixed for a packet's whole traversal of the link, so
        #: they are resolved once at allocation instead of per scan in
        #: the arbitration loop.
        self.link_senders: list[list] = [[] for _ in topology.links]
        self._link_rr: list[int] = [0] * len(topology.links)
        #: links with at least one sender, in first-busy order (an
        #: insertion-ordered dict so link arbitration order is exactly
        #: reproducible, notably by the vector backend's kernel)
        self._busy_links: dict[int, None] = {}

        #: frontier senders awaiting route/VC allocation or a queue slot
        self.pending: list = []

        #: per-node ejection port; delivery hooks installed via set_endpoint_hooks
        self.ejection_ports: list[EjectionPort] = [
            EjectionPort(node, self._unwired_deliver)
            for node in range(topology.num_nodes)
        ]
        #: nodes whose ejection port currently has senders (mirrors
        #: ``_busy_links`` so the eject phase skips idle ports).
        self._eject_active: set[int] = set()
        #: per-node reservation hook: try_reserve(msg) -> bool
        self._reserve_hooks = [self._unwired_reserve] * topology.num_nodes

        #: (node, vc_class) -> InjectionChannel
        self._inj_channels: dict[tuple[int, int], InjectionChannel] = {}
        self._inj_used = bytearray(topology.num_nodes)
        self._inj_zero = bytes(topology.num_nodes)

        # Fault hooks (repro.faults): resources in these sets do nothing
        # while stalled.  Kept as plain sets so the healthy hot path pays
        # only an empty-set truthiness test per phase.
        self.stalled_links: set[int] = set()
        self.stalled_routers: set[int] = set()
        self.stalled_ejects: set[int] = set()

        #: telemetry hook (repro.telemetry.Tracer) or None; allocation
        #: outcomes are the only fabric events traced — `_phase_links`
        #: stays hook-free because it is the simulator's hottest loop.
        self.tracer = None

        # Statistics
        self.flits_forwarded = 0
        self.flits_injected = 0
        self.flits_ejected = 0
        self.alloc_failures = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @staticmethod
    def _unwired_deliver(msg, now):  # pragma: no cover - guarded
        raise SimulationError("delivery hook not installed")

    @staticmethod
    def _unwired_reserve(msg):  # pragma: no cover - guarded
        raise SimulationError("reservation hook not installed")

    def set_endpoint_hooks(self, node: int, try_reserve, deliver) -> None:
        """Install the NI input-queue hooks for ``node``.

        ``try_reserve(msg) -> bool`` reserves a message slot when the
        header reaches the delivery port; ``deliver(msg, now)`` commits
        the message once its tail flit drains.
        """
        self._reserve_hooks[node] = try_reserve
        self.ejection_ports[node].deliver = deliver

    def injection_channel(self, node: int, vc_class: int) -> InjectionChannel:
        """The (lazily created) injection channel for a logical network."""
        key = (node, vc_class)
        chan = self._inj_channels.get(key)
        if chan is None:
            chan = InjectionChannel(
                node, self.topology.router_of_node(node), vc_class
            )
            self._inj_channels[key] = chan
        return chan

    # ------------------------------------------------------------------
    # Packet entry
    # ------------------------------------------------------------------
    def start_injection(self, chan: InjectionChannel, msg: Message, now: int) -> None:
        """Begin streaming ``msg`` from an idle injection channel."""
        chan.load(msg)
        msg.injected_cycle = now
        msg.blocked_since = now
        if msg.dst_router < 0:
            msg.dst_router = self.topology.router_of_node(msg.dst)
        self.pending.append(chan)
        if self.tracer is not None:
            self.tracer.message_injected(msg, now)

    # ------------------------------------------------------------------
    # Cycle phases
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        self._phase_eject(now)
        self._phase_allocate(now)
        self._phase_links(now)

    def _phase_eject(self, now: int) -> None:
        active = self._eject_active
        if not active:
            return
        ports = self.ejection_ports
        stalled = self.stalled_ejects
        # Sorted so port service order (and thus stats accumulation order)
        # matches the historical full scan in node order.
        for node in sorted(active):
            if stalled and node in stalled:
                continue
            port = ports[node]
            before = port.flits_drained
            port.step(now)
            self.flits_ejected += port.flits_drained - before
            if not port.senders:
                active.discard(node)

    def _phase_allocate(self, now: int) -> None:
        pending = self.pending
        if not pending:
            return
        still: list = []
        topo = self.topology
        candidates = self.routing.candidates
        reserve_hooks = self._reserve_hooks
        link_senders = self.link_senders
        busy_add = self._busy_links.setdefault
        frozen = self.stalled_routers
        tracer = self.tracer
        for sender in pending:
            msg = sender.owner
            if msg is None:  # rescued or otherwise detached meanwhile
                continue
            if sender.next_sink is not None:
                # A recovery scheme may have routed this sender already.
                continue
            if frozen and sender.router in frozen:
                # Frozen router: no route computation.  Not an allocation
                # failure — the packet is a fault victim, not contended.
                if msg.blocked_since < 0:
                    msg.blocked_since = now
                if tracer is not None:
                    tracer.message_blocked(msg, sender.router, now)
                still.append(sender)
                continue
            dst_router = msg.dst_router
            if dst_router < 0:  # not injected via start_injection
                dst_router = msg.dst_router = topo.router_of_node(msg.dst)
            if sender.router == dst_router:
                if reserve_hooks[msg.dst](msg):
                    port = self.ejection_ports[msg.dst]
                    sender.next_sink = port
                    port.senders.append(sender)
                    self._eject_active.add(msg.dst)
                    msg.blocked_since = -1
                    if tracer is not None:
                        tracer.message_unblocked(msg, now)
                    continue
            else:
                allocated = False
                for vc in candidates(sender.router, dst_router, msg):
                    if vc.owner is None:
                        vc.owner = msg
                        sender.next_sink = vc
                        lid = vc.link.lid
                        link_senders[lid].append((sender, vc, sender.is_injection))
                        busy_add(lid)
                        allocated = True
                        break
                if allocated:
                    msg.blocked_since = -1
                    if tracer is not None:
                        tracer.vc_granted(msg, sender.router, sender.next_sink, now)
                    continue
            # Blocked: keep waiting; stamp the start of the blocked episode.
            if msg.blocked_since < 0:
                msg.blocked_since = now
            self.alloc_failures += 1
            if tracer is not None:
                tracer.message_blocked(msg, sender.router, now)
            still.append(sender)
        # Rotate for fairness so the same frontier does not always win ties.
        if len(still) > 1:
            still.append(still.pop(0))
        self.pending = still

    def _phase_links(self, now: int) -> None:
        """Forward at most one flit per busy link (round-robin arbitration).

        The per-flit bookkeeping of the former ``_move_flit`` helper is
        inlined here: this loop moves every flit in the system every
        cycle, and the call overhead of ``has_space``/``ready_flit``/
        ``pop_flit``/``accept_flit`` dominated the simulator's profile.
        """
        inj_used = self._inj_used
        inj_used[:] = self._inj_zero
        link_rr = self._link_rr
        link_senders = self.link_senders
        pending_append = self.pending.append
        occ = self._occ
        forwarded = 0
        injected = 0
        done_links: list[int] = []
        busy = self._busy_links
        if self.stalled_links:
            busy = {k: None for k in busy if k not in self.stalled_links}
        for lid in list(busy):
            senders = link_senders[lid]
            n = len(senders)
            if n == 0:
                done_links.append(lid)
                continue
            start = link_rr[lid] % n
            for i in range(n):
                idx = start + i
                if idx >= n:
                    idx -= n
                sender, sink, is_inj = senders[idx]
                sink_fifo = sink.fifo
                if len(sink_fifo) >= sink.capacity:  # inline has_space()
                    continue
                msg = sender.owner
                # Inline ready_flit() / pop_flit() for both sender kinds.
                if is_inj:
                    flit = msg.flits_sent
                    if flit >= msg.size:
                        continue
                    node = sender.node
                    if inj_used[node]:
                        continue
                    inj_used[node] = 1
                    msg.flits_sent = flit + 1
                    injected += 1
                else:
                    fifo = sender.fifo
                    if not fifo:
                        continue
                    flit, arrived = fifo[0]
                    if arrived >= now:
                        continue  # one-cycle minimum per hop
                    fifo.popleft()
                    occ[0] -= 1
                sink_fifo.append((flit, now))  # inline accept_flit()
                occ[0] += 1
                forwarded += 1
                if flit == 0:
                    # Header advanced one hop: update dateline state and
                    # queue the downstream channel for route computation.
                    msg.hops += 1
                    link = sink.link
                    if link.crosses_dateline:
                        msg.crossed_mask |= 1 << link.dim
                    pending_append(sink)
                    msg.blocked_since = now
                if flit == msg.size - 1:
                    # Tail departed: free the channel behind the packet.
                    # The winner sat at ``idx``; removing it shifts every
                    # later sender down one, so the round-robin pointer
                    # must aim at ``idx`` (the old ``idx + 1``), not past
                    # it — otherwise the next sender is skipped and can
                    # starve under contention.
                    del senders[idx]
                    sender.release()
                    if is_inj:
                        self.on_injection_complete(sender, msg, now)
                    if senders:
                        link_rr[lid] = idx if idx < len(senders) else 0
                    else:
                        link_rr[lid] = 0
                        done_links.append(lid)
                else:
                    link_rr[lid] = idx + 1 if idx + 1 < n else 0
                break
        self.flits_forwarded += forwarded
        self.flits_injected += injected
        for lid in done_links:
            self._busy_links.pop(lid, None)

    # Hook the endpoint layer overrides to reload injection channels.
    def on_injection_complete(self, chan: InjectionChannel, msg, now: int) -> None:
        """Called when a packet's tail leaves its injection channel."""

    # ------------------------------------------------------------------
    # Introspection (used by detection, recovery and tests)
    # ------------------------------------------------------------------
    def frontier_senders(self) -> list:
        """Senders holding a packet header that is not yet routed onward."""
        return [s for s in self.pending if s.owner is not None and s.next_sink is None]

    def blocked_frontiers(self, now: int, threshold: int) -> list:
        """Frontier senders blocked for more than ``threshold`` cycles."""
        out = []
        for s in self.pending:
            msg = s.owner
            if (
                msg is not None
                and s.next_sink is None
                and msg.blocked_since >= 0
                and now - msg.blocked_since > threshold
            ):
                out.append(s)
        return out

    def detach_frontier(self, sender) -> None:
        """Remove a frontier sender from the pending list (rescue path).

        The caller becomes responsible for draining the sender's flits;
        used by progressive recovery to reroute a packet over the
        deadlock-buffer lane.
        """
        try:
            self.pending.remove(sender)
        except ValueError:  # pragma: no cover - tolerate double detach
            pass

    def occupancy(self) -> int:
        """Total flits currently buffered in network virtual channels.

        O(1): every VC shares the fabric's occupancy ledger, updated as
        flits move, so the quiesce loop's per-cycle emptiness check does
        not rescan every buffer.
        """
        return self._occ[0]

    def all_vcs(self):
        for vcs in self.link_vcs:
            yield from vcs
