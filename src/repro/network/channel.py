"""Virtual channels, injection channels and ejection ports.

These are the *senders* and *sinks* of the flit-movement engine
(:mod:`repro.network.fabric`).  A sender holds flits of at most one packet
(wormhole channel allocation) and knows where its flits go next
(``next_sink``); a sink accepts at most one flit per cycle subject to
buffer space.

The model follows the paper's Table 2 machinery: per-link virtual channels
with small flit buffers (default 2 flits), one full-duplex injection/
ejection port per network interface, and flit-level multiplexing of a
physical link among its virtual channels (one flit per link per cycle).
"""

from __future__ import annotations

from collections import deque

from repro.network.topology import Link
from repro.protocol.message import Message
from repro.util.errors import SimulationError


class VirtualChannel:
    """One virtual channel of a unidirectional link.

    The flit FIFO physically sits at the downstream router's input.  The
    channel is *allocated* to a packet from the cycle its header is
    accepted until the cycle its tail flit departs — the hold-and-wait
    behaviour that deadlock analysis is about.
    """

    __slots__ = ("link", "index", "capacity", "owner", "fifo", "next_sink",
                 "router", "ledger")

    #: Kind flag checked by the fabric's arbitration loop in place of a
    #: per-sender ``isinstance`` test.
    is_injection = False

    def __init__(self, link: Link, index: int, capacity: int,
                 ledger: list[int] | None = None) -> None:
        self.link = link
        self.index = index
        self.capacity = capacity
        self.owner: Message | None = None
        # Entries are (flit_index, arrival_cycle).
        self.fifo: deque[tuple[int, int]] = deque()
        # Where this packet's flits go after this channel: another
        # VirtualChannel, an EjectionPort, or None while unrouted.
        self.next_sink = None
        #: Router whose input this channel feeds (the link's downstream
        #: end) — the packet's "current router" during allocation.
        self.router = link.dst
        #: Shared one-cell flit-occupancy counter (the fabric passes one
        #: ledger to every VC so total occupancy is O(1) to read).
        self.ledger = [0] if ledger is None else ledger

    # -- sink interface -------------------------------------------------
    def has_space(self) -> bool:
        return len(self.fifo) < self.capacity

    def accept_flit(self, flit_idx: int, now: int) -> None:
        if len(self.fifo) >= self.capacity:  # pragma: no cover - guarded
            raise SimulationError(f"flit pushed into full VC {self!r}")
        self.fifo.append((flit_idx, now))
        self.ledger[0] += 1

    # -- sender interface -----------------------------------------------
    def ready_flit(self, now: int) -> int | None:
        """Index of the flit that may depart this cycle, if any.

        A flit may not arrive and depart in the same cycle (one-cycle
        minimum per hop).
        """
        if self.fifo:
            flit_idx, arrived = self.fifo[0]
            if arrived < now:
                return flit_idx
        return None

    def pop_flit(self) -> int:
        self.ledger[0] -= 1
        return self.fifo.popleft()[0]

    def release(self) -> None:
        """Free the channel after the tail flit departs."""
        if self.fifo:  # pragma: no cover - guarded by callers
            raise SimulationError(f"releasing non-empty VC {self!r}")
        self.owner = None
        self.next_sink = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        o = self.owner.uid if self.owner else "-"
        return (
            f"VC(link={self.link.lid} {self.link.src}->{self.link.dst} "
            f"vc{self.index} owner={o} occ={len(self.fifo)})"
        )


class InjectionChannel:
    """Per-NI, per-logical-network packet injector.

    Streams the flits of one packet at a time from the NI output queue
    into the first allocated virtual channel (or directly into the local
    ejection port when source and destination share a router).  Separate
    injection channels per logical network prevent head-of-line coupling
    between message classes at the injection port — a property strict
    avoidance relies on; bandwidth is still shared (one flit per NI per
    cycle, arbitrated by the fabric).
    """

    __slots__ = ("node", "router", "vc_class", "owner", "next_sink")

    is_injection = True

    def __init__(self, node: int, router: int, vc_class: int) -> None:
        self.node = node
        self.router = router
        self.vc_class = vc_class
        self.owner: Message | None = None
        self.next_sink = None

    @property
    def idle(self) -> bool:
        return self.owner is None

    def load(self, msg: Message) -> None:
        if self.owner is not None:  # pragma: no cover - guarded
            raise SimulationError("loading busy injection channel")
        self.owner = msg
        self.next_sink = None

    # -- sender interface -----------------------------------------------
    def ready_flit(self, now: int) -> int | None:
        if self.owner is not None and self.owner.flits_sent < self.owner.size:
            return self.owner.flits_sent
        return None

    def pop_flit(self) -> int:
        idx = self.owner.flits_sent
        self.owner.flits_sent += 1
        return idx

    def release(self) -> None:
        self.owner = None
        self.next_sink = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        o = self.owner.uid if self.owner else "-"
        return f"Inj(node={self.node} cls={self.vc_class} owner={o})"


class EjectionPort:
    """Per-NI delivery port: drains one flit per cycle into the NI.

    Reservation of a message slot in the NI input queue happens when the
    *header* is routed to the port; if no slot is available the packet
    blocks inside the network, holding its channels — this is precisely
    the endpoint coupling through which message-dependent deadlock forms.
    """

    __slots__ = ("node", "senders", "_rr", "deliver", "flits_drained")

    def __init__(self, node: int, deliver) -> None:
        self.node = node
        #: Senders currently routed to this port.
        self.senders: list = []
        self._rr = 0
        #: Callback ``deliver(msg, now)`` invoked when a tail flit drains.
        self.deliver = deliver
        self.flits_drained = 0

    def step(self, now: int) -> None:
        """Drain at most one flit this cycle (round-robin among senders)."""
        senders = self.senders
        n = len(senders)
        if n == 0:
            return
        start = self._rr % n
        for i in range(n):
            idx = start + i
            if idx >= n:
                idx -= n
            sender = senders[idx]
            msg = sender.owner
            # Inline ready_flit()/pop_flit() for both sender kinds (a
            # VirtualChannel at the destination router, or an injection
            # channel delivering to a co-located node).
            if sender.is_injection:
                flit = msg.flits_sent
                if flit >= msg.size:
                    continue
                msg.flits_sent = flit + 1
            else:
                fifo = sender.fifo
                if not fifo:
                    continue
                flit, arrived = fifo[0]
                if arrived >= now:
                    continue
                fifo.popleft()
                sender.ledger[0] -= 1
            self.flits_drained += 1
            msg.flits_ejected += 1
            if flit == msg.size - 1:  # tail: message fully delivered
                sender.release()
                senders.remove(sender)
                self.deliver(msg, now)
            self._rr = (start + i + 1) % max(1, len(senders))
            return
