"""Network topologies: arbitrary directed multigraphs of routers.

The paper's experiments use bidirectional tori: 8x8 for the synthetic
studies (Table 2) and 4x4 / 2x4 / 2x2 with bristling factors 1/2/4 for the
trace-driven characterization (Section 4.2.2).  A ring is the special case
``dims=(k,)`` (Figure 1).  The schemes themselves are defined per-router
and never assume a torus, so the substrate is generalized: any
:class:`Topology` subclass — grid or not — plugs into the fabric, the
vector backend and the deadlock-handling schemes, and
:mod:`repro.analysis.cdg` certifies (or refutes) the routing on it
*before* simulation.

Terminology
-----------
router
    A switching element.
node
    A network endpoint (processor + NI).  ``bristling`` nodes attach to
    each router, so ``num_nodes = num_routers * bristling``.
link
    A *unidirectional* channel between adjacent routers.  Full-duplex
    physical links are modelled as two opposite unidirectional links.
dateline
    Per dimension ring, the wrap-around edge; crossing it switches the
    escape virtual-channel class, which is what makes dimension-order
    escape routing deadlock-free on a torus (Dally & Seitz).  Topologies
    without wrap edges never set ``crosses_dateline``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

import networkx as nx

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class Link:
    """A unidirectional router-to-router channel.

    ``crosses_dateline`` marks the wrap-around hop of the ring in
    dimension ``dim`` travelling in direction ``direction`` (+1 or -1).
    Non-grid topologies use ``dim=0, direction=+1`` and never cross a
    dateline.
    """

    lid: int
    src: int
    dst: int
    dim: int
    direction: int
    crosses_dateline: bool


class Topology:
    """An arbitrary directed multigraph of routers with bristled endpoints.

    Subclasses create links in a deterministic order via :meth:`_add_link`
    (link ids are assigned in creation order); every other layer — fabric,
    schemes, vector backend, CDG analysis — depends only on this surface:

    * ``num_routers`` / ``num_nodes`` / ``bristling`` / ``ndim``
    * ``links`` plus per-router :meth:`out_links` / :meth:`in_links`
    * :meth:`router_of_node` / :meth:`nodes_of_router`
    * :meth:`min_hops` — BFS hop distances by default
    * :meth:`route_path` — one deterministic src→dst path, used by the
      progressive-recovery lane (grids override with dimension order,
      irregular graphs with up*/down* tree routing)

    ``ndim`` sizes the dateline-crossing bitmask; it stays 1 for
    topologies without datelines, where the mask is always zero.
    """

    kind = "topology"

    def __init__(self, num_routers: int, bristling: int = 1) -> None:
        if num_routers < 1:
            raise ConfigurationError(f"invalid router count {num_routers}")
        if bristling < 1:
            raise ConfigurationError(f"invalid bristling {bristling}")
        self.num_routers = int(num_routers)
        self.bristling = int(bristling)
        self.num_nodes = self.num_routers * self.bristling
        self.ndim = 1
        self.links: list[Link] = []
        self._out_adj: list[list[Link]] = [[] for _ in range(self.num_routers)]
        self._in: list[list[Link]] = [[] for _ in range(self.num_routers)]
        self._dist: list[list[int]] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add_link(
        self,
        src: int,
        dst: int,
        dim: int = 0,
        direction: int = +1,
        crosses_dateline: bool = False,
    ) -> Link:
        if not (0 <= src < self.num_routers and 0 <= dst < self.num_routers):
            raise ConfigurationError(
                f"link {src}->{dst} outside routers 0..{self.num_routers - 1}"
            )
        if src == dst:
            raise ConfigurationError(f"self-loop link at router {src}")
        link = Link(len(self.links), src, dst, dim, direction, crosses_dateline)
        self.links.append(link)
        self._out_adj[src].append(link)
        self._in[dst].append(link)
        return link

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def router_of_node(self, node: int) -> int:
        return node // self.bristling

    def nodes_of_router(self, router: int) -> range:
        return range(router * self.bristling, (router + 1) * self.bristling)

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def out_links(self, router: int) -> list[Link]:
        return list(self._out_adj[router])

    def in_links(self, router: int) -> list[Link]:
        return self._in[router]

    # ------------------------------------------------------------------
    # Distances and paths
    # ------------------------------------------------------------------
    def _bfs(self, src: int) -> list[int]:
        dist = [-1] * self.num_routers
        dist[src] = 0
        frontier = [src]
        while frontier:
            nxt: list[int] = []
            for r in frontier:
                d = dist[r] + 1
                for link in self._out_adj[r]:
                    if dist[link.dst] < 0:
                        dist[link.dst] = d
                        nxt.append(link.dst)
            frontier = nxt
        return dist

    def _distances(self) -> list[list[int]]:
        if self._dist is None:
            self._dist = [self._bfs(r) for r in range(self.num_routers)]
        return self._dist

    def min_hops(self, src: int, dst: int) -> int:
        hops = self._distances()[src][dst]
        if hops < 0:
            raise ConfigurationError(f"router {dst} unreachable from {src}")
        return hops

    def route_path(self, src: int, dst: int) -> list[Link]:
        """A deterministic minimal path: first minimal out-link per hop.

        Subclasses override this with their escape discipline; whether
        the override is deadlock-free is *checked*, not assumed — see
        :mod:`repro.analysis.cdg`.
        """
        dist = self._distances()
        path: list[Link] = []
        cur = src
        while cur != dst:
            want = dist[cur][dst] - 1
            link = next(
                ln for ln in self._out_adj[cur] if dist[ln.dst][dst] == want
            )
            path.append(link)
            cur = link.dst
        return path

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.MultiDiGraph:
        """Router graph with one edge per unidirectional link."""
        g = nx.MultiDiGraph()
        g.add_nodes_from(range(self.num_routers))
        for link in self.links:
            g.add_edge(link.src, link.dst, lid=link.lid, dim=link.dim)
        return g

    def uniform_capacity(self) -> float:
        """Ideal uniform-random throughput bound, flits/node/cycle."""
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        b = f", bristling={self.bristling}" if self.bristling > 1 else ""
        return f"{type(self).__name__}({self.num_routers} routers{b})"


class GridTopology(Topology):
    """Shared machinery for row-major coordinate grids (torus, mesh).

    Exposes the extra surface the memoized grid
    :class:`~repro.network.routing.RoutingFunction` is built on:
    :meth:`coords` / :meth:`router_id` / :meth:`productive_directions` /
    :meth:`out_link` (by ``(dim, direction)``) and the dimension-order
    :meth:`dor_path`.
    """

    def __init__(self, dims: tuple[int, ...], bristling: int = 1) -> None:
        if not dims or any(k < 1 for k in dims):
            raise ConfigurationError(f"invalid dims {dims!r}")
        dims = tuple(int(k) for k in dims)
        super().__init__(math.prod(dims), bristling)
        self.dims = dims
        self.ndim = len(self.dims)

        # Strides for row-major coordinate packing.
        self._strides = [1] * self.ndim
        for d in range(self.ndim - 2, -1, -1):
            self._strides[d] = self._strides[d + 1] * self.dims[d + 1]

        # out_links[r][ (dim, dir) ] -> Link ; flattened for speed as dict
        self._out: list[dict[tuple[int, int], Link]] = [
            {} for _ in range(self.num_routers)
        ]
        self._build_links()

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def coords(self, router: int) -> tuple[int, ...]:
        """Row-major coordinates of a router id."""
        out = []
        for d in range(self.ndim):
            out.append((router // self._strides[d]) % self.dims[d])
        return tuple(out)

    def router_id(self, coords: tuple[int, ...]) -> int:
        return sum(
            (c % k) * s for c, k, s in zip(coords, self.dims, self._strides)
        )

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def _build_links(self) -> None:
        raise NotImplementedError

    def _add_grid_link(
        self, src: int, dst: int, dim: int, direction: int, crosses: bool = False
    ) -> Link:
        link = self._add_link(src, dst, dim, direction, crosses)
        self._out[src][(dim, direction)] = link
        return link

    def out_link(self, router: int, dim: int, direction: int) -> Link:
        return self._out[router][(dim, direction)]

    # ------------------------------------------------------------------
    # Minimal routing helpers
    # ------------------------------------------------------------------
    def productive_directions(
        self, src: int, dst: int
    ) -> list[tuple[int, int, int]]:
        """Minimal-progress ``(dim, direction, remaining_hops)`` choices."""
        raise NotImplementedError

    def dor_path(self, src: int, dst: int) -> list[Link]:
        """The dimension-order (lowest dimension first) minimal path."""
        path: list[Link] = []
        cur = src
        while cur != dst:
            dirs = self.productive_directions(cur, dst)
            dim, direction, _ = min(dirs)  # lowest dim, prefer +1 on ties
            link = self.out_link(cur, dim, direction)
            path.append(link)
            cur = link.dst
        return path

    def route_path(self, src: int, dst: int) -> list[Link]:
        return self.dor_path(src, dst)


class Torus(GridTopology):
    """A k-ary n-cube torus with optional bristling.

    Parameters
    ----------
    dims:
        Radix per dimension, e.g. ``(8, 8)`` for an 8x8 torus or ``(4,)``
        for a 4-node ring.
    bristling:
        Number of endpoint nodes sharing each router (Table 2's
        "bristling factor").
    """

    kind = "torus"

    def _build_links(self) -> None:
        for r in range(self.num_routers):
            c = self.coords(r)
            for d in range(self.ndim):
                k = self.dims[d]
                if k < 2:
                    continue
                for direction in (+1, -1):
                    # k == 2 still gets distinct +1/-1 links (two parallel
                    # physical channels), matching a true torus wiring.
                    nc = list(c)
                    nc[d] = (c[d] + direction) % k
                    dst = self.router_id(tuple(nc))
                    crosses = (direction == +1 and c[d] == k - 1) or (
                        direction == -1 and c[d] == 0
                    )
                    self._add_grid_link(r, dst, d, direction, crosses)

    def productive_directions(
        self, src: int, dst: int
    ) -> list[tuple[int, int, int]]:
        """Minimal-progress ``(dim, direction, remaining_hops)`` choices.

        When the two minimal directions tie (``delta == k/2``), both are
        returned, giving adaptive routers the full minimal set; the
        deterministic dimension-order router picks the first (+1).
        """
        a, b = self.coords(src), self.coords(dst)
        out: list[tuple[int, int, int]] = []
        for d in range(self.ndim):
            k = self.dims[d]
            delta = (b[d] - a[d]) % k
            if delta == 0:
                continue
            if 2 * delta < k:
                out.append((d, +1, delta))
            elif 2 * delta > k:
                out.append((d, -1, k - delta))
            else:  # tie: both directions are minimal
                out.append((d, +1, delta))
                out.append((d, -1, delta))
        return out

    def min_hops(self, src: int, dst: int) -> int:
        a, b = self.coords(src), self.coords(dst)
        total = 0
        for d in range(self.ndim):
            k = self.dims[d]
            delta = (b[d] - a[d]) % k
            total += min(delta, k - delta)
        return total

    def bisection_channels(self) -> int:
        """Unidirectional channels crossing a balanced bisection (per direction).

        Splits along the largest even dimension; each row of that dimension
        contributes two rings-worth of crossing channels.
        """
        best = max(self.dims)
        rows = self.num_routers // best
        return 2 * rows  # two crossing links per row-ring, one direction

    def uniform_capacity(self) -> float:
        """Ideal uniform-random throughput bound, flits/node/cycle.

        Bisection argument: half the nodes inject ``lambda`` of which half
        crosses the cut, bounded by the crossing channel bandwidth; also
        bounded by the single injection port per node.
        """
        if all(k == 1 for k in self.dims):
            return 1.0
        cross = self.bisection_channels()
        cap = 4.0 * cross / self.num_nodes
        return min(1.0, cap)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(k) for k in self.dims)
        b = f", bristling={self.bristling}" if self.bristling > 1 else ""
        return f"Torus({dims}{b})"


class Mesh2D(GridTopology):
    """An open (non-wrapping) 2D mesh.

    With no wrap edges there are no ring dependencies, so XY
    dimension-order routing is deadlock-free *without* dateline VC
    classes — the topology-level discipline behind the OQ/VOQ
    switch-level avoidance of Papaphilippou & Chu (PAPERS.md).
    ``crosses_dateline`` is always False here, so escape traffic stays
    in dateline class 0 everywhere.
    """

    kind = "mesh2d"

    def __init__(self, dims: tuple[int, ...], bristling: int = 1) -> None:
        if len(dims) != 2:
            raise ConfigurationError(
                f"Mesh2D needs exactly two dims, got {dims!r}"
            )
        super().__init__(dims, bristling)

    def _build_links(self) -> None:
        for r in range(self.num_routers):
            c = self.coords(r)
            for d in range(self.ndim):
                for direction in (+1, -1):
                    n = c[d] + direction
                    if 0 <= n < self.dims[d]:
                        nc = list(c)
                        nc[d] = n
                        self._add_grid_link(
                            r, self.router_id(tuple(nc)), d, direction
                        )

    def productive_directions(
        self, src: int, dst: int
    ) -> list[tuple[int, int, int]]:
        a, b = self.coords(src), self.coords(dst)
        out: list[tuple[int, int, int]] = []
        for d in range(self.ndim):
            delta = b[d] - a[d]
            if delta > 0:
                out.append((d, +1, delta))
            elif delta < 0:
                out.append((d, -1, -delta))
        return out

    def min_hops(self, src: int, dst: int) -> int:
        a, b = self.coords(src), self.coords(dst)
        return sum(abs(x - y) for x, y in zip(a, b))

    def uniform_capacity(self) -> float:
        """Bisection bound as for the torus, but without wrap channels."""
        best = max(self.dims)
        if best < 2:
            return 1.0
        rows = self.num_routers // best
        return min(1.0, 2.0 * rows / self.num_nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(k) for k in self.dims)
        b = f", bristling={self.bristling}" if self.bristling > 1 else ""
        return f"Mesh2D({dims}{b})"


class FullMesh(Topology):
    """Every router pair joined by a dedicated unidirectional link.

    The Cano et al. (HOTI'25) setting: all routing is single-hop, so a
    packet never holds one router-to-router channel while requesting
    another — the channel-dependency graph has no edges at all and
    direct routing is deadlock-free with zero dedicated escape VCs
    (``repro cdg-check`` certifies the pair trivially).
    """

    kind = "fullmesh"

    def __init__(self, num_routers: int, bristling: int = 1) -> None:
        super().__init__(num_routers, bristling)
        self._direct: dict[tuple[int, int], Link] = {}
        for src in range(self.num_routers):
            for dst in range(self.num_routers):
                if dst != src:
                    self._direct[(src, dst)] = self._add_link(src, dst)

    def direct_link(self, src: int, dst: int) -> Link:
        return self._direct[(src, dst)]

    def min_hops(self, src: int, dst: int) -> int:
        return 0 if src == dst else 1

    def route_path(self, src: int, dst: int) -> list[Link]:
        return [] if src == dst else [self._direct[(src, dst)]]


class IrregularGraph(Topology):
    """An arbitrary connected topology given as an undirected edge list.

    Each undirected edge becomes two opposite unidirectional links
    (full-duplex, like the torus wiring); parallel edges are allowed.
    The escape discipline is up*/down* tree routing: :meth:`route_path`
    climbs the BFS spanning tree rooted at router 0 to the lowest common
    ancestor, then descends.  Up-channels ordered by depth before
    down-channels gives an acyclic escape dependency graph — which
    :mod:`repro.analysis.cdg` certifies rather than assumes.
    """

    kind = "irregular"

    def __init__(
        self,
        num_routers: int,
        edges: list[tuple[int, int]] | list[list[int]],
        bristling: int = 1,
        name: str = "irregular",
    ) -> None:
        super().__init__(num_routers, bristling)
        self.name = name
        pairs = [(int(a), int(b)) for a, b in edges]
        if self.num_routers > 1 and not pairs:
            raise ConfigurationError("irregular graph needs at least one edge")
        self.edges: tuple[tuple[int, int], ...] = tuple(pairs)
        #: first link for each ordered (src, dst) neighbour pair.
        self._forward: dict[tuple[int, int], Link] = {}
        for a, b in pairs:
            fwd = self._add_link(a, b)
            rev = self._add_link(b, a)
            self._forward.setdefault((a, b), fwd)
            self._forward.setdefault((b, a), rev)
        unreachable = [r for r, d in enumerate(self._bfs(0)) if d < 0]
        if unreachable:
            raise ConfigurationError(
                f"routers {unreachable} unreachable from router 0"
            )
        self._build_tree()
        self._tree_paths: dict[tuple[int, int], list[Link]] = {}

    def _build_tree(self) -> None:
        """BFS spanning tree from router 0, deterministic by link order."""
        n = self.num_routers
        self._parent = [-1] * n
        self._depth = [0] * n
        seen = [False] * n
        seen[0] = True
        frontier = [0]
        while frontier:
            nxt: list[int] = []
            for r in frontier:
                for link in self._out_adj[r]:
                    if not seen[link.dst]:
                        seen[link.dst] = True
                        self._parent[link.dst] = r
                        self._depth[link.dst] = self._depth[r] + 1
                        nxt.append(link.dst)
            frontier = nxt

    def _ancestors(self, router: int) -> list[int]:
        """The chain router, parent, ..., root (inclusive)."""
        chain = [router]
        while self._parent[chain[-1]] >= 0:
            chain.append(self._parent[chain[-1]])
        return chain

    def route_path(self, src: int, dst: int) -> list[Link]:
        """Up the spanning tree to the LCA of (src, dst), then down."""
        key = (src, dst)
        path = self._tree_paths.get(key)
        if path is None:
            down_chain = self._ancestors(dst)
            on_dst_chain = set(down_chain)
            path = []
            cur = src
            while cur not in on_dst_chain:  # climb to the LCA
                parent = self._parent[cur]
                path.append(self._forward[(cur, parent)])
                cur = parent
            # descend: dst's chain from the LCA down to dst
            for child in reversed(down_chain[: down_chain.index(cur)]):
                path.append(self._forward[(cur, child)])
                cur = child
            self._tree_paths[key] = path
        return path

    def tree_next_link(self, src: int, dst: int) -> Link | None:
        """First hop of the up*/down* tree path (escape-table entry)."""
        if src == dst:
            return None
        return self.route_path(src, dst)[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        b = f", bristling={self.bristling}" if self.bristling > 1 else ""
        return f"IrregularGraph({self.name}: {self.num_routers} routers{b})"


def ring(k: int, bristling: int = 1) -> Torus:
    """A k-node bidirectional ring (the Figure 1 example topology)."""
    return Torus((k,), bristling=bristling)


def irregular_example(bristling: int = 1) -> IrregularGraph:
    """The 9-router irregular example used by tests, CI and experiments.

    Deliberately non-symmetric: a 4-cycle core, a bristled side ring and
    a pendant chain, joined by cross links, so minimal paths are neither
    unique nor tree paths and the CDG checker has real work to do.
    """
    edges = [
        (0, 1), (1, 2), (2, 3), (3, 0),      # core cycle
        (1, 4), (4, 5), (5, 2),              # side ring re-entering the core
        (4, 6), (6, 7), (7, 8), (8, 4),      # pendant ring
        (3, 6),                              # cross link
    ]
    return IrregularGraph(9, edges, bristling=bristling, name="irregular9")


def fat_tree(
    dims: tuple[int, ...] = (4, 4),
    bristling: int = 1,
    max_fatness: int = 4,
) -> IrregularGraph:
    """A Leiserson-style fat tree built on :class:`IrregularGraph`.

    ``dims`` gives the down-arity per level, root first: ``(4, 4)`` is a
    root with 4 aggregation switches of 4 leaves each (21 routers).
    Link capacity grows toward the root by *parallel* undirected edges:
    the trunk between a switch and its parent carries as many parallel
    channels as the switch has leaf descendants, capped at
    ``max_fatness``.  The up*/down* escape discipline uses the first
    parallel link per trunk (the BFS spanning tree from the root is the
    tree itself); the extra parallel links are adaptive candidates for
    routings that allow them (PR's true fully adaptive routing), which
    is where the fatness pays off under load.

    Router ids are assigned in BFS order (root 0, then level by level),
    so sweep targets near id 0 sit at the bandwidth bottleneck.
    """
    if not dims or any(k < 1 for k in dims):
        raise ConfigurationError(f"invalid fat-tree arities {dims!r}")
    if max_fatness < 1:
        raise ConfigurationError("max_fatness must be positive")
    dims = tuple(int(k) for k in dims)
    edges: list[tuple[int, int]] = []
    level = [0]
    next_id = 1
    for depth, arity in enumerate(dims):
        below = math.prod(dims[depth + 1:])
        fatness = min(max_fatness, below)
        nxt: list[int] = []
        for parent in level:
            for _ in range(arity):
                child = next_id
                next_id += 1
                nxt.append(child)
                edges.extend([(parent, child)] * fatness)
        level = nxt
    label = "x".join(str(k) for k in dims)
    return IrregularGraph(
        next_id, edges, bristling=bristling, name=f"fattree{label}"
    )


def load_topology(path: str | Path, bristling: int | None = None) -> IrregularGraph:
    """Load an :class:`IrregularGraph` from a JSON file.

    Format::

        {"name": "cluster9", "routers": 9, "bristling": 1,
         "links": [[0, 1], [1, 2], ...]}

    ``links`` entries are undirected edges, each expanded to two opposite
    unidirectional links.  A ``bristling`` argument overrides the file's.
    """
    try:
        data = json.loads(Path(path).read_text("utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigurationError(
            f"cannot load topology file {path}: {exc}"
        ) from exc
    if not isinstance(data, dict) or "routers" not in data or "links" not in data:
        raise ConfigurationError(
            f"topology file {path} must be an object with 'routers' and 'links'"
        )
    b = bristling if bristling is not None else int(data.get("bristling", 1))
    return IrregularGraph(
        int(data["routers"]),
        data["links"],
        bristling=b,
        name=str(data.get("name", Path(path).stem)),
    )


#: Values accepted by SimConfig.topology / ``--topology``.
TOPOLOGY_KINDS = (
    "torus", "mesh2d", "fullmesh", "irregular", "fat_tree", "file"
)


def build_topology(
    kind: str,
    dims: tuple[int, ...] = (8, 8),
    bristling: int = 1,
    file: str | None = None,
) -> Topology:
    """Build a topology from :class:`~repro.config.SimConfig`-style knobs.

    ``dims`` keeps its torus meaning for grids; for ``fullmesh`` the
    router count is ``prod(dims)`` so existing sweep axes keep working.
    ``irregular`` is the built-in :func:`irregular_example`; ``file``
    loads :func:`load_topology` from ``file``.
    """
    if kind == "torus":
        return Torus(dims, bristling=bristling)
    if kind == "mesh2d":
        return Mesh2D(dims, bristling=bristling)
    if kind == "fullmesh":
        return FullMesh(math.prod(dims), bristling=bristling)
    if kind == "irregular":
        return irregular_example(bristling=bristling)
    if kind == "fat_tree":
        return fat_tree(dims, bristling=bristling)
    if kind == "file":
        if not file:
            raise ConfigurationError(
                "topology 'file' needs a topology_file path"
            )
        return load_topology(file, bristling=bristling)
    raise ConfigurationError(
        f"unknown topology {kind!r}; choices: {TOPOLOGY_KINDS}"
    )
