"""k-ary n-cube (torus) topologies with bristling.

The paper's experiments use bidirectional tori: 8x8 for the synthetic
studies (Table 2) and 4x4 / 2x4 / 2x2 with bristling factors 1/2/4 for the
trace-driven characterization (Section 4.2.2).  A ring is the special case
``dims=(k,)`` (Figure 1).

Terminology
-----------
router
    A switching element; there are ``prod(dims)`` of them.
node
    A network endpoint (processor + NI).  ``bristling`` nodes attach to
    each router, so ``num_nodes = num_routers * bristling``.
link
    A *unidirectional* channel between adjacent routers.  Full-duplex
    physical links are modelled as two opposite unidirectional links.
dateline
    Per dimension ring, the wrap-around edge; crossing it switches the
    escape virtual-channel class, which is what makes dimension-order
    escape routing deadlock-free on a torus (Dally & Seitz).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class Link:
    """A unidirectional router-to-router channel.

    ``crosses_dateline`` marks the wrap-around hop of the ring in
    dimension ``dim`` travelling in direction ``direction`` (+1 or -1).
    """

    lid: int
    src: int
    dst: int
    dim: int
    direction: int
    crosses_dateline: bool


class Torus:
    """A k-ary n-cube torus with optional bristling.

    Parameters
    ----------
    dims:
        Radix per dimension, e.g. ``(8, 8)`` for an 8x8 torus or ``(4,)``
        for a 4-node ring.
    bristling:
        Number of endpoint nodes sharing each router (Table 2's
        "bristling factor").
    """

    def __init__(self, dims: tuple[int, ...], bristling: int = 1) -> None:
        if not dims or any(k < 1 for k in dims):
            raise ConfigurationError(f"invalid dims {dims!r}")
        if bristling < 1:
            raise ConfigurationError(f"invalid bristling {bristling}")
        self.dims = tuple(int(k) for k in dims)
        self.bristling = int(bristling)
        self.num_routers = math.prod(self.dims)
        self.num_nodes = self.num_routers * self.bristling
        self.ndim = len(self.dims)

        # Strides for row-major coordinate packing.
        self._strides = [1] * self.ndim
        for d in range(self.ndim - 2, -1, -1):
            self._strides[d] = self._strides[d + 1] * self.dims[d + 1]

        self.links: list[Link] = []
        # out_links[r][ (dim, dir) ] -> Link ; flattened for speed as dict
        self._out: list[dict[tuple[int, int], Link]] = [
            {} for _ in range(self.num_routers)
        ]
        self._in: list[list[Link]] = [[] for _ in range(self.num_routers)]
        self._build_links()

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def coords(self, router: int) -> tuple[int, ...]:
        """Row-major coordinates of a router id."""
        out = []
        for d in range(self.ndim):
            out.append((router // self._strides[d]) % self.dims[d])
        return tuple(out)

    def router_id(self, coords: tuple[int, ...]) -> int:
        return sum(
            (c % k) * s for c, k, s in zip(coords, self.dims, self._strides)
        )

    def router_of_node(self, node: int) -> int:
        return node // self.bristling

    def nodes_of_router(self, router: int) -> range:
        return range(router * self.bristling, (router + 1) * self.bristling)

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def _build_links(self) -> None:
        lid = 0
        for r in range(self.num_routers):
            c = self.coords(r)
            for d in range(self.ndim):
                k = self.dims[d]
                if k < 2:
                    continue
                for direction in (+1, -1):
                    # k == 2 still gets distinct +1/-1 links (two parallel
                    # physical channels), matching a true torus wiring.
                    nc = list(c)
                    nc[d] = (c[d] + direction) % k
                    dst = self.router_id(tuple(nc))
                    crosses = (direction == +1 and c[d] == k - 1) or (
                        direction == -1 and c[d] == 0
                    )
                    link = Link(lid, r, dst, d, direction, crosses)
                    self.links.append(link)
                    self._out[r][(d, direction)] = link
                    self._in[dst].append(link)
                    lid += 1

    def out_link(self, router: int, dim: int, direction: int) -> Link:
        return self._out[router][(dim, direction)]

    def out_links(self, router: int) -> list[Link]:
        return list(self._out[router].values())

    def in_links(self, router: int) -> list[Link]:
        return self._in[router]

    # ------------------------------------------------------------------
    # Minimal routing helpers
    # ------------------------------------------------------------------
    def productive_directions(
        self, src: int, dst: int
    ) -> list[tuple[int, int, int]]:
        """Minimal-progress ``(dim, direction, remaining_hops)`` choices.

        When the two minimal directions tie (``delta == k/2``), both are
        returned, giving adaptive routers the full minimal set; the
        deterministic dimension-order router picks the first (+1).
        """
        a, b = self.coords(src), self.coords(dst)
        out: list[tuple[int, int, int]] = []
        for d in range(self.ndim):
            k = self.dims[d]
            delta = (b[d] - a[d]) % k
            if delta == 0:
                continue
            if 2 * delta < k:
                out.append((d, +1, delta))
            elif 2 * delta > k:
                out.append((d, -1, k - delta))
            else:  # tie: both directions are minimal
                out.append((d, +1, delta))
                out.append((d, -1, delta))
        return out

    def min_hops(self, src: int, dst: int) -> int:
        a, b = self.coords(src), self.coords(dst)
        total = 0
        for d in range(self.ndim):
            k = self.dims[d]
            delta = (b[d] - a[d]) % k
            total += min(delta, k - delta)
        return total

    def dor_path(self, src: int, dst: int) -> list[Link]:
        """The dimension-order (lowest dimension first) minimal path."""
        path: list[Link] = []
        cur = src
        while cur != dst:
            dirs = self.productive_directions(cur, dst)
            dim, direction, _ = min(dirs)  # lowest dim, prefer +1 on ties
            link = self.out_link(cur, dim, direction)
            path.append(link)
            cur = link.dst
        return path

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.MultiDiGraph:
        """Router graph with one edge per unidirectional link."""
        g = nx.MultiDiGraph()
        g.add_nodes_from(range(self.num_routers))
        for link in self.links:
            g.add_edge(link.src, link.dst, lid=link.lid, dim=link.dim)
        return g

    def bisection_channels(self) -> int:
        """Unidirectional channels crossing a balanced bisection (per direction).

        Splits along the largest even dimension; each row of that dimension
        contributes two rings-worth of crossing channels.
        """
        best = max(self.dims)
        rows = self.num_routers // best
        return 2 * rows  # two crossing links per row-ring, one direction

    def uniform_capacity(self) -> float:
        """Ideal uniform-random throughput bound, flits/node/cycle.

        Bisection argument: half the nodes inject ``lambda`` of which half
        crosses the cut, bounded by the crossing channel bandwidth; also
        bounded by the single injection port per node.
        """
        if all(k == 1 for k in self.dims):
            return 1.0
        cross = self.bisection_channels()
        cap = 4.0 * cross / self.num_nodes
        return min(1.0, cap)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(k) for k in self.dims)
        b = f", bristling={self.bristling}" if self.bristling > 1 else ""
        return f"Torus({dims}{b})"


def ring(k: int, bristling: int = 1) -> Torus:
    """A k-node bidirectional ring (the Figure 1 example topology)."""
    return Torus((k,), bristling=bristling)
