"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
run
    One simulation run; prints the metrics and the per-type breakdown.
sweep
    A load sweep for one (scheme, pattern, VCs) cell; prints the
    Burton-Normal-Form curve and optionally writes JSON.
cdg-check
    Static deadlock-freedom certification: extract the channel
    dependency graph of a (topology, routing) pair and print a
    CERTIFIED witness ordering or the REFUTED cycle.  With no
    arguments it audits every built-in pair (the CI gate).
experiments
    Regenerate the paper's tables/figures (thin wrapper around
    ``repro.experiments.runner``).
trace
    Generate a synthetic Splash-2-like trace file.
farm
    Distributed sweep campaigns: ``plan`` a campaign directory, ``run``
    it across a set of hosts, ``status`` it mid-flight, ``resume`` a
    killed run (finished points come straight from the cache).
serve
    Run the campaign service: an async HTTP job API with a named
    scenario library and live SSE telemetry streams.
submit
    Submit a named scenario to a running service (optionally following
    its event stream to completion).
jobs
    List a running service's jobs, or show/stream/download one job.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.config import ExecutionConfig, SimConfig
from repro.faults import parse_fault
from repro.network.topology import TOPOLOGY_KINDS
from repro.sim.analysis import format_breakdown
from repro.sim.engine import build_engine
from repro.sim.invariants import format_dump
from repro.sim.parallel import DEFAULT_CACHE_DIR
from repro.sim.sweep import run_sweep
from repro.util.errors import (
    InvariantViolation,
    LivenessError,
    SweepExecutionError,
    UnsupportedFeatureError,
)


def _add_config_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scheme", default="PR", choices=["SA", "DR", "PR", "NONE"])
    p.add_argument("--pattern", default="PAT721")
    p.add_argument("--vcs", type=int, default=4, dest="num_vcs")
    p.add_argument("--topology", default="torus",
                   choices=list(TOPOLOGY_KINDS),
                   help="network substrate ('file' loads a JSON graph"
                   " from --topology-file)")
    p.add_argument("--topology-file", metavar="PATH",
                   help="JSON graph description for --topology=file")
    p.add_argument("--dims", default="8x8",
                   help="grid radices, e.g. 8x8 or 4x4x4 (torus/mesh2d;"
                   " fullmesh uses the product as its router count)")
    p.add_argument("--bristling", type=int, default=1)
    p.add_argument("--queue-mode", default="auto",
                   choices=["auto", "shared", "per-net", "per-type"])
    p.add_argument("--backend", default="reference",
                   choices=["reference", "vector"],
                   help="engine implementation; both are bit-identical"
                   " (vector is the fast struct-of-arrays backend)")
    p.add_argument("--queue-capacity", type=int, default=16)
    p.add_argument("--service-time", type=int, default=40)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--shared-extras", action="store_true")
    p.add_argument("--recovery-policy", default="minimum",
                   choices=["minimum", "drain"])
    p.add_argument("--detector", default="endpoint",
                   choices=["endpoint", "cmh", "timeout"],
                   help="deadlock detection mechanism (SA allows only"
                   " endpoint; cmh/timeout need the reference backend)")
    p.add_argument("--detection-threshold", type=int, default=25,
                   metavar="T", help="endpoint detector timeout in cycles")
    p.add_argument("--timeout-threshold", type=int, default=200,
                   metavar="T", help="timeout detector's progress timeout")
    p.add_argument("--cmh-block-threshold", type=int, default=4, metavar="T",
                   help="cycles a site must be blocked before probing")
    p.add_argument("--cmh-probe-interval", type=int, default=64, metavar="N",
                   help="cycles between probe waves of one blocked site")
    p.add_argument("--cwg-interval", type=int, default=0, metavar="N",
                   help="run the omniscient CWG ground-truth checker every"
                   " N cycles (0 = off; reference backend only)")
    p.add_argument("--fault", action="append", default=[], dest="faults",
                   metavar="SPEC", type=parse_fault,
                   help="inject a fault, e.g."
                   " consumer-stall:target=5,start=600,duration=1500"
                   " (repeatable)")
    p.add_argument("--invariants-every", type=int, default=0, metavar="N",
                   help="run the invariant suite every N cycles (0 = off)")
    p.add_argument("--watchdog", type=int, default=0, metavar="CYCLES",
                   help="fail after this many progress-free cycles (0 = off)")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _add_execution_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="worker processes for sweep points (1 = serial)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk result cache")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="result cache location (default: %(default)s)")
    p.add_argument("--point-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="kill and retry a sweep point running longer than"
                   " this (default: no timeout)")


def _execution(args) -> ExecutionConfig:
    return ExecutionConfig(
        workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        progress=True,
        point_timeout=args.point_timeout,
    )


def _config(args, load: float) -> SimConfig:
    dims = tuple(int(k) for k in args.dims.lower().split("x"))
    return SimConfig(
        topology=args.topology,
        topology_file=args.topology_file,
        dims=dims,
        bristling=args.bristling,
        scheme=args.scheme,
        pattern=args.pattern,
        num_vcs=args.num_vcs,
        queue_mode=args.queue_mode,
        queue_capacity=args.queue_capacity,
        service_time=args.service_time,
        backend=args.backend,
        seed=args.seed,
        shared_extras=args.shared_extras,
        recovery_policy=args.recovery_policy,
        detector=args.detector,
        detection_threshold=args.detection_threshold,
        timeout_threshold=args.timeout_threshold,
        cmh_block_threshold=args.cmh_block_threshold,
        cmh_probe_interval=args.cmh_probe_interval,
        cwg_interval=args.cwg_interval,
        load=load,
        faults=tuple(args.faults),
        invariants_every=args.invariants_every,
        watchdog_timeout=args.watchdog,
    )


def cmd_run(args) -> int:
    engine = build_engine(_config(args, args.load))
    tracer = None
    if args.trace or args.json or args.timeseries:
        from repro.telemetry import Tracer

        tracer = Tracer(
            level=args.trace_level, sample_every=args.sample_every
        )
        try:
            engine.attach_tracer(tracer)
        except UnsupportedFeatureError:
            # --json only *implies* a tracer (for recovery episodes);
            # machine-readable results stay available on backends that
            # refuse tracing.  Explicit trace requests still fail loudly.
            if args.trace or args.timeseries:
                raise
            tracer = None
    try:
        window = engine.run_measured(args.warmup, args.measure)
    except (LivenessError, InvariantViolation) as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        if exc.dump is not None:
            print(format_dump(exc.dump), file=sys.stderr)
        return 3
    if tracer is not None or args.json:
        _export_run_telemetry(args, engine, tracer, window)
    nodes = engine.topology.num_nodes
    print(f"topology            : {engine.topology}")
    print(f"scheme              : {engine.scheme.describe()}")
    print(f"throughput          : {window.throughput_fpc(nodes):.4f} flits/node/cycle")
    print(f"mean latency        : {window.mean_latency():.1f} cycles")
    print(f"messages delivered  : {window.messages_delivered}")
    print(f"deadlocks           : {window.deadlocks + window.deadlocks_unresolved}")
    print(f"normalized deadlocks: {window.normalized_deadlocks():.3e}")
    if engine.faults is not None:
        for desc, count in engine.faults.activation_counts().items():
            print(f"fault               : {desc} activated {count}x")
    print("\nper-type breakdown (whole run):")
    print(format_breakdown(engine.stats))
    return 0


def _export_run_telemetry(args, engine, tracer, window) -> None:
    """Write the run's trace/time-series/JSON artifacts (``repro run``)."""
    from dataclasses import asdict

    from repro.telemetry import (
        export_perfetto,
        export_timeseries_csv,
        stitch_episodes,
    )

    episodes = stitch_episodes(tracer) if tracer is not None else []
    if args.trace:
        export_perfetto(tracer, args.trace)
        print(f"wrote {args.trace} ({tracer.events_recorded} events,"
              f" {tracer.dropped_events} dropped)")
    if args.timeseries:
        export_timeseries_csv(tracer, args.timeseries)
        print(f"wrote {args.timeseries} ({len(tracer.samples)} samples)")
    if args.json:
        stats = engine.stats
        nodes = engine.topology.num_nodes
        payload = {
            "scheme": engine.scheme.name,
            "pattern": engine.config.pattern,
            "dims": list(engine.config.dims),
            "num_vcs": engine.config.num_vcs,
            "load": engine.config.load,
            "seed": engine.config.seed,
            "window": {
                **asdict(window),
                "throughput_fpc": window.throughput_fpc(nodes),
                "mean_latency": window.mean_latency(),
                "normalized_deadlocks": window.normalized_deadlocks(),
            },
            "by_type": stats.by_type,
            "messages_created": stats.messages_created,
            "detector": (
                engine.detector.describe()
                if engine.detector is not None
                else {"detector": None}
            ),
            "first_deadlock_cycle": (
                stats.first_deadlock_cycle
                if stats.first_deadlock_cycle >= 0 else None
            ),
            "faults": (
                engine.faults.activation_counts()
                if engine.faults is not None else {}
            ),
            "episodes": [epi.to_dict() for epi in episodes],
        }
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            with open(args.json, "w") as fh:
                json.dump(payload, fh, indent=2)
            print(f"wrote {args.json}")


def cmd_sweep(args) -> int:
    loads = [float(x) for x in args.loads.split(",")]
    try:
        sweep = run_sweep(
            _config(args, loads[0]),
            loads,
            warmup=args.warmup,
            measure=args.measure,
            stop_past_saturation=not args.no_early_stop,
            execution=_execution(args),
        )
    except SweepExecutionError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print(f"{'load':>8s} {'thr(fpc)':>9s} {'latency':>9s} {'deadlocks':>10s}")
    for p in sweep.points:
        print(f"{p.load:8.4f} {p.throughput_fpc:9.4f} {p.mean_latency:8.1f}c"
              f" {p.deadlocks:10d}")
    print(f"saturation: {sweep.saturation_throughput():.4f}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(sweep.to_dict(), fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments import runner

    argv = [args.scale, *args.names, f"--workers={args.workers}",
            f"--cache-dir={args.cache_dir}"]
    if args.no_cache:
        argv.append("--no-cache")
    return runner.main(argv)


def cmd_farm_plan(args) -> int:
    from repro.farm import CampaignSpec

    loads = [float(x) for x in args.loads.split(",")]
    configs = tuple(_config(args, load) for load in loads)
    spec = CampaignSpec(
        configs=configs, warmup=args.warmup, measure=args.measure,
        shard_size=args.shard_size, name=args.name,
    )
    path = spec.save(args.dir)
    shards = -(-len(configs) // args.shard_size)
    print(f"planned {len(configs)} points in {shards} shards -> {path}")
    return 0


def _write_farm_state(directory, report: dict) -> None:
    from pathlib import Path

    from repro.farm.plan import STATE_FILENAME

    path = Path(directory) / STATE_FILENAME
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(report, indent=1), "utf-8")
    tmp.replace(path)


def cmd_farm_run(args) -> int:
    from repro.farm import (
        CampaignSpec,
        ChaosWorker,
        FarmManager,
        FarmPolicy,
        parse_hosts,
        parse_worker_fault,
    )
    from repro.sim.parallel import ResultCache

    spec = CampaignSpec.load(args.dir)
    workers = parse_hosts(
        args.hosts, point_timeout=args.point_timeout,
        job_timeout=args.job_timeout,
    )
    if args.chaos:
        faults = tuple(parse_worker_fault(text) for text in args.chaos)
        workers = [ChaosWorker(w, faults) for w in workers]
    policy = FarmPolicy(
        retries=args.retries,
        hang_timeout=args.hang_timeout,
    )
    tracer = None
    if args.trace:
        from repro.telemetry import Tracer

        tracer = Tracer()
    cache = ResultCache(args.cache_dir)
    manager = FarmManager(
        workers, cache=cache, policy=policy, tracer=tracer
    )
    try:
        results = manager.run(spec)
    except SweepExecutionError as exc:
        _write_farm_state(args.dir, manager.report())
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    finally:
        if tracer is not None:
            from repro.telemetry import export_perfetto

            export_perfetto(tracer, args.trace)
            print(f"wrote {args.trace} ({tracer.events_recorded} events)")
    report = manager.report()
    _write_farm_state(args.dir, report)
    print(f"{'load':>8s} {'thr(fpc)':>9s} {'latency':>9s} {'deadlocks':>10s}")
    for r in results:
        print(f"{r.load:8.4f} {r.throughput_fpc:9.4f}"
              f" {r.mean_latency:8.1f}c {r.deadlocks:10d}")
    print(f"campaign {spec.name}: {report['computed']} computed,"
          f" {report['cached']} cached, {report['elapsed_ms']} ms")
    for host, info in report["hosts"].items():
        print(f"  {host:16s} {info['state']:11s}"
              f" ok={info['shards_ok']} failed={info['shards_failed']}")
    return 0


def cmd_farm_status(args) -> int:
    from pathlib import Path

    from repro.farm import CampaignSpec, resolve_cached
    from repro.farm.plan import STATE_FILENAME
    from repro.sim.parallel import ResultCache

    spec = CampaignSpec.load(args.dir)
    progress = resolve_cached(spec, ResultCache(args.cache_dir))
    print(f"campaign {spec.name}: {progress.cached}/{progress.total}"
          f" points cached, {len(progress.missing)} to compute")
    state_path = Path(args.dir) / STATE_FILENAME
    if state_path.exists():
        state = json.loads(state_path.read_text("utf-8"))
        print(f"last run: {state.get('computed', '?')} computed,"
              f" failed={state.get('failed', [])}")
        for host, info in state.get("hosts", {}).items():
            print(f"  {host:16s} {info['state']:11s}"
                  f" ok={info['shards_ok']} failed={info['shards_failed']}")
    return 0


def _cdg_adhoc_report(args):
    """Certify one ad-hoc (--topology, --routing) pair."""
    from repro.analysis import check
    from repro.network import (
        build_topology,
        dimension_order_routing,
        duato_routing,
        full_mesh_routing,
        partitioned_vc_map,
        tfar_vc_map,
        true_fully_adaptive_routing,
    )

    dims = tuple(int(k) for k in args.dims.lower().split("x"))
    topology = build_topology(
        args.topology, dims=dims, bristling=args.bristling,
        file=args.topology_file,
    )
    if args.routing == "dor":
        routing = dimension_order_routing(
            topology, partitioned_vc_map(args.num_vcs, 1))
    elif args.routing == "duato":
        routing = duato_routing(
            topology, partitioned_vc_map(args.num_vcs, 1))
    elif args.routing == "tfar":
        routing = true_fully_adaptive_routing(
            topology, tfar_vc_map(args.num_vcs))
    else:  # cano: VC-free full-mesh direct routing
        routing = full_mesh_routing(topology)
    return check(topology, routing, name=f"{args.topology}-{args.routing}")


def cmd_cdg_check(args) -> int:
    from repro.analysis import builtin_pairs, check_pair, gate_failures

    if args.list:
        for pair in builtin_pairs():
            print(f"{pair.name:26s} {pair.expected:9s} {pair.description}")
        return 0
    if args.routing is not None:
        reports = [_cdg_adhoc_report(args)]
        # Ad-hoc pairs carry no registry annotation; a refutation simply
        # means "this pair can deadlock" and the exit code says so.
        problems = [f"{r.name}: {r.verdict}"
                    for r in reports if not r.certified]
    else:
        registry = {pair.name: pair for pair in builtin_pairs()}
        names = args.pairs or list(registry)
        unknown = [n for n in names if n not in registry]
        if unknown:
            print(f"unknown pair(s): {', '.join(unknown)}", file=sys.stderr)
            print(f"known: {', '.join(registry)}", file=sys.stderr)
            return 2
        reports = [check_pair(registry[name]) for name in names]
        problems = gate_failures(reports)
    for report in reports:
        print(report.format())
        print()
    certified = sum(1 for r in reports if r.certified)
    print(f"{certified}/{len(reports)} certified,"
          f" {len(reports) - certified} refuted,"
          f" {len(problems)} gate failure(s)")
    for problem in problems:
        print(f"  GATE: {problem}", file=sys.stderr)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump([r.to_dict() for r in reports], fh, indent=2)
        print(f"wrote {args.json}")
    return 1 if problems else 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.service.http import run_service

    def announce(server) -> None:
        print(f"campaign service on http://{server.host}:{server.port}"
              f" (jobs dir: {args.jobs_dir}, cache: {args.cache_dir})")
        from repro.service.scenarios import scenario_names

        print(f"scenarios: {', '.join(scenario_names())}")

    try:
        asyncio.run(run_service(
            host=args.host, port=args.port, cache_dir=args.cache_dir,
            jobs_dir=args.jobs_dir, workers=args.workers,
            farm_hosts=args.hosts, sample_every=args.sample_every,
            announce=announce,
        ))
    except KeyboardInterrupt:
        print("\ndrained and stopped")
    return 0


def _print_job_line(job: dict) -> None:
    print(f"{job['id']:12s} {job['state']:9s} p{job['priority']:<3d}"
          f" {job['done_points']:3d}/{job['total']:<3d}"
          f" ({job['cached']} cached)  {job['name']}")


def _follow_job(client, job_id: str) -> int:
    from repro.service import ServiceError

    try:
        for event, data, _ in client.stream_events(job_id):
            if event == "progress":
                src = "cache" if data.get("cached") else "sim"
                print(f"  point {data.get('point', '?')}:"
                      f" {data.get('done', '?')}/{data.get('total', '?')}"
                      f" [{src}]")
            elif event == "status":
                print(f"  state -> {data.get('state')}")
            elif event == "dropped":
                print(f"  (stream lagged: {data['dropped']} events dropped)")
            elif event == "done":
                state = data.get("state")
                print(f"job {job_id}: {state}, {data.get('computed')}"
                      f" computed + {data.get('cached')} cached"
                      f" of {data.get('total')}")
                if data.get("error"):
                    print(f"  error: {data['error']}", file=sys.stderr)
                return 0 if state == "done" else 1
    except ServiceError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_submit(args) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port)
    try:
        reply = client.submit(
            args.scenario, priority=args.priority, scale=args.scale,
            seed=args.seed, warmup=args.warmup, measure=args.measure,
        )
    except (ServiceError, ConnectionError) as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    job = reply["job"]
    verb = "submitted" if reply["created"] else "already known"
    print(f"{verb}: job {job['id']} ({job['name']})"
          f" priority={job['priority']} state={job['state']}"
          f" cached={job['cached']}/{job['total']}")
    if args.follow and job["state"] not in ("done", "failed", "cancelled"):
        return _follow_job(client, job["id"])
    return 0


def cmd_jobs(args) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port)
    try:
        if args.scenarios:
            for entry in client.scenarios():
                print(f"{entry['name']:24s} {entry['category']:12s}"
                      f" {entry['smoke_points']:3d}pt  "
                      f"{entry['description']}")
            return 0
        if args.job_id is None:
            for job in client.jobs():
                _print_job_line(job)
            return 0
        if args.follow:
            return _follow_job(client, args.job_id)
        if args.trace is not None:
            trace = client.trace(args.job_id)
            with open(args.trace, "w") as fh:
                json.dump(trace, fh)
            print(f"wrote {args.trace}"
                  f" ({len(trace['traceEvents'])} events)")
            return 0
        job = client.job(args.job_id, results=args.results)
        print(json.dumps(job, indent=2))
        return 0
    except (ServiceError, ConnectionError) as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1


def cmd_trace(args) -> int:
    from repro.traffic.splash import generate_app_trace
    from repro.traffic.trace import write_trace

    records = generate_app_trace(args.app, args.cpus, args.duration, args.seed)
    write_trace(args.out, records)
    print(f"wrote {len(records)} records to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Message-dependent deadlock simulator (Song & Pinkston).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="one simulation run")
    _add_config_args(p)
    p.add_argument("--load", type=float, default=0.008)
    p.add_argument("--warmup", type=int, default=2000)
    p.add_argument("--measure", type=int, default=8000)
    p.add_argument("--trace", metavar="PATH",
                   help="write a Chrome/Perfetto trace-event JSON file")
    p.add_argument("--trace-level", default="message",
                   choices=["message", "flit"],
                   help="flit adds VC grants and per-hop token movement")
    p.add_argument("--sample-every", type=int, default=0, metavar="N",
                   help="sample time-series metrics every N cycles (0 = off)")
    p.add_argument("--timeseries", metavar="PATH",
                   help="write sampled metrics as CSV (needs --sample-every)")
    p.add_argument("--json", metavar="PATH",
                   help="write machine-readable results ('-' for stdout)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("sweep", help="load sweep -> Burton curve")
    _add_config_args(p)
    p.add_argument("--loads", default="0.002,0.004,0.008,0.012,0.016")
    p.add_argument("--warmup", type=int, default=2000)
    p.add_argument("--measure", type=int, default=5000)
    p.add_argument("--no-early-stop", action="store_true")
    p.add_argument("--json", help="write the sweep result to a JSON file")
    _add_execution_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("experiments", help="regenerate tables/figures")
    p.add_argument("scale", nargs="?", default="smoke",
                   choices=["smoke", "paper"])
    p.add_argument("names", nargs="*")
    _add_execution_args(p)
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser("farm", help="distributed sweep campaigns")
    farm_sub = p.add_subparsers(dest="farm_command", required=True)

    fp = farm_sub.add_parser("plan", help="write a campaign directory")
    _add_config_args(fp)
    fp.add_argument("dir", help="campaign directory (created if needed)")
    fp.add_argument("--loads", default="0.002,0.004,0.008,0.012,0.016")
    fp.add_argument("--warmup", type=int, default=2000)
    fp.add_argument("--measure", type=int, default=5000)
    fp.add_argument("--shard-size", type=_positive_int, default=4)
    fp.add_argument("--name", default="campaign")
    fp.set_defaults(func=cmd_farm_plan)

    for verb, blurb in (
        ("run", "execute a planned campaign across hosts"),
        ("resume", "continue a killed campaign (same as run:"
                   " cached points are never recomputed)"),
    ):
        fp = farm_sub.add_parser(verb, help=blurb)
        fp.add_argument("dir", help="campaign directory")
        fp.add_argument("--hosts", default="local",
                        help="comma-separated workers: local[:N],"
                        " ssh:HOST[:python], ext:DIR"
                        " (default: %(default)s)")
        fp.add_argument("--retries", type=int, default=2,
                        help="re-dispatch budget per shard")
        fp.add_argument("--hang-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="abandon a dispatch with no answer after"
                        " this long and retry it elsewhere")
        fp.add_argument("--point-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-point wall-clock limit on local workers")
        fp.add_argument("--job-timeout", type=float, default=600.0,
                        metavar="SECONDS",
                        help="transport deadline for ssh/ext workers")
        fp.add_argument("--chaos", action="append", default=[],
                        metavar="SPEC",
                        help="inject a worker fault, e.g."
                        " crash:host=local0,at=1 (repeatable)")
        fp.add_argument("--trace", metavar="PATH",
                        help="write the campaign timeline as a"
                        " Perfetto trace-event JSON file")
        fp.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
        fp.set_defaults(func=cmd_farm_run)

    fp = farm_sub.add_parser("status", help="campaign progress from cache")
    fp.add_argument("dir", help="campaign directory")
    fp.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    fp.set_defaults(func=cmd_farm_status)

    p = sub.add_parser(
        "cdg-check",
        help="statically certify/refute deadlock freedom (CDG analysis)")
    p.add_argument("pairs", nargs="*", metavar="PAIR",
                   help="built-in pair names (default: all; see --list)")
    p.add_argument("--list", action="store_true",
                   help="list the built-in (topology, routing) pairs")
    p.add_argument("--routing", choices=["dor", "duato", "tfar", "cano"],
                   help="check one ad-hoc pair instead of the registry")
    p.add_argument("--topology", default="torus",
                   choices=list(TOPOLOGY_KINDS),
                   help="ad-hoc pair's topology (with --routing)")
    p.add_argument("--topology-file", metavar="PATH",
                   help="JSON graph description for --topology=file")
    p.add_argument("--dims", default="4x4",
                   help="ad-hoc pair's radices (default: %(default)s)")
    p.add_argument("--bristling", type=int, default=1)
    p.add_argument("--vcs", type=int, default=4, dest="num_vcs")
    p.add_argument("--json", metavar="PATH",
                   help="write every report as a JSON artifact")
    p.set_defaults(func=cmd_cdg_check)

    p = sub.add_parser("serve", help="run the campaign service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321,
                   help="listen port (0 picks a free one;"
                   " default: %(default)s)")
    p.add_argument("--jobs-dir", default="service_jobs",
                   help="job records + queue persistence"
                   " (default: %(default)s)")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="1 = traced in-process execution (live time"
                   " series + Perfetto traces); >1 = parallel pool"
                   " (progress events only)")
    p.add_argument("--hosts", default=None,
                   help="execute on a farm instead (same syntax as"
                   " 'farm run --hosts')")
    p.add_argument("--sample-every", type=int, default=200, metavar="N",
                   help="metrics sampling period for streamed time series")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="submit a scenario to the service")
    p.add_argument("scenario", help="scenario name (see 'repro jobs"
                   " --scenarios')")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321)
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs first (default: %(default)s)")
    p.add_argument("--scale", default="smoke", choices=["smoke", "paper"])
    p.add_argument("--seed", type=int, default=None,
                   help="override every point's seed")
    p.add_argument("--warmup", type=int, default=None)
    p.add_argument("--measure", type=int, default=None)
    p.add_argument("--follow", action="store_true",
                   help="stream the job's events until it finishes")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("jobs", help="inspect a running service")
    p.add_argument("job_id", nargs="?", default=None,
                   help="job id (omit to list all jobs)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321)
    p.add_argument("--scenarios", action="store_true",
                   help="list the scenario library instead")
    p.add_argument("--results", action="store_true",
                   help="embed per-point results in the job JSON")
    p.add_argument("--follow", action="store_true",
                   help="stream the job's events")
    p.add_argument("--trace", metavar="PATH",
                   help="download the job's Perfetto trace to PATH")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser("trace", help="generate a synthetic app trace")
    p.add_argument("app", choices=["fft", "lu", "radix", "water"])
    p.add_argument("out")
    p.add_argument("--cpus", type=int, default=16)
    p.add_argument("--duration", type=int, default=40_000)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
