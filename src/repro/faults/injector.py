"""The fault injector: schedules fault specs and drives the fault hooks.

The injector is built by the engine when ``config.faults`` is non-empty
and steps once per cycle *before* traffic generation, so a fault applied
at cycle ``t`` shapes everything the system does at ``t``.  Faults act
through deliberately narrow hooks — the stall sets on
:class:`~repro.network.fabric.Fabric`, the ``stalled`` flag on
:class:`~repro.endpoint.controller.MemoryController`, and the
loss/duplication state on :class:`~repro.core.token.Token` — so the
healthy hot path pays only a truthiness test per phase.
"""

from __future__ import annotations

from repro.faults.models import EVENT_KINDS, FaultSpec
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng


class _Fault:
    """Runtime state machine for one spec: idle -> active -> (idle | done)."""

    def __init__(self, spec: FaultSpec, rng) -> None:
        self.spec = spec
        self.rng = rng  # None unless probabilistic
        self.active = False
        self.active_until = -1  # revoke cycle (exclusive); -1 = permanent
        self.activations = 0
        self.done = False  # one-shot events only

    # -- scheduling ----------------------------------------------------
    def step(self, engine, now: int) -> None:
        spec = self.spec
        if self.active:
            if 0 <= self.active_until <= now:
                self.revoke(engine)
                self.active = False
                if engine.tracer is not None:
                    engine.tracer.fault_revoked(spec.describe(), now)
            else:
                return
        if self.done or now < spec.start:
            return
        if spec.probability > 0.0:
            if self.rng.random() >= spec.probability:
                return
        elif self.activations > 0:
            return  # cycle-scheduled faults fire exactly once
        if not self.apply(engine, now):
            return  # not applicable yet (e.g. token currently held)
        if engine.tracer is not None:
            engine.tracer.fault_applied(spec.describe(), now)
        self.activations += 1
        if spec.kind in EVENT_KINDS:
            self.done = True
        else:
            self.active = True
            self.active_until = now + spec.duration if spec.duration else -1

    # -- per-kind behaviour (overridden) -------------------------------
    def validate(self, engine) -> None:
        """Raise :class:`ConfigurationError` for an out-of-range target."""

    def apply(self, engine, now: int) -> bool:
        raise NotImplementedError

    def revoke(self, engine) -> None:
        raise NotImplementedError


class _LinkStall(_Fault):
    def validate(self, engine) -> None:
        if self.spec.target >= len(engine.topology.links):
            raise ConfigurationError(
                f"link-stall target {self.spec.target} out of range"
            )

    def apply(self, engine, now: int) -> bool:
        engine.fabric.stalled_links.add(self.spec.target)
        return True

    def revoke(self, engine) -> None:
        engine.fabric.stalled_links.discard(self.spec.target)


class _RouterFreeze(_Fault):
    def validate(self, engine) -> None:
        if self.spec.target >= engine.topology.num_routers:
            raise ConfigurationError(
                f"router-freeze target {self.spec.target} out of range"
            )
        self._out_links = [
            link.lid for link in engine.topology.links
            if link.src == self.spec.target
        ]

    def apply(self, engine, now: int) -> bool:
        fabric = engine.fabric
        fabric.stalled_routers.add(self.spec.target)
        fabric.stalled_links.update(self._out_links)
        return True

    def revoke(self, engine) -> None:
        fabric = engine.fabric
        fabric.stalled_routers.discard(self.spec.target)
        fabric.stalled_links.difference_update(self._out_links)


class _ConsumerStall(_Fault):
    def validate(self, engine) -> None:
        if self.spec.target >= engine.topology.num_nodes:
            raise ConfigurationError(
                f"consumer-stall target {self.spec.target} out of range"
            )

    def apply(self, engine, now: int) -> bool:
        engine.interfaces[self.spec.target].controller.stalled = True
        return True

    def revoke(self, engine) -> None:
        engine.interfaces[self.spec.target].controller.stalled = False


class _EjectStall(_Fault):
    def validate(self, engine) -> None:
        if self.spec.target >= engine.topology.num_nodes:
            raise ConfigurationError(
                f"eject-stall target {self.spec.target} out of range"
            )

    def apply(self, engine, now: int) -> bool:
        engine.fabric.stalled_ejects.add(self.spec.target)
        return True

    def revoke(self, engine) -> None:
        engine.fabric.stalled_ejects.discard(self.spec.target)


def _token_of(engine):
    controller = getattr(engine.scheme, "controller", None)
    return getattr(controller, "token", None)


class _TokenLoss(_Fault):
    def validate(self, engine) -> None:
        if _token_of(engine) is None:
            raise ConfigurationError(
                f"{self.spec.kind} requires the PR scheme (no token ring)"
            )

    def apply(self, engine, now: int) -> bool:
        # A held token cannot silently vanish mid-rescue in this model;
        # the loss fires once the rescue releases it.
        return _token_of(engine).lose()

    def revoke(self, engine) -> None:  # pragma: no cover - event kind
        pass


class _TokenDup(_TokenLoss):
    def apply(self, engine, now: int) -> bool:
        _token_of(engine).duplicate()
        return True


_FAULT_CLASSES = {
    "link-stall": _LinkStall,
    "router-freeze": _RouterFreeze,
    "consumer-stall": _ConsumerStall,
    "eject-stall": _EjectStall,
    "token-loss": _TokenLoss,
    "token-dup": _TokenDup,
}


class FaultInjector:
    """Owns the run's faults and applies them cycle by cycle."""

    def __init__(self, engine, specs, seed: int) -> None:
        self.engine = engine
        self.faults: list[_Fault] = []
        for i, spec in enumerate(specs):
            rng = make_rng(seed, f"fault:{i}") if spec.probability > 0.0 else None
            fault = _FAULT_CLASSES[spec.kind](spec, rng)
            fault.validate(engine)
            self.faults.append(fault)

    def step(self, now: int) -> None:
        engine = self.engine
        for fault in self.faults:
            fault.step(engine, now)

    # -- introspection (dumps, experiments, tests) ---------------------
    def active_descriptions(self) -> list[str]:
        return [f.spec.describe() for f in self.faults if f.active]

    def activation_counts(self) -> dict[str, int]:
        """Deterministic per-spec activation tally (dump/report material)."""
        return {f.spec.describe(): f.activations for f in self.faults}
