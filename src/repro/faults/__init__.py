"""Fault injection: deterministic adversarial scenarios for the schemes.

The paper's claim is that DR and PR *recover* from message-dependent
deadlock while SA *avoids* it; this package turns that claim into
executable scenarios.  :class:`FaultSpec` describes a fault (what,
where, when — by cycle or seeded probability); the
:class:`FaultInjector` drives them against a live engine through narrow
hooks in the fabric, the memory controllers and the PR token ring.
Paired with :mod:`repro.sim.invariants`, a faulted run either recovers
(and the conservation checks prove nothing was lost) or fails loudly
with a structured deadlock dump.
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import EVENT_KINDS, FAULT_KINDS, FaultSpec, parse_fault

__all__ = [
    "EVENT_KINDS",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "parse_fault",
]
