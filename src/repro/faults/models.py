"""Deterministic, seeded fault models for adversarial robustness runs.

Every fault is described by a :class:`FaultSpec` — a frozen dataclass
carried on :class:`~repro.config.SimConfig` so a faulted run is cached,
swept and reproduced exactly like a healthy one.  A spec is *scheduled*
either by cycle (``start`` + ``duration``) or by probability (a seeded
per-cycle Bernoulli activation while idle, each episode lasting
``duration`` cycles), and is *deterministic* under a fixed seed: two
runs of the same config produce identical fault timelines, identical
recovery counters and identical deadlock dumps.

Fault kinds
-----------
``link-stall``
    The targeted link forwards no flits while active (transient glitch
    or, with ``duration=0``, a permanently dead link).
``router-freeze``
    The targeted router neither allocates routes nor forwards flits on
    any of its outgoing links.  The PR deadlock-buffer lane is a
    dedicated physical resource and is deliberately *not* frozen —
    progressive recovery must remain able to rescue past the fault.
``consumer-stall``
    The targeted node's memory controller services nothing while active
    (a stalled memory controller / NI consumer): deliveries continue
    until the input queues fill, which is exactly the condition from
    which message-dependent deadlock grows.
``eject-stall``
    The targeted node's ejection port drains no flits (delayed
    ejection): packets block inside the network holding their channels.
``token-loss``
    PR only: the circulating token is dropped (a one-shot event; if the
    token is held by a rescue, the loss is deferred until release).
    Recovery is the controller's token-regeneration watchdog.
``token-dup``
    PR only: a duplicate token appears (one-shot).  The simulator does
    not model two live tokens; the fault exists so the invariant
    layer's token-uniqueness check provably catches the corruption.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError

FAULT_KINDS = (
    "link-stall",
    "router-freeze",
    "consumer-stall",
    "eject-stall",
    "token-loss",
    "token-dup",
)

#: kinds whose activation is an instantaneous event, not a held state.
EVENT_KINDS = ("token-loss", "token-dup")


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: what, where, and when."""

    #: one of :data:`FAULT_KINDS`.
    kind: str
    #: link id, router id or node id depending on ``kind``; token faults
    #: have no target and keep the default.
    target: int = -1
    #: first cycle the fault may activate.
    start: int = 0
    #: cycles each activation lasts; 0 = permanent (stateful kinds) or
    #: irrelevant (event kinds).
    duration: int = 0
    #: per-cycle activation probability while idle (0 = activate exactly
    #: once, at ``start``).  Draws come from a substream of the run seed,
    #: so the schedule is deterministic per config.
    probability: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind {self.kind!r} not in {FAULT_KINDS}"
            )
        if self.kind not in EVENT_KINDS and self.target < 0:
            raise ConfigurationError(f"fault {self.kind!r} needs a target id")
        if self.start < 0 or self.duration < 0:
            raise ConfigurationError("fault start/duration must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("fault probability must be in [0, 1]")
        if self.probability > 0.0 and self.duration <= 0:
            raise ConfigurationError(
                "a probabilistic fault needs a positive duration"
            )

    def describe(self) -> str:
        where = f"@{self.target}" if self.target >= 0 else ""
        when = (
            f"p={self.probability:g}" if self.probability > 0.0
            else f"start={self.start}"
        )
        life = f"dur={self.duration}" if self.duration else "permanent"
        if self.kind in EVENT_KINDS:
            life = "event"
        return f"{self.kind}{where}[{when},{life}]"


def parse_fault(text: str) -> FaultSpec:
    """Parse a CLI fault description into a :class:`FaultSpec`.

    Format: ``kind[:key=value,...]`` with keys ``target``, ``start``,
    ``duration`` and ``p`` (probability), e.g.
    ``consumer-stall:target=5,start=600,duration=1500`` or
    ``link-stall:target=3,p=0.001,duration=40``.
    """
    kind, _, rest = text.partition(":")
    kwargs: dict[str, float | int] = {}
    if rest:
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            if not sep:
                raise ConfigurationError(
                    f"bad fault parameter {pair!r} (expected key=value)"
                )
            key = {"p": "probability", "prob": "probability"}.get(key, key)
            try:
                if key == "probability":
                    kwargs[key] = float(value)
                elif key in ("target", "start", "duration"):
                    kwargs[key] = int(value)
                else:
                    raise ConfigurationError(f"unknown fault parameter {key!r}")
            except ValueError:
                raise ConfigurationError(
                    f"bad value {value!r} for fault parameter {key!r}"
                ) from None
    return FaultSpec(kind=kind, **kwargs)
