"""Static channel-dependency-graph deadlock-freedom certification.

Given a (topology, routing) pair this module enumerates every
(channel, next-channel) dependency the routing function can generate —
by walking the reachable ``(router, dateline-mask)`` states for every
(destination, VC class) — and decides deadlock freedom *before* any
simulation runs:

* Classes with an escape pair are judged by the escape-subfunction
  condition (Duato's necessary-and-sufficient theorem, in the
  arbitrary-network framing of Mendlovic & Matias, 2025): the routing is
  deadlock-free iff the *extended* dependency graph over the escape
  channels is acyclic.  Extended means direct escape→escape
  dependencies plus indirect ones, where a worm holds an escape channel,
  detours over adaptive channels, and later requests another escape
  channel; the detour closure is a fixpoint over the state graph, so
  non-minimal escape disciplines (up*/down* tree routing) are handled.
* Classes with no escape (TFAR) are judged by full-CDG acyclicity
  (Dally & Seitz): every candidate channel is a node.

The verdict is ``CERTIFIED`` with an acyclic witness ordering of the
dependency-graph nodes, or ``REFUTED`` with a concrete dependency cycle
rendered like the simulator's deadlock dumps.  Scope: this certifies
freedom from *routing* deadlock.  Message-dependent (endpoint) deadlock
is the schemes' business — SA makes it impossible by construction, DR
and PR recover from it — and is exactly what the simulator's detectors
observe; the ``cdg_lab`` experiment cross-validates the two worlds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import networkx as nx

from repro.network.routing import (
    Routing,
    TableRouting,
    duato_routing,
    dimension_order_routing,
    full_mesh_routing,
    partitioned_vc_map,
    tfar_vc_map,
    true_fully_adaptive_routing,
)
from repro.network.topology import (
    FullMesh,
    Mesh2D,
    Topology,
    Torus,
    irregular_example,
    ring,
)

#: (router, dateline-crossing mask) — one node of the reachable walk.
State = tuple[int, int]
#: per state: (adaptive transitions, escape transition or None); each
#: transition is (vc id, next state).
Transitions = dict[State, tuple[list[tuple[int, State]],
                                tuple[int, State] | None]]

CERTIFIED = "CERTIFIED"
REFUTED = "REFUTED"


@dataclass(frozen=True)
class DepExample:
    """Provenance of one dependency edge: who requests what, where."""

    dst_router: int
    vc_class: int
    router: int
    crossed_mask: int


def channel_name(topology: Topology, num_vcs: int, vcid: int) -> str:
    """Render a vc id the way deadlock dumps render channels."""
    link = topology.links[vcid // num_vcs]
    extra = " dateline" if link.crosses_dateline else ""
    return (
        f"ch(link={link.lid} {link.src}->{link.dst} "
        f"vc{vcid % num_vcs}{extra})"
    )


@dataclass
class CdgReport:
    """Outcome of one certification run (see :func:`check`)."""

    name: str
    topology: str
    routing: str
    verdict: str
    #: which theorem decided: "escape-extended", "full-cdg" or both.
    condition: str
    num_channels: int
    num_escape_channels: int
    num_dependencies: int
    #: CERTIFIED: acyclic ordering of the dependency-graph nodes.
    witness: tuple[int, ...] | None
    #: REFUTED: the offending cycle as (channel, channel) edges.
    cycle: tuple[tuple[int, int], ...] | None
    #: REFUTED: rendered cycle lines (channel names + provenance).
    cycle_lines: tuple[str, ...] = ()
    #: CERTIFIED: rendered head of the witness ordering.
    witness_lines: tuple[str, ...] = ()
    #: registry expectation / justification, when run via the registry.
    expected: str | None = None
    annotation: str | None = None

    @property
    def certified(self) -> bool:
        return self.verdict == CERTIFIED

    def format(self) -> str:
        lines = [
            f"cdg-check: {self.name}",
            f"  topology {self.topology}   routing {self.routing}",
            f"  channels {self.num_channels} "
            f"(escape {self.num_escape_channels})   "
            f"dependencies {self.num_dependencies}   "
            f"condition {self.condition}",
            f"  verdict {self.verdict}",
        ]
        if self.certified:
            if self.witness:
                head = "  <  ".join(self.witness_lines)
                lines.append(
                    f"  witness: acyclic ordering of "
                    f"{len(self.witness)} channels: {head}  <  ..."
                )
            else:
                lines.append("  witness: empty dependency graph")
        else:
            lines.append(
                f"  dependency cycle ({len(self.cycle_lines)} channels):"
            )
            lines.extend(f"    {line}" for line in self.cycle_lines)
        if self.expected is not None:
            ok = "matches" if self.expected == self.verdict else "MISMATCH"
            lines.append(f"  expected {self.expected} ({ok})")
        if self.annotation:
            lines.append(f"  note: {self.annotation}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "topology": self.topology,
            "routing": self.routing,
            "verdict": self.verdict,
            "condition": self.condition,
            "num_channels": self.num_channels,
            "num_escape_channels": self.num_escape_channels,
            "num_dependencies": self.num_dependencies,
            "witness": list(self.witness) if self.witness is not None else None,
            "cycle": [list(e) for e in self.cycle]
            if self.cycle is not None else None,
            "cycle_lines": list(self.cycle_lines),
            "expected": self.expected,
            "annotation": self.annotation,
        }


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def _next_state(
    topology: Topology, num_vcs: int, vcid: int, mask: int
) -> State:
    link = topology.links[vcid // num_vcs]
    if link.crosses_dateline:
        mask = mask | (1 << link.dim)
    return (link.dst, mask)


def _walk(
    topology: Topology, routing: Routing, dst: int, vc_class: int
) -> Transitions:
    """Reachable (router, mask) states and their candidate transitions."""
    num_vcs = routing.vc_map.num_vcs
    trans: Transitions = {}
    stack: list[State] = [
        (r, 0) for r in range(topology.num_routers) if r != dst
    ]
    while stack:
        state = stack.pop()
        if state in trans:
            continue
        router, mask = state
        ids, esc = routing.static_candidate_ids(router, dst, vc_class, mask)
        adaptive: list[tuple[int, State]] = []
        for vcid in ids:
            ns = _next_state(topology, num_vcs, vcid, mask)
            adaptive.append((vcid, ns))
            if ns[0] != dst and ns not in trans:
                stack.append(ns)
        escape: tuple[int, State] | None = None
        if esc >= 0:
            ns = _next_state(topology, num_vcs, esc, mask)
            escape = (esc, ns)
            if ns[0] != dst and ns not in trans:
                stack.append(ns)
        trans[state] = (adaptive, escape)
    return trans


def _escape_closure(trans: Transitions, dst: int) -> dict[State, set[int]]:
    """Per state: escape channels requestable via adaptive* then escape.

    A monotone fixpoint — the state graph may have cycles (tree escape
    hops are not minimal), so plain recursion would not terminate.
    """
    closure: dict[State, set[int]] = {s: set() for s in trans}
    changed = True
    while changed:
        changed = False
        for state, (adaptive, escape) in trans.items():
            new = set(closure[state])
            if escape is not None:
                new.add(escape[0])
            for _vcid, ns in adaptive:
                if ns[0] != dst:
                    new |= closure.get(ns, set())
            if new != closure[state]:
                closure[state] = new
                changed = True
    return closure


def _escape_extended_edges(
    trans: Transitions,
    dst: int,
    vc_class: int,
    edges: dict[tuple[int, int], DepExample],
    escape_ids: set[int],
) -> None:
    """Duato's extended dependencies between escape channels."""
    closure = _escape_closure(trans, dst)
    for _state, (_adaptive, escape) in trans.items():
        if escape is None:
            continue
        held, ns = escape
        escape_ids.add(held)
        if ns[0] == dst:
            continue
        for requested in closure.get(ns, ()):
            key = (held, requested)
            if key not in edges:
                edges[key] = DepExample(dst, vc_class, ns[0], ns[1])


def _direct_edges(
    trans: Transitions,
    dst: int,
    vc_class: int,
    edges: dict[tuple[int, int], DepExample],
) -> None:
    """Full-CDG dependencies for classes with no escape subfunction."""
    for _state, (adaptive, escape) in trans.items():
        held_transitions = list(adaptive)
        if escape is not None:
            held_transitions.append(escape)
        for held, ns in held_transitions:
            if ns[0] == dst:
                continue
            nxt_adaptive, nxt_escape = trans[ns]
            for requested, _ in nxt_adaptive:
                key = (held, requested)
                if key not in edges:
                    edges[key] = DepExample(dst, vc_class, ns[0], ns[1])
            if nxt_escape is not None:
                key = (held, nxt_escape[0])
                if key not in edges:
                    edges[key] = DepExample(dst, vc_class, ns[0], ns[1])


def describe_routing(routing: Routing) -> str:
    """A short human label for a routing function."""
    vc_map = routing.vc_map
    name = getattr(routing, "name", None) or (
        "grid-adaptive" if routing.adaptive else "grid-dor"
    )
    mode = "adaptive" if routing.adaptive else "deterministic"
    return (
        f"{name} ({mode}, {vc_map.num_vcs} VCs, "
        f"{vc_map.num_classes} class{'es' if vc_map.num_classes != 1 else ''})"
    )


def check(topology: Topology, routing: Routing, name: str = "") -> CdgReport:
    """Certify or refute a (topology, routing) pair.

    Builds the union dependency graph over all (destination, class)
    walks — escape-extended edges for classes with an escape pair,
    full-CDG edges for classes without — and reports ``CERTIFIED`` with
    a topological witness ordering if it is acyclic, else ``REFUTED``
    with a concrete cycle.
    """
    vc_map = routing.vc_map
    num_vcs = vc_map.num_vcs
    edges: dict[tuple[int, int], DepExample] = {}
    escape_ids: set[int] = set()
    conditions: set[str] = set()
    for vc_class in range(vc_map.num_classes):
        has_escape = vc_map.escape[vc_class] is not None
        conditions.add("escape-extended" if has_escape else "full-cdg")
        for dst in range(topology.num_routers):
            trans = _walk(topology, routing, dst, vc_class)
            if has_escape:
                _escape_extended_edges(trans, dst, vc_class, edges, escape_ids)
            else:
                _direct_edges(trans, dst, vc_class, edges)

    graph: nx.DiGraph = nx.DiGraph()
    graph.add_nodes_from(escape_ids)
    graph.add_edges_from(edges)
    try:
        raw_cycle = [(int(u), int(v)) for u, v, *_ in nx.find_cycle(graph)]
    except nx.NetworkXNoCycle:
        raw_cycle = None

    condition = "+".join(sorted(conditions)) or "full-cdg"
    label = name or f"{topology!r} x {describe_routing(routing)}"
    common = {
        "name": label,
        "topology": repr(topology),
        "routing": describe_routing(routing),
        "condition": condition,
        "num_channels": len(topology.links) * num_vcs,
        "num_escape_channels": len(escape_ids),
        "num_dependencies": len(edges),
    }
    if raw_cycle is None:
        witness = tuple(int(n) for n in nx.topological_sort(graph))
        return CdgReport(
            verdict=CERTIFIED,
            witness=witness,
            witness_lines=tuple(
                channel_name(topology, num_vcs, vcid) for vcid in witness[:4]
            ),
            cycle=None,
            **common,
        )
    lines = []
    for held, requested in raw_cycle:
        ex = edges[(held, requested)]
        lines.append(
            f"{channel_name(topology, num_vcs, held)} -> "
            f"{channel_name(topology, num_vcs, requested)}   "
            f"[class {ex.vc_class} -> router {ex.dst_router}, "
            f"requested at router {ex.router} mask {ex.crossed_mask:#x}]"
        )
    return CdgReport(
        verdict=REFUTED,
        witness=None,
        cycle=tuple(raw_cycle),
        cycle_lines=tuple(lines),
        **common,
    )


# ----------------------------------------------------------------------
# Built-in pair registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BuiltinPair:
    """One registered (topology, routing) pair with its expected verdict.

    Every expected-``REFUTED`` pair must carry an ``annotation`` saying
    why shipping it is fine (the ``cdg-certify`` CI gate fails on any
    un-annotated refutation).
    """

    name: str
    build: Callable[[], tuple[Topology, Routing]]
    expected: str
    description: str
    annotation: str | None = field(default=None)


_RECOVERY_NOTE = (
    "TFAR deliberately has no escape subfunction; deadlock is handled "
    "by detection + recovery (the paper's DR/PR schemes), not avoidance."
)
_ADAPTIVE_TREE_NOTE = (
    "demonstration pair: minimal-adaptive detours off the up*/down* tree "
    "create indirect up-channel dependencies that break the tree "
    "ordering; this is why duato_routing disables adaptivity on "
    "irregular graphs."
)


def builtin_pairs() -> tuple[BuiltinPair, ...]:
    """Every built-in (topology, routing) pair the CI gate certifies."""
    return (
        BuiltinPair(
            "ring8-dor",
            lambda: (t := ring(8),
                     dimension_order_routing(t, partitioned_vc_map(2, 1))),
            CERTIFIED,
            "8-ring, dateline escape pair (Dally-Seitz)",
        ),
        BuiltinPair(
            "ring8-tfar",
            lambda: (t := ring(8),
                     true_fully_adaptive_routing(t, tfar_vc_map(2))),
            REFUTED,
            "8-ring, true fully adaptive: the classic ring cycle",
            annotation=_RECOVERY_NOTE,
        ),
        BuiltinPair(
            "torus4x4-dor",
            lambda: (t := Torus((4, 4)),
                     dimension_order_routing(t, partitioned_vc_map(2, 1))),
            CERTIFIED,
            "4x4 torus, dimension-order over the dateline pair",
        ),
        BuiltinPair(
            "torus4x4-duato",
            lambda: (t := Torus((4, 4)),
                     duato_routing(t, partitioned_vc_map(4, 1))),
            CERTIFIED,
            "4x4 torus, minimal adaptive + dateline escape (Duato)",
        ),
        BuiltinPair(
            "torus4x4-dr-duato",
            lambda: (t := Torus((4, 4)),
                     duato_routing(t, partitioned_vc_map(8, 2))),
            CERTIFIED,
            "4x4 torus, DR's two logical networks, each Duato-routed",
        ),
        BuiltinPair(
            "torus4x4-tfar",
            lambda: (t := Torus((4, 4)),
                     true_fully_adaptive_routing(t, tfar_vc_map(4))),
            REFUTED,
            "4x4 torus, PR's true fully adaptive routing",
            annotation=_RECOVERY_NOTE,
        ),
        BuiltinPair(
            "mesh2d4x4-xy",
            lambda: (t := Mesh2D((4, 4)),
                     dimension_order_routing(t, partitioned_vc_map(2, 1))),
            CERTIFIED,
            "4x4 open mesh, XY order: deadlock-free without datelines "
            "(Papaphilippou & Chu's avoidance substrate)",
        ),
        BuiltinPair(
            "mesh2d4x4-duato",
            lambda: (t := Mesh2D((4, 4)),
                     duato_routing(t, partitioned_vc_map(4, 1))),
            CERTIFIED,
            "4x4 open mesh, minimal adaptive + XY escape",
        ),
        BuiltinPair(
            "fullmesh8-cano",
            lambda: (t := FullMesh(8), full_mesh_routing(t)),
            CERTIFIED,
            "8-router full mesh, VC-free direct routing (Cano, HOTI'25)",
        ),
        BuiltinPair(
            "irregular9-updown",
            lambda: (t := irregular_example(),
                     duato_routing(t, partitioned_vc_map(4, 1))),
            CERTIFIED,
            "9-router irregular graph, up*/down* tree escape routing",
        ),
        BuiltinPair(
            "irregular9-tfar",
            lambda: (t := irregular_example(),
                     true_fully_adaptive_routing(t, tfar_vc_map(4))),
            REFUTED,
            "9-router irregular graph, PR's fully adaptive routing",
            annotation=_RECOVERY_NOTE,
        ),
        BuiltinPair(
            "irregular9-adaptive-tree",
            lambda: (t := irregular_example(),
                     TableRouting(t, partitioned_vc_map(4, 1),
                                  adaptive=True, name="adaptive+updown")),
            REFUTED,
            "9-router irregular graph, minimal adaptive over an "
            "up*/down* escape",
            annotation=_ADAPTIVE_TREE_NOTE,
        ),
    )


def check_pair(pair: BuiltinPair) -> CdgReport:
    topology, routing = pair.build()
    report = check(topology, routing, name=pair.name)
    report.expected = pair.expected
    report.annotation = pair.annotation
    return report


def check_all() -> list[CdgReport]:
    """Certify every built-in pair (the ``cdg-certify`` CI gate body)."""
    return [check_pair(pair) for pair in builtin_pairs()]


def gate_failures(reports: list[CdgReport]) -> list[str]:
    """CI-gate problems: verdict mismatches and un-annotated refutations."""
    problems = []
    for report in reports:
        if report.expected is not None and report.verdict != report.expected:
            problems.append(
                f"{report.name}: expected {report.expected}, "
                f"got {report.verdict}"
            )
        if report.verdict == REFUTED and not report.annotation:
            problems.append(f"{report.name}: un-annotated REFUTED pair")
    return problems
