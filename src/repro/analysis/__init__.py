"""Static analyses over (topology, routing) pairs.

:mod:`repro.analysis.cdg` extracts the channel-dependency graph a
routing function can generate on a topology and certifies or refutes
deadlock freedom *before* any simulation runs.
"""

from repro.analysis.cdg import (
    BuiltinPair,
    CdgReport,
    builtin_pairs,
    check,
    check_all,
    check_pair,
    gate_failures,
)

__all__ = [
    "BuiltinPair",
    "CdgReport",
    "builtin_pairs",
    "check",
    "check_all",
    "check_pair",
    "gate_failures",
]
