"""Shared utilities: seeded RNG helpers, progress lines, errors."""

from repro.util.errors import (
    ConfigurationError,
    SimulationError,
    SweepExecutionError,
)
from repro.util.progress import ProgressReporter, format_eta
from repro.util.rng import make_rng

__all__ = [
    "ConfigurationError",
    "ProgressReporter",
    "SimulationError",
    "SweepExecutionError",
    "format_eta",
    "make_rng",
]
