"""Shared utilities: seeded RNG helpers and validation errors."""

from repro.util.rng import make_rng
from repro.util.errors import ConfigurationError, SimulationError

__all__ = ["make_rng", "ConfigurationError", "SimulationError"]
