"""Retry backoff with deterministic seeded jitter.

One policy object serves every retry loop in the repo — the in-process
sweep retries of :mod:`repro.sim.parallel` and the cross-host dispatch
retries of :mod:`repro.farm` — so "how hard do we hammer a flapping
worker" is decided in exactly one place.

Two properties matter and are pinned by ``tests/test_backoff.py``:

* **Exponential with a cap**: attempt ``n`` waits
  ``min(cap, base * factor ** (n - 1))`` seconds before jitter, so a
  persistently failing resource is probed at a geometrically decreasing
  rate instead of being hammered at full speed.
* **Deterministic jitter**: the jitter multiplier is drawn from
  ``random.Random`` seeded with ``(seed, key, attempt)``, so two runs of
  the same campaign produce the *same* retry timeline (reproducible
  scheduling, reproducible telemetry), while distinct keys — different
  shards, different hosts — still spread their retries apart in time
  instead of thundering in lockstep.

The policy computes delays; it never sleeps.  Callers own their clock
and sleep function so tests inject fakes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff schedule with deterministic, seeded jitter."""

    #: delay of the first retry in seconds (before jitter).
    base: float = 0.1
    #: multiplier applied per additional attempt.
    factor: float = 2.0
    #: upper bound on the un-jittered delay.
    cap: float = 5.0
    #: jitter fraction: the delay is scaled by ``1 + jitter * u`` with
    #: ``u`` uniform in [0, 1).  0 disables jitter entirely.
    jitter: float = 0.5
    #: seed folded into every jitter draw; campaigns reuse their run
    #: seed here so the retry timeline is part of the reproduction.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0 or self.cap < 0:
            raise ConfigurationError("backoff base/cap must be >= 0")
        if self.factor < 1.0:
            raise ConfigurationError("backoff factor must be >= 1")
        if self.jitter < 0:
            raise ConfigurationError("backoff jitter must be >= 0")

    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before retry number ``attempt`` (1-based).

        ``key`` names the retried unit (a shard id, a host name, a sweep
        round) and decorrelates jitter across units without giving up
        determinism: the same ``(seed, key, attempt)`` always yields the
        same delay.
        """
        if attempt < 1:
            raise ConfigurationError("backoff attempt is 1-based")
        raw = min(self.cap, self.base * self.factor ** (attempt - 1))
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        return raw * (1.0 + self.jitter * rng.random())
