"""Progress reporting for long sweep/experiment runs.

A :class:`ProgressReporter` tracks completed points, cache hits and
per-point timing, and renders a single status line — in place (``\\r``)
on a TTY, one line per update otherwise — so paper-scale runs are
observable without drowning CI logs.  Non-TTY output is additionally
throttled to at most one line every ``min_interval`` seconds (a fast
sweep of hundreds of cached points would otherwise emit hundreds of
near-identical lines); ``finish`` always emits the final state.
"""

from __future__ import annotations

import sys
import time


def format_eta(seconds: float) -> str:
    """Compact ``h:mm:ss`` / ``m:ss`` rendering of a duration."""
    seconds = max(0, int(seconds))
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    if h:
        return f"{h}:{m:02d}:{s:02d}"
    return f"{m}:{s:02d}"


class ProgressReporter:
    """Tracks and prints ``done/total`` progress with ETA and cache hits.

    Parameters
    ----------
    total:
        Number of points expected.  ``update`` may be called fewer times
        (early-stopped sweeps) — ``finish`` always closes the line.
    label:
        Short prefix identifying the run (e.g. the sweep label).
    stream:
        Output stream; defaults to stderr so result output stays clean.
    enabled:
        When false every method is a no-op, letting callers pass a
        reporter unconditionally.
    clock:
        Monotonic time source; injectable for tests.
    min_interval:
        Minimum seconds between non-TTY status lines.  The first update
        renders immediately; suppressed updates are folded into the next
        rendered line (or into ``finish``).
    """

    def __init__(self, total: int, label: str = "", stream=None,
                 enabled: bool = True, clock=time.monotonic,
                 min_interval: float = 2.0) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.done = 0
        self.cache_hits = 0
        self.failures = 0
        self.min_interval = min_interval
        self._clock = clock
        self._start = clock()
        self._last_elapsed = 0.0
        self._last_emit: float | None = None
        self._dirty = False

    def update(self, *, cached: bool = False, elapsed: float = 0.0,
               failed: bool = False) -> None:
        """Record one finished point and redraw the status line."""
        self.done += 1
        if cached:
            self.cache_hits += 1
        if failed:
            self.failures += 1
        self._last_elapsed = elapsed
        self._render()

    def eta_seconds(self) -> float:
        """Remaining-time estimate from the mean pace of executed points."""
        remaining = max(0, self.total - self.done)
        executed = self.done - self.cache_hits
        if not remaining:
            return 0.0
        if not executed:
            return 0.0
        pace = (self._clock() - self._start) / executed
        return pace * remaining

    def _line(self) -> str:
        parts = [f"[{self.done}/{self.total}]"]
        if self.label:
            parts.insert(0, self.label)
        if self.cache_hits:
            parts.append(f"{self.cache_hits} cached")
        if self.failures:
            parts.append(f"{self.failures} failed")
        if self._last_elapsed:
            parts.append(f"last {self._last_elapsed:.1f}s")
        eta = self.eta_seconds()
        if eta:
            parts.append(f"ETA {format_eta(eta)}")
        return " ".join(parts)

    def _render(self) -> None:
        if not self.enabled:
            return
        if self.stream.isatty():
            self.stream.write("\r" + self._line().ljust(79))
            self.stream.flush()
            return
        # Non-TTY (log files, CI): rate-limit to one line per interval.
        now = self._clock()
        if self._last_emit is not None and now - self._last_emit < self.min_interval:
            self._dirty = True
            return
        self.stream.write(self._line() + "\n")
        self._last_emit = now
        self._dirty = False

    def finish(self) -> None:
        """Close the in-place line (newline on a TTY); flush held state."""
        if not self.enabled:
            return
        if self.stream.isatty():
            self.stream.write("\n")
            self.stream.flush()
        elif self._dirty:
            # Updates were suppressed by the throttle since the last
            # emitted line: always leave the final state in the log.
            self.stream.write(self._line() + "\n")
            self._dirty = False
