"""Deterministic random number generation.

Every stochastic element of the simulator draws from a
:class:`numpy.random.Generator` seeded from a single root seed, so that
identical configurations reproduce identical runs bit-for-bit.  Substreams
are derived with :func:`make_rng` using a stable string salt, which keeps
the traffic stream independent of, say, arbitration tie-breaking.
"""

from __future__ import annotations

import zlib

import numpy as np


def make_rng(seed: int, salt: str = "") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``(seed, salt)``.

    The salt is hashed with CRC32 so that distinct component names yield
    statistically independent substreams while remaining reproducible
    across processes and Python versions (unlike built-in ``hash``).

    Parameters
    ----------
    seed:
        Root seed of the simulation run.
    salt:
        Stable component name, e.g. ``"traffic"`` or ``"arbiter"``.
    """
    mixed = (int(seed) & 0xFFFFFFFF, zlib.crc32(salt.encode("utf-8")))
    return np.random.default_rng(np.random.SeedSequence(mixed))
