"""Exception types raised by the simulator."""

from __future__ import annotations


class ConfigurationError(ValueError):
    """An invalid or inconsistent simulation configuration.

    Raised eagerly at construction time, e.g. when strict avoidance is
    requested with fewer virtual channels than ``2 * chain_length`` or when
    deflective recovery is paired with a two-type protocol (both
    configurations the paper itself marks as infeasible/invalid).
    """


class SimulationError(RuntimeError):
    """An internal invariant of the simulator was violated at run time.

    These indicate bugs, never user error: e.g. a flit arriving into a full
    buffer, a message delivered twice, or two simultaneous token holders.
    """


class SweepExecutionError(RuntimeError):
    """One or more sweep points kept failing after their retry budget.

    Raised by :func:`repro.sim.parallel.run_points` so a crashed worker is
    reported with its configuration instead of silently dropping the
    point.  ``failures`` maps the failed point's index in the submitted
    batch to ``(config, exception)``.
    """

    def __init__(self, failures: dict) -> None:
        self.failures = failures
        lines = [f"{len(failures)} sweep point(s) failed after retries:"]
        for idx in sorted(failures):
            config, exc = failures[idx]
            lines.append(
                f"  point {idx}: scheme={config.scheme} pattern={config.pattern}"
                f" vcs={config.num_vcs} load={config.load}: {exc!r}"
            )
        super().__init__("\n".join(lines))
