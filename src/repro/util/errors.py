"""Exception types raised by the simulator."""

from __future__ import annotations


class ConfigurationError(ValueError):
    """An invalid or inconsistent simulation configuration.

    Raised eagerly at construction time, e.g. when strict avoidance is
    requested with fewer virtual channels than ``2 * chain_length`` or when
    deflective recovery is paired with a two-type protocol (both
    configurations the paper itself marks as infeasible/invalid).
    """


class SimulationError(RuntimeError):
    """An internal invariant of the simulator was violated at run time.

    These indicate bugs, never user error: e.g. a flit arriving into a full
    buffer, a message delivered twice, or two simultaneous token holders.
    """


class UnsupportedFeatureError(ConfigurationError):
    """A requested feature is not supported by the selected backend.

    The vector backend (``SimConfig(backend="vector")``) covers the
    measurement paths (sweeps, benchmarks, equivalence campaigns) but
    not the introspection layers: telemetry tracing, fault injection,
    runtime invariants/watchdog and CWG detection all require the
    reference engine.  Requesting one of them under the vector backend
    raises this error eagerly instead of silently dropping events.
    """


class DiagnosedError(SimulationError):
    """A runtime failure carrying a structured deadlock dump.

    ``dump`` is a plain JSON-able dict (see
    :func:`repro.sim.invariants.capture_dump`) so the exception survives
    pickling across the sweep worker pool with its diagnosis intact.
    """

    def __init__(self, message: str, dump: dict | None = None) -> None:
        super().__init__(message)
        self.dump = dump

    def __reduce__(self):
        return (type(self), (self.args[0], self.dump))


class LivenessError(DiagnosedError):
    """The forward-progress watchdog fired: a non-empty system made no
    progress for the configured number of cycles — an unrecovered
    deadlock or livelock.  Raised instead of letting the run hang."""


class InvariantViolation(DiagnosedError):
    """A periodic invariant check failed: messages were lost or
    duplicated, the flit-occupancy ledger diverged from the buffers,
    queue slot accounting went negative, or token uniqueness broke."""


class PointTimeoutError(RuntimeError):
    """A sweep point exceeded its wall-clock budget and its worker was
    killed.  The engine-level watchdog (``watchdog_timeout``) is the
    diagnosing mechanism; this is the backstop that keeps a hung point
    from stalling a whole campaign."""

    def __init__(self, timeout: float, config=None) -> None:
        self.timeout = timeout
        self.config = config
        super().__init__(
            f"sweep point exceeded its {timeout:g}s wall-clock timeout;"
            " worker killed"
        )

    def __reduce__(self):
        return (type(self), (self.timeout, self.config))


class SweepExecutionError(RuntimeError):
    """One or more sweep points kept failing after their retry budget.

    Raised by :func:`repro.sim.parallel.run_points` so a crashed worker is
    reported with its configuration instead of silently dropping the
    point.  ``failures`` maps the failed point's index in the submitted
    batch to ``(config, exception)``; exceptions carrying a liveness
    dump are summarized inline (the full dump stays on the exception).

    Farm campaigns (:mod:`repro.farm`) additionally attach
    ``attribution``: a per-host summary (``host -> {"state", "shards_ok",
    "shards_failed", "last_error"}``) so a distributed failure names the
    machines that caused it, not just the points that were lost.
    """

    def __init__(self, failures: dict, attribution: dict | None = None) -> None:
        self.failures = failures
        self.attribution = dict(attribution or {})
        lines = [f"{len(failures)} sweep point(s) failed after retries:"]
        for idx in sorted(failures):
            config, exc = failures[idx]
            lines.append(
                f"  point {idx}: scheme={config.scheme} pattern={config.pattern}"
                f" vcs={config.num_vcs} load={config.load}: {exc!r}"
            )
            dump = getattr(exc, "dump", None)
            if dump:
                lines.append(
                    f"    dump: cycle={dump.get('cycle')}"
                    f" reason={dump.get('reason')!r}"
                    f" knots={len(dump.get('cwg_knots', []))}"
                    f" stalled_nis={len(dump.get('interfaces', {}))}"
                    " (full dump on .failures[idx][1].dump)"
                )
        if self.attribution:
            lines.append("per-host attribution:")
            for host in sorted(self.attribution):
                info = self.attribution[host]
                line = (
                    f"  {host}: state={info.get('state')}"
                    f" ok={info.get('shards_ok', 0)}"
                    f" failed={info.get('shards_failed', 0)}"
                )
                if info.get("last_error"):
                    line += f" last_error={info['last_error']!r}"
                lines.append(line)
        super().__init__("\n".join(lines))

    def __reduce__(self):
        return (type(self), (self.failures, self.attribution))
