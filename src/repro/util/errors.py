"""Exception types raised by the simulator."""

from __future__ import annotations


class ConfigurationError(ValueError):
    """An invalid or inconsistent simulation configuration.

    Raised eagerly at construction time, e.g. when strict avoidance is
    requested with fewer virtual channels than ``2 * chain_length`` or when
    deflective recovery is paired with a two-type protocol (both
    configurations the paper itself marks as infeasible/invalid).
    """


class SimulationError(RuntimeError):
    """An internal invariant of the simulator was violated at run time.

    These indicate bugs, never user error: e.g. a flit arriving into a full
    buffer, a message delivered twice, or two simultaneous token holders.
    """
