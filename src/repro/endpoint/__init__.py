"""Endpoint substrate: NI queues, memory controller, network interface."""

from repro.endpoint.queues import MessageQueue, QueueBank
from repro.endpoint.controller import MemoryController
from repro.endpoint.interface import NetworkInterface

__all__ = ["MessageQueue", "QueueBank", "MemoryController", "NetworkInterface"]
