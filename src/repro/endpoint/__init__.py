"""Endpoint substrate: NI queues, memory controller, network interface."""

from repro.endpoint.controller import MemoryController
from repro.endpoint.interface import NetworkInterface
from repro.endpoint.queues import MessageQueue, QueueBank

__all__ = ["MessageQueue", "QueueBank", "MemoryController", "NetworkInterface"]
