"""The memory controller: the consumer/producer at each endpoint.

One controller per node services one message at a time from the NI input
queue bank (round-robin over queue classes).  Servicing a message takes
``service_time`` cycles when it generates subordinates (a directory or
owner action) and ``sink_time`` cycles when it is terminating (absorbing
a reply into an MSHR).

Per the paper's Section 3 assumptions, a message is taken up for service
*only if* the output queue(s) can hold all of its subordinate messages;
the output slots are claimed at service start so they cannot vanish
mid-service.  Reply-class input-queue slots the node is owed (MSHR
preallocation) are likewise reserved at service start — see
:meth:`repro.core.schemes.EndpointPolicy.make_reservations`.

The controller also exposes a priority-service path used by progressive
recovery: a rescued message handed over from the deadlock message buffer
preempts the queue (after the current operation completes) and its
subordinate placement is decided by the recovery controller's callback
(output queue if space, otherwise the DMB — Figure 4).
"""

from __future__ import annotations

from collections import Counter

from repro.endpoint.queues import QueueBank
from repro.protocol.message import Message
from repro.util.errors import SimulationError


class MemoryController:
    """Endpoint message consumer/producer with a single service port."""

    def __init__(
        self,
        node: int,
        in_bank: QueueBank,
        out_bank: QueueBank,
        policy,
        stats,
    ) -> None:
        self.node = node
        self.in_bank = in_bank
        self.out_bank = out_bank
        self.policy = policy
        self.stats = stats
        self.current: Message | None = None
        #: Input queue class the current message came from (None for the
        #: rescue/priority path); lets detectors treat an in-progress
        #: service of the watched queue as progress rather than a stall.
        self.current_in_cls: int | None = None
        self.busy_until = 0
        self._held_output: list[int] = []
        self._rr = 0
        # Priority (rescue) service request: (message, completion callback).
        self._priority: tuple[Message, object] | None = None
        self._current_is_priority = False
        self.messages_serviced = 0
        self.busy_cycles = 0
        #: fault hook (repro.faults): a stalled controller services
        #: nothing — the consumer-stall model of a wedged memory system.
        self.stalled = False
        #: telemetry hook (repro.telemetry.Tracer) or None.
        self.tracer = None

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        return self.current is None

    def request_priority_service(self, msg: Message, callback) -> None:
        """Schedule a rescued message for service ahead of the queues.

        The current operation, if any, completes first (the paper's
        preemption rule).  ``callback(msg, subordinates, now)`` receives
        the instantiated subordinate messages for placement.
        """
        if self._priority is not None:  # pragma: no cover - guarded
            raise SimulationError("second concurrent priority service")
        self._priority = (msg, callback)

    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        if self.stalled:
            return
        if self.current is not None:
            self.busy_cycles += 1
            if now >= self.busy_until:
                self._complete(now)
        if self.current is None:
            self._select(now)

    # ------------------------------------------------------------------
    def _select(self, now: int) -> None:
        if self._priority is not None:
            msg, _cb = self._priority
            self.current = msg
            self.current_in_cls = None
            self._current_is_priority = True
            self._held_output = []
            self.busy_until = now + self._duration(msg)
            return
        queues = self.in_bank.queues
        n = len(queues)
        rr = self._rr
        for i in range(n):
            cls = rr + i
            if cls >= n:
                cls -= n
            # Empty-queue fast path: _try_begin would peek None anyway.
            if queues[cls].entries and self._try_begin(cls, now):
                self._rr = (cls + 1) % n
                return

    def _duration(self, msg: Message) -> int:
        if msg.continuation:
            return self.policy.service_time
        return self.policy.sink_time

    def _try_begin(self, cls: int, now: int) -> bool:
        queue = self.in_bank.queue(cls)
        msg = queue.peek()
        if msg is None:
            return False
        # Claim output slots for every subordinate, grouped by class.
        held: list[int] = []
        ok = True
        if msg.continuation:
            need = Counter(
                self.policy.queue_class_of(spec.mtype) for spec in msg.continuation
            )
            for out_cls, count in need.items():
                out_q = self.out_bank.queue(out_cls)
                for _ in range(count):
                    if out_q.hold_slot():
                        held.append(out_cls)
                    else:
                        ok = False
                        break
                if not ok:
                    break
        if ok and msg.continuation:
            # MSHR preallocation for replies this node is owed (R2).
            # The head's own slot (freed by the pop below) may back a
            # reservation into the same queue.
            ok = self.policy.make_reservations(
                self.node, self.in_bank, msg.continuation, vacating=queue
            )
        if not ok:
            for out_cls in held:
                self.out_bank.queue(out_cls).release_held()
            return False
        queue.pop()
        self.current = msg
        self.current_in_cls = cls
        self._current_is_priority = False
        self._held_output = held
        self.busy_until = now + self._duration(msg)
        return True

    # ------------------------------------------------------------------
    def _complete(self, now: int) -> None:
        msg = self.current
        self.current = None
        self.current_in_cls = None
        self.messages_serviced += 1
        subs = self.instantiate_subordinates(msg, now)
        if self._current_is_priority:
            _msg, callback = self._priority
            self._priority = None
            self._current_is_priority = False
            callback(msg, subs, now)
        else:
            for sub in subs:
                out_cls = self.policy.queue_class_of(sub.mtype)
                self.out_bank.queue(out_cls).push_held(sub)
            self._held_output = []
        self._account_consumption(msg, now)

    def instantiate_subordinates(self, msg: Message, now: int) -> list[Message]:
        """Create the subordinate messages of ``msg`` (not yet placed)."""
        subs: list[Message] = []
        for spec in msg.continuation:
            sub = Message(
                spec.mtype,
                src=self.node,
                dst=spec.dst,
                continuation=spec.continuation,
                transaction=msg.transaction,
                created_cycle=now,
            )
            sub.vc_class = self.policy.vc_class_of(spec.mtype)
            sub.has_reservation = self.policy.wants_reservation(spec.mtype)
            self.stats.on_created(sub)
            if self.tracer is not None:
                self.tracer.message_created(sub, now)
            subs.append(sub)
        return subs

    def _account_consumption(self, msg: Message, now: int) -> None:
        msg.consumed_cycle = now
        self.stats.on_consumed(msg, now)
        if self.tracer is not None:
            self.tracer.message_consumed(msg, now)
        txn = msg.transaction
        if txn is not None:
            txn.outstanding -= 1
            if txn.outstanding == 0 and not txn.completed:
                txn.completed_cycle = now
                self.stats.on_transaction_complete(txn, now)
