"""The network interface (NI): injection, delivery, and admission control.

Each node has one NI holding the input/output queue banks, an unbounded
*source queue* of not-yet-admitted transaction roots (so applied load is
open-loop and queueing delay is charged to latency, as in the paper's
measurements), and the per-logical-network injection channels.

Admission of a new transaction requires a free MSHR (``max_outstanding``)
plus, for schemes with reply preallocation, a reserved reply slot — the
paper's Section 3 assumption that internal resources are preallocated so
subordinate messages can always sink.

The NI also owns the progress markers consumed by the endpoint deadlock
detector (:mod:`repro.core.detection`) and, under progressive recovery, a
deadlock message buffer (DMB) managed by
:mod:`repro.core.progressive`.
"""

from __future__ import annotations

from collections import deque

from repro.endpoint.controller import MemoryController
from repro.endpoint.queues import QueueBank
from repro.network.fabric import Fabric
from repro.protocol.message import Message


class NetworkInterface:
    """Endpoint glue between the protocol layer and the network fabric."""

    def __init__(
        self,
        node: int,
        fabric: Fabric,
        policy,
        stats,
        queue_capacity: int,
        num_queue_classes: int,
        max_outstanding: int,
    ) -> None:
        self.node = node
        self.router = fabric.topology.router_of_node(node)
        self.fabric = fabric
        self.policy = policy
        self.stats = stats
        self.in_bank = QueueBank(num_queue_classes, queue_capacity)
        self.out_bank = QueueBank(num_queue_classes, queue_capacity)
        self.source_queue: deque[Message] = deque()
        self.max_outstanding = max_outstanding
        self.outstanding = 0
        self.controller = MemoryController(
            node, self.in_bank, self.out_bank, policy, stats
        )
        fabric.set_endpoint_hooks(node, self.try_reserve_delivery, self.deliver)
        # Injection channels are per-(node, class) singletons; resolve
        # them once instead of a dict lookup per class per cycle.
        self._injection_pairs = [
            (fabric.injection_channel(node, cls), self.out_bank.queue(cls))
            for cls in range(num_queue_classes)
        ]
        #: Deadlock message buffer; managed by progressive recovery.
        self.dmb: Message | None = None
        #: telemetry hook (repro.telemetry.Tracer) or None.
        self.tracer = None

    # ------------------------------------------------------------------
    # Fabric-facing hooks
    # ------------------------------------------------------------------
    def try_reserve_delivery(self, msg: Message) -> bool:
        cls = self.policy.queue_class_of(msg.mtype)
        return self.in_bank.queue(cls).try_claim_slot(msg)

    def deliver(self, msg: Message, now: int) -> None:
        cls = self.policy.queue_class_of(msg.mtype)
        self.in_bank.queue(cls).commit(msg)
        msg.delivered_cycle = now
        self.stats.on_delivered(msg, now)
        if self.tracer is not None:
            self.tracer.message_delivered(msg, now)

    # ------------------------------------------------------------------
    # Per-cycle work
    # ------------------------------------------------------------------
    def enqueue_root(self, root: Message) -> None:
        """Hand a freshly generated transaction root to the NI."""
        self.stats.on_created(root)
        self.source_queue.append(root)
        if self.tracer is not None:
            self.tracer.message_created(root, root.created_cycle)

    def step(self, now: int) -> None:
        if self.source_queue:
            self._admit_roots(now)
        # Inline _load_injection(): runs for every NI every cycle.
        for chan, queue in self._injection_pairs:
            if chan.owner is None and queue.entries:
                self.fabric.start_injection(chan, queue.pop(), now)
        self.controller.step(now)

    def _admit_roots(self, now: int) -> None:
        while self.source_queue:
            root = self.source_queue[0]
            if self.outstanding >= self.max_outstanding:
                return
            cls = self.policy.queue_class_of(root.mtype)
            out_q = self.out_bank.queue(cls)
            if out_q.free_slots <= 0:
                return
            # R1: preallocate reply slots for everything this transaction
            # will send back to us before letting the request loose.
            if not self.policy.make_reservations(
                self.node, self.in_bank, root.continuation
            ):
                return
            self.source_queue.popleft()
            root.vc_class = self.policy.vc_class_of(root.mtype)
            root.has_reservation = False
            out_q.push(root)
            self.outstanding += 1
            self.stats.on_admitted(root, now)
            if self.tracer is not None:
                self.tracer.message_admitted(root, now)

    def on_transaction_complete(self) -> None:
        """Free the MSHR held by a completed transaction."""
        self.outstanding -= 1

    # ------------------------------------------------------------------
    # Introspection for detection/recovery
    # ------------------------------------------------------------------
    def input_queue(self, cls: int):
        return self.in_bank.queue(cls)

    def output_queue(self, cls: int):
        return self.out_bank.queue(cls)

    def progress_version(self) -> int:
        """Monotone counter that advances whenever the NI makes progress."""
        return self.in_bank.total_version() + self.out_bank.total_version()

    def frontier_destinations(self, out_cls: int) -> set[int]:
        """Destinations this NI's ``out_cls`` traffic is waiting to reach.

        The local wait-for frontier used by edge-chasing detection: every
        message parked in the output queue plus the packet currently
        occupying the class's injection channel.
        """
        deps = {msg.dst for msg in self.out_bank.queue(out_cls).entries}
        chan, _ = self._injection_pairs[out_cls]
        if chan.owner is not None:
            deps.add(chan.owner.dst)
        return deps
