"""NI message queues with reservation accounting.

Each network interface has an input and an output queue *bank*.  A bank
holds one :class:`MessageQueue` per queue class; how message types map to
classes is the scheme's decision:

* shared — one queue for every type (PR's default; maximal sharing),
* per-net — one request + one reply queue (DR / Origin2000),
* per-type — one queue per message type (SA always; the "QA" endpoint
  configuration of Figure 11 when applied to DR/PR).

Slots are accounted in three pools: ``occupied`` (committed messages),
``held`` (messages currently draining in from the network, slot claimed
at header time), and ``reserved`` (MSHR-style preallocations for replies
the node is still owed — the mechanism with which the Origin2000 strictly
avoids deadlock on its reply network, Section 2.2, and with which the
paper's Section 3 assumes subordinate messages can always sink).
"""

from __future__ import annotations

from collections import deque

from repro.protocol.message import Message
from repro.util.errors import SimulationError


class MessageQueue:
    """A bounded FIFO of messages with held/reserved slot accounting."""

    __slots__ = ("capacity", "entries", "held", "reserved", "version",
                 "notify")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: deque[Message] = deque()
        #: Slots claimed by packets currently draining from the network.
        self.held = 0
        #: Slots preallocated for expected reply-class messages.
        self.reserved = 0
        #: Bumped on every push/pop; lets detectors observe progress.
        self.version = 0
        #: Optional hook called after *any* change to entries/held/
        #: reserved (not just version bumps).  The vector backend uses it
        #: to keep its kernel-side slot mirror and its lazy detector bank
        #: in sync; None (the default) costs one branch per mutation.
        self.notify = None

    # -- capacity -------------------------------------------------------
    @property
    def free_slots(self) -> int:
        """Slots available to *unreserved* newcomers."""
        return self.capacity - len(self.entries) - self.held - self.reserved

    @property
    def admission_full(self) -> bool:
        """True when no further unreserved message could be admitted."""
        return self.free_slots <= 0

    @property
    def occupancy(self) -> int:
        return len(self.entries) + self.held

    # -- ejection-side reservation (header reaches the delivery port) ---
    def try_claim_slot(self, msg: Message) -> bool:
        """Claim a slot for a packet about to drain from the network.

        Messages backed by an MSHR reservation draw from the reserved
        pool; everything else needs a genuinely free slot.
        """
        if msg.has_reservation and self.reserved > 0:
            self.reserved -= 1
            self.held += 1
            if self.notify is not None:
                self.notify()
            return True
        if self.free_slots > 0:
            self.held += 1
            if self.notify is not None:
                self.notify()
            return True
        return False

    def commit(self, msg: Message) -> None:
        """Tail flit drained: the message is now queued."""
        if self.held <= 0:  # pragma: no cover - guarded
            raise SimulationError("commit without a held slot")
        self.held -= 1
        self.entries.append(msg)
        self.version += 1
        if self.notify is not None:
            self.notify()

    # -- reply reservations (MSHR preallocation) -------------------------
    def try_reserve_reply(self, extra: int = 0) -> bool:
        """Reserve a slot; ``extra`` credits slots about to be vacated.

        A caller consuming this queue's head in the same action may pass
        ``extra=1``: the head's slot backs the reservation.  The queue
        is transiently over-committed until the head pops, which the
        caller does before yielding control.
        """
        if self.free_slots + extra > 0:
            self.reserved += 1
            if self.notify is not None:
                self.notify()
            return True
        return False

    def release_reservation(self) -> None:
        if self.reserved <= 0:  # pragma: no cover - guarded
            raise SimulationError("releasing a reservation that was never made")
        self.reserved -= 1
        if self.notify is not None:
            self.notify()

    # -- plain queue ops --------------------------------------------------
    def push(self, msg: Message) -> None:
        """Append a locally produced message (MC output, BRP, re-issue)."""
        if self.free_slots <= 0:  # pragma: no cover - guarded by callers
            raise SimulationError("push into a full queue")
        self.entries.append(msg)
        self.version += 1
        if self.notify is not None:
            self.notify()

    def push_held(self, msg: Message) -> None:
        """Convert a previously held output slot into a queued message."""
        if self.held <= 0:  # pragma: no cover - guarded
            raise SimulationError("push_held without a held slot")
        self.held -= 1
        self.entries.append(msg)
        self.version += 1
        if self.notify is not None:
            self.notify()

    def hold_slot(self) -> bool:
        """Claim a slot for a message that will be produced shortly.

        Used by the memory controller at service *start* so that the
        output space checked for subordinates cannot vanish while the
        service is in progress.
        """
        if self.free_slots > 0:
            self.held += 1
            if self.notify is not None:
                self.notify()
            return True
        return False

    def release_held(self) -> None:
        if self.held <= 0:  # pragma: no cover - guarded
            raise SimulationError("releasing a held slot that was never held")
        self.held -= 1
        if self.notify is not None:
            self.notify()

    def peek(self) -> Message | None:
        return self.entries[0] if self.entries else None

    def pop(self) -> Message:
        self.version += 1
        msg = self.entries.popleft()
        if self.notify is not None:
            self.notify()
        return msg

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MessageQueue(occ={len(self.entries)} held={self.held} "
            f"rsvd={self.reserved}/{self.capacity})"
        )


class QueueBank:
    """A set of message queues indexed by queue class."""

    __slots__ = ("queues",)

    def __init__(self, num_classes: int, capacity: int) -> None:
        self.queues = [MessageQueue(capacity) for _ in range(num_classes)]

    def queue(self, cls: int) -> MessageQueue:
        return self.queues[cls]

    @property
    def num_classes(self) -> int:
        return len(self.queues)

    def total_occupancy(self) -> int:
        return sum(q.occupancy for q in self.queues)

    def total_version(self) -> int:
        return sum(q.version for q in self.queues)

    def __iter__(self):
        return iter(self.queues)
