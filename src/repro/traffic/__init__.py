"""Traffic sources: synthetic open-loop load and trace-driven replay."""

from repro.traffic.synthetic import SyntheticTraffic, pattern_couplings

__all__ = ["SyntheticTraffic", "pattern_couplings"]
