"""Synthetic Splash-2-like application trace models.

The paper drives its characterization (Section 4.2) with RSIM traces of
four Splash-2 applications.  Those traces are not available, so each
application is modelled by a generator parameterised by exactly the two
properties the paper measures from them:

* the **response-type mix** of Table 1 (Direct Reply / Invalidation /
  Forwarding), realized through a deficit-driven scheduler that picks,
  per access, the response class furthest below its target and then
  synthesizes an access that produces that class under the live MSI
  directory state (a *shadow* :class:`DirectoryMSI` is kept in lockstep,
  so the replayed simulation reproduces the same classification);
* the **load-rate envelope** of Figure 6, realized as per-application
  phase profiles (rate per CPU per cycle) that preserve burstiness —
  e.g. FFT's short transpose bursts over a near-idle baseline vs Radix's
  sustained permutation phases.

See DESIGN.md §2 for why this substitution preserves the paper's
conclusions (the traces are used only to measure these two properties
and to demonstrate that such loads produce zero message-dependent
deadlocks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocol.coherence import (
    DIRECT,
    FORWARDING,
    INVALIDATION,
    DirectoryMSI,
)
from repro.traffic.trace import TraceRecord
from repro.util.rng import make_rng


@dataclass(frozen=True)
class AppModel:
    """Per-application generator parameters."""

    name: str
    #: Table 1 target mix: (direct, invalidation, forwarding).
    response_mix: tuple[float, float, float]
    #: Load envelope: (fraction of duration, accesses/cpu/cycle) phases.
    phases: tuple[tuple[float, float], ...]
    #: Shared working-set size (blocks participating in sharing).
    shared_blocks: int = 64


#: Table 1 targets and Figure 6-shaped envelopes for the four benchmarks.
APP_MODELS: dict[str, AppModel] = {
    "fft": AppModel(
        "fft",
        (0.987, 0.009, 0.004),
        # Near-idle baseline with two short transpose bursts.
        ((0.45, 0.0008), (0.025, 0.010), (0.45, 0.0008), (0.025, 0.010), (0.05, 0.0015)),
    ),
    "lu": AppModel(
        "lu",
        (0.965, 0.030, 0.005),
        # Periodic factorization steps of diminishing width.
        ((0.42, 0.0008), (0.04, 0.008), (0.42, 0.0008), (0.04, 0.008), (0.08, 0.0015)),
    ),
    "radix": AppModel(
        "radix",
        (0.955, 0.036, 0.008),
        # Sustained permutation phases: the only load near saturation.
        ((0.25, 0.0012), (0.30, 0.010), (0.20, 0.0012), (0.25, 0.0125)),
    ),
    "water": AppModel(
        "water",
        (0.152, 0.501, 0.347),
        # Low overall load but heavily shared data (inter-molecule forces).
        ((0.46, 0.0004), (0.04, 0.0025), (0.46, 0.0004), (0.04, 0.0025)),
    ),
}

_CLASSES = (DIRECT, INVALIDATION, FORWARDING)


class SplashTraceGenerator:
    """Deficit-driven trace synthesis against a shadow MSI directory."""

    def __init__(self, model: AppModel, num_cpus: int, seed: int = 1) -> None:
        self.model = model
        self.num_cpus = num_cpus
        self.rng = make_rng(seed, f"splash-{model.name}")
        self.shadow = DirectoryMSI(num_cpus)
        # Shared working set: block ids chosen so homes spread uniformly.
        self._shared = [1_000 + i for i in range(model.shared_blocks)]
        self._next_private = 1_000_000
        self.realized = {c: 0 for c in _CLASSES}

    # ------------------------------------------------------------------
    # Event timing
    # ------------------------------------------------------------------
    def _event_times(self, duration: int) -> list[tuple[int, int]]:
        """(cycle, cpu) access events across the phase envelope."""
        events: list[tuple[int, int]] = []
        start = 0
        for frac, rate in self.model.phases:
            span = max(1, int(round(frac * duration)))
            end = min(duration, start + span)
            span = end - start
            if span <= 0:
                break
            for cpu in range(self.num_cpus):
                n = self.rng.poisson(rate * span)
                if n:
                    times = self.rng.integers(start, end, size=n)
                    events.extend((int(t), cpu) for t in times)
            start = end
        events.sort()
        return events

    # ------------------------------------------------------------------
    # Access realization
    # ------------------------------------------------------------------
    def _deficits(self) -> list[str]:
        total = max(1, sum(self.realized.values()))
        target = dict(zip(_CLASSES, self.model.response_mix))
        return sorted(
            _CLASSES, key=lambda c: self.realized[c] / total - target[c]
        )

    def _find_invalidation(self, cpu: int):
        for b in self._shared:
            e = self.shadow.directory.get(b)
            if e is None or e.state != "S":
                continue
            home = self.shadow.home_of(b)
            if any(s not in (cpu, home) for s in e.sharers):
                return [(cpu, "W", b)]
        return self._prepare_invalidation(cpu)

    def _prepare_invalidation(self, cpu: int):
        """Manufacture an invalidation when no shared block is ready.

        Preferred: read a remotely-owned M block (a Forwarding that
        re-establishes sharing) and then write it.  Fallback: the home
        dirties the block locally (no network request), a second CPU
        read-misses it (a Direct Reply), then ``cpu`` writes it.  This is
        the I = F + D economy visible in Table 1's Water row.
        """
        for b in self._shared:
            e = self.shadow.directory.get(b)
            home = self.shadow.home_of(b)
            if (
                e is not None
                and e.state == "M"
                and e.owner not in (cpu, home)
                and home != cpu
            ):
                return [(cpu, "R", b), (cpu, "W", b)]
        for b in self._shared:
            home = self.shadow.home_of(b)
            if home == cpu:
                continue
            reader = next(
                c for c in range(self.num_cpus) if c not in (cpu, home)
            )
            return [(home, "W", b), (reader, "R", b), (cpu, "W", b)]
        return None

    def _find_forwarding(self, cpu: int):
        for b in self._shared:
            e = self.shadow.directory.get(b)
            if e is None or e.state != "M":
                continue
            home = self.shadow.home_of(b)
            if e.owner not in (cpu, home):
                # A read converts M -> S, feeding the invalidation pool.
                return [(cpu, "R", b)]
        return None

    def _find_direct(self, cpu: int):
        # Prefer joining an existing shared block (grows the sharer set).
        for b in self._shared:
            e = self.shadow.directory.get(b)
            if e is None:
                continue
            home = self.shadow.home_of(b)
            if (
                e.state == "S"
                and home != cpu
                and (cpu, b) not in self.shadow.caches
            ):
                return [(cpu, "R", b)]
        # Untouched shared block: first access seeds the pool.
        for b in self._shared:
            if b not in self.shadow.directory and self.shadow.home_of(b) != cpu:
                return [(cpu, "R", b)]
        # Fresh private block whose home is remote.
        b = self._next_private
        while b % self.num_cpus == cpu:
            b += 1
        self._next_private = b + 1
        return [(cpu, "R", b)]

    def _realize(self, cpu: int) -> list[tuple[int, str, int]]:
        """Accesses (possibly a multi-CPU preparation sequence) realizing
        the response class currently furthest below its target."""
        for cls in self._deficits():
            if cls == INVALIDATION:
                found = self._find_invalidation(cpu)
            elif cls == FORWARDING:
                found = self._find_forwarding(cpu)
            else:
                found = self._find_direct(cpu)
            if found is not None:
                return found
        return self._find_direct(cpu)  # always succeeds

    # ------------------------------------------------------------------
    def generate(self, duration: int) -> list[TraceRecord]:
        """Synthesize a trace of ``duration`` cycles."""
        records: list[TraceRecord] = []
        for cycle, cpu in self._event_times(duration):
            for acc_cpu, op, block in self._realize(cpu):
                result = self.shadow.access(acc_cpu, op, block, cycle)
                if result is not None:
                    self.realized[result.response_class] += 1
                records.append(TraceRecord(cycle, acc_cpu, op, block))
        return records


def generate_app_trace(
    app: str, num_cpus: int = 16, duration: int = 40_000, seed: int = 1
) -> list[TraceRecord]:
    """Trace for one of ``fft``/``lu``/``radix``/``water``."""
    model = APP_MODELS[app]
    return SplashTraceGenerator(model, num_cpus, seed).generate(duration)
