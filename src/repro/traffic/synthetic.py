"""Synthetic open-loop traffic (Section 4.3.1).

Request messages — the first type of every dependency chain — are
generated at each node by a Bernoulli process at the configured applied
load (requests/node/cycle); destinations (home nodes) are uniformly
random, as is the third-party owner/sharer node used by chains of length
three or more.  All subordinate message types are generated automatically
when messages are serviced at end nodes, exactly as in FlexSim.
"""

from __future__ import annotations

import numpy as np

from repro.protocol.transactions import TransactionPattern
from repro.util.rng import make_rng


class SyntheticTraffic:
    """Bernoulli request generation over a transaction pattern."""

    def __init__(self, pattern: TransactionPattern, load: float, seed: int) -> None:
        self.pattern = pattern
        self.load = load
        self.rng = make_rng(seed, "traffic")
        self.engine = None
        self.transactions: list = []
        self.generated = 0

    def attach(self, engine) -> None:
        self.engine = engine
        self._num_nodes = engine.topology.num_nodes

    def step(self, now: int) -> None:
        if self.load <= 0.0:
            return
        hits = np.flatnonzero(self.rng.random(self._num_nodes) < self.load)
        for node in hits:
            self._generate(int(node), now)

    def _generate(self, node: int, now: int) -> None:
        n = self._num_nodes
        rng = self.rng
        home = int(rng.integers(0, n - 1))
        if home >= node:
            home += 1
        length = self.pattern.sample_chain_length(rng)
        third = node
        if length >= 3:
            # A third party distinct from requester and home.
            while third == node or third == home:
                third = int(rng.integers(0, n))
        txn = self.pattern.build_transaction(
            requester=node, home=home, third=third, created_cycle=now, length=length
        )
        self.transactions.append(txn)
        self.generated += 1
        self.engine.interfaces[node].enqueue_root(txn.root)


def pattern_couplings(pattern: TransactionPattern) -> set[tuple[str, str]]:
    """Direct (parent, child) type couplings the pattern can produce."""
    out: set[tuple[str, str]] = set()
    for length, prob in pattern.length_probs:
        if prob <= 0.0:
            continue
        names = pattern.chain_type_names(length)
        for a, b in zip(names, names[1:]):
            out.add((a, b))
    return out
