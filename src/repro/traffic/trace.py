"""Memory-access traces and trace-driven traffic.

A trace is a time-ordered sequence of :class:`TraceRecord` — the "full
set of data access activities" the paper captures from RSIM (Section
4.2.1).  Timing information is preserved so traffic burstiness survives
into the network simulation.  :class:`TraceTraffic` replays a trace
through a :class:`~repro.protocol.coherence.DirectoryMSI` engine,
injecting the resulting transactions at the requesting node's NI.

A plain-text serialization (``cycle cpu op block`` per line) is provided
so traces can be stored, inspected and regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.protocol.coherence import DirectoryMSI
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class TraceRecord:
    """One L1 data access: when, who, read/write, which block."""

    cycle: int
    cpu: int
    op: str  # "R" | "W"
    block: int

    def __post_init__(self) -> None:
        if self.op not in ("R", "W"):
            raise ConfigurationError(f"bad op {self.op!r}")


def write_trace(path: str | Path, records: Iterable[TraceRecord]) -> None:
    """Serialize records as ``cycle cpu op block`` lines."""
    with open(path, "w", encoding="ascii") as fh:
        for r in records:
            fh.write(f"{r.cycle} {r.cpu} {r.op} {r.block}\n")


def read_trace(path: str | Path) -> list[TraceRecord]:
    """Parse a trace file written by :func:`write_trace`."""
    out: list[TraceRecord] = []
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            cycle, cpu, op, block = line.split()
            out.append(TraceRecord(int(cycle), int(cpu), op, int(block)))
    return out


class TraceTraffic:
    """Replays a trace through the coherence engine into the network.

    Records are consumed in timestamp order; each network-visible
    transaction's root message(s) are enqueued at the requester's NI.
    The ``load`` attribute exists for engine compatibility (quiesce sets
    it to zero to stop replay).
    """

    def __init__(self, records: list[TraceRecord], coherence: DirectoryMSI) -> None:
        self.records = sorted(records, key=lambda r: (r.cycle, r.cpu))
        self.coherence = coherence
        self.engine = None
        self._idx = 0
        self.load = 1.0  # sentinel: nonzero means "replaying"
        self.transactions: list = []
        self.generated = 0

    def attach(self, engine) -> None:
        self.engine = engine
        if engine.topology.num_nodes != self.coherence.num_nodes:
            raise ConfigurationError(
                "coherence engine and topology disagree on node count"
            )

    @property
    def exhausted(self) -> bool:
        return self._idx >= len(self.records)

    def step(self, now: int) -> None:
        if self.load <= 0.0:
            return
        records = self.records
        n = len(records)
        while self._idx < n and records[self._idx].cycle <= now:
            rec = records[self._idx]
            self._idx += 1
            result = self.coherence.access(rec.cpu, rec.op, rec.block, now)
            if result is None:
                continue
            self.transactions.append(result.transaction)
            self.generated += 1
            ni = self.engine.interfaces[result.requester]
            for root in result.roots:
                ni.enqueue_root(root)


def trace_couplings() -> set[tuple[str, str]]:
    """Direct type couplings of the MSI coherence protocol."""
    return {("RQ", "FRQ"), ("RQ", "RP"), ("FRQ", "FRP"), ("FRP", "RP")}
