"""The farm's wire protocol: one JSON job in, one JSON result out.

This module is the *worker side* of every non-local worker:

* ``python -m repro.farm.remote`` reads a job document from stdin, runs
  its points, and writes a result document to stdout — this is what
  :class:`~repro.farm.workers.SSHHostWorker` launches on the far end of
  an ``ssh`` pipe (stdlib subprocess, no dependencies beyond a checkout
  of this package on the remote ``PYTHONPATH``).
* ``python -m repro.farm.remote --serve DIR`` is the agent loop of the
  job-dir protocol used by
  :class:`~repro.farm.workers.ExternalWorker`: an externally provisioned
  machine watches ``DIR/jobs/`` for job files and answers into
  ``DIR/results/`` with the same documents, atomically renamed so the
  manager never reads a torn file.

Job document::

    {"warmup": int, "measure": int,
     "points": {"<campaign index>": {<SimConfig as dict>}, ...}}

Result document::

    {"ok": true,  "results": {"<campaign index>": {<RunResult>}, ...}}
    {"ok": false, "error": "<traceback tail>"}

Exceptions never escape as a broken pipe: any failure is folded into an
``ok: false`` document so the manager can charge the host and retry the
shard elsewhere.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import traceback
from pathlib import Path
from typing import Any

from repro.farm.plan import config_from_dict


def execute_job(job: dict[str, Any]) -> dict[str, Any]:
    """Run every point of one job document; never raises."""
    try:
        from repro.sim.sweep import run_point

        warmup = int(job["warmup"])
        measure = int(job["measure"])
        results = {}
        for idx, payload in job["points"].items():
            config = config_from_dict(payload)
            results[str(idx)] = run_point(config, warmup, measure).to_dict()
        return {"ok": True, "results": results}
    except Exception:
        return {"ok": False, "error": traceback.format_exc(limit=8)}


def _write_atomic(path: Path, payload: dict[str, Any]) -> None:
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload), "utf-8")
    tmp.replace(path)


def serve_job_dir(
    root: str | Path,
    *,
    max_jobs: int | None = None,
    idle_timeout: float | None = None,
    poll_interval: float = 0.05,
) -> int:
    """Answer job files under ``root`` until told (or timed out) to stop.

    Returns the number of jobs served.  ``max_jobs`` bounds the loop for
    tests and one-shot agents; ``idle_timeout`` exits after that many
    seconds without new work, so an agent left behind by a finished
    campaign does not linger forever.  A ``root/stop`` file also ends
    the loop — the manager drops one when it shuts the farm down.
    """
    root = Path(root)
    jobs_dir = root / "jobs"
    results_dir = root / "results"
    jobs_dir.mkdir(parents=True, exist_ok=True)
    results_dir.mkdir(parents=True, exist_ok=True)
    served = 0
    last_work = time.monotonic()
    while True:
        if (root / "stop").exists():
            break
        job_files = sorted(
            p for p in jobs_dir.glob("*.json") if p.suffix == ".json"
        )
        progressed = False
        for job_file in job_files:
            result_file = results_dir / job_file.name
            if result_file.exists():
                continue
            try:
                job = json.loads(job_file.read_text("utf-8"))
            except (OSError, ValueError):
                continue  # half-written: the next poll sees the rename
            _write_atomic(result_file, execute_job(job))
            served += 1
            progressed = True
            if max_jobs is not None and served >= max_jobs:
                return served
        now = time.monotonic()
        if progressed:
            last_work = now
        elif idle_timeout is not None and now - last_work > idle_timeout:
            break
        time.sleep(poll_interval)
    return served


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.farm.remote",
        description="farm worker endpoint: JSON job on stdin -> JSON result"
        " on stdout, or --serve for the job-dir protocol",
    )
    parser.add_argument("--serve", metavar="DIR", default=None,
                        help="serve the job-dir protocol rooted at DIR")
    parser.add_argument("--max-jobs", type=int, default=None,
                        help="with --serve: exit after N jobs")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        help="with --serve: exit after this many idle seconds")
    args = parser.parse_args(argv)
    if args.serve:
        serve_job_dir(args.serve, max_jobs=args.max_jobs,
                      idle_timeout=args.idle_timeout)
        return 0
    try:
        job = json.load(sys.stdin)
    except ValueError:
        json.dump({"ok": False, "error": "unreadable job document"},
                  sys.stdout)
        sys.stdout.write("\n")
        return 1
    json.dump(execute_job(job), sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
