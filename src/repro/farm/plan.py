"""Campaign planning: a sweep grid partitioned into dispatchable shards.

A *campaign* is an ordered list of :class:`~repro.config.SimConfig`
points plus one (warmup, measure) window — exactly the argument list of
:func:`repro.sim.parallel.run_points`, persisted to JSON so a farm run
can be planned on one machine, executed from another, and resumed after
a crash.  A *shard* is a contiguous slice of campaign point indices: the
unit of dispatch, retry and speculative re-execution.

The per-point cache key (:func:`repro.sim.parallel.point_key`) is the
coordination substrate: planning against a :class:`ResultCache` returns
only the points the cache does not already hold, which makes resume the
same operation as a fresh run — finished points are never recomputed,
whoever computed them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.config import SimConfig
from repro.faults.models import FaultSpec
from repro.sim.parallel import (
    ResultCache,
    code_version,
    point_key,
    resolve_points,
)
from repro.sim.results import RunResult
from repro.util.errors import ConfigurationError

#: on-disk name of a planned campaign inside its farm directory.
PLAN_FILENAME = "campaign.json"
#: on-disk name of the post-run summary written next to the plan.
STATE_FILENAME = "state.json"


def config_to_dict(config: SimConfig) -> dict:
    """JSON-able dict for one config (inverse of :func:`config_from_dict`)."""
    return asdict(config)


def config_from_dict(payload: dict) -> SimConfig:
    """Rebuild a :class:`SimConfig` from :func:`config_to_dict` output."""
    data = dict(payload)
    data["dims"] = tuple(data["dims"])
    data["faults"] = tuple(
        FaultSpec(**spec) for spec in data.get("faults", ())
    )
    return SimConfig(**data)


@dataclass(frozen=True)
class Shard:
    """A contiguous slice of campaign point indices: the dispatch unit."""

    index: int
    points: tuple[int, ...]

    def describe(self) -> str:
        if not self.points:
            return f"shard {self.index} (empty)"
        return (
            f"shard {self.index}"
            f" [{self.points[0]}..{self.points[-1]}, {len(self.points)} pts]"
        )


def plan_shards(point_indices: list[int] | tuple[int, ...],
                shard_size: int) -> tuple[Shard, ...]:
    """Chunk ``point_indices`` into contiguous shards of ``shard_size``."""
    if shard_size < 1:
        raise ConfigurationError("shard_size must be positive")
    indices = list(point_indices)
    return tuple(
        Shard(index=n, points=tuple(indices[start:start + shard_size]))
        for n, start in enumerate(range(0, len(indices), shard_size))
    )


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a farm needs to (re)compute one campaign."""

    configs: tuple[SimConfig, ...]
    warmup: int
    measure: int
    shard_size: int = 4
    name: str = "campaign"

    def __post_init__(self) -> None:
        if not self.configs:
            raise ConfigurationError("a campaign needs at least one point")
        if self.warmup < 0 or self.measure < 1:
            raise ConfigurationError("bad campaign window")
        if self.shard_size < 1:
            raise ConfigurationError("shard_size must be positive")
        if not isinstance(self.configs, tuple):
            object.__setattr__(self, "configs", tuple(self.configs))

    def point_keys(self) -> list[str]:
        """Cache key of every campaign point, in campaign order."""
        return [
            point_key(config, self.warmup, self.measure)
            for config in self.configs
        ]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "warmup": self.warmup,
            "measure": self.measure,
            "shard_size": self.shard_size,
            # Informational only: the cache key embeds its own code
            # digest, so a stale plan simply re-plans everything.
            "code": code_version(),
            "configs": [config_to_dict(c) for c in self.configs],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        return cls(
            configs=tuple(
                config_from_dict(c) for c in payload["configs"]
            ),
            warmup=int(payload["warmup"]),
            measure=int(payload["measure"]),
            shard_size=int(payload.get("shard_size", 4)),
            name=str(payload.get("name", "campaign")),
        )

    def save(self, directory: str | Path) -> Path:
        """Write the plan into ``directory`` (created if needed)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / PLAN_FILENAME
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=1), "utf-8")
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, directory: str | Path) -> "CampaignSpec":
        path = Path(directory) / PLAN_FILENAME
        try:
            payload = json.loads(path.read_text("utf-8"))
        except OSError as exc:
            raise ConfigurationError(
                f"no campaign plan at {path} ({exc})"
            ) from exc
        return cls.from_dict(payload)


@dataclass
class CampaignProgress:
    """The cache's answer to "what is left to run?"."""

    results: list[RunResult | None] = field(default_factory=list)
    missing: list[int] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def cached(self) -> int:
        return self.total - len(self.missing)


def resolve_cached(spec: CampaignSpec,
                   cache: ResultCache | None) -> CampaignProgress:
    """Fill every cache-hit point; list the indices still to compute.

    This is both the resume mechanism (a rerun only re-plans the
    missing indices) and the merge mechanism (after a run, everything
    is read back through the same keys).  The dedup itself is the
    shared :func:`repro.sim.parallel.resolve_points`, so farm planning,
    local execution and the campaign service agree on every key.
    """
    resolution = resolve_points(
        spec.configs, spec.warmup, spec.measure, cache,
        keys=spec.point_keys(),
    )
    return CampaignProgress(
        results=resolution.results, missing=resolution.missing
    )
