"""Farm-backed point execution behind the ``run_points`` contract.

:func:`farm_run_points` lets the sweep layer — and therefore every
experiment module — fan a batch of points across farm hosts instead of
a local process pool, without the caller knowing anything about shards,
health states or transports.  It takes the same (configs, warmup,
measure) arguments as :func:`repro.sim.parallel.run_points`, returns
results in the same order, and goes through the same per-point cache
keys, so a sweep executed on a farm is bit-identical to (and resumable
interchangeably with) a local one.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.config import SimConfig
from repro.farm.manager import FarmManager, FarmPolicy
from repro.farm.plan import CampaignSpec
from repro.farm.workers import FarmWorker, LocalPoolWorker
from repro.sim.parallel import ResultCache
from repro.sim.results import RunResult


def farm_width(workers: Sequence[FarmWorker]) -> int:
    """How many points the farm can usefully hold in flight at once.

    Local pool workers count their process width; remote transports
    count one slot each (the manager dispatches one shard per host at a
    time regardless of how wide the remote machine is).
    """
    return sum(
        w.workers if isinstance(w, LocalPoolWorker) else 1 for w in workers
    )


def farm_run_points(
    configs: Sequence[SimConfig],
    warmup: int,
    measure: int,
    workers: Sequence[FarmWorker],
    *,
    cache: ResultCache | None = None,
    retries: int = 2,
    policy: FarmPolicy | None = None,
    tracer=None,
    name: str = "sweep",
) -> list[RunResult]:
    """Run every config's point across ``workers``; ordered results.

    Single-point shards keep dispatch granularity identical to
    ``run_points``: a lost host re-costs one point, not a chunk.
    Exhausted retries raise :class:`SweepExecutionError` with per-host
    attribution, exactly like a farm campaign — successful points stay
    in ``cache``, so the rerun resumes.
    """
    spec = CampaignSpec(
        configs=tuple(configs),
        warmup=warmup,
        measure=measure,
        shard_size=1,
        name=name,
    )
    if policy is None:
        policy = FarmPolicy(retries=retries)
    manager = FarmManager(
        list(workers), cache=cache, policy=policy, tracer=tracer
    )
    return manager.run(spec)
