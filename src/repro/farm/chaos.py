"""Deterministic fault injection for the farm *itself*.

:mod:`repro.faults` attacks the simulated network; this module attacks
the machinery that runs it.  A :class:`ChaosWorker` wraps any real
worker and misbehaves on schedule, driven by the same spec-string style
as ``repro.faults.parse_fault`` so a chaos campaign is configured,
cached and reproduced like a faulted simulation:

``crash``
    The dispatch raises (a worker process that died mid-shard).
``hang``
    The dispatch sleeps ``duration`` seconds before answering (a wedged
    or unreachable host); with the manager's ``hang_timeout`` armed the
    dispatch is abandoned and the shard re-dispatched elsewhere, and
    the late answer is discarded.
``garbage``
    The dispatch returns syntactically valid results whose payloads are
    corrupted (bit-rot, a wrong checkout, a cosmic ray) — the manager's
    validation layer must catch them before they reach the cache.

Scheduling is by *dispatch ordinal on that worker* (``at`` / ``count``),
which is deterministic for a fixed manager configuration: the fault
fires on the Nth..(N+count-1)th shard handed to the host, whatever
those shards are.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.farm.workers import FarmWorker, ShardJob, ShardOutcome
from repro.util.errors import ConfigurationError

WORKER_FAULT_KINDS = ("crash", "hang", "garbage")


class InjectedWorkerCrash(RuntimeError):
    """The failure raised by a scheduled ``crash`` fault."""


@dataclass(frozen=True)
class WorkerFaultSpec:
    """One scheduled misbehaviour of one farm worker."""

    #: one of :data:`WORKER_FAULT_KINDS`.
    kind: str
    #: worker name the fault applies to ("" = every worker).
    host: str = ""
    #: 0-based dispatch ordinal (per worker) on which the fault fires.
    at: int = 0
    #: number of consecutive dispatches affected.
    count: int = 1
    #: hang duration in seconds (``hang`` only).
    duration: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ConfigurationError(
                f"worker fault kind {self.kind!r} not in {WORKER_FAULT_KINDS}"
            )
        if self.at < 0 or self.count < 1:
            raise ConfigurationError("worker fault at/count must be sane")
        if self.duration < 0:
            raise ConfigurationError("worker fault duration must be >= 0")

    def applies(self, host: str, ordinal: int) -> bool:
        if self.host and self.host != host:
            return False
        return self.at <= ordinal < self.at + self.count

    def describe(self) -> str:
        where = f"host={self.host}" if self.host else "any"
        life = f"at={self.at}" + (f"x{self.count}" if self.count > 1 else "")
        return f"{self.kind}[{where},{life}]"


def parse_worker_fault(text: str) -> WorkerFaultSpec:
    """Parse ``kind[:key=value,...]``, e.g. ``crash:host=w0,at=1`` or
    ``hang:host=w1,at=0,duration=0.5``."""
    kind, _, rest = text.partition(":")
    kwargs: dict[str, object] = {}
    if rest:
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            if not sep:
                raise ConfigurationError(
                    f"bad worker fault parameter {pair!r} (expected key=value)"
                )
            try:
                if key == "host":
                    kwargs[key] = value
                elif key in ("at", "count"):
                    kwargs[key] = int(value)
                elif key == "duration":
                    kwargs[key] = float(value)
                else:
                    raise ConfigurationError(
                        f"unknown worker fault parameter {key!r}"
                    )
            except ValueError:
                raise ConfigurationError(
                    f"bad value {value!r} for worker fault parameter {key!r}"
                ) from None
    return WorkerFaultSpec(kind=kind, **kwargs)  # type: ignore[arg-type]


def _corrupt(outcome: ShardOutcome) -> ShardOutcome:
    """Valid-looking but wrong: every result's identity fields drift."""
    results = {
        idx: replace(result, load=result.load + 1.0,
                     throughput_fpc=-result.throughput_fpc - 1.0)
        for idx, result in outcome.results.items()
    }
    return ShardOutcome(ok=True, results=results)


class ChaosWorker(FarmWorker):
    """Wrap ``inner`` and misbehave according to ``faults``."""

    def __init__(self, inner: FarmWorker,
                 faults: tuple[WorkerFaultSpec, ...] | list[WorkerFaultSpec],
                 *, sleep=time.sleep) -> None:
        self.inner = inner
        self.name = inner.name
        self.faults = tuple(faults)
        self._sleep = sleep
        self.dispatches = 0
        #: what actually fired, for asserting a chaos run did its job.
        self.activations: list[str] = []

    def run_shard(self, job: ShardJob) -> ShardOutcome:
        ordinal = self.dispatches
        self.dispatches += 1
        active = [f for f in self.faults if f.applies(self.name, ordinal)]
        for fault in active:
            if fault.kind == "hang":
                self.activations.append(fault.describe())
                self._sleep(fault.duration)
        for fault in active:
            if fault.kind == "crash":
                self.activations.append(fault.describe())
                raise InjectedWorkerCrash(
                    f"{self.name}: injected crash on dispatch {ordinal}"
                )
        outcome = self.inner.run_shard(job)
        for fault in active:
            if fault.kind == "garbage":
                self.activations.append(fault.describe())
                outcome = _corrupt(outcome)
        return outcome

    def close(self) -> None:
        self.inner.close()
