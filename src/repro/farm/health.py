"""Per-host health: a small state machine the dispatcher consults.

States and transitions::

    healthy --failure--> suspect --more failures--> quarantined
       ^                    |                           |
       |----success---------+                           | probation
       |                                                v   elapses
       +<------probe succeeds------ probation <---------+
                                        |
                                        +--probe fails--> quarantined
                                                          (delay doubles)

* **healthy** hosts are preferred for dispatch.
* **suspect** hosts (one or more recent failures) still receive work,
  but only when no healthy host is idle — a single flake should not
  idle a machine, and a genuinely sick one graduates to quarantine on
  its own.
* **quarantined** hosts receive nothing until their probation delay
  elapses, then exactly one *probe* shard: success restores them fully,
  failure re-quarantines with a doubled delay (capped), so a
  permanently dead machine costs the campaign one probe per
  exponentially growing interval — graceful degradation instead of an
  abort.

The machine is purely logical: it never reads a clock itself.  The
manager feeds it timestamps (milliseconds since campaign start), which
keeps every transition reproducible under an injected clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

HEALTHY = "healthy"
SUSPECT = "suspect"
QUARANTINED = "quarantined"
PROBATION = "probation"

#: dispatch preference order: lower ranks are picked first.
_STATE_RANK = {HEALTHY: 0, SUSPECT: 1, PROBATION: 2, QUARANTINED: 3}


@dataclass
class HostHealth:
    """Health record of one farm worker."""

    name: str
    #: consecutive failures before healthy -> suspect.
    suspect_after: int = 1
    #: consecutive failures before -> quarantined.
    quarantine_after: int = 2
    #: first probation delay in milliseconds; doubles per failed probe.
    probation_ms: int = 2_000
    #: probation delay cap in milliseconds.
    probation_cap_ms: int = 60_000

    state: str = HEALTHY
    consecutive_failures: int = 0
    shards_ok: int = 0
    shards_failed: int = 0
    last_error: str = ""
    quarantined_until: int = 0
    _current_probation_ms: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._current_probation_ms = self.probation_ms

    # ------------------------------------------------------------------
    # Dispatcher interface
    # ------------------------------------------------------------------
    def can_dispatch(self, now_ms: int) -> bool:
        """May this host receive a shard right now?

        Purely a query: a quarantined host whose probation delay has
        elapsed answers yes, and the manager calls
        :meth:`begin_probation` if and when it actually hands over the
        probe shard.  ``probation`` answers no — the single probe is
        already in flight.
        """
        if self.state in (HEALTHY, SUSPECT):
            return True
        return self.state == QUARANTINED and now_ms >= self.quarantined_until

    def begin_probation(self, now_ms: int) -> None:
        """The manager dispatched the probe shard of a quarantined host."""
        if self.state == QUARANTINED:
            self.state = PROBATION

    def rank(self) -> int:
        """Preference rank for host selection (lower = preferred)."""
        return _STATE_RANK[self.state]

    # ------------------------------------------------------------------
    # Outcome accounting
    # ------------------------------------------------------------------
    def record_success(self, now_ms: int) -> str:
        """A shard completed here; returns the resulting state."""
        self.shards_ok += 1
        self.consecutive_failures = 0
        self.state = HEALTHY
        self._current_probation_ms = self.probation_ms
        return self.state

    def record_failure(self, now_ms: int, error: str = "") -> str:
        """A shard failed here; returns the resulting state."""
        self.shards_failed += 1
        self.consecutive_failures += 1
        self.last_error = error
        if self.state == PROBATION:
            # The probe failed: back into quarantine, twice as patient.
            self._current_probation_ms = min(
                self.probation_cap_ms, self._current_probation_ms * 2
            )
            self.state = QUARANTINED
            self.quarantined_until = now_ms + self._current_probation_ms
        elif self.consecutive_failures >= self.quarantine_after:
            self.state = QUARANTINED
            self.quarantined_until = now_ms + self._current_probation_ms
        elif self.consecutive_failures >= self.suspect_after:
            self.state = SUSPECT
        return self.state

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """The per-host attribution block of ``SweepExecutionError``."""
        return {
            "state": self.state,
            "shards_ok": self.shards_ok,
            "shards_failed": self.shards_failed,
            "last_error": self.last_error,
        }
