"""The farm manager: robust shard dispatch over unreliable workers.

:class:`FarmManager.run` executes one :class:`CampaignSpec` across a set
of :class:`~repro.farm.workers.FarmWorker`\\ s and returns results
bit-identical to a serial :func:`repro.sim.parallel.run_points` — every
point is computed by the same deterministic ``run_point``, wherever it
lands, and the shared ``.repro_cache`` (atomic per-point JSON puts) is
the only coordination channel, so crashed managers resume and racing
twins converge for free.

Robustness machinery, in dispatch-loop order:

* **reap** — finished dispatches are validated before anything touches
  the cache; a worker returning garbage is a host-health event, not a
  corrupted campaign.
* **hang watch** — a dispatch silent past ``hang_timeout`` is abandoned
  (its late answer is discarded) and its shard re-queued.
* **speculation** — once the queue is drained, shards running longer
  than ``straggler_factor`` x the median completed-shard time are
  speculatively re-dispatched to an idle host; first completion wins.
* **dispatch** — pending shards go to idle hosts in health order
  (healthy before suspect before quarantine probes), honouring each
  shard's seeded-jitter backoff deadline
  (:class:`~repro.util.backoff.BackoffPolicy`).
* **health** — per-host state machine (:mod:`repro.farm.health`):
  failures escalate healthy -> suspect -> quarantined, quarantined hosts
  earn probation probes on an exponentially growing schedule, and a
  campaign simply completes on the survivors.  If every retry budget is
  exhausted, :class:`~repro.util.errors.SweepExecutionError` reports the
  failed points *and* per-host attribution.

Every decision is recorded on the attached
:class:`~repro.telemetry.Tracer` (dispatch, heartbeat, quarantine,
re-dispatch, merge, ...) with millisecond timestamps, so a campaign
timeline exports to Perfetto like any simulation trace.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.farm.health import PROBATION, QUARANTINED, SUSPECT, HostHealth
from repro.farm.plan import CampaignSpec, Shard, plan_shards, resolve_cached
from repro.farm.workers import FarmWorker, ShardJob, ShardOutcome
from repro.sim.parallel import ResultCache
from repro.sim.results import RunResult
from repro.telemetry import events as ev
from repro.util.backoff import BackoffPolicy
from repro.util.errors import ConfigurationError, SweepExecutionError


class ShardFailure(RuntimeError):
    """A shard dispatch failed: worker crash, transport loss, hang
    abandonment, or validation rejection.  Carried per point inside
    :class:`SweepExecutionError` when retry budgets run out."""


@dataclass
class _Dispatch:
    id: int
    shard: Shard
    host: str
    started_ms: int
    future: Future
    speculative: bool = False
    abandoned: bool = False


@dataclass
class _ShardState:
    shard: Shard
    attempts: int = 0
    status: str = "pending"  # pending | running | done | failed
    ready_at_ms: int = 0
    inflight: int = 0
    speculated: bool = False
    last_error: str = ""


@dataclass(frozen=True)
class FarmPolicy:
    """Robustness knobs of a farm run, separate from what it computes."""

    #: failed attempts after which a shard's points are reported lost.
    retries: int = 2
    #: backoff between a shard's retry dispatches (seeded jitter).
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(base=0.2, factor=2.0, cap=10.0)
    )
    #: seconds of dispatch silence before it is abandoned (None = never).
    hang_timeout: float | None = None
    #: speculative re-dispatch once a run exceeds this multiple of the
    #: median completed-shard time (queue must be drained first).
    straggler_factor: float = 3.0
    #: never speculate below this many seconds of runtime.
    straggler_min: float = 1.0
    #: consecutive failures before a host turns suspect / quarantined.
    suspect_after: int = 1
    quarantine_after: int = 2
    #: first quarantine probation delay in seconds (doubles per failed
    #: probe, capped at 30x).
    probation: float = 2.0
    #: wall seconds between heartbeat events per busy host.
    heartbeat_interval: float = 0.25
    #: dispatch-loop poll interval in seconds.
    tick: float = 0.01

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError("farm retries must be >= 0")
        if self.hang_timeout is not None and self.hang_timeout <= 0:
            raise ConfigurationError("hang_timeout must be positive")
        if self.straggler_factor <= 1.0:
            raise ConfigurationError("straggler_factor must exceed 1")
        if self.tick <= 0 or self.heartbeat_interval <= 0:
            raise ConfigurationError("tick/heartbeat must be positive")


class FarmManager:
    """Dispatch a campaign's shards across workers until done or lost."""

    def __init__(
        self,
        workers: list[FarmWorker] | tuple[FarmWorker, ...],
        *,
        cache: ResultCache | None,
        policy: FarmPolicy | None = None,
        tracer=None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        if not workers:
            raise ConfigurationError("a farm needs at least one worker")
        names = [w.name for w in workers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate worker names in {names}")
        self.workers = {w.name: w for w in workers}
        self.cache = cache
        self.policy = policy or FarmPolicy()
        self.tracer = tracer
        self._clock = clock
        self._sleep = sleep
        self.health: dict[str, HostHealth] = {}
        self._report: dict = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, spec: CampaignSpec) -> list[RunResult]:
        """Execute ``spec``; returns results in campaign point order.

        Cached points are never recomputed, so calling ``run`` again
        after a crash (or after this very call raised) *is* the resume
        operation.  Raises :class:`SweepExecutionError` with per-host
        attribution when points exhaust their retry budget or every
        host is lost.
        """
        pol = self.policy
        self._t0 = self._clock()
        self.health = {
            name: HostHealth(
                name=name,
                suspect_after=pol.suspect_after,
                quarantine_after=pol.quarantine_after,
                probation_ms=int(pol.probation * 1000),
                probation_cap_ms=int(pol.probation * 1000) * 30,
            )
            for name in self.workers
        }
        progress = resolve_cached(spec, self.cache)
        keys = spec.point_keys()
        shards = plan_shards(progress.missing, spec.shard_size)
        states = {s.index: _ShardState(shard=s) for s in shards}
        failures: dict[int, tuple] = {}
        self._durations_ms: list[int] = []
        self._dispatch_seq = 0
        self._inflight: dict[int, _Dispatch] = {}
        self._busy: dict[str, int] = {}
        self._last_heartbeat_ms = 0

        if shards:
            pool = ThreadPoolExecutor(
                max_workers=2 * len(self.workers) + 2,
                thread_name_prefix="farm",
            )
            try:
                self._loop(spec, states, progress, keys, failures, pool)
            finally:
                # Abandoned (hung) dispatch threads must not block the
                # campaign's end; they die with the process.
                pool.shutdown(wait=False, cancel_futures=True)

        computed = progress.total - progress.cached - len(failures)
        self._emit(ev.FARM_MERGE, total=progress.total,
                   cached=progress.cached, computed=computed,
                   failed=len(failures))
        self._report = {
            "total": progress.total,
            "cached": progress.cached,
            "computed": computed,
            "failed": sorted(failures),
            "elapsed_ms": self._now_ms(),
            "hosts": self.attribution(),
        }
        if failures:
            raise SweepExecutionError(failures, attribution=self.attribution())
        return [r for r in progress.results if r is not None]

    def attribution(self) -> dict:
        """Per-host summary blocks (state, shard counts, last error)."""
        return {name: h.summary() for name, h in self.health.items()}

    def report(self) -> dict:
        """Summary of the last :meth:`run` (for ``farm status``)."""
        return dict(self._report)

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def _loop(self, spec, states, progress, keys, failures, pool) -> None:
        pol = self.policy
        while any(s.status in ("pending", "running") for s in states.values()):
            now = self._now_ms()
            self._reap(spec, states, progress, keys, failures, now)
            self._watch_hangs(spec, states, failures, now)
            self._speculate(spec, states, pool, now)
            self._dispatch_pending(spec, states, pool, now)
            self._heartbeat(now)
            self._sleep(pol.tick)

    def _now_ms(self) -> int:
        return int((self._clock() - self._t0) * 1000)

    def _emit(self, kind: str, **payload) -> None:
        if self.tracer is not None:
            self.tracer.farm_event(kind, self._now_ms(), **payload)

    # -- reaping -------------------------------------------------------
    def _reap(self, spec, states, progress, keys, failures, now) -> None:
        for disp in [d for d in self._inflight.values() if d.future.done()]:
            del self._inflight[disp.id]
            if self._busy.get(disp.host) == disp.id:
                del self._busy[disp.host]
            if disp.abandoned:
                continue  # already charged when abandoned; answer discarded
            try:
                outcome = disp.future.result()
            except Exception as exc:  # worker crash / transport loss
                self._shard_failed(spec, states, failures, disp,
                                   f"{type(exc).__name__}: {exc}", now,
                                   exc=exc)
                continue
            if not outcome.ok:
                self._shard_failed(spec, states, failures, disp,
                                   outcome.error or "worker reported failure",
                                   now)
                continue
            reason = self._validate(spec, disp.shard, outcome)
            if reason is not None:
                self._shard_failed(spec, states, failures, disp,
                                   f"invalid results: {reason}", now)
                continue
            self._shard_done(spec, states, progress, keys, disp, outcome, now)

    def _shard_done(self, spec, states, progress, keys, disp, outcome,
                    now) -> None:
        state = states[disp.shard.index]
        state.inflight -= 1
        self.health[disp.host].record_success(now)
        if state.status == "done":
            return  # the speculative twin already landed this shard
        elapsed = now - disp.started_ms
        self._durations_ms.append(elapsed)
        for idx in disp.shard.points:
            result = outcome.results[idx]
            # First completion wins through the cache's atomic put: a
            # racing twin writes byte-identical content, so whichever
            # rename lands last changes nothing.
            if self.cache is not None:
                self.cache.put(keys[idx], spec.configs[idx], spec.warmup,
                               spec.measure, result)
            progress.results[idx] = result
        state.status = "done"
        self._emit(ev.FARM_SHARD_DONE, host=disp.host,
                   shard=disp.shard.index, elapsed_ms=elapsed,
                   points=len(disp.shard.points),
                   speculative=disp.speculative)

    def _shard_failed(self, spec, states, failures, disp, reason, now, *,
                      exc=None) -> None:
        pol = self.policy
        state = states[disp.shard.index]
        state.inflight -= 1
        state.last_error = reason
        health = self.health[disp.host]
        before = health.state
        after = health.record_failure(now, error=reason)
        self._emit(ev.FARM_SHARD_FAILED, host=disp.host,
                   shard=disp.shard.index, reason=reason)
        if after != before:
            if after == SUSPECT:
                self._emit(ev.FARM_SUSPECT, host=disp.host, reason=reason)
            elif after == QUARANTINED:
                self._emit(ev.FARM_QUARANTINE, host=disp.host,
                           until_ms=health.quarantined_until, reason=reason)
        if state.status == "done" or state.inflight > 0:
            # A twin already landed it, or is still trying: the failure
            # charges the host but not the shard.
            return
        state.attempts += 1
        if state.attempts > pol.retries:
            state.status = "failed"
            error = exc if exc is not None else ShardFailure(
                f"{disp.shard.describe()} failed on {disp.host}: {reason}"
            )
            for idx in disp.shard.points:
                failures[idx] = (spec.configs[idx], error)
        else:
            delay = pol.backoff.delay(
                state.attempts, key=f"shard{disp.shard.index}"
            )
            state.status = "pending"
            state.ready_at_ms = now + int(delay * 1000)
            self._emit(ev.FARM_BACKOFF, shard=disp.shard.index,
                       host=disp.host, attempt=state.attempts,
                       delay_ms=int(delay * 1000))

    def _validate(self, spec, shard, outcome: ShardOutcome) -> str | None:
        """None if the outcome is plausible, else a rejection reason.

        Sanity-level, not cryptographic: identity fields must match the
        dispatched configs and the measurable counters must be finite
        and non-negative.  Deterministic recomputation (the cache key
        pins code + config) is the stronger guarantee; this filter
        exists so obviously corrupt workers lose their results *and*
        their health standing before the cache is touched.
        """
        for idx in shard.points:
            result = outcome.results.get(idx)
            if not isinstance(result, RunResult):
                return f"point {idx} missing from results"
            config = spec.configs[idx]
            identity = (result.scheme, result.pattern, result.num_vcs,
                        result.load)
            expected = (config.scheme, config.pattern, config.num_vcs,
                        config.load)
            if identity != expected:
                return (f"point {idx} identity {identity!r}"
                        f" != dispatched {expected!r}")
            if result.cycles <= 0 or result.messages_delivered < 0:
                return f"point {idx} has impossible counters"
            if not (result.throughput_fpc >= 0.0
                    and result.mean_latency >= 0.0):
                return f"point {idx} has negative metrics"
        return None

    # -- hang watch ----------------------------------------------------
    def _watch_hangs(self, spec, states, failures, now) -> None:
        pol = self.policy
        if pol.hang_timeout is None:
            return
        limit = int(pol.hang_timeout * 1000)
        for disp in self._inflight.values():
            if disp.abandoned or now - disp.started_ms <= limit:
                continue
            disp.abandoned = True
            # Free the slot: the wedged thread keeps the pool's spare
            # capacity busy, not the host's dispatch slot.
            if self._busy.get(disp.host) == disp.id:
                del self._busy[disp.host]
            self._shard_failed(
                spec, states, failures, disp,
                f"hang: no answer in {pol.hang_timeout:g}s", now,
            )

    # -- speculation ---------------------------------------------------
    def _speculate(self, spec, states, pool, now) -> None:
        pol = self.policy
        if not self._durations_ms:
            return
        if any(s.status == "pending" and now >= s.ready_at_ms
               for s in states.values()):
            return  # real work first; speculation only soaks idle hosts
        ordered = sorted(self._durations_ms)
        median = ordered[len(ordered) // 2]
        threshold = max(int(pol.straggler_min * 1000),
                        int(pol.straggler_factor * median))
        for disp in sorted(self._inflight.values(), key=lambda d: d.started_ms):
            state = states[disp.shard.index]
            if (disp.abandoned or disp.speculative or state.speculated
                    or state.status != "running" or state.inflight != 1
                    or now - disp.started_ms <= threshold):
                continue
            host = self._pick_host(now, exclude={disp.host})
            if host is None:
                return
            state.speculated = True
            self._emit(ev.FARM_REDISPATCH, shard=disp.shard.index,
                       host=host, straggler=disp.host,
                       running_ms=now - disp.started_ms)
            self._launch(spec, state, host, pool, now, speculative=True)

    # -- dispatch ------------------------------------------------------
    def _dispatch_pending(self, spec, states, pool, now) -> None:
        ready = sorted(
            (s for s in states.values()
             if s.status == "pending" and now >= s.ready_at_ms),
            key=lambda s: s.shard.index,
        )
        for state in ready:
            host = self._pick_host(now)
            if host is None:
                return
            self._launch(spec, state, host, pool, now)

    def _pick_host(self, now, exclude: set[str] | None = None) -> str | None:
        candidates = [
            h for name, h in self.health.items()
            if name not in self._busy
            and (exclude is None or name not in exclude)
            and h.can_dispatch(now)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda h: (h.rank(), h.name)).name

    def _launch(self, spec, state, host, pool, now,
                speculative: bool = False) -> None:
        health = self.health[host]
        if health.state == QUARANTINED:
            health.begin_probation(now)
            self._emit(ev.FARM_PROBATION, host=host)
        self._dispatch_seq += 1
        job = ShardJob(
            shard=state.shard,
            configs=tuple(spec.configs[i] for i in state.shard.points),
            warmup=spec.warmup,
            measure=spec.measure,
            dispatch_id=self._dispatch_seq,
        )
        worker = self.workers[host]
        disp = _Dispatch(
            id=self._dispatch_seq, shard=state.shard, host=host,
            started_ms=now, future=pool.submit(worker.run_shard, job),
            speculative=speculative,
        )
        self._inflight[disp.id] = disp
        self._busy[host] = disp.id
        state.status = "running"
        state.inflight += 1
        self._emit(ev.FARM_DISPATCH, host=host, shard=state.shard.index,
                   points=len(state.shard.points), attempt=state.attempts,
                   probe=health.state == PROBATION, speculative=speculative)

    # -- heartbeat -----------------------------------------------------
    def _heartbeat(self, now) -> None:
        interval = int(self.policy.heartbeat_interval * 1000)
        if now - self._last_heartbeat_ms < interval:
            return
        self._last_heartbeat_ms = now
        for disp in self._inflight.values():
            if not disp.abandoned:
                self._emit(ev.FARM_HEARTBEAT, host=disp.host,
                           shard=disp.shard.index,
                           busy_ms=now - disp.started_ms)

