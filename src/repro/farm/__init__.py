"""``repro.farm`` — a fault-tolerant distributed sweep farm.

Shards a campaign of sweep points across pluggable workers (local
process pools, ssh hosts, externally provisioned job directories) with
the on-disk result cache as the coordination substrate.  See
:mod:`repro.farm.manager` for the robustness model and the README's
"Distributed sweeps" section for the operator's view.

Host specification strings (CLI ``--hosts``, comma-separated)::

    local          this machine, 1 worker process
    local:4        this machine, 4 worker processes
    ssh:HOST       HOST over ssh (repro on the remote PYTHONPATH)
    ext:DIR        job-dir protocol rooted at DIR (external agent)
"""

from __future__ import annotations

from repro.farm.chaos import (
    ChaosWorker,
    WorkerFaultSpec,
    parse_worker_fault,
)
from repro.farm.health import (
    HEALTHY,
    PROBATION,
    QUARANTINED,
    SUSPECT,
    HostHealth,
)
from repro.farm.executor import farm_run_points, farm_width
from repro.farm.manager import FarmManager, FarmPolicy, ShardFailure
from repro.farm.plan import (
    CampaignSpec,
    Shard,
    plan_shards,
    resolve_cached,
)
from repro.farm.workers import (
    ExternalWorker,
    FarmWorker,
    LocalPoolWorker,
    ShardJob,
    ShardOutcome,
    ShardTransportError,
    SSHHostWorker,
)
from repro.util.errors import ConfigurationError

__all__ = [
    "CampaignSpec", "Shard", "plan_shards", "resolve_cached",
    "FarmManager", "FarmPolicy", "ShardFailure",
    "FarmWorker", "LocalPoolWorker", "SSHHostWorker", "ExternalWorker",
    "ShardJob", "ShardOutcome", "ShardTransportError",
    "HostHealth", "HEALTHY", "SUSPECT", "QUARANTINED", "PROBATION",
    "ChaosWorker", "WorkerFaultSpec", "parse_worker_fault",
    "parse_hosts", "farm_run_points", "farm_width",
]


def parse_hosts(text: str, *, point_timeout: float | None = None,
                job_timeout: float = 600.0) -> list[FarmWorker]:
    """Build workers from a comma-separated ``--hosts`` specification."""
    workers: list[FarmWorker] = []
    entries = [entry.strip() for entry in text.split(",") if entry.strip()]
    if not entries:
        raise ConfigurationError("empty --hosts specification")
    for n, entry in enumerate(entries):
        kind, _, rest = entry.partition(":")
        if kind == "local":
            width = 1
            if rest:
                if not rest.isdigit() or int(rest) < 1:
                    raise ConfigurationError(
                        f"bad local worker width {rest!r} in {entry!r}"
                    )
                width = int(rest)
            workers.append(LocalPoolWorker(
                f"local{n}", workers=width, point_timeout=point_timeout,
            ))
        elif kind == "ssh":
            if not rest:
                raise ConfigurationError(f"ssh host missing in {entry!r}")
            host, _, python = rest.partition(":")
            workers.append(SSHHostWorker(
                f"ssh{n}:{host}", host, python=python or "python3",
                job_timeout=job_timeout,
            ))
        elif kind == "ext":
            if not rest:
                raise ConfigurationError(f"ext job dir missing in {entry!r}")
            workers.append(ExternalWorker(
                f"ext{n}", rest, job_timeout=job_timeout,
            ))
        else:
            raise ConfigurationError(
                f"unknown host kind {kind!r} in {entry!r}"
                " (expected local/ssh/ext)"
            )
    return workers
