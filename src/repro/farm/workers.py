"""Farm workers: pluggable executors for one shard of a campaign.

A worker is anything with a ``name`` and a blocking
``run_shard(job) -> ShardOutcome`` — the manager calls it from a
dispatch thread, so a worker may take seconds or minutes.  Three
transports ship here:

``LocalPoolWorker``
    Wraps :func:`repro.sim.parallel.run_points` — today's in-process
    fan-out becomes one farm host, with its own process-pool width and
    per-point wall-clock timeout.
``SSHHostWorker``
    Pipes a JSON job document to ``python -m repro.farm.remote`` on a
    remote machine over plain ``ssh`` (stdlib :mod:`subprocess`, no new
    dependencies).  A custom ``command`` replaces the ssh prefix, which
    is also how tests exercise the full wire protocol without a daemon.
``ExternalWorker``
    The job-dir protocol for externally provisioned machines: the
    manager drops ``<root>/jobs/<job>.json``, the external agent
    (``repro.farm.remote --serve``) answers into
    ``<root>/results/<job>.json``; both sides rename atomically.

Workers *return results*; they never touch the campaign cache.  The
manager validates every outcome before a single byte reaches
``.repro_cache``, so a worker returning garbage is a health event, not
a corrupted campaign.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.config import SimConfig
from repro.farm.plan import Shard, config_to_dict
from repro.sim.parallel import run_points
from repro.sim.results import RunResult
from repro.util.errors import ConfigurationError


class ShardTransportError(RuntimeError):
    """A worker's transport failed: dead ssh pipe, unreadable result
    document, or an external agent that never answered.  The manager
    treats it exactly like a crashed worker: charge the host, retry the
    shard elsewhere."""


@dataclass(frozen=True)
class ShardJob:
    """One dispatch: a shard plus everything needed to compute it."""

    shard: Shard
    configs: tuple[SimConfig, ...]
    warmup: int
    measure: int
    #: campaign-unique dispatch ordinal (re-dispatches get fresh ids).
    dispatch_id: int = 0

    def __post_init__(self) -> None:
        if len(self.configs) != len(self.shard.points):
            raise ConfigurationError(
                "shard/config mismatch:"
                f" {len(self.shard.points)} points,"
                f" {len(self.configs)} configs"
            )

    def to_wire(self) -> dict[str, Any]:
        """The JSON job document of :mod:`repro.farm.remote`."""
        return {
            "warmup": self.warmup,
            "measure": self.measure,
            "points": {
                str(idx): config_to_dict(config)
                for idx, config in zip(self.shard.points, self.configs)
            },
        }


@dataclass
class ShardOutcome:
    """What a worker produced for one dispatch."""

    ok: bool
    #: campaign point index -> result (success only).
    results: dict[int, RunResult] = field(default_factory=dict)
    error: str = ""

    @classmethod
    def from_wire(cls, payload: dict[str, Any]) -> "ShardOutcome":
        """Parse a result document; malformed input raises
        :class:`ShardTransportError`."""
        try:
            if not payload["ok"]:
                return cls(ok=False, error=str(payload.get("error", "")))
            results = {
                int(idx): RunResult(**result)
                for idx, result in payload["results"].items()
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise ShardTransportError(
                f"malformed result document: {exc!r}"
            ) from exc
        return cls(ok=True, results=results)


class FarmWorker:
    """Interface: named, blocking, one shard at a time."""

    name: str

    def run_shard(self, job: ShardJob) -> ShardOutcome:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (optional)."""

    def describe(self) -> str:
        return f"{type(self).__name__}({self.name})"


class LocalPoolWorker(FarmWorker):
    """This machine's process pool, presented as one farm host."""

    def __init__(self, name: str = "local", *, workers: int = 1,
                 point_timeout: float | None = None,
                 retries: int = 0) -> None:
        self.name = name
        self.workers = workers
        self.point_timeout = point_timeout
        self.retries = retries

    def run_shard(self, job: ShardJob) -> ShardOutcome:
        # No cache and no internal retries beyond `retries`: the farm
        # manager owns persistence, retry budgets and backoff.
        results = run_points(
            list(job.configs), job.warmup, job.measure,
            workers=self.workers, cache=None, retries=self.retries,
            timeout=self.point_timeout,
        )
        return ShardOutcome(ok=True, results=dict(
            zip(job.shard.points, results)
        ))


class SSHHostWorker(FarmWorker):
    """A remote host reached over ``ssh`` running the stdin/stdout
    protocol of :mod:`repro.farm.remote`."""

    def __init__(self, name: str, host: str = "", *,
                 python: str = "python3",
                 remote_pythonpath: str | None = None,
                 command: list[str] | None = None,
                 job_timeout: float | None = 600.0,
                 connect_timeout: float = 10.0) -> None:
        self.name = name
        self.host = host or name
        self.job_timeout = job_timeout
        if command is not None:
            self.command = list(command)
        else:
            remote = f"{python} -m repro.farm.remote"
            if remote_pythonpath:
                remote = f"PYTHONPATH={remote_pythonpath} {remote}"
            self.command = [
                "ssh", "-o", "BatchMode=yes",
                "-o", f"ConnectTimeout={int(connect_timeout)}",
                self.host, remote,
            ]

    def run_shard(self, job: ShardJob) -> ShardOutcome:
        try:
            proc = subprocess.run(
                self.command,
                input=json.dumps(job.to_wire()).encode("utf-8"),
                capture_output=True,
                timeout=self.job_timeout,
            )
        except subprocess.TimeoutExpired as exc:
            raise ShardTransportError(
                f"{self.host}: no answer within {self.job_timeout:g}s"
            ) from exc
        except OSError as exc:
            raise ShardTransportError(f"{self.host}: {exc}") from exc
        if proc.returncode != 0 and not proc.stdout.strip():
            tail = proc.stderr.decode("utf-8", "replace")[-500:]
            raise ShardTransportError(
                f"{self.host}: exit {proc.returncode}: {tail}"
            )
        try:
            payload = json.loads(proc.stdout.decode("utf-8"))
        except ValueError as exc:
            raise ShardTransportError(
                f"{self.host}: unreadable result document"
            ) from exc
        return ShardOutcome.from_wire(payload)


class ExternalWorker(FarmWorker):
    """An externally provisioned machine speaking the job-dir protocol.

    The manager writes ``<root>/jobs/<name>-<dispatch>.json`` and polls
    for the matching file under ``<root>/results/``.  Whoever serves the
    directory (``repro.farm.remote --serve``, a cron job, a human with a
    laptop) is invisible to the farm — only answer latency matters.
    """

    def __init__(self, name: str, root: str | Path, *,
                 job_timeout: float = 600.0,
                 poll_interval: float = 0.05,
                 clock=time.monotonic, sleep=time.sleep) -> None:
        self.name = name
        self.root = Path(root)
        self.job_timeout = job_timeout
        self.poll_interval = poll_interval
        self._clock = clock
        self._sleep = sleep

    def run_shard(self, job: ShardJob) -> ShardOutcome:
        jobs_dir = self.root / "jobs"
        jobs_dir.mkdir(parents=True, exist_ok=True)
        stem = f"{self.name}-{job.dispatch_id}.json"
        job_path = jobs_dir / stem
        tmp = job_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(job.to_wire()), "utf-8")
        tmp.replace(job_path)
        result_path = self.root / "results" / stem
        deadline = self._clock() + self.job_timeout
        while self._clock() < deadline:
            if result_path.exists():
                try:
                    payload = json.loads(result_path.read_text("utf-8"))
                except (OSError, ValueError):
                    pass  # torn read is impossible post-rename; retry
                else:
                    return ShardOutcome.from_wire(payload)
            self._sleep(self.poll_interval)
        raise ShardTransportError(
            f"{self.name}: no result for {stem}"
            f" within {self.job_timeout:g}s"
        )
