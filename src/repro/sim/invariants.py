"""Runtime invariants, the liveness watchdog, and structured deadlock dumps.

Detection logic is exactly where subtle bugs hide: a regression that
silently breaks detection or rescue shows up as "throughput looks a bit
different", not as a failure.  This module turns the simulator's
correctness assumptions into executable checks:

* **message conservation** — every message created (transaction roots,
  subordinates, backoff replies) is either still held by some resource
  or was consumed; a nonzero delta means messages were killed or
  duplicated, which no scheme is ever allowed to do;
* **occupancy-ledger consistency** — the fabric's O(1) flit ledger must
  equal a full scan of every VC buffer, and per-queue slot accounting
  (``entries + held + reserved <= capacity``) must never go negative or
  oversubscribe;
* **token uniqueness** — PR has exactly one token; a held token has a
  holder; a duplicated token (fault-injected or bug) is a violation;
* **forward progress** — a watchdog over the flit/consumption counters
  that, instead of letting a wedged run spin forever, raises a
  structured :class:`~repro.util.errors.LivenessError` carrying a
  deadlock dump: per-NI queue heads, blocked virtual channels, CWG knot
  membership, scheme phase and active faults.

Checks are opt-in (``SimConfig.invariants_every`` /
``SimConfig.watchdog_timeout``) and cost the default benchmark path one
``is None`` test per cycle.
"""

from __future__ import annotations

from repro.util.errors import InvariantViolation, LivenessError

#: cap per-section dump lists so dumps stay readable at 8x8 scale.
_DUMP_LIMIT = 32


def _describe_message(msg) -> str:
    """Uid-free message label, stable across identically seeded runs."""
    return f"{msg.mtype.name} {msg.src}->{msg.dst} @{msg.created_cycle}"


def live_message_uids(engine) -> set[int]:
    """Uids of every message currently held by some resource.

    Covers NI source queues, both queue banks, memory-controller service
    (current and pending priority service), the PR deadlock message
    buffer and recovery lane, network virtual channels and injection
    channels.  A message spanning several VCs is counted once.
    """
    seen: set[int] = set()
    for ni in engine.interfaces:
        for msg in ni.source_queue:
            seen.add(msg.uid)
        for bank in (ni.in_bank, ni.out_bank):
            for q in bank:
                for msg in q.entries:
                    seen.add(msg.uid)
        controller = ni.controller
        if controller.current is not None:
            seen.add(controller.current.uid)
        if controller._priority is not None:
            seen.add(controller._priority[0].uid)
        if ni.dmb is not None:
            seen.add(ni.dmb.uid)
    fabric = engine.fabric
    for vcs in fabric.link_vcs:
        for vc in vcs:
            if vc.owner is not None:
                seen.add(vc.owner.uid)
    for chan in fabric._inj_channels.values():
        if chan.owner is not None:
            seen.add(chan.owner.uid)
    controller = getattr(engine.scheme, "controller", None)
    if controller is not None:
        leg = getattr(controller, "_leg_msg", None)
        if leg is not None:
            seen.add(leg.uid)
        lane = getattr(controller, "lane", None)
        if lane is not None and lane.msg is not None:
            seen.add(lane.msg.uid)
    return seen


def conservation_delta(engine) -> int:
    """``created - consumed - live``: 0 when no message was lost/duplicated."""
    stats = engine.stats
    return (
        stats.messages_created
        - stats.total.messages_consumed
        - len(live_message_uids(engine))
    )


# ----------------------------------------------------------------------
# Deadlock dumps
# ----------------------------------------------------------------------
def capture_dump(engine, reason: str = "") -> dict:
    """Snapshot the stuck state of a live engine as a plain dict.

    The dump is JSON-able and uid-free, so it pickles across worker
    pools and is bit-identical between two runs of the same seeded
    config — the property the fault-injection determinism tests pin.
    """
    scheme = engine.scheme
    fabric = engine.fabric
    controller = getattr(scheme, "controller", None)
    stats = engine.stats

    first_deadlock = stats.first_deadlock_cycle
    dump: dict = {
        "reason": reason,
        "cycle": engine.now,
        "scheme": scheme.name,
        "detector": getattr(engine.config, "detector", "endpoint"),
        # None when the run quiesced (or wedged) without any detection.
        "first_deadlock_cycle": first_deadlock if first_deadlock >= 0 else None,
        "phase": getattr(controller, "phase", None),
        "counters": {
            "messages_created": stats.messages_created,
            "messages_consumed": stats.total.messages_consumed,
            "messages_delivered": stats.total.messages_delivered,
            "messages_admitted": stats.total.messages_admitted,
            "flits_forwarded": fabric.flits_forwarded,
            "flits_injected": fabric.flits_injected,
            "flits_ejected": fabric.flits_ejected,
            "deadlocks_detected": scheme.deadlocks_detected,
            "recoveries": scheme.recoveries,
        },
        "conservation": {
            "created": stats.messages_created,
            "consumed": stats.total.messages_consumed,
            "live": len(live_message_uids(engine)),
        },
    }
    dump["conservation"]["delta"] = (
        dump["conservation"]["created"]
        - dump["conservation"]["consumed"]
        - dump["conservation"]["live"]
    )

    token = getattr(controller, "token", None)
    if token is not None:
        dump["token"] = {
            "state": token.state,
            "pos": token.pos,
            "at": (token.at.kind, token.at.ident),
            "lost": token.lost,
            "duplicates": token.duplicates,
            "captures": token.captures,
            "laps": token.laps,
            "regenerations": token.regenerations,
        }
        dump["counters"]["rescues"] = controller.rescues
        dump["counters"]["token_regenerations"] = controller.token_regenerations
    if hasattr(controller, "deflections"):
        dump["counters"]["deflections"] = controller.deflections

    # Per-NI queue heads: only NIs holding anything, only non-empty rows.
    interfaces: dict[int, dict] = {}
    for ni in engine.interfaces:
        rows = []
        for cls in range(ni.in_bank.num_classes):
            q = ni.in_bank.queue(cls)
            out_q = ni.out_bank.queue(cls) if cls < ni.out_bank.num_classes else None
            if q.occupancy == 0 and (out_q is None or out_q.occupancy == 0):
                continue
            head = q.peek()
            rows.append({
                "class": cls,
                "in": f"{len(q.entries)}+{q.held}h+{q.reserved}r/{q.capacity}",
                "in_head": _describe_message(head) if head else None,
                "out": (
                    f"{len(out_q.entries)}+{out_q.held}h+{out_q.reserved}r"
                    f"/{out_q.capacity}" if out_q is not None else None
                ),
            })
        if rows or ni.source_queue or not ni.controller.idle:
            interfaces[ni.node] = {
                "queues": rows,
                "source_queue": len(ni.source_queue),
                "controller": {
                    "stalled": ni.controller.stalled,
                    "busy": not ni.controller.idle,
                    "current": (
                        _describe_message(ni.controller.current)
                        if ni.controller.current is not None else None
                    ),
                },
            }
        if len(interfaces) >= _DUMP_LIMIT:
            break
    dump["interfaces"] = interfaces

    blocked = []
    for sender in fabric.pending:
        msg = sender.owner
        if msg is None or sender.next_sink is not None or msg.blocked_since < 0:
            continue
        blocked.append({
            "router": sender.router,
            "kind": "inj" if sender.is_injection else "vc",
            "message": _describe_message(msg),
            "blocked_for": engine.now - msg.blocked_since,
        })
        if len(blocked) >= _DUMP_LIMIT:
            break
    dump["blocked_frontiers"] = blocked

    from repro.core.cwg import detect_deadlock

    dump["cwg_knots"] = [
        sorted(str(member) for member in knot)
        for knot in detect_deadlock(engine)
    ]

    if engine.faults is not None:
        dump["active_faults"] = engine.faults.active_descriptions()
        dump["fault_activations"] = engine.faults.activation_counts()

    tracer = getattr(engine, "tracer", None)
    if tracer is not None:
        from repro.telemetry.episodes import stitch_episodes

        dump["episodes"] = [
            epi.to_dict() for epi in stitch_episodes(tracer)
        ]
    return dump


def format_dump(dump: dict) -> str:
    """Render a deadlock dump for terminals and assertion messages."""
    lines = [
        f"deadlock dump @cycle {dump.get('cycle')}"
        f" [{dump.get('scheme')}/{dump.get('phase')}]: {dump.get('reason')}",
    ]
    first = dump.get("first_deadlock_cycle")
    detector = dump.get("detector")
    if detector is not None or first is not None:
        lines.append(
            f"  detector: {detector or 'endpoint'}, first detection: "
            + ("none" if first is None else f"cycle {first}")
        )
    cons = dump.get("conservation", {})
    lines.append(
        f"  conservation: created={cons.get('created')}"
        f" consumed={cons.get('consumed')} live={cons.get('live')}"
        f" delta={cons.get('delta')}"
    )
    token = dump.get("token")
    if token:
        lines.append(
            f"  token: {token['state']} at {token['at']} lost={token['lost']}"
            f" dup={token['duplicates']} captures={token['captures']}"
            f" regen={token['regenerations']}"
        )
    for fault in dump.get("active_faults", ()):
        lines.append(f"  active fault: {fault}")
    for node, info in dump.get("interfaces", {}).items():
        ctl = info["controller"]
        state = "stalled" if ctl["stalled"] else ("busy" if ctl["busy"] else "idle")
        lines.append(
            f"  NI {node}: src_q={info['source_queue']} controller={state}"
            + (f" serving {ctl['current']}" if ctl["current"] else "")
        )
        for row in info["queues"]:
            lines.append(
                f"    class {row['class']}: in={row['in']} out={row['out']}"
                f" head={row['in_head']}"
            )
    for entry in dump.get("blocked_frontiers", ()):
        lines.append(
            f"  blocked {entry['kind']} at router {entry['router']}:"
            f" {entry['message']} ({entry['blocked_for']} cycles)"
        )
    knots = dump.get("cwg_knots", [])
    lines.append(f"  CWG knots: {len(knots)}")
    for knot in knots[:4]:
        lines.append(f"    knot[{len(knot)}]: {', '.join(knot[:8])}"
                     + (" ..." if len(knot) > 8 else ""))
    episodes = dump.get("episodes")
    if episodes is not None:
        lines.append(f"  recovery episodes: {len(episodes)}")
        for epi in episodes[-4:]:
            # Tolerate partial records: a formation of None (detection
            # with no onset) and missing keys from older dumps.
            form = epi.get("formation_cycle")
            lines.append(
                f"    ep {epi.get('index', '?')}:"
                f" form={'-' if form is None else form}"
                f" detect={epi.get('detection_cycle')}"
                f" resolve={epi.get('resolution_cycle')}"
                f" drain={epi.get('drain_cycle')}"
                f" msgs={len(epi.get('involved', ()))}"
            )
    return "\n".join(lines)


class QuiesceResult:
    """Truthy drain outcome; on failure, carries the deadlock dump.

    ``bool(result)`` preserves the old ``Engine.quiesce() -> bool``
    contract, while a failed conservation test now prints *which*
    resources still hold messages instead of a bare ``False``.
    """

    __slots__ = ("ok", "dump")

    def __init__(self, ok: bool, dump: dict | None = None) -> None:
        self.ok = ok
        self.dump = dump

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        if self.ok:
            return "QuiesceResult(ok=True)"
        return f"QuiesceResult(ok=False,\n{format_dump(self.dump)})"


# ----------------------------------------------------------------------
# The checker
# ----------------------------------------------------------------------
class InvariantChecker:
    """Periodic invariant checks plus a per-cycle forward-progress watchdog.

    ``every`` is the check interval in cycles (0 = off);
    ``watchdog`` is the number of progress-free cycles after which a
    non-empty system is declared dead (0 = off).  Construction snapshots
    the current conservation delta as a baseline, so a checker attached
    to an engine whose queues were hand-stuffed by a test still balances.
    """

    def __init__(self, engine, every: int = 0, watchdog: int = 0) -> None:
        self.engine = engine
        self.every = every
        self.watchdog = watchdog
        self.checks_run = 0
        self._baseline = conservation_delta(engine)
        self._last_signature = -1
        self._stalled_since = engine.now

    # -- watchdog ------------------------------------------------------
    def _signature(self) -> int:
        """Cheap monotone progress counter: flit movement + consumption.

        Token circulation alone is deliberately *not* progress — a token
        looping over a wedged network must not appease the watchdog —
        but captures, lane traffic and regenerations are.
        """
        engine = self.engine
        fabric = engine.fabric
        sig = (
            fabric.flits_forwarded
            + fabric.flits_injected
            + fabric.flits_ejected
            + engine.stats.total.messages_consumed
            + engine.stats.total.messages_delivered
        )
        controller = getattr(engine.scheme, "controller", None)
        token = getattr(controller, "token", None)
        if token is not None:
            sig += token.captures + token.regenerations
            sig += controller.lane.flits_carried
        return sig

    def on_cycle(self, now: int) -> None:
        if self.watchdog:
            sig = self._signature()
            if sig != self._last_signature:
                self._last_signature = sig
                self._stalled_since = now
            elif now - self._stalled_since >= self.watchdog:
                if self.engine._empty():
                    self._stalled_since = now  # idle, not dead
                else:
                    raise LivenessError(
                        f"no forward progress for {self.watchdog} cycles"
                        f" with messages in flight (cycle {now})",
                        capture_dump(
                            self.engine,
                            reason=f"liveness watchdog ({self.watchdog} cycles"
                            " without progress)",
                        ),
                    )
        if self.every and now % self.every == 0:
            self.check_now(now)

    # -- full checks ---------------------------------------------------
    def check_now(self, now: int) -> None:
        """Run every invariant; raise :class:`InvariantViolation` on failure."""
        self.checks_run += 1
        engine = self.engine
        fabric = engine.fabric

        actual = sum(
            len(vc.fifo) for vcs in fabric.link_vcs for vc in vcs
        )
        if actual != fabric.occupancy():
            self._violate(
                f"occupancy ledger {fabric.occupancy()} != buffered flits"
                f" {actual}", now,
            )
        for vcs in fabric.link_vcs:
            for vc in vcs:
                if vc.owner is None and vc.fifo:
                    self._violate(
                        f"unowned VC holds {len(vc.fifo)} flit(s): {vc!r}", now
                    )
                if len(vc.fifo) > vc.capacity:
                    self._violate(f"VC over capacity: {vc!r}", now)

        for ni in engine.interfaces:
            for bank, side in ((ni.in_bank, "in"), (ni.out_bank, "out")):
                for cls, q in enumerate(bank):
                    if q.held < 0 or q.reserved < 0:
                        self._violate(
                            f"negative slot accounting at NI {ni.node}"
                            f" {side}[{cls}]: held={q.held}"
                            f" reserved={q.reserved}", now,
                        )
                    if len(q.entries) + q.held + q.reserved > q.capacity:
                        self._violate(
                            f"oversubscribed queue at NI {ni.node}"
                            f" {side}[{cls}]: {len(q.entries)}+{q.held}h"
                            f"+{q.reserved}r > {q.capacity}", now,
                        )

        controller = getattr(engine.scheme, "controller", None)
        token = getattr(controller, "token", None)
        if token is not None:
            if token.duplicates:
                self._violate(
                    f"token uniqueness violated: {token.duplicates}"
                    " duplicate token(s) in the ring", now,
                )
            if token.state == token.HELD and token.holder is None:
                self._violate("held token has no holder", now)

        delta = conservation_delta(engine) - self._baseline
        if delta != 0:
            verb = "lost" if delta > 0 else "duplicated"
            self._violate(
                f"message conservation broken: {abs(delta)} message(s)"
                f" {verb}", now,
            )

    def _violate(self, message: str, now: int) -> None:
        raise InvariantViolation(
            message,
            capture_dump(self.engine, reason=f"invariant: {message}"),
        )
