"""Run statistics: latency, throughput, deadlock frequency.

Counters are kept for the whole run and for an explicit *measurement
window* (opened after warm-up), from which the paper's metrics are
computed: average message latency in cycles (queue waiting + network
time, i.e. generation to delivery into the destination input queue),
delivered throughput in flits/node/cycle, and the *normalized number of
deadlocks* — deadlocks divided by messages delivered (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocol.message import Message, Transaction


def _new_type_row() -> dict[str, float]:
    return {
        "delivered": 0,
        "flits": 0,
        "latency_sum": 0.0,
        "queue_wait_sum": 0.0,
        "network_sum": 0.0,
        "rescued": 0,
    }


@dataclass(slots=True)
class WindowCounters:
    """Counters accumulated while the measurement window is open."""

    start_cycle: int = 0
    end_cycle: int = 0
    messages_delivered: int = 0
    flits_delivered: int = 0
    latency_sum: float = 0.0
    latency_max: int = 0
    messages_consumed: int = 0
    transactions_completed: int = 0
    txn_latency_sum: float = 0.0
    deadlocks: int = 0
    deadlocks_unresolved: int = 0
    messages_admitted: int = 0

    @property
    def cycles(self) -> int:
        return max(1, self.end_cycle - self.start_cycle)

    def mean_latency(self) -> float:
        if self.messages_delivered == 0:
            return 0.0
        return self.latency_sum / self.messages_delivered

    def throughput_fpc(self, num_nodes: int) -> float:
        """Delivered traffic, flits per node per cycle."""
        return self.flits_delivered / (num_nodes * self.cycles)

    def normalized_deadlocks(self) -> float:
        if self.messages_delivered == 0:
            return 0.0
        return (self.deadlocks + self.deadlocks_unresolved) / self.messages_delivered


class SimStats:
    """Event hub fed by NIs, memory controllers and schemes.

    The delivery/consumption hooks run for every message in the system,
    so the measuring-window branch is hoisted into ``_live`` — the tuple
    of counter sets each event must update (the run totals, plus the
    window while one is open) — and the per-type rows are pre-created
    from the protocol's type list instead of being grown per delivery.
    """

    __slots__ = (
        "engine",
        "total",
        "window",
        "measuring",
        "_live",
        "load_samples",
        "_load_interval",
        "_last_sample_cycle",
        "_last_injected_flits",
        "_type_rows",
        "messages_created",
        "first_deadlock_cycle",
    )

    def __init__(self, engine) -> None:
        self.engine = engine
        self.total = WindowCounters()
        self.window: WindowCounters | None = None
        self.measuring = False
        #: Counter sets every event updates (total, plus open window).
        self._live: tuple[WindowCounters, ...] = (self.total,)
        # Per-interval injected-flit counts for load-rate distributions
        # (Figure 6); enabled on demand.
        self.load_samples: list[float] = []
        self._load_interval = 0
        self._last_sample_cycle = 0
        self._last_injected_flits = 0
        # Per-message-type breakdown (whole run): delivered count, total
        # latency, source-queue wait, and in-network time.  Feeds
        # repro.sim.analysis (the endpoint-coupling diagnostics behind
        # Figures 10/11).  Rows for every protocol type are pre-created;
        # `by_type` exposes only the types actually delivered.
        self._type_rows: dict[str, dict[str, float]] = {
            t.name: _new_type_row() for t in engine.protocol.all_types
        }
        # Message-conservation ledger (repro.sim.invariants): every
        # message entering the system — transaction roots, subordinates,
        # DR backoff replies — bumps this exactly once.  Run-total, never
        # windowed: conservation must balance over the whole run.
        self.messages_created = 0
        #: cycle of the first detected deadlock (-1 = none yet); the
        #: fault experiments report detection latency from it.
        self.first_deadlock_cycle = -1

    @property
    def by_type(self) -> dict[str, dict[str, float]]:
        """Per-type rows for the types delivered at least once."""
        return {
            name: row for name, row in self._type_rows.items() if row["delivered"]
        }

    # ------------------------------------------------------------------
    # Window control
    # ------------------------------------------------------------------
    def begin_window(self, now: int) -> None:
        self.window = WindowCounters(start_cycle=now, end_cycle=now)
        self.measuring = True
        self._live = (self.total, self.window)

    def end_window(self, now: int) -> WindowCounters:
        assert self.window is not None
        self.window.end_cycle = now
        self.measuring = False
        self._live = (self.total,)
        return self.window

    def enable_load_sampling(self, interval: int) -> None:
        """Record injected flits/node/cycle per ``interval`` cycles."""
        self._load_interval = interval
        self._last_sample_cycle = 0
        self._last_injected_flits = self.engine.fabric.flits_injected

    def on_cycle(self, now: int) -> None:
        if self._load_interval and now - self._last_sample_cycle >= self._load_interval:
            injected = self.engine.fabric.flits_injected
            delta = injected - self._last_injected_flits
            nodes = self.engine.topology.num_nodes
            cycles = now - self._last_sample_cycle
            self.load_samples.append(delta / (nodes * cycles))
            self._last_sample_cycle = now
            self._last_injected_flits = injected

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def on_admitted(self, msg: Message, now: int) -> None:
        for w in self._live:
            w.messages_admitted += 1

    def on_created(self, msg: Message) -> None:
        self.messages_created += 1

    def on_delivered(self, msg: Message, now: int) -> None:
        latency = now - msg.created_cycle
        row = self._type_rows.get(msg.mtype.name)
        if row is None:  # type outside the protocol (custom traffic)
            row = self._type_rows[msg.mtype.name] = _new_type_row()
        row["delivered"] += 1
        row["flits"] += msg.size
        row["latency_sum"] += latency
        entered = msg.injected_cycle if msg.injected_cycle >= 0 else msg.created_cycle
        row["queue_wait_sum"] += entered - msg.created_cycle
        row["network_sum"] += now - entered
        if msg.rescued:
            row["rescued"] += 1
        size = msg.size
        for w in self._live:
            w.messages_delivered += 1
            w.flits_delivered += size
            w.latency_sum += latency
            if latency > w.latency_max:
                w.latency_max = latency

    def on_consumed(self, msg: Message, now: int) -> None:
        for w in self._live:
            w.messages_consumed += 1

    def on_transaction_complete(self, txn: Transaction, now: int) -> None:
        self.engine.interfaces[txn.requester].on_transaction_complete()
        latency = now - txn.created_cycle
        for w in self._live:
            w.transactions_completed += 1
            w.txn_latency_sum += latency

    def on_deadlock(self, now: int, resolved: bool) -> None:
        if self.first_deadlock_cycle < 0:
            self.first_deadlock_cycle = now
        if resolved:
            for w in self._live:
                w.deadlocks += 1
        else:
            for w in self._live:
                w.deadlocks_unresolved += 1
