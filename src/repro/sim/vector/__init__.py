"""Vectorized struct-of-arrays engine backend.

Selected via ``SimConfig(backend="vector")`` (CLI: ``--backend vector``).
Produces bit-identical :class:`~repro.sim.stats.SimStats` to the
reference engine — enforced per sweep point by
``tests/test_backend_equivalence.py`` and the ``backend-equivalence``
CI job — while running the flit-movement hot path in a compiled kernel.
"""

from repro.sim.vector.engine import VectorEngine
from repro.sim.vector.fabric import VectorFabric

__all__ = ["VectorEngine", "VectorFabric"]
