"""Build and load the vector backend's C kernel.

The kernel ships as source (``kernel.c``) and is compiled on first use
with the system C compiler into ``_build/`` next to this module, keyed
by a hash of the source so stale objects are never loaded after an
upgrade.  The build is atomic (compile to a temporary name, then
``os.replace``) so parallel sweep workers racing to build it are safe.

No compiler means no vector backend: :func:`load_kernel` raises a clear
error pointing at ``backend="reference"`` instead of failing obscurely.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

_SRC = Path(__file__).with_name("kernel.c")
_BUILD_DIR = Path(__file__).with_name("_build")

_lib: ctypes.CDLL | None = None


class KernelBuildError(RuntimeError):
    """The C kernel could not be compiled or loaded."""


def _find_compiler() -> str:
    for cc in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cc and shutil.which(cc):
            return cc
    raise KernelBuildError(
        "no C compiler found (tried $CC, cc, gcc, clang); the vector "
        "backend compiles its kernel on first use — install a compiler "
        "or run with backend='reference'"
    )


def _ensure_built() -> Path:
    source = _SRC.read_bytes()
    digest = hashlib.sha256(source).hexdigest()[:16]
    target = _BUILD_DIR / f"kernel-{digest}.so"
    if target.exists():
        return target
    cc = _find_compiler()
    _BUILD_DIR.mkdir(exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        suffix=".so", prefix="kernel-", dir=str(_BUILD_DIR)
    )
    os.close(fd)
    cmd = [cc, "-O2", "-shared", "-fPIC", "-o", tmp, str(_SRC)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise KernelBuildError(
                f"kernel compilation failed ({' '.join(cmd)}):\n"
                f"{proc.stderr.strip()}"
            )
        os.replace(tmp, target)  # atomic: racing workers both succeed
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return target


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    i32, i64, p = ctypes.c_int32, ctypes.c_int64, ctypes.c_void_p
    lib.k_new.argtypes = [ctypes.POINTER(i64), ctypes.POINTER(i32)]
    lib.k_new.restype = p
    lib.k_free.argtypes = [p]
    lib.k_free.restype = None
    lib.k_set_rows_ptr.argtypes = [p, i64]
    lib.k_set_rows_ptr.restype = None
    lib.k_eject.argtypes = [p, i32]
    lib.k_eject.restype = None
    lib.k_alloc.argtypes = [p, i32, i32]
    lib.k_alloc.restype = i32
    lib.k_links.argtypes = [p, i32]
    lib.k_links.restype = None
    lib.k_longest_blocked.argtypes = [p, i32, i32, i32]
    lib.k_longest_blocked.restype = i32
    lib.k_detach.argtypes = [p, i32]
    lib.k_detach.restype = None
    return lib


def load_kernel() -> ctypes.CDLL:
    """The compiled kernel library (built on first call, then cached)."""
    global _lib
    if _lib is None:
        path = _ensure_built()
        try:
            _lib = _bind(ctypes.CDLL(str(path)))
        except OSError as exc:  # corrupt cache entry: rebuild once
            path.unlink(missing_ok=True)
            try:
                _lib = _bind(ctypes.CDLL(str(_ensure_built())))
            except OSError:
                raise KernelBuildError(
                    f"compiled kernel failed to load: {exc}"
                ) from exc
    return _lib
