"""The vector backend's engine: reference endpoints, array fabric.

:class:`VectorEngine` swaps the fabric for struct-of-arrays state
advanced by a compiled kernel and *gates* the endpoint phase on an
event scheduler: traffic generation, NI admission/injection/service,
the memory controllers, and every scheme controller are the reference
implementations, but they only run for nodes whose state could have
changed since their last step.  That split is what makes bit-identical
results tractable — the numerically sensitive endpoint logic is
literally the same code — while the flit-movement inner loops and the
endpoint/detector polling (>95% of reference run time at saturation)
are either in C or skipped.

Gating is sound because every skipped call is a proven no-op:

* an NI whose source queue, queues, injection channels, controller and
  MSHR count did not change does nothing in ``step`` (blocked
  ``_admit_roots`` attempts roll back completely, empty ``_select``
  scans mutate nothing);
* a mid-service memory controller only increments ``busy_cycles``,
  which is reconciled in one addition when the service completes
  (see ``_step_node``);
* a detector whose queues and controller did not change evaluates the
  same conditions to the same value, so its fire time is a pure
  function of its last materialized state (see
  :class:`_LazyDetectorBank`).

Every state change that could un-block a node wakes it: queue
``notify`` hooks, fabric delivery/injection-done events, transaction
completion, priority-service requests, and a completion calendar for
in-progress services.

The introspection layers (telemetry tracing, fault injection, runtime
invariants, the liveness watchdog, CWG detection) are reference-only:
they reach into per-flit object state that the vector backend does not
materialize.  Requesting any of them raises
:class:`~repro.util.errors.UnsupportedFeatureError` at construction —
never a silent no-op.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.config import SimConfig
from repro.endpoint.interface import NetworkInterface
from repro.sim.engine import Engine
from repro.sim.vector.fabric import VectorFabric
from repro.util.errors import UnsupportedFeatureError


def _check_supported(config: SimConfig) -> None:
    unsupported = []
    if config.faults:
        unsupported.append("fault injection (faults=...)")
    if config.invariants_every:
        unsupported.append("runtime invariants (invariants_every=...)")
    if config.watchdog_timeout:
        unsupported.append("the liveness watchdog (watchdog_timeout=...)")
    if config.cwg_interval:
        unsupported.append("CWG detection (cwg_interval=...)")
    if config.detector != "endpoint":
        # The lazy detector bank mirrors only the endpoint state
        # machine; CMH probes and timeout sites need the reference
        # engine's per-cycle visibility.
        unsupported.append(f"non-default detectors (detector={config.detector!r})")
    if unsupported:
        raise UnsupportedFeatureError(
            "the vector backend does not support "
            + ", ".join(unsupported)
            + "; run these with backend='reference'"
        )


class VectorNI(NetworkInterface):
    """Reference NI that reports wake-worthy endpoint activity.

    ``_vec_engine`` is attached by :class:`VectorEngine` right after
    construction, before any cycle runs.
    """

    _vec_engine: "VectorEngine" = None

    def enqueue_root(self, root) -> None:
        super().enqueue_root(root)
        # Traffic runs before the NI phase, so the admission attempt
        # belongs to the current cycle.
        self._vec_engine._due[self.node] = 1

    def on_transaction_complete(self) -> None:
        self.outstanding -= 1
        # A freed MSHR lets _admit_roots proceed.  Completions happen in
        # the NI phase (controller service); if this node's slot in the
        # current sweep is still ahead it can react this cycle, exactly
        # as the reference's unconditional sweep would.
        eng = self._vec_engine
        if eng._ni_phase and self.node > eng._ni_current:
            eng._due[self.node] = 1
        else:
            eng._due_next[self.node] = 1


class _FiredView:
    """Dict-like ``_fired`` facade for the progressive controller.

    The reference recomputes ``{node: True}`` from every detector every
    cycle; this view answers ``get(node)`` from the lazy bank's
    materialized state.  All reads in ``_circulate``/``_capture_at_ni``
    precede the rescue's queue mutations, so the snapshot is never
    consulted stale.
    """

    __slots__ = ("bank", "now")

    def __init__(self, bank: "_LazyDetectorBank", now: int) -> None:
        self.bank = bank
        self.now = now

    def get(self, node, default=None):
        bank = self.bank
        now = self.now
        for i in bank.by_node.get(node, ()):
            if bank.snap[i]:
                det = bank.dets[i]
                if now - det.since > det.threshold:
                    return True
        return default


class _LazyDetectorBank:
    """Evaluate detectors only when their inputs change.

    ``DetectorPair.step`` is a pure function of (queue versions, queue
    slot accounting, controller state); between changes its conditions
    are constant, so the fire time is ``since + threshold + 1``.  The
    bank keeps, per detector, the condition value at last evaluation
    (``snap``) and re-runs exactly one reference-equivalent step
    (:meth:`materialize`) whenever the detector's node is dirtied by a
    queue ``notify`` or a controller step.  State transitions:

    * version changed → ``since = now``, remember version, re-snapshot
      (the reference's early return; a same-cycle fire is impossible
      because ``now - since`` is 0);
    * conditions false → ``since = now`` (the reference sets it on
      every false cycle; only the final value before a transition is
      observable, and a transition always dirties the node);
    * conditions true, were false → ``since = now - 1`` (the reference
      last set ``since`` on the previous cycle, which was false);
    * conditions true, were true → leave ``since`` (the reference does
      not touch it while fired).

    ``gen`` invalidates calendar entries armed before a re-evaluation.
    """

    def __init__(self, detectors) -> None:
        self.dets = list(detectors)
        n = len(self.dets)
        self.snap = [False] * n
        self.gen = [0] * n
        self.by_node: dict[int, list[int]] = {}
        for i, det in enumerate(self.dets):
            self.by_node.setdefault(det.ni.node, []).append(i)
        #: nodes whose detectors must be re-evaluated this cycle;
        #: starts all-dirty so the first cycle initializes every
        #: detector exactly as the reference's first step would.
        self.dirty: set[int] = set(self.by_node)
        #: (fire_cycle, det_index, gen) min-heap (DR/NONE calendar).
        self.heap: list[tuple[int, int, int]] = []

    # -- one reference-equivalent detector step ------------------------
    @staticmethod
    def _eval(det) -> bool:
        controller = det.ni.controller
        if controller.current is not None and controller.current_in_cls == det.in_cls:
            return False
        in_q = det._in_q
        out_q = det._out_q
        if det._full_mode:
            if (
                in_q.capacity - len(in_q.entries) - in_q.held - in_q.reserved > 0
                or out_q.capacity - len(out_q.entries) - out_q.held - out_q.reserved
                > 0
            ):
                return False
        elif not (det._queue_stressed(in_q) and det._queue_stressed(out_q)):
            return False
        return det._head_eligible(in_q.entries[0] if in_q.entries else None)

    def materialize(self, i: int, now: int) -> None:
        det = self.dets[i]
        version = det._in_q.version + det._out_q.version
        if version != det.last_version:
            det.last_version = version
            det.since = now
            det.episode_counted = False
            self.snap[i] = self._eval(det)
        else:
            cond = self._eval(det)
            if not cond:
                det.since = now
                det.episode_counted = False
            elif not self.snap[i]:
                det.since = now - 1
            self.snap[i] = cond
        self.gen[i] += 1

    def fired(self, i: int, now: int) -> bool:
        det = self.dets[i]
        return self.snap[i] and now - det.since > det.threshold

    # -- per-cycle maintenance -----------------------------------------
    def drain_dirty(self, now: int) -> None:
        """Re-evaluate every detector of every dirtied node (PR)."""
        if self.dirty:
            by_node = self.by_node
            for node in self.dirty:
                for i in by_node.get(node, ()):
                    self.materialize(i, now)
            self.dirty.clear()

    def collect_due(self, now: int) -> list[int]:
        """Dirty-drain plus calendar pop: detectors fired at ``now``."""
        due: list[int] = []
        if self.dirty:
            by_node = self.by_node
            for node in self.dirty:
                for i in by_node.get(node, ()):
                    self.materialize(i, now)
                    if self.snap[i]:
                        det = self.dets[i]
                        t_fire = det.since + det.threshold + 1
                        if t_fire <= now:
                            due.append(i)
                        else:
                            heappush(self.heap, (t_fire, i, self.gen[i]))
            self.dirty.clear()
        heap = self.heap
        while heap and heap[0][0] <= now:
            _t, i, g = heappop(heap)
            if g == self.gen[i]:
                due.append(i)
        return due


def _make_notify(q, node, qi, qm_free, qm_res, due_next, dirty, suppress):
    """Queue-mutation hook: kernel slot mirror + wake + detector dirty.

    ``qi`` is None for output queues (no kernel mirror); ``dirty`` is
    None when the scheme has no detectors.  The mirror is recomputed
    from scratch so raw field writes (progressive recovery's reserved→
    held conversion) are covered by the ``commit`` that follows them.

    ``suppress`` holds the node currently taking its NI step: its own
    mutations do not wake it (a blocked attempt's hold/reserve rollback
    would otherwise re-wake the node every cycle, defeating the gating
    entirely).  Genuine own progress is flagged by ``_step_node``
    instead; mirror and detector dirtying are never suppressed.
    """
    if qi is not None and dirty is not None:
        def notify() -> None:
            qm_free[qi] = q.capacity - len(q.entries) - q.held - q.reserved
            qm_res[qi] = q.reserved
            dirty.add(node)
            if suppress[0] != node:
                due_next[node] = 1
    elif qi is not None:
        def notify() -> None:
            qm_free[qi] = q.capacity - len(q.entries) - q.held - q.reserved
            qm_res[qi] = q.reserved
            if suppress[0] != node:
                due_next[node] = 1
    elif dirty is not None:
        def notify() -> None:
            dirty.add(node)
            if suppress[0] != node:
                due_next[node] = 1
    else:
        def notify() -> None:
            if suppress[0] != node:
                due_next[node] = 1
    return notify


class VectorEngine(Engine):
    """Engine variant running flit movement on the compiled kernel."""

    interface_class = VectorNI

    def __init__(self, config: SimConfig, **kwargs) -> None:
        _check_supported(config)
        super().__init__(config, **kwargs)
        N = self.topology.num_nodes
        # Endpoint gating state.  _due is the current cycle's worklist,
        # _due_next collects wakes for the next one; both are stable
        # objects so the notify closures can capture them.
        self._due = bytearray(N)
        self._due_next = bytearray(N)
        self._zero = bytes(N)
        self._ni_phase = False
        self._ni_current = -1
        #: node whose own NI step is in progress (notify wake filter).
        self._suppress = [-1]
        #: completion calendar: cycle -> nodes whose service ends then.
        self._calendar: dict[int, list[int]] = {}
        #: cycle each node's in-progress service was last accounted to.
        self._svc_start = [0] * N
        for ni in self.interfaces:
            ni._vec_engine = self

        # Scheme dispatch + detector bank.  The reference scheme
        # controllers poll every detector every cycle; the vector
        # backend re-evaluates only dirtied ones and runs the identical
        # recovery code on those that fire.
        scheme = self.scheme
        name = scheme.name
        detectors = ()
        if name == "SA":
            self._scheme_step = scheme.step  # base no-op
        elif name == "NONE":
            detectors = scheme.detectors
            self._scheme_step = self._none_step
        elif name == "DR":
            detectors = scheme.controller.detectors
            self._scheme_step = self._dr_step
        elif name == "PR":
            detectors = scheme.controller.detectors
            self._scheme_step = self._pr_step
            self._install_pr_hooks()
        else:
            raise UnsupportedFeatureError(
                f"the vector backend does not support scheme {name!r}; "
                "run it with backend='reference'"
            )
        self._det_bank = _LazyDetectorBank(detectors) if detectors else None
        dirty = self._det_bank.dirty if self._det_bank is not None else None

        # Queue hooks: kernel slot mirror (input queues), wakes, and
        # detector dirtying.  Installed after construction: nothing
        # mutates the queues during build, and the mirror starts from
        # the same all-free state.
        C = self.scheme.num_queue_classes
        qm_free = self.fabric._qm_free
        qm_res = self.fabric._qm_res
        due_next = self._due_next
        suppress = self._suppress
        for ni in self.interfaces:
            base = ni.node * C
            for cls, q in enumerate(ni.in_bank.queues):
                q.notify = _make_notify(
                    q, ni.node, base + cls, qm_free, qm_res, due_next, dirty,
                    suppress,
                )
                q.notify()
            for q in ni.out_bank.queues:
                q.notify = _make_notify(
                    q, ni.node, None, qm_free, qm_res, due_next, dirty, suppress
                )
            # A rescue's priority service is selected at the node's next
            # controller step, so the node must take one.
            ni.controller.request_priority_service = self._wrap_priority(
                ni.controller, ni.node
            )
        self.fabric.wake_node = self._wake_release

    def _build_fabric(self, config: SimConfig) -> VectorFabric:
        return VectorFabric(
            self.topology,
            config.num_vcs,
            config.flit_buffer_depth,
            self.scheme.routing,
            num_queue_classes=self.scheme.num_queue_classes,
            queue_capacity=config.queue_capacity,
            queue_class_of=self.scheme.queue_class_of,
        )

    def attach_tracer(self, tracer) -> None:
        raise UnsupportedFeatureError(
            "telemetry tracing is not supported by the vector backend; "
            "run traced experiments with backend='reference'"
        )

    # ------------------------------------------------------------------
    # Wake plumbing
    # ------------------------------------------------------------------
    def _wake_release(self, node: int) -> None:
        """An injection channel freed up (fabric events, lane release)."""
        self._due_next[node] = 1

    def _wrap_priority(self, controller, node: int):
        orig = controller.request_priority_service

        def request_priority_service(msg, callback) -> None:
            orig(msg, callback)
            self._due_next[node] = 1

        return request_priority_service

    # ------------------------------------------------------------------
    # Cycle
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Reference cycle order with the endpoint phase gated.

        The skipped layers (faults, CWG, tracer, invariants) are
        rejected at construction, so this matches ``Engine.step``
        exactly for every supported configuration.
        """
        self.now += 1
        now = self.now
        due = self._due
        due[:] = self._due_next
        self._due_next[:] = self._zero
        ends = self._calendar.pop(now, None)
        if ends is not None:
            for node in ends:
                due[node] = 1
        self.traffic.step(now)
        self._ni_phase = True
        interfaces = self.interfaces
        suppress = self._suppress
        for node, flag in enumerate(due):
            if flag:
                self._ni_current = node
                suppress[0] = node
                self._step_node(interfaces[node], node, now)
        suppress[0] = -1
        self._ni_phase = False
        self.fabric.step(now)
        self._scheme_step(now)
        self.stats.on_cycle(now)

    def _step_node(self, ni, node: int, now: int) -> None:
        """One reference NI step, minus redundant mid-service work.

        Own-step queue notifies are suppressed, so genuine progress
        (an admission, an injection load, a completed service) flags a
        next-cycle wake here; a step where every attempt rolled back
        leaves state bit-identical and the node sleeps until a foreign
        event changes something, exactly when the reference's retries
        would first behave differently.
        """
        progressed = False
        if ni.source_queue:
            depth = len(ni.source_queue)
            ni._admit_roots(now)
            if len(ni.source_queue) != depth:
                progressed = True
        fabric = self.fabric
        for chan, queue in ni._injection_pairs:
            if chan.owner is None and queue.entries:
                fabric.start_injection(chan, queue.pop(), now)
                progressed = True
        c = ni.controller
        if c.current is not None and now < c.busy_until:
            # Mid-service the reference step only increments
            # busy_cycles; reconciled at completion (and in
            # run()/_reconcile_busy for end-of-run snapshots).
            if progressed:
                self._due_next[node] = 1
            return
        if c.current is not None:
            c.busy_cycles += now - self._svc_start[node] - 1
        serviced = c.messages_serviced
        c.step(now)
        if c.messages_serviced != serviced:
            progressed = True  # completion pushed/placed subordinates
        if c.current is not None:
            self._svc_start[node] = now
            until = c.busy_until
            self._calendar.setdefault(until if until > now else now + 1, []).append(
                node
            )
            progressed = True
        if progressed:
            self._due_next[node] = 1
        bank = self._det_bank
        if bank is not None:
            # current/current_in_cls transitions without a queue signal
            # (priority selection, all-overflow rescue completion) still
            # change detector conditions.
            bank.dirty.add(node)

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()
        self._reconcile_busy()

    def _reconcile_busy(self) -> None:
        """Charge deferred mid-service busy_cycles up to ``now``.

        The reference increments ``busy_cycles`` every in-service cycle;
        the vector backend skips those steps and adds the whole span at
        completion.  For services still in flight when a run window
        closes, the span so far is charged here so snapshots agree.
        """
        now = self.now
        svc_start = self._svc_start
        for node, ni in enumerate(self.interfaces):
            c = ni.controller
            if c.current is not None and now > svc_start[node]:
                c.busy_cycles += now - svc_start[node]
                svc_start[node] = now

    # ------------------------------------------------------------------
    # Scheme steps (reference recovery actions, lazy detection)
    # ------------------------------------------------------------------
    def _none_step(self, now: int) -> None:
        bank = self._det_bank
        due = bank.collect_due(now)
        if not due:
            return
        due.sort()
        scheme = self.scheme
        stats = self.stats
        for i in due:
            det = bank.dets[i]
            if not det.episode_counted:
                det.episode_counted = True
                scheme.deadlocks_detected += 1
                stats.on_deadlock(now, resolved=False)
        # Counted detectors stay fired silently, as in the reference; a
        # new episode passes through a condition change, which dirties
        # the node and re-arms the calendar.

    def _dr_step(self, now: int) -> None:
        bank = self._det_bank
        due = bank.collect_due(now)
        if not due:
            return
        controller = self.scheme.controller
        drain = self.scheme.config.recovery_policy == "drain"
        dirty = bank.dirty
        heap = bank.heap
        pending = set(due)
        processed: set[int] = set()
        # Ascending index = detector build order = the reference loop's
        # action order, so stats calls interleave identically.
        while pending:
            i = min(pending)
            pending.discard(i)
            processed.add(i)
            det = bank.dets[i]
            if det.ni.node in dirty:
                # An earlier deflection this cycle touched this node;
                # re-evaluate its detectors exactly as the reference's
                # in-order sweep would observe the mutations.
                self._rearm_midloop(bank, det.ni.node, now, pending, processed, i)
                if not bank.fired(i, now):
                    continue
            if controller._try_deflect(det, now):
                if drain:
                    out_q = det.ni.out_bank.queue(det.out_cls)
                    while out_q.admission_full and controller._try_deflect(det, now):
                        pass
                det.reset(now)
                # The pops/pushes dirtied the node; the next drain
                # re-arms whatever is still stressed.
            else:
                # The reference retries a fired detector every cycle.
                heappush(heap, (now + 1, i, bank.gen[i]))

    @staticmethod
    def _rearm_midloop(bank, node, now, pending, processed, cur) -> None:
        for j in bank.by_node[node]:
            bank.materialize(j, now)
            if j == cur or j in processed:
                continue
            if bank.fired(j, now):
                # Only detectors after the mutating one in build order
                # may act this cycle, matching the reference sweep; the
                # node stays dirty, so earlier ones re-arm next cycle.
                if j > cur:
                    pending.add(j)
            else:
                pending.discard(j)

    def _pr_step(self, now: int) -> None:
        bank = self._det_bank
        bank.drain_dirty(now)
        pc = self.scheme.controller
        pc._fired = _FiredView(bank, now)
        if pc.phase == pc.IDLE:
            pc._circulate(now)
        elif pc.phase == pc.LANE:
            if pc.lane.step(now):
                pc._on_lane_arrival(now)
        elif pc.phase == pc.RETURN:
            pc._return_timer -= 1
            if pc._return_timer <= 0:
                pc._on_token_returned(now)
        # SERVICE: nothing to do; the MC callback advances the machine.

    def _install_pr_hooks(self) -> None:
        """Route the router-capture scan through the kernel."""
        pc = self.scheme.controller
        fabric = self.fabric
        lib = fabric._lib
        k = fabric._k
        timeout = self.scheme.config.router_timeout

        def _blocked_at_router(router: int, now: int):
            sid = lib.k_longest_blocked(k, router, now, timeout)
            return None if sid < 0 else fabric._handle(sid)

        pc._blocked_at_router = _blocked_at_router
