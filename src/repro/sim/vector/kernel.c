/* Flit-movement kernel of the vector backend.
 *
 * A line-for-line transliteration of repro/network/fabric.py's three
 * cycle phases (ejection, allocation, link traversal) over the
 * struct-of-arrays state laid out by repro/sim/vector/fabric.py.  Every
 * loop preserves the reference engine's iteration order, round-robin
 * bookkeeping and tie-breaking exactly, so a vector run is bit-identical
 * to a reference run.
 *
 * Id spaces (see fabric.py):
 *   virtual channel / sender id:  c in [0, NVC)       NVC = L * V
 *   injection sender id:          NVC + node * C + cls
 *   sink encoding in s_sink:      -1 unrouted, < NVC a VC id,
 *                                 >= NVC ejection port of node (id-NVC)
 *
 * Endpoint interactions are event-based: slot claims at the delivery
 * port are decided against the (free, reserved) queue mirror and
 * reported as EV_CLAIM events; tail-flit deliveries as EV_DELIVER;
 * injection-channel releases as EV_INJDONE.  Python drains the event
 * buffer after the phases run, applying the same mutations the
 * reference fabric performs inline (deliveries precede claims precede
 * link events in the buffer, matching the reference phase order).
 *
 * Route rows are filled lazily: a missing (router, dst_router, class,
 * dateline-mask) key suspends k_alloc (return 2) with the miss details
 * in the header; Python computes the row (network/soa.py), stores it,
 * and resumes.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* hdr cells */
#define H_PN 0        /* pending count */
#define H_EVN 1       /* event count */
#define H_OCC 2       /* VC flit occupancy */
#define H_BUSYN 3     /* busy link count */
#define H_MISS_IDX 4  /* resumable alloc: pending index of the miss */
#define H_MISS_SID 5
#define H_MISS_R 6
#define H_MISS_DSTR 7
#define H_MISS_CLS 8
#define H_MISS_MASK 9
#define H_SN 10       /* still count carried across an alloc resume */
#define H_EV_OVF 11   /* event buffer overflowed (fatal; Python raises) */

/* int64 counters */
#define C_FORWARDED 0
#define C_INJECTED 1
#define C_EJECTED 2
#define C_ALLOCFAIL 3

/* events */
#define EV_CLAIM 1
#define EV_DELIVER 2
#define EV_INJDONE 3

typedef struct {
    /* dims */
    int32_t L, V, D, N, C, R, ndim, EPCAP, MAXCAND, EVCAP, SCAP, VCLS;
    int32_t NVC;      /* L * V */
    int32_t STRIDE;   /* route row stride = 2 + MAXCAND */
    /* state arrays (owned by Python/numpy) */
    int32_t *s_owner, *s_sink, *s_router;
    int32_t *v_count, *v_hp, *v_flit, *v_arr;
    int32_t *vc_dim, *vc_dateline;
    int32_t *m_size, *m_dst, *m_dstr, *m_vcls, *m_qcls, *m_hasres;
    int32_t *m_sent, *m_crossed, *m_hops, *m_blocked, *m_ejected;
    int32_t *ls_s, *ls_sink, *ls_inj, *ls_n, *l_rr;
    int32_t *busy_order, *busy_in;
    int32_t *ep_s, *ep_n, *ep_rr;
    int32_t *pending, *still;
    int32_t *qm_free, *qm_res;
    int32_t *rk_idx, *rows;
    int32_t *ev;
    int32_t *inj_used;
    int32_t *hdr;
    int64_t *cnt;
} KState;

static void emit(KState *k, int32_t type, int32_t vid, int32_t sid)
{
    int32_t n = k->hdr[H_EVN];
    if (n >= k->EVCAP) {
        k->hdr[H_EV_OVF] = 1;
        return;
    }
    int32_t *e = k->ev + 3 * n;
    e[0] = type;
    e[1] = vid;
    e[2] = sid;
    k->hdr[H_EVN] = n + 1;
}

void *k_new(const int64_t *ptrs, const int32_t *dims)
{
    KState *k = (KState *)calloc(1, sizeof(KState));
    if (!k)
        return NULL;
    k->L = dims[0];
    k->V = dims[1];
    k->D = dims[2];
    k->N = dims[3];
    k->C = dims[4];
    k->R = dims[5];
    k->ndim = dims[6];
    k->EPCAP = dims[7];
    k->MAXCAND = dims[8];
    k->EVCAP = dims[9];
    k->SCAP = dims[10];
    k->VCLS = dims[11];
    k->NVC = k->L * k->V;
    k->STRIDE = 2 + k->MAXCAND;
    int i = 0;
    k->s_owner = (int32_t *)(intptr_t)ptrs[i++];
    k->s_sink = (int32_t *)(intptr_t)ptrs[i++];
    k->s_router = (int32_t *)(intptr_t)ptrs[i++];
    k->v_count = (int32_t *)(intptr_t)ptrs[i++];
    k->v_hp = (int32_t *)(intptr_t)ptrs[i++];
    k->v_flit = (int32_t *)(intptr_t)ptrs[i++];
    k->v_arr = (int32_t *)(intptr_t)ptrs[i++];
    k->vc_dim = (int32_t *)(intptr_t)ptrs[i++];
    k->vc_dateline = (int32_t *)(intptr_t)ptrs[i++];
    k->m_size = (int32_t *)(intptr_t)ptrs[i++];
    k->m_dst = (int32_t *)(intptr_t)ptrs[i++];
    k->m_dstr = (int32_t *)(intptr_t)ptrs[i++];
    k->m_vcls = (int32_t *)(intptr_t)ptrs[i++];
    k->m_qcls = (int32_t *)(intptr_t)ptrs[i++];
    k->m_hasres = (int32_t *)(intptr_t)ptrs[i++];
    k->m_sent = (int32_t *)(intptr_t)ptrs[i++];
    k->m_crossed = (int32_t *)(intptr_t)ptrs[i++];
    k->m_hops = (int32_t *)(intptr_t)ptrs[i++];
    k->m_blocked = (int32_t *)(intptr_t)ptrs[i++];
    k->m_ejected = (int32_t *)(intptr_t)ptrs[i++];
    k->ls_s = (int32_t *)(intptr_t)ptrs[i++];
    k->ls_sink = (int32_t *)(intptr_t)ptrs[i++];
    k->ls_inj = (int32_t *)(intptr_t)ptrs[i++];
    k->ls_n = (int32_t *)(intptr_t)ptrs[i++];
    k->l_rr = (int32_t *)(intptr_t)ptrs[i++];
    k->busy_order = (int32_t *)(intptr_t)ptrs[i++];
    k->busy_in = (int32_t *)(intptr_t)ptrs[i++];
    k->ep_s = (int32_t *)(intptr_t)ptrs[i++];
    k->ep_n = (int32_t *)(intptr_t)ptrs[i++];
    k->ep_rr = (int32_t *)(intptr_t)ptrs[i++];
    k->pending = (int32_t *)(intptr_t)ptrs[i++];
    k->still = (int32_t *)(intptr_t)ptrs[i++];
    k->qm_free = (int32_t *)(intptr_t)ptrs[i++];
    k->qm_res = (int32_t *)(intptr_t)ptrs[i++];
    k->rk_idx = (int32_t *)(intptr_t)ptrs[i++];
    k->rows = (int32_t *)(intptr_t)ptrs[i++];
    k->ev = (int32_t *)(intptr_t)ptrs[i++];
    k->inj_used = (int32_t *)(intptr_t)ptrs[i++];
    k->hdr = (int32_t *)(intptr_t)ptrs[i++];
    k->cnt = (int64_t *)(intptr_t)ptrs[i++];
    return k;
}

void k_free(void *h)
{
    free(h);
}

void k_set_rows_ptr(void *h, int64_t ptr)
{
    ((KState *)h)->rows = (int32_t *)(intptr_t)ptr;
}

/* --------------------------------------------------------------------
 * Phase 1: ejection — one flit per active port, node-ascending.
 * Mirrors Fabric._phase_eject + EjectionPort.step.
 * ------------------------------------------------------------------ */
void k_eject(void *h, int32_t now)
{
    KState *k = (KState *)h;
    const int32_t NVC = k->NVC, D = k->D, EPCAP = k->EPCAP;
    for (int32_t node = 0; node < k->N; node++) {
        int32_t n = k->ep_n[node];
        if (n == 0)
            continue;
        int32_t *eps = k->ep_s + (int64_t)node * EPCAP;
        int32_t start = k->ep_rr[node] % n;
        for (int32_t i = 0; i < n; i++) {
            int32_t idx = start + i;
            if (idx >= n)
                idx -= n;
            int32_t sid = eps[idx];
            int32_t vid = k->s_owner[sid];
            int32_t flit;
            if (sid >= NVC) { /* injection channel delivering locally */
                flit = k->m_sent[vid];
                if (flit >= k->m_size[vid])
                    continue;
                k->m_sent[vid] = flit + 1;
            } else {
                if (k->v_count[sid] == 0)
                    continue;
                int32_t p = k->v_hp[sid];
                if (k->v_arr[(int64_t)sid * D + p] >= now)
                    continue;
                flit = k->v_flit[(int64_t)sid * D + p];
                k->v_hp[sid] = (p + 1 == D) ? 0 : p + 1;
                k->v_count[sid]--;
                k->hdr[H_OCC]--;
            }
            k->cnt[C_EJECTED]++;
            k->m_ejected[vid]++;
            if (flit == k->m_size[vid] - 1) { /* tail: delivered */
                k->s_owner[sid] = -1;
                k->s_sink[sid] = -1;
                n--;
                for (int32_t j = idx; j < n; j++)
                    eps[j] = eps[j + 1];
                k->ep_n[node] = n;
                emit(k, EV_DELIVER, vid, sid);
            }
            /* post-removal length, exactly as EjectionPort.step */
            {
                int32_t m = k->ep_n[node];
                k->ep_rr[node] = (start + i + 1) % (m > 0 ? m : 1);
            }
            break; /* one flit per port per cycle */
        }
    }
}

/* --------------------------------------------------------------------
 * Phase 2: allocation — route/VC allocation or delivery-slot claim for
 * every frontier.  Mirrors Fabric._phase_allocate; resumable on route
 * misses (return 2; Python fills the row and calls again with the same
 * `resume`).
 * ------------------------------------------------------------------ */
int32_t k_alloc(void *h, int32_t now, int32_t resume)
{
    KState *k = (KState *)h;
    const int32_t NVC = k->NVC, V = k->V, C = k->C, EPCAP = k->EPCAP;
    const int32_t R = k->R, VCLS = k->VCLS, ndim = k->ndim;
    const int32_t STRIDE = k->STRIDE;
    int32_t pn = k->hdr[H_PN];
    int32_t sn = (resume == 0) ? 0 : k->hdr[H_SN];
    for (int32_t i = resume; i < pn; i++) {
        int32_t sid = k->pending[i];
        int32_t vid = k->s_owner[sid];
        if (vid < 0)
            continue; /* rescued or otherwise detached meanwhile */
        if (k->s_sink[sid] >= 0)
            continue; /* already routed */
        int32_t dstr = k->m_dstr[vid];
        int32_t r = k->s_router[sid];
        if (r == dstr) {
            int32_t node = k->m_dst[vid];
            int32_t qi = node * C + k->m_qcls[vid];
            int32_t ok;
            if (k->m_hasres[vid] && k->qm_res[qi] > 0) {
                k->qm_res[qi]--; /* held++ / reserved--: free unchanged */
                ok = 1;
            } else if (k->qm_free[qi] > 0) {
                k->qm_free[qi]--; /* held++ */
                ok = 1;
            } else {
                ok = 0;
            }
            if (ok) {
                k->ep_s[(int64_t)node * EPCAP + k->ep_n[node]] = sid;
                k->ep_n[node]++;
                k->s_sink[sid] = NVC + node;
                k->m_blocked[vid] = -1;
                emit(k, EV_CLAIM, vid, sid);
                continue;
            }
        } else {
            int32_t key = (((r * R + dstr) * VCLS + k->m_vcls[vid]) << ndim)
                          | k->m_crossed[vid];
            int32_t row = k->rk_idx[key];
            if (row < 0) { /* suspend: Python computes the row */
                k->hdr[H_MISS_IDX] = i;
                k->hdr[H_MISS_SID] = sid;
                k->hdr[H_MISS_R] = r;
                k->hdr[H_MISS_DSTR] = dstr;
                k->hdr[H_MISS_CLS] = k->m_vcls[vid];
                k->hdr[H_MISS_MASK] = k->m_crossed[vid];
                k->hdr[H_SN] = sn;
                return 2;
            }
            const int32_t *rp = k->rows + (int64_t)row * STRIDE;
            int32_t na = rp[0], esc = rp[1];
            /* first free adaptive candidate with minimal buffered flits
             * (== the reference's stable sort by fifo length) */
            int32_t best = -1, bc = 0x7fffffff;
            for (int32_t j = 0; j < na; j++) {
                int32_t c = rp[2 + j];
                if (k->s_owner[c] < 0) {
                    int32_t cc = k->v_count[c];
                    if (cc < bc) {
                        bc = cc;
                        best = c;
                    }
                }
            }
            if (best < 0 && esc >= 0 && k->s_owner[esc] < 0)
                best = esc;
            if (best >= 0) {
                k->s_owner[best] = vid;
                k->s_sink[sid] = best;
                int32_t lid = best / V;
                int32_t pos = lid * V + k->ls_n[lid];
                k->ls_s[pos] = sid;
                k->ls_sink[pos] = best;
                k->ls_inj[pos] = (sid >= NVC);
                k->ls_n[lid]++;
                if (!k->busy_in[lid]) {
                    k->busy_in[lid] = 1;
                    k->busy_order[k->hdr[H_BUSYN]++] = lid;
                }
                k->m_blocked[vid] = -1;
                continue;
            }
        }
        /* blocked: stamp the start of the blocked episode */
        if (k->m_blocked[vid] < 0)
            k->m_blocked[vid] = now;
        k->cnt[C_ALLOCFAIL]++;
        k->still[sn++] = sid;
    }
    /* rotate for fairness, exactly as the reference */
    if (sn > 1) {
        int32_t tmp = k->still[0];
        memmove(k->still, k->still + 1, (size_t)(sn - 1) * sizeof(int32_t));
        k->still[sn - 1] = tmp;
    }
    memcpy(k->pending, k->still, (size_t)sn * sizeof(int32_t));
    k->hdr[H_PN] = sn;
    return 0;
}

/* --------------------------------------------------------------------
 * Phase 3: link traversal — one flit per busy link, round-robin.
 * Mirrors Fabric._phase_links.
 * ------------------------------------------------------------------ */
void k_links(void *h, int32_t now)
{
    KState *k = (KState *)h;
    const int32_t NVC = k->NVC, V = k->V, D = k->D, C = k->C;
    memset(k->inj_used, 0, (size_t)k->N * sizeof(int32_t));
    int32_t busyn = k->hdr[H_BUSYN];
    int64_t forwarded = 0, injected = 0;
    for (int32_t b = 0; b < busyn; b++) {
        int32_t lid = k->busy_order[b];
        int32_t n = k->ls_n[lid];
        if (n == 0) {
            k->busy_in[lid] = 0;
            continue;
        }
        int32_t *lss = k->ls_s + lid * V;
        int32_t *lssink = k->ls_sink + lid * V;
        int32_t *lsinj = k->ls_inj + lid * V;
        int32_t start = k->l_rr[lid] % n;
        for (int32_t i = 0; i < n; i++) {
            int32_t idx = start + i;
            if (idx >= n)
                idx -= n;
            int32_t sink = lssink[idx];
            if (k->v_count[sink] >= D)
                continue; /* sink full */
            int32_t sid = lss[idx];
            int32_t vid = k->s_owner[sid];
            int32_t flit;
            if (lsinj[idx]) {
                flit = k->m_sent[vid];
                if (flit >= k->m_size[vid])
                    continue;
                int32_t node = (sid - NVC) / C;
                if (k->inj_used[node])
                    continue;
                k->inj_used[node] = 1;
                k->m_sent[vid] = flit + 1;
                injected++;
            } else {
                if (k->v_count[sid] == 0)
                    continue;
                int32_t p = k->v_hp[sid];
                if (k->v_arr[(int64_t)sid * D + p] >= now)
                    continue; /* one-cycle minimum per hop */
                flit = k->v_flit[(int64_t)sid * D + p];
                k->v_hp[sid] = (p + 1 == D) ? 0 : p + 1;
                k->v_count[sid]--;
                k->hdr[H_OCC]--;
            }
            /* accept into the sink ring */
            {
                int32_t c = k->v_count[sink];
                int32_t q = k->v_hp[sink] + c;
                if (q >= D)
                    q -= D;
                k->v_flit[(int64_t)sink * D + q] = flit;
                k->v_arr[(int64_t)sink * D + q] = now;
                k->v_count[sink] = c + 1;
                k->hdr[H_OCC]++;
            }
            forwarded++;
            if (flit == 0) {
                /* header advanced one hop: dateline state + new frontier */
                k->m_hops[vid]++;
                if (k->vc_dateline[sink])
                    k->m_crossed[vid] |= 1 << k->vc_dim[sink];
                k->pending[k->hdr[H_PN]++] = sink;
                k->m_blocked[vid] = now;
            }
            if (flit == k->m_size[vid] - 1) {
                /* tail departed: free the sender behind the packet */
                n--;
                for (int32_t j = idx; j < n; j++) {
                    lss[j] = lss[j + 1];
                    lssink[j] = lssink[j + 1];
                    lsinj[j] = lsinj[j + 1];
                }
                k->ls_n[lid] = n;
                k->s_owner[sid] = -1;
                k->s_sink[sid] = -1;
                if (sid >= NVC)
                    emit(k, EV_INJDONE, vid, sid);
                if (n > 0) {
                    k->l_rr[lid] = (idx < n) ? idx : 0;
                } else {
                    k->l_rr[lid] = 0;
                    k->busy_in[lid] = 0;
                }
            } else {
                k->l_rr[lid] = (idx + 1 < n) ? idx + 1 : 0;
            }
            break; /* one flit per link per cycle */
        }
    }
    k->cnt[C_FORWARDED] += forwarded;
    k->cnt[C_INJECTED] += injected;
    /* compact busy_order, preserving first-busy order */
    {
        int32_t w = 0;
        for (int32_t b = 0; b < busyn; b++) {
            int32_t lid = k->busy_order[b];
            if (k->busy_in[lid])
                k->busy_order[w++] = lid;
        }
        /* links that became busy during this phase's header advances
         * cannot exist (allocation is the only producer), but keep any
         * trailing entries appended after the snapshot anyway */
        int32_t total = k->hdr[H_BUSYN];
        for (int32_t b = busyn; b < total; b++)
            k->busy_order[w++] = k->busy_order[b];
        k->hdr[H_BUSYN] = w;
    }
}

/* --------------------------------------------------------------------
 * Introspection for progressive recovery.
 * ------------------------------------------------------------------ */

/* First-minimal blocked_since frontier at `router` over `threshold`,
 * mirroring ProgressiveController._blocked_at_router. */
int32_t k_longest_blocked(void *h, int32_t router, int32_t now,
                          int32_t threshold)
{
    KState *k = (KState *)h;
    int32_t pn = k->hdr[H_PN];
    int32_t best = -1, best_since = 0;
    for (int32_t i = 0; i < pn; i++) {
        int32_t sid = k->pending[i];
        int32_t vid = k->s_owner[sid];
        if (vid < 0 || k->s_sink[sid] >= 0)
            continue;
        int32_t since = k->m_blocked[vid];
        if (since < 0)
            continue;
        if (k->s_router[sid] != router)
            continue;
        if (now - since > threshold && (best < 0 || since < best_since)) {
            best = sid;
            best_since = since;
        }
    }
    return best;
}

/* Remove the first occurrence of `sid` from pending (rescue detach). */
void k_detach(void *h, int32_t sid)
{
    KState *k = (KState *)h;
    int32_t pn = k->hdr[H_PN];
    for (int32_t i = 0; i < pn; i++) {
        if (k->pending[i] == sid) {
            memmove(k->pending + i, k->pending + i + 1,
                    (size_t)(pn - 1 - i) * sizeof(int32_t));
            k->hdr[H_PN] = pn - 1;
            return;
        }
    }
}
