"""Struct-of-arrays fabric: numpy state advanced by the C kernel.

:class:`VectorFabric` is a drop-in replacement for
:class:`repro.network.fabric.Fabric`.  All per-channel and per-message
network state lives in flat ``int32`` numpy arrays shared with the
compiled kernel (:mod:`repro.sim.vector.kernel`); the three cycle phases
run entirely in C, and endpoint interactions come back as an event
buffer that Python drains in exactly the order the reference fabric
would have made the equivalent calls — which is what keeps the two
backends bit-identical, floating-point accumulation order included.

Id spaces
---------
* virtual channel / sender id ``c`` in ``[0, NVC)`` with
  ``NVC = links * num_vcs``; ``c = lid * num_vcs + index``.
* injection sender id ``NVC + node * C + cls`` (``C`` queue classes).
* message slot ("vid"): dense handle into the ``m_*`` arrays; capacity
  ``NVC + N*C + 8`` because every live packet holds at least one sender.

The endpoint slot mirror (``qm_free``/``qm_res``) lets the kernel decide
delivery-slot claims without calling into Python; the engine installs a
``notify`` hook on every NI input queue that rewrites the mirror after
any mutation, so the kernel's view is exact at every phase boundary.

Recovery schemes see the fabric through thin handle objects
(:class:`VecVC`, :class:`VecInjChannel`) that satisfy the sender
interface of :mod:`repro.network.channel`, so the unmodified scheme
controllers (including progressive recovery's lane) work against the
array state.
"""

from __future__ import annotations

import numpy as np

from repro.network.soa import TopologySoA, build_route_table
from repro.network.topology import Topology
from repro.protocol.message import Message
from repro.util.errors import ConfigurationError, SimulationError

from repro.sim.vector.kernel import load_kernel

# Header cells (must match kernel.c).
H_PN = 0
H_EVN = 1
H_OCC = 2
H_BUSYN = 3
H_MISS_IDX = 4
H_MISS_SID = 5
H_MISS_R = 6
H_MISS_DSTR = 7
H_MISS_CLS = 8
H_MISS_MASK = 9
H_SN = 10
H_EV_OVF = 11

# int64 counters (must match kernel.c).
C_FORWARDED = 0
C_INJECTED = 1
C_EJECTED = 2
C_ALLOCFAIL = 3

# Event types (must match kernel.c).
EV_CLAIM = 1
EV_DELIVER = 2
EV_INJDONE = 3

#: Routing-memo keys are densely indexed; refuse configurations whose
#: key space would not fit comfortably in memory (4 bytes per key).
_MAX_ROUTE_KEYS = 8 << 20

#: Sentinel returned by handle ``next_sink`` for routed senders; only
#: ``is None`` tests are ever performed on it (and it is always truthy).
_ROUTED = object()


class VecVC:
    """Sender-interface view of one virtual channel's array state.

    Handed to progressive recovery (``fabric.pending`` entries, lane
    sources); mutations go straight to the shared arrays, so the kernel
    sees them next cycle.
    """

    __slots__ = ("fabric", "sid", "router")

    is_injection = False

    def __init__(self, fabric: "VectorFabric", sid: int) -> None:
        self.fabric = fabric
        self.sid = sid
        self.router = int(fabric.soa.vc_router[sid])

    @property
    def owner(self) -> Message | None:
        vid = self.fabric._s_owner[self.sid]
        return None if vid < 0 else self.fabric._vids[vid]

    @property
    def next_sink(self):
        return None if self.fabric._s_sink[self.sid] < 0 else _ROUTED

    # -- sender interface (recovery lane) -------------------------------
    def ready_flit(self, now: int) -> int | None:
        f = self.fabric
        sid = self.sid
        if f._v_count[sid] == 0:
            return None
        p = sid * f.D + f._v_hp[sid]
        if f._v_arr[p] >= now:
            return None
        return int(f._v_flit[p])

    def pop_flit(self) -> int:
        f = self.fabric
        sid = self.sid
        hp = int(f._v_hp[sid])
        flit = int(f._v_flit[sid * f.D + hp])
        f._v_hp[sid] = 0 if hp + 1 == f.D else hp + 1
        f._v_count[sid] -= 1
        f._hdr[H_OCC] -= 1
        return flit

    def release(self) -> None:
        f = self.fabric
        sid = self.sid
        if f._v_count[sid] != 0:  # pragma: no cover - guarded by callers
            raise SimulationError(f"releasing non-empty VC sid={sid}")
        vid = int(f._s_owner[sid])
        f._s_owner[sid] = -1
        f._s_sink[sid] = -1
        if vid >= 0:
            f._free_vid(vid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        o = self.owner
        return (
            f"VecVC(sid={self.sid} owner={o.uid if o else '-'} "
            f"occ={int(self.fabric._v_count[self.sid])})"
        )


class VecInjChannel:
    """Per-(node, class) injection channel over the array state.

    ``owner`` is a plain Python attribute — every transition (load,
    tail departure, direct delivery, rescue release) passes through
    Python, so no array lookup is needed on the per-cycle NI reload
    check.
    """

    __slots__ = ("fabric", "sid", "node", "router", "vc_class", "owner")

    is_injection = True

    def __init__(
        self, fabric: "VectorFabric", sid: int, node: int, router: int,
        vc_class: int,
    ) -> None:
        self.fabric = fabric
        self.sid = sid
        self.node = node
        self.router = router
        self.vc_class = vc_class
        self.owner: Message | None = None

    @property
    def idle(self) -> bool:
        return self.owner is None

    @property
    def next_sink(self):
        return None if self.fabric._s_sink[self.sid] < 0 else _ROUTED

    # -- sender interface (recovery lane; flit counts live in m_sent so
    # they stay coherent with the kernel's streaming) --------------------
    def ready_flit(self, now: int) -> int | None:
        if self.owner is None:
            return None
        f = self.fabric
        vid = f._s_owner[self.sid]
        sent = f._m_sent[vid]
        if sent < f._m_size[vid]:
            return int(sent)
        return None

    def pop_flit(self) -> int:
        f = self.fabric
        vid = f._s_owner[self.sid]
        flit = int(f._m_sent[vid])
        f._m_sent[vid] = flit + 1
        self.owner.flits_sent = flit + 1
        return flit

    def release(self) -> None:
        f = self.fabric
        vid = int(f._s_owner[self.sid])
        f._s_owner[self.sid] = -1
        f._s_sink[self.sid] = -1
        self.owner = None
        if vid >= 0:
            f._free_vid(vid)
        if f.wake_node is not None:
            f.wake_node(self.node)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        o = self.owner
        return (
            f"VecInj(node={self.node} cls={self.vc_class} "
            f"owner={o.uid if o else '-'})"
        )


class VectorFabric:
    """Array-backed fabric; same cycle semantics as the reference."""

    def __init__(
        self,
        topology: Topology,
        num_vcs: int,
        flit_buffer_depth: int,
        routing,
        num_queue_classes: int,
        queue_capacity: int,
        queue_class_of,
    ) -> None:
        self.topology = topology
        self.num_vcs = num_vcs
        self.flit_buffer_depth = flit_buffer_depth
        self.routing = routing
        self.soa = TopologySoA(topology, num_vcs)
        self._queue_class_of = queue_class_of
        self.tracer = None  # never set; VectorEngine rejects tracers
        #: engine wake hook ``wake_node(node)``: called when an
        #: injection channel frees up so the gated NI reloads it.
        self.wake_node = None

        L = self.soa.num_links
        V = num_vcs
        D = flit_buffer_depth
        N = topology.num_nodes
        C = num_queue_classes
        R = topology.num_routers
        ndim = topology.ndim
        vc_map = routing.vc_map
        VCLS = vc_map.num_classes

        self.NVC = NVC = L * V
        self.C = C
        self.D = D
        #: total sender ids: all VCs plus one injection channel per
        #: (node, queue class).
        self.S = S = NVC + N * C
        #: message-slot capacity; every live packet owns >= 1 sender.
        self.M = M = S + 8

        keys = (R * R * VCLS) << ndim
        if keys > _MAX_ROUTE_KEYS:
            raise ConfigurationError(
                f"vector backend: routing key space {keys} exceeds "
                f"{_MAX_ROUTE_KEYS}; use backend='reference' for this "
                "topology size"
            )
        maxcand = routing.max_static_candidates()
        self._stride = stride = 2 + maxcand
        # Claims convert free or reserved slots into held ones, so the
        # senders parked at one ejection port are bounded per class by
        # the queue capacity (plus the transient over-commit of
        # reservation vacating).
        epcap = C * (queue_capacity + 4) + 8
        evcap = S + 2 * N + L + 32
        scap = S + 8

        z = lambda n: np.zeros(n, dtype=np.int32)  # noqa: E731
        self._s_owner = np.full(S, -1, dtype=np.int32)
        self._s_sink = np.full(S, -1, dtype=np.int32)
        s_router = z(S)
        s_router[:NVC] = self.soa.vc_router
        for node in range(N):
            s_router[NVC + node * C : NVC + (node + 1) * C] = (
                topology.router_of_node(node)
            )
        self._s_router = s_router
        self._v_count = z(NVC)
        self._v_hp = z(NVC)
        self._v_flit = z(NVC * D)
        self._v_arr = z(NVC * D)
        self._vc_dim = np.ascontiguousarray(self.soa.vc_dim)
        self._vc_dateline = np.ascontiguousarray(self.soa.vc_dateline)
        self._m_size = z(M)
        self._m_dst = z(M)
        self._m_dstr = z(M)
        self._m_vcls = z(M)
        self._m_qcls = z(M)
        self._m_hasres = z(M)
        self._m_sent = z(M)
        self._m_crossed = z(M)
        self._m_hops = z(M)
        self._m_blocked = z(M)
        self._m_ejected = z(M)
        self._ls_s = z(L * V)
        self._ls_sink = z(L * V)
        self._ls_inj = z(L * V)
        self._ls_n = z(L)
        self._l_rr = z(L)
        self._busy_order = z(L)
        self._busy_in = z(L)
        self._ep_s = z(N * epcap)
        self._ep_n = z(N)
        self._ep_rr = z(N)
        self._pending = z(scap)
        self._still = z(scap)
        self._qm_free = np.full(N * C, queue_capacity, dtype=np.int32)
        self._qm_res = z(N * C)
        # Full route table up front: the key space keeps producing fresh
        # (position, destination, dateline) combinations for tens of
        # thousands of cycles, and each lazy miss costs a kernel
        # suspension plus a Python row fill.  _fill_missing_row remains
        # as a fallback but should never run.
        self._rk_idx, self._rows = build_route_table(
            topology, routing, num_vcs, stride
        )
        self._row_count = self._rows.size // stride
        self._row_cap = self._row_count
        self._ev = z(evcap * 3)
        self._inj_used = z(N)
        self._hdr = z(16)
        self._cnt = np.zeros(4, dtype=np.int64)

        self._lib = load_kernel()
        arrays = (
            self._s_owner, self._s_sink, self._s_router,
            self._v_count, self._v_hp, self._v_flit, self._v_arr,
            self._vc_dim, self._vc_dateline,
            self._m_size, self._m_dst, self._m_dstr, self._m_vcls,
            self._m_qcls, self._m_hasres, self._m_sent, self._m_crossed,
            self._m_hops, self._m_blocked, self._m_ejected,
            self._ls_s, self._ls_sink, self._ls_inj, self._ls_n,
            self._l_rr, self._busy_order, self._busy_in,
            self._ep_s, self._ep_n, self._ep_rr,
            self._pending, self._still, self._qm_free, self._qm_res,
            self._rk_idx, self._rows, self._ev, self._inj_used,
            self._hdr, self._cnt,
        )
        self._array_refs = arrays  # keep the buffers alive for the kernel
        import ctypes

        ptrs = (ctypes.c_int64 * len(arrays))(
            *(a.ctypes.data for a in arrays)
        )
        dims = (ctypes.c_int32 * 12)(
            L, V, D, N, C, R, ndim, epcap, maxcand, evcap, scap, VCLS
        )
        self._k = self._lib.k_new(ptrs, dims)
        if not self._k:  # pragma: no cover - allocation failure
            raise MemoryError("kernel state allocation failed")

        # vid <-> Message bookkeeping.
        self._vids: list[Message | None] = [None] * M
        self._free_vids = list(range(M - 1, -1, -1))

        # Endpoint hooks and handles.
        self._reserve_hooks = [None] * N
        self._deliver_hooks = [None] * N
        self._inj_channels: dict[tuple[int, int], VecInjChannel] = {}
        self._inj_by_sid: dict[int, VecInjChannel] = {}
        self._vc_handles: dict[int, VecVC] = {}

    def __del__(self):  # pragma: no cover - lifecycle
        k = getattr(self, "_k", None)
        if k:
            self._lib.k_free(k)
            self._k = None

    # ------------------------------------------------------------------
    # Wiring (same surface as the reference fabric)
    # ------------------------------------------------------------------
    def set_endpoint_hooks(self, node: int, try_reserve, deliver) -> None:
        self._reserve_hooks[node] = try_reserve
        self._deliver_hooks[node] = deliver

    def injection_channel(self, node: int, vc_class: int) -> VecInjChannel:
        key = (node, vc_class)
        chan = self._inj_channels.get(key)
        if chan is None:
            sid = self.NVC + node * self.C + vc_class
            chan = VecInjChannel(
                self, sid, node, self.topology.router_of_node(node), vc_class
            )
            self._inj_channels[key] = chan
            self._inj_by_sid[sid] = chan
        return chan

    # ------------------------------------------------------------------
    # Packet entry
    # ------------------------------------------------------------------
    def start_injection(self, chan: VecInjChannel, msg: Message, now: int) -> None:
        if chan.owner is not None:  # pragma: no cover - guarded
            raise SimulationError("loading busy injection channel")
        if not self._free_vids:  # pragma: no cover - sized to S + 8
            raise SimulationError("message-slot pool exhausted")
        vid = self._free_vids.pop()
        self._vids[vid] = msg
        msg.injected_cycle = now
        msg.blocked_since = now
        if msg.dst_router < 0:
            msg.dst_router = self.topology.router_of_node(msg.dst)
        self._m_size[vid] = msg.size
        self._m_dst[vid] = msg.dst
        self._m_dstr[vid] = msg.dst_router
        self._m_vcls[vid] = msg.vc_class
        self._m_qcls[vid] = self._queue_class_of(msg.mtype)
        self._m_hasres[vid] = 1 if msg.has_reservation else 0
        self._m_sent[vid] = msg.flits_sent
        self._m_crossed[vid] = msg.crossed_mask
        self._m_hops[vid] = msg.hops
        self._m_blocked[vid] = now
        self._m_ejected[vid] = 0
        sid = chan.sid
        self._s_owner[sid] = vid
        self._s_sink[sid] = -1
        pn = self._hdr[H_PN]
        self._pending[pn] = sid
        self._hdr[H_PN] = pn + 1
        chan.owner = msg

    # ------------------------------------------------------------------
    # Cycle
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        lib, k = self._lib, self._k
        lib.k_eject(k, now)
        ret = lib.k_alloc(k, now, 0)
        while ret == 2:
            self._fill_missing_row()
            ret = lib.k_alloc(k, now, int(self._hdr[H_MISS_IDX]))
        lib.k_links(k, now)
        if self._hdr[H_EV_OVF]:  # pragma: no cover - sized generously
            raise SimulationError("kernel event buffer overflow")
        self._drain_events(now)

    def _fill_missing_row(self) -> None:
        hdr = self._hdr
        r = int(hdr[H_MISS_R])
        dstr = int(hdr[H_MISS_DSTR])
        cls = int(hdr[H_MISS_CLS])
        mask = int(hdr[H_MISS_MASK])
        adaptive, esc = self.routing.static_candidate_ids(r, dstr, cls, mask)
        stride = self._stride
        if len(adaptive) > stride - 2:  # pragma: no cover - sized to map
            raise SimulationError("route row exceeds candidate capacity")
        if self._row_count == self._row_cap:
            self._row_cap *= 2
            grown = np.zeros(self._row_cap * stride, dtype=np.int32)
            grown[: self._rows.size] = self._rows
            self._rows = grown
            self._array_refs = self._array_refs[:35] + (grown,) + \
                self._array_refs[36:]
            self._lib.k_set_rows_ptr(self._k, grown.ctypes.data)
        base = self._row_count * stride
        rows = self._rows
        rows[base] = len(adaptive)
        rows[base + 1] = esc
        for j, c in enumerate(adaptive):
            rows[base + 2 + j] = c
        R = self.topology.num_routers
        ndim = self.topology.ndim
        vcls = self.routing.vc_map.num_classes
        key = (((r * R + dstr) * vcls + cls) << ndim) | mask
        self._rk_idx[key] = self._row_count
        self._row_count += 1

    def _drain_events(self, now: int) -> None:
        hdr = self._hdr
        evn = int(hdr[H_EVN])
        if evn == 0:
            return
        ev = self._ev
        vids = self._vids
        NVC = self.NVC
        for i in range(0, 3 * evn, 3):
            etype = ev[i]
            vid = ev[i + 1]
            msg = vids[vid]
            if etype == EV_CLAIM:
                # The kernel already claimed against the slot mirror;
                # replaying through the NI hook performs the identical
                # queue mutation (and must agree with the mirror).
                if not self._reserve_hooks[msg.dst](msg):
                    raise SimulationError(
                        "slot mirror diverged from queue state"
                    )  # pragma: no cover - mirror is exact
                msg.blocked_since = -1
            elif etype == EV_DELIVER:
                msg.flits_ejected = int(self._m_ejected[vid])
                sid = int(ev[i + 2])
                if sid >= NVC:  # direct local delivery: free the injector
                    chan = self._inj_by_sid[sid]
                    chan.owner = None
                    if self.wake_node is not None:
                        self.wake_node(chan.node)
                self._free_vid(int(vid))
                self._deliver_hooks[msg.dst](msg, now)
            else:  # EV_INJDONE: tail left the injection channel
                chan = self._inj_by_sid[int(ev[i + 2])]
                chan.owner = None
                if self.wake_node is not None:
                    self.wake_node(chan.node)
        hdr[H_EVN] = 0

    def _free_vid(self, vid: int) -> None:
        self._vids[vid] = None
        self._free_vids.append(vid)

    # ------------------------------------------------------------------
    # Introspection (recovery, quiesce, tests)
    # ------------------------------------------------------------------
    def _handle(self, sid: int):
        if sid >= self.NVC:
            return self._inj_by_sid[sid]
        h = self._vc_handles.get(sid)
        if h is None:
            h = self._vc_handles[sid] = VecVC(self, sid)
        return h

    @property
    def pending(self) -> list:
        """Frontier handles in kernel order, message state synced."""
        out = []
        pn = int(self._hdr[H_PN])
        pending = self._pending
        s_owner = self._s_owner
        m_blocked = self._m_blocked
        vids = self._vids
        for i in range(pn):
            sid = int(pending[i])
            vid = s_owner[sid]
            if vid >= 0:
                vids[vid].blocked_since = int(m_blocked[vid])
            out.append(self._handle(sid))
        return out

    def frontier_senders(self) -> list:
        return [
            s for s in self.pending
            if s.owner is not None and s.next_sink is None
        ]

    def blocked_frontiers(self, now: int, threshold: int) -> list:
        out = []
        for s in self.pending:
            msg = s.owner
            if (
                msg is not None
                and s.next_sink is None
                and msg.blocked_since >= 0
                and now - msg.blocked_since > threshold
            ):
                out.append(s)
        return out

    def detach_frontier(self, sender) -> None:
        """Remove a frontier from the pending set (rescue path).

        Message progress fields are synced from the arrays because the
        recovery lane and its bookkeeping operate on the object.
        """
        sid = sender.sid
        self._lib.k_detach(self._k, sid)
        vid = self._s_owner[sid]
        if vid >= 0:
            msg = self._vids[vid]
            msg.flits_sent = int(self._m_sent[vid])
            msg.hops = int(self._m_hops[vid])
            msg.crossed_mask = int(self._m_crossed[vid])
            msg.blocked_since = int(self._m_blocked[vid])
            msg.flits_ejected = int(self._m_ejected[vid])

    def occupancy(self) -> int:
        return int(self._hdr[H_OCC])

    @property
    def flits_forwarded(self) -> int:
        return int(self._cnt[C_FORWARDED])

    @property
    def flits_injected(self) -> int:
        return int(self._cnt[C_INJECTED])

    @property
    def flits_ejected(self) -> int:
        return int(self._cnt[C_EJECTED])

    @property
    def alloc_failures(self) -> int:
        return int(self._cnt[C_ALLOCFAIL])
